# Validates the etransform_cli --lp-algorithm flag: an invalid value must
# fail with the usage text, and each valid value must plan successfully with
# the expected dual-simplex activity visible in the stats JSON (auto/dual
# restart with dual pivots, primal never does). Driven by ctest:
#   cmake -DCLI=<path> -DWORK_DIR=<dir> -P validate_cli_lp_algorithm.cmake
cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<etransform_cli> -DWORK_DIR=<dir> "
                      "-P validate_cli_lp_algorithm.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(instance "${WORK_DIR}/lp_algorithm_check.etf")

execute_process(
  COMMAND "${CLI}" generate enterprise1 -o "${instance}"
  RESULT_VARIABLE generate_result)
if(NOT generate_result EQUAL 0)
  message(FATAL_ERROR "etransform_cli generate failed (${generate_result})")
endif()

# An unknown algorithm must be rejected with the usage text, not silently
# mapped to a default.
execute_process(
  COMMAND "${CLI}" plan "${instance}" --lp-algorithm bogus
  RESULT_VARIABLE bad_result
  OUTPUT_QUIET
  ERROR_VARIABLE bad_stderr)
if(bad_result EQUAL 0)
  message(FATAL_ERROR "--lp-algorithm bogus was accepted (exit 0)")
endif()
if(NOT bad_stderr MATCHES "usage:")
  message(FATAL_ERROR "--lp-algorithm bogus did not print the usage text")
endif()
if(NOT bad_stderr MATCHES "--lp-algorithm primal\\|dual\\|auto")
  message(FATAL_ERROR "usage text does not document --lp-algorithm")
endif()
message(STATUS "invalid --lp-algorithm rejected with usage text")

# Pulls the planner -> branch_and_bound -> simplex subtree's `metric` into
# `out_var` (FATAL_ERROR when the path is missing).
function(read_simplex_metric stats_file metric out_var)
  file(READ "${stats_file}" stats)
  string(JSON child_count LENGTH "${stats}" "children")
  set(bnb "")
  math(EXPR last "${child_count} - 1")
  foreach(i RANGE ${last})
    string(JSON phase_name GET "${stats}" "children" ${i} "name")
    if(phase_name STREQUAL "branch_and_bound")
      string(JSON bnb GET "${stats}" "children" ${i})
    endif()
  endforeach()
  if(bnb STREQUAL "")
    message(FATAL_ERROR "${stats_file}: missing 'branch_and_bound' phase")
  endif()
  string(JSON bnb_children LENGTH "${bnb}" "children")
  set(simplex "")
  math(EXPR bnb_last "${bnb_children} - 1")
  foreach(i RANGE ${bnb_last})
    string(JSON child_name GET "${bnb}" "children" ${i} "name")
    if(child_name STREQUAL "simplex")
      string(JSON simplex GET "${bnb}" "children" ${i})
    endif()
  endforeach()
  if(simplex STREQUAL "")
    message(FATAL_ERROR "${stats_file}: missing 'simplex' child")
  endif()
  string(JSON value ERROR_VARIABLE json_err
         GET "${simplex}" "metrics" "${metric}")
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "${stats_file}: simplex missing metric '${metric}'")
  endif()
  set(${out_var} "${value}" PARENT_SCOPE)
endfunction()

# Each valid value must plan; auto/dual must actually run dual re-solves
# (node restarts are dual-feasible on this instance) while primal never may.
foreach(algorithm primal dual auto)
  set(stats_json "${WORK_DIR}/lp_algorithm_${algorithm}.json")
  execute_process(
    COMMAND "${CLI}" plan "${instance}" --engine exact --time-limit 4000
            --lp-algorithm "${algorithm}" --stats-json "${stats_json}"
    RESULT_VARIABLE plan_result
    OUTPUT_QUIET)
  if(NOT plan_result EQUAL 0)
    message(FATAL_ERROR
            "plan --lp-algorithm ${algorithm} failed (${plan_result})")
  endif()
  read_simplex_metric("${stats_json}" "dual_solves" dual_solves)
  if(algorithm STREQUAL "primal")
    if(dual_solves GREATER 0)
      message(FATAL_ERROR "--lp-algorithm primal ran ${dual_solves} dual "
                          "solves; want 0")
    endif()
  else()
    if(dual_solves LESS 1)
      message(FATAL_ERROR "--lp-algorithm ${algorithm} ran no dual solves; "
                          "node/cut restarts should have used the dual "
                          "simplex")
    endif()
  endif()
  message(STATUS "--lp-algorithm ${algorithm} OK (${dual_solves} dual solves)")
endforeach()
