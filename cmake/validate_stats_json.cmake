# Runs etransform_cli plan --stats-json and validates that the emitted file
# is well-formed JSON with the expected solve-stats shape (per-phase wall
# times and counters). Driven by ctest:
#   cmake -DCLI=<path> -DWORK_DIR=<dir> -P validate_stats_json.cmake
# Requires CMake >= 3.19 for string(JSON).
cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<etransform_cli> -DWORK_DIR=<dir> "
                      "-P validate_stats_json.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(instance "${WORK_DIR}/stats_check.etf")
set(stats_json "${WORK_DIR}/stats_check.json")

execute_process(
  COMMAND "${CLI}" generate enterprise1 -o "${instance}"
  RESULT_VARIABLE generate_result)
if(NOT generate_result EQUAL 0)
  message(FATAL_ERROR "etransform_cli generate failed (${generate_result})")
endif()

# Heuristic engine keeps the check fast; the stats tree still carries the
# planner/heuristic/local-search phases.
execute_process(
  COMMAND "${CLI}" plan "${instance}" --engine heuristic
          --stats-json "${stats_json}"
  RESULT_VARIABLE plan_result
  OUTPUT_QUIET)
if(NOT plan_result EQUAL 0)
  message(FATAL_ERROR "etransform_cli plan failed (${plan_result})")
endif()

file(READ "${stats_json}" stats)

# string(JSON) fails the script with a clear message on malformed JSON.
string(JSON root_name GET "${stats}" "name")
if(NOT root_name STREQUAL "planner")
  message(FATAL_ERROR "root stats name is '${root_name}', want 'planner'")
endif()

string(JSON wall_ms GET "${stats}" "wall_ms")
if(wall_ms LESS_EQUAL 0)
  message(FATAL_ERROR "planner wall_ms is '${wall_ms}', want > 0")
endif()

string(JSON child_count LENGTH "${stats}" "children")
if(child_count LESS 1)
  message(FATAL_ERROR "planner stats has no child phases")
endif()

# Every child phase must carry a numeric wall time.
math(EXPR last "${child_count} - 1")
foreach(i RANGE ${last})
  string(JSON phase_name GET "${stats}" "children" ${i} "name")
  string(JSON phase_wall GET "${stats}" "children" ${i} "wall_ms")
  if(phase_wall LESS 0)
    message(FATAL_ERROR "phase '${phase_name}' has negative wall_ms")
  endif()
endforeach()

message(STATUS "stats JSON OK: ${child_count} phases under '${root_name}'")

# Second run: the exact engine must surface the revised-simplex counters
# (factorizations, eta file, pricing, warm starts) under
# planner -> branch_and_bound -> simplex. A short time limit keeps the check
# cheap; the root LP relaxation alone populates every counter.
set(exact_json "${WORK_DIR}/stats_check_exact.json")
execute_process(
  COMMAND "${CLI}" plan "${instance}" --engine exact --time-limit 2000
          --stats-json "${exact_json}"
  RESULT_VARIABLE exact_result
  OUTPUT_QUIET)
if(NOT exact_result EQUAL 0)
  message(FATAL_ERROR "etransform_cli plan --engine exact failed (${exact_result})")
endif()

file(READ "${exact_json}" exact_stats)

# Locate the branch_and_bound phase, then its simplex child.
string(JSON exact_children LENGTH "${exact_stats}" "children")
set(bnb "")
math(EXPR exact_last "${exact_children} - 1")
foreach(i RANGE ${exact_last})
  string(JSON phase_name GET "${exact_stats}" "children" ${i} "name")
  if(phase_name STREQUAL "branch_and_bound")
    string(JSON bnb GET "${exact_stats}" "children" ${i})
  endif()
endforeach()
if(bnb STREQUAL "")
  message(FATAL_ERROR "exact-engine stats missing 'branch_and_bound' phase")
endif()

string(JSON bnb_children LENGTH "${bnb}" "children")
set(simplex "")
math(EXPR bnb_last "${bnb_children} - 1")
foreach(i RANGE ${bnb_last})
  string(JSON child_name GET "${bnb}" "children" ${i} "name")
  if(child_name STREQUAL "simplex")
    string(JSON simplex GET "${bnb}" "children" ${i})
  endif()
endforeach()
if(simplex STREQUAL "")
  message(FATAL_ERROR "branch_and_bound stats missing 'simplex' child")
endif()

# The counters must exist and be coherent: at least one solve happened, every
# solve refactorizes at least once, and pricing did *something*.
foreach(metric calls pivots refactorizations etas eta_entries
        pricing_candidate_hits pricing_full_scans warm_starts
        dual_pivots bound_flips dual_solves)
  string(JSON value ERROR_VARIABLE json_err GET "${simplex}" "metrics" "${metric}")
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "simplex stats missing metric '${metric}'")
  endif()
  if(value LESS 0)
    message(FATAL_ERROR "simplex metric '${metric}' is negative (${value})")
  endif()
  set(simplex_${metric} "${value}")
endforeach()
if(simplex_calls LESS 1)
  message(FATAL_ERROR "simplex 'calls' is ${simplex_calls}, want >= 1")
endif()
if(simplex_refactorizations LESS ${simplex_calls})
  message(FATAL_ERROR "simplex refactorizations (${simplex_refactorizations}) "
                      "< calls (${simplex_calls}); every solve factorizes once")
endif()
math(EXPR pricing_total
     "${simplex_pricing_candidate_hits} + ${simplex_pricing_full_scans}")
if(pricing_total LESS 1)
  message(FATAL_ERROR "simplex pricing counters are all zero")
endif()

message(STATUS "exact-engine stats OK: ${simplex_calls} simplex calls, "
               "${simplex_pivots} pivots, "
               "${simplex_refactorizations} refactorizations")

# The cut-and-branch pipeline must be visible in the same tree: a 'cuts'
# child under branch_and_bound with the round/pool tallies, plus the
# pseudocost branching counters on the branch_and_bound node itself.
foreach(metric nodes strong_branch_probes pseudocost_updates)
  string(JSON value ERROR_VARIABLE json_err GET "${bnb}" "metrics" "${metric}")
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "branch_and_bound stats missing metric '${metric}'")
  endif()
  if(value LESS 0)
    message(FATAL_ERROR "branch_and_bound metric '${metric}' is negative "
                        "(${value})")
  endif()
  set(bnb_${metric} "${value}")
endforeach()

set(cuts "")
foreach(i RANGE ${bnb_last})
  string(JSON child_name GET "${bnb}" "children" ${i} "name")
  if(child_name STREQUAL "cuts")
    string(JSON cuts GET "${bnb}" "children" ${i})
  endif()
endforeach()
if(cuts STREQUAL "")
  message(FATAL_ERROR "branch_and_bound stats missing 'cuts' child "
                      "(cut separation runs at the root by default)")
endif()

foreach(metric rounds generated applied purged)
  string(JSON value ERROR_VARIABLE json_err GET "${cuts}" "metrics" "${metric}")
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "cuts stats missing metric '${metric}'")
  endif()
  if(value LESS 0)
    message(FATAL_ERROR "cuts metric '${metric}' is negative (${value})")
  endif()
  set(cuts_${metric} "${value}")
endforeach()
if(cuts_rounds LESS 1)
  message(FATAL_ERROR "cuts 'rounds' is ${cuts_rounds}, want >= 1 (the root "
                      "relaxation of this instance is fractional)")
endif()

message(STATUS "cut/branching stats OK: ${cuts_rounds} cut rounds, "
               "${cuts_generated} generated / ${cuts_applied} applied / "
               "${cuts_purged} purged; ${bnb_strong_branch_probes} probes, "
               "${bnb_pseudocost_updates} pseudocost updates over "
               "${bnb_nodes} nodes")
