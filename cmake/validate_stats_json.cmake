# Runs etransform_cli plan --stats-json and validates that the emitted file
# is well-formed JSON with the expected solve-stats shape (per-phase wall
# times and counters). Driven by ctest:
#   cmake -DCLI=<path> -DWORK_DIR=<dir> -P validate_stats_json.cmake
# Requires CMake >= 3.19 for string(JSON).
cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<etransform_cli> -DWORK_DIR=<dir> "
                      "-P validate_stats_json.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(instance "${WORK_DIR}/stats_check.etf")
set(stats_json "${WORK_DIR}/stats_check.json")

execute_process(
  COMMAND "${CLI}" generate enterprise1 -o "${instance}"
  RESULT_VARIABLE generate_result)
if(NOT generate_result EQUAL 0)
  message(FATAL_ERROR "etransform_cli generate failed (${generate_result})")
endif()

# Heuristic engine keeps the check fast; the stats tree still carries the
# planner/heuristic/local-search phases.
execute_process(
  COMMAND "${CLI}" plan "${instance}" --engine heuristic
          --stats-json "${stats_json}"
  RESULT_VARIABLE plan_result
  OUTPUT_QUIET)
if(NOT plan_result EQUAL 0)
  message(FATAL_ERROR "etransform_cli plan failed (${plan_result})")
endif()

file(READ "${stats_json}" stats)

# string(JSON) fails the script with a clear message on malformed JSON.
string(JSON root_name GET "${stats}" "name")
if(NOT root_name STREQUAL "planner")
  message(FATAL_ERROR "root stats name is '${root_name}', want 'planner'")
endif()

string(JSON wall_ms GET "${stats}" "wall_ms")
if(wall_ms LESS_EQUAL 0)
  message(FATAL_ERROR "planner wall_ms is '${wall_ms}', want > 0")
endif()

string(JSON child_count LENGTH "${stats}" "children")
if(child_count LESS 1)
  message(FATAL_ERROR "planner stats has no child phases")
endif()

# Every child phase must carry a numeric wall time.
math(EXPR last "${child_count} - 1")
foreach(i RANGE ${last})
  string(JSON phase_name GET "${stats}" "children" ${i} "name")
  string(JSON phase_wall GET "${stats}" "children" ${i} "wall_ms")
  if(phase_wall LESS 0)
    message(FATAL_ERROR "phase '${phase_name}' has negative wall_ms")
  endif()
endforeach()

message(STATUS "stats JSON OK: ${child_count} phases under '${root_name}'")
