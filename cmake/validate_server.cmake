# End-to-end check of etransformd, the planner-as-a-service daemon:
#   * boots the daemon on an ephemeral port (--port 0 --port-file),
#   * plans an instance through HTTP and diffs the result document's total
#     cost against the same solve run directly by etransform_cli
#     --result-json (the two paths share plan_result_json, so the numbers
#     must agree exactly),
#   * resubmits the identical request and requires a cache hit,
#   * replans against the finished job and requires a terminal result,
#   * lints the job's /trace Chrome trace (balanced B/E and b/e phases,
#     globally monotone timestamps, every span tagged with the job's own
#     trace_id — the daemon boots with --slo-ms 0.001 so the flight
#     recorder arms on every job),
#   * checks /progress answers for the finished job,
#   * lints the /metrics Prometheus exposition (including the p50/p95/p99
#     latency summary gauges and the build-info/uptime pair),
#   * SIGTERMs the daemon, requires a graceful drain-and-exit, and checks
#     the --telemetry-dir run artifacts (trace.json, metrics.prom, and the
#     per-job flight-recorder dump) landed on disk.
# Driven by ctest:
#   cmake -DDAEMON=<etransformd> -DCLIENT=<etransform_client>
#         -DCLI=<etransform_cli> -DWORK_DIR=<dir> -P validate_server.cmake
# Requires CMake >= 3.19 for string(JSON); the process plumbing shells out
# to sh, matching the POSIX-only CI matrix.
cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED DAEMON OR NOT DEFINED CLIENT OR NOT DEFINED CLI
   OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DDAEMON=<etransformd> "
                      "-DCLIENT=<etransform_client> -DCLI=<etransform_cli> "
                      "-DWORK_DIR=<dir> -P validate_server.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(instance "${WORK_DIR}/server_check.etf")
set(port_file "${WORK_DIR}/port")
set(pid_file "${WORK_DIR}/daemon.pid")
set(daemon_log "${WORK_DIR}/daemon.log")
file(REMOVE "${port_file}" "${pid_file}" "${daemon_log}")

function(kill_daemon signal)
  if(EXISTS "${pid_file}")
    file(READ "${pid_file}" pid)
    string(STRIP "${pid}" pid)
    execute_process(COMMAND sh -c "kill -${signal} ${pid} 2>/dev/null"
                    RESULT_VARIABLE ignored)
  endif()
endfunction()

function(die message)
  if(EXISTS "${daemon_log}")
    file(READ "${daemon_log}" log)
    message(STATUS "---- daemon log ----\n${log}")
  endif()
  kill_daemon(KILL)
  message(FATAL_ERROR "${message}")
endfunction()

execute_process(
  COMMAND "${CLI}" generate enterprise1 -o "${instance}"
  RESULT_VARIABLE generate_result OUTPUT_QUIET)
if(NOT generate_result EQUAL 0)
  message(FATAL_ERROR "etransform_cli generate failed (${generate_result})")
endif()

# ---- boot -----------------------------------------------------------------

# --slo-ms 0.001 flags every job as an SLO anomaly, so the flight recorder
# always keeps a per-job trace; --telemetry-dir collects those dumps plus
# the shutdown artifacts checked after the drain.
set(telemetry_dir "${WORK_DIR}/telemetry")
file(REMOVE_RECURSE "${telemetry_dir}")
execute_process(
  COMMAND sh -c "'${DAEMON}' --port 0 --workers 2 --port-file '${port_file}' \
                 --slo-ms 0.001 --telemetry-dir '${telemetry_dir}' \
                 -v > '${daemon_log}' 2>&1 & echo $! > '${pid_file}'"
  RESULT_VARIABLE boot_result)
if(NOT boot_result EQUAL 0)
  message(FATAL_ERROR "failed to launch etransformd (${boot_result})")
endif()

foreach(i RANGE 100)
  if(EXISTS "${port_file}")
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(NOT EXISTS "${port_file}")
  die("etransformd never wrote its port file")
endif()
file(READ "${port_file}" port)
string(STRIP "${port}" port)
message(STATUS "etransformd up on 127.0.0.1:${port}")

execute_process(COMMAND "${CLIENT}" --port "${port}" health
                OUTPUT_VARIABLE health RESULT_VARIABLE health_result)
if(NOT health_result EQUAL 0)
  die("GET /healthz failed (${health_result})")
endif()
string(JSON health_status GET "${health}" "status")
if(NOT health_status STREQUAL "ok")
  die("healthz status is '${health_status}', want 'ok'")
endif()

# ---- plan through the daemon vs. the CLI ---------------------------------

execute_process(
  COMMAND "${CLIENT}" --port "${port}" plan "${instance}" --engine heuristic
  OUTPUT_VARIABLE daemon_doc RESULT_VARIABLE plan_result)
if(NOT plan_result EQUAL 0)
  die("daemon plan failed (${plan_result}): ${daemon_doc}")
endif()
string(JSON daemon_state GET "${daemon_doc}" "state")
if(NOT daemon_state STREQUAL "done")
  die("daemon plan state is '${daemon_state}', want 'done'")
endif()
string(JSON job GET "${daemon_doc}" "job")
string(JSON daemon_total GET "${daemon_doc}" "result" "cost" "total")

execute_process(
  COMMAND "${CLI}" plan "${instance}" --engine heuristic
          --result-json "${WORK_DIR}/cli_result.json"
  RESULT_VARIABLE cli_result OUTPUT_QUIET ERROR_QUIET)
if(NOT cli_result EQUAL 0)
  die("etransform_cli plan --result-json failed (${cli_result})")
endif()
file(READ "${WORK_DIR}/cli_result.json" cli_doc)
string(JSON cli_total GET "${cli_doc}" "cost" "total")

# Same instance, same deterministic heuristic, same document writer: the
# totals must agree exactly, not just approximately.
if(NOT daemon_total EQUAL cli_total)
  die("daemon total ${daemon_total} != CLI total ${cli_total}")
endif()
message(STATUS "plan OK: job ${job}, total ${daemon_total} matches the CLI")

# ---- cache hit on resubmission -------------------------------------------

execute_process(
  COMMAND "${CLIENT}" --port "${port}" plan "${instance}" --engine heuristic
  OUTPUT_VARIABLE hit_doc RESULT_VARIABLE hit_result)
if(NOT hit_result EQUAL 0)
  die("resubmission failed (${hit_result})")
endif()
string(JSON cache_hit GET "${hit_doc}" "cache_hit")
if(NOT cache_hit STREQUAL "ON")
  die("identical resubmission was not served from the cache (cache_hit "
      "'${cache_hit}')")
endif()
message(STATUS "cache OK: identical resubmission hit")

# ---- replan against the finished job -------------------------------------

execute_process(
  COMMAND "${CLIENT}" --port "${port}" replan "${job}" --pin 0=1
  OUTPUT_VARIABLE replan_doc RESULT_VARIABLE replan_result)
if(NOT replan_result EQUAL 0)
  die("replan failed (${replan_result}): ${replan_doc}")
endif()
string(JSON replan_state GET "${replan_doc}" "state")
if(NOT replan_state STREQUAL "done")
  die("replan state is '${replan_state}', want 'done'")
endif()
string(JSON replan_total GET "${replan_doc}" "result" "cost" "total")
message(STATUS "replan OK: pinned total ${replan_total}")

# ---- /trace Chrome trace lint --------------------------------------------

execute_process(COMMAND "${CLIENT}" --port "${port}" trace "${job}"
                OUTPUT_VARIABLE trace_doc RESULT_VARIABLE trace_result)
if(NOT trace_result EQUAL 0)
  die("GET /trace failed (${trace_result}): ${trace_doc}")
endif()
string(JSON trace_events LENGTH "${trace_doc}" "traceEvents")
if(NOT trace_events GREATER 0)
  die("/trace for job ${job} has no events")
endif()

# Balanced phases: every duration open has a close, every async begin an
# end (the recorder emits synthetic closes for still-open spans).
foreach(pair "B;E" "b;e")
  list(GET pair 0 open_ph)
  list(GET pair 1 close_ph)
  string(REGEX MATCHALL "\"ph\":\"${open_ph}\"" opens "${trace_doc}")
  string(REGEX MATCHALL "\"ph\":\"${close_ph}\"" closes "${trace_doc}")
  list(LENGTH opens open_count)
  list(LENGTH closes close_count)
  if(NOT open_count EQUAL close_count)
    die("/trace phase '${open_ph}' count ${open_count} != "
        "'${close_ph}' count ${close_count}")
  endif()
endforeach()

# Request scoping: the trace must carry exactly one trace_id — the job's.
string(REGEX MATCHALL "\"trace_id\":[0-9]+" trace_ids "${trace_doc}")
list(REMOVE_DUPLICATES trace_ids)
if(NOT trace_ids STREQUAL "\"trace_id\":${job}")
  die("/trace is not scoped to job ${job}: saw '${trace_ids}'")
endif()

# Globally monotone timestamps: the drain merges per-thread rings into one
# ts-sorted stream. ts values are integral microseconds; zero-pad so the
# check is a plain string compare (CMake-safe for 64-bit values).
string(REGEX MATCHALL "\"ts\":[0-9]+" ts_list "${trace_doc}")
set(prev_ts "")
foreach(ts_match ${ts_list})
  string(REGEX REPLACE "[^0-9]" "" digits "${ts_match}")
  string(LENGTH "${digits}" digit_len)
  math(EXPR pad_len "20 - ${digit_len}")
  string(REPEAT "0" ${pad_len} zeros)
  set(padded "${zeros}${digits}")
  if(NOT prev_ts STREQUAL "" AND padded STRLESS prev_ts)
    die("/trace timestamps are not globally monotone (${prev_ts} then "
        "${padded})")
  endif()
  set(prev_ts "${padded}")
endforeach()
message(STATUS "/trace OK: ${trace_events} events, balanced, monotone, "
               "scoped to job ${job}")

# ---- /progress for the finished job --------------------------------------

execute_process(COMMAND "${CLIENT}" --port "${port}" progress "${job}"
                OUTPUT_VARIABLE progress_doc RESULT_VARIABLE progress_result)
if(NOT progress_result EQUAL 0)
  die("GET /progress failed (${progress_result}): ${progress_doc}")
endif()
string(JSON progress_state GET "${progress_doc}" "state")
if(NOT progress_state STREQUAL "done")
  die("/progress state is '${progress_state}', want 'done'")
endif()
message(STATUS "/progress OK: terminal job answers")

# ---- /metrics exposition lint --------------------------------------------

execute_process(COMMAND "${CLIENT}" --port "${port}" metrics
                OUTPUT_VARIABLE prom RESULT_VARIABLE metrics_result)
if(NOT metrics_result EQUAL 0)
  die("GET /metrics failed (${metrics_result})")
endif()
foreach(needle
        "# TYPE etransform_server_requests_total counter"
        "# TYPE etransform_server_cache_hits_total counter"
        "# TYPE etransform_server_cache_misses_total counter"
        "# TYPE etransform_server_queue_depth gauge"
        "# TYPE etransform_server_jobs_inflight gauge"
        "# TYPE etransform_server_request_ms histogram"
        "etransform_server_request_ms_bucket{le=\"+Inf\"}"
        "etransform_server_request_ms_p50 "
        "etransform_server_request_ms_p95 "
        "etransform_server_request_ms_p99 "
        "etransform_build_info 1"
        "etransform_uptime_seconds ")
  string(FIND "${prom}" "${needle}" at)
  if(at EQUAL -1)
    die("/metrics is missing: ${needle}")
  endif()
endforeach()
string(REGEX MATCH "etransform_server_cache_hits_total ([0-9.]+)" _ "${prom}")
if(NOT CMAKE_MATCH_1 GREATER_EQUAL 1)
  die("cache-hit counter is '${CMAKE_MATCH_1}', want >= 1")
endif()
message(STATUS "/metrics OK")

# ---- graceful drain on SIGTERM -------------------------------------------

file(READ "${pid_file}" pid)
string(STRIP "${pid}" pid)
kill_daemon(TERM)
set(exited FALSE)
foreach(i RANGE 150)
  execute_process(COMMAND sh -c "kill -0 ${pid} 2>/dev/null"
                  RESULT_VARIABLE alive)
  if(NOT alive EQUAL 0)
    set(exited TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(NOT exited)
  die("etransformd did not exit within 15s of SIGTERM")
endif()
message(STATUS "drain OK: daemon exited after SIGTERM")

# ---- --telemetry-dir run artifacts ---------------------------------------

foreach(artifact
        "${telemetry_dir}/trace.json"
        "${telemetry_dir}/metrics.prom"
        "${telemetry_dir}/job-${job}-trace.json")
  if(NOT EXISTS "${artifact}")
    die("missing telemetry artifact: ${artifact}")
  endif()
endforeach()
message(STATUS "telemetry OK: shutdown artifacts and flight-recorder dump "
               "present in ${telemetry_dir}")
