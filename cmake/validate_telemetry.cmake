# Runs etransform_cli plan --sweep --telemetry-dir and validates the emitted
# run artifacts:
#   * trace.json   — parses as JSON, every duration begin has a matching end
#                    per thread track, timestamps never regress within a
#                    track, async job begin/end counts balance.
#   * metrics.prom — Prometheus text format: every non-comment line is
#                    `name{labels} value`, and the farm gauge / latency
#                    histogram / terminal counters the sweep must produce are
#                    present.
#   * stats.json   — parses as JSON (one entry per sweep scenario).
# Driven by ctest:
#   cmake -DCLI=<path> -DWORK_DIR=<dir> -P validate_telemetry.cmake
# Requires CMake >= 3.19 for string(JSON).
cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<etransform_cli> -DWORK_DIR=<dir> "
                      "-P validate_telemetry.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(instance "${WORK_DIR}/telemetry_check.etf")
set(telemetry_dir "${WORK_DIR}/run")

execute_process(
  COMMAND "${CLI}" generate enterprise1 -o "${instance}"
  RESULT_VARIABLE generate_result)
if(NOT generate_result EQUAL 0)
  message(FATAL_ERROR "etransform_cli generate failed (${generate_result})")
endif()

# A 2-worker sweep exercises the whole telemetry surface: farm async job
# lifecycles, worker-thread tracks, queue/latency metrics, per-scenario stats.
execute_process(
  COMMAND "${CLI}" plan "${instance}" --engine heuristic --jobs 2
          --sweep omega=1.0,0.7 --telemetry-dir "${telemetry_dir}"
  RESULT_VARIABLE plan_result
  OUTPUT_QUIET ERROR_QUIET)
if(NOT plan_result EQUAL 0)
  message(FATAL_ERROR "etransform_cli plan --telemetry-dir failed (${plan_result})")
endif()

foreach(artifact trace.json metrics.prom stats.json)
  if(NOT EXISTS "${telemetry_dir}/${artifact}")
    message(FATAL_ERROR "telemetry dir is missing ${artifact}")
  endif()
endforeach()

# ---- trace.json -----------------------------------------------------------

file(READ "${telemetry_dir}/trace.json" trace)

string(JSON unit GET "${trace}" "displayTimeUnit")
if(NOT unit STREQUAL "ms")
  message(FATAL_ERROR "trace displayTimeUnit is '${unit}', want 'ms'")
endif()

string(JSON event_count LENGTH "${trace}" "traceEvents")
if(event_count LESS 10)
  message(FATAL_ERROR "trace has only ${event_count} events; sweep should "
                      "produce far more")
endif()

# Walk the events (capped: string(JSON) is slow) checking per-track duration
# nesting and timestamp monotonicity. Track state is kept in per-tid
# variables: depth_<tid> and last_ts_<tid>.
set(check_cap 800)
if(event_count LESS check_cap)
  set(check_cap ${event_count})
endif()
math(EXPR check_last "${check_cap} - 1")
set(seen_tids "")
foreach(i RANGE ${check_last})
  string(JSON ph GET "${trace}" "traceEvents" ${i} "ph")
  if(ph STREQUAL "M")
    continue()
  endif()
  string(JSON tid GET "${trace}" "traceEvents" ${i} "tid")
  string(JSON ts GET "${trace}" "traceEvents" ${i} "ts")
  if(NOT ts MATCHES "^[0-9]+$")
    message(FATAL_ERROR "event ${i} has non-integer ts '${ts}'")
  endif()
  if(NOT tid IN_LIST seen_tids)
    list(APPEND seen_tids ${tid})
    set(depth_${tid} 0)
    set(last_ts_${tid} 0)
  endif()
  if(ts LESS last_ts_${tid})
    message(FATAL_ERROR "event ${i}: ts ${ts} regresses below "
                        "${last_ts_${tid}} on tid ${tid}")
  endif()
  set(last_ts_${tid} ${ts})
  if(ph STREQUAL "B")
    math(EXPR depth_${tid} "${depth_${tid}} + 1")
  elseif(ph STREQUAL "E")
    math(EXPR depth_${tid} "${depth_${tid}} - 1")
    if(depth_${tid} LESS 0)
      message(FATAL_ERROR "event ${i}: 'E' without matching 'B' on tid ${tid}")
    endif()
  endif()
endforeach()

# Global pairing balance over the whole file (regex is cheap where the
# element-wise walk is not). The drain synthesizes closing events, so counts
# must match exactly.
string(REGEX MATCHALL "\"ph\":\"B\"" begins "${trace}")
string(REGEX MATCHALL "\"ph\":\"E\"" ends "${trace}")
list(LENGTH begins begin_count)
list(LENGTH ends end_count)
if(NOT begin_count EQUAL end_count)
  message(FATAL_ERROR "unbalanced duration events: ${begin_count} B vs "
                      "${end_count} E")
endif()
string(REGEX MATCHALL "\"ph\":\"b\"" async_begins "${trace}")
string(REGEX MATCHALL "\"ph\":\"e\"" async_ends "${trace}")
list(LENGTH async_begins async_begin_count)
list(LENGTH async_ends async_end_count)
if(NOT async_begin_count EQUAL async_end_count)
  message(FATAL_ERROR "unbalanced async events: ${async_begin_count} b vs "
                      "${async_end_count} e")
endif()
if(async_begin_count LESS 2)
  message(FATAL_ERROR "expected >= 2 async job lifecycles (one per sweep "
                      "scenario), got ${async_begin_count}")
endif()

# The worker threads must have named tracks.
if(NOT trace MATCHES "worker-0")
  message(FATAL_ERROR "trace has no 'worker-0' thread-name metadata")
endif()

list(LENGTH seen_tids tid_count)
message(STATUS "trace OK: ${event_count} events, ${tid_count}+ thread tracks, "
               "${begin_count} B/E pairs, ${async_begin_count} job lifecycles")

# ---- metrics.prom ---------------------------------------------------------

file(READ "${telemetry_dir}/metrics.prom" prom)

foreach(needle
        "# TYPE etransform_farm_queue_depth gauge"
        "# TYPE etransform_farm_jobs_inflight gauge"
        "# TYPE etransform_farm_jobs_submitted_total counter"
        "# TYPE etransform_farm_jobs_cancelled_total counter"
        "# TYPE etransform_farm_job_wait_ms histogram"
        "# TYPE etransform_farm_job_solve_ms histogram"
        "etransform_farm_job_solve_ms_bucket{le=\"+Inf\"}"
        "etransform_farm_job_wait_ms_sum"
        "etransform_farm_job_solve_ms_count")
  string(FIND "${prom}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "metrics.prom is missing: ${needle}")
  endif()
endforeach()

# Line-level exposition lint: every line is a comment or `name{labels} value`.
string(REPLACE "\n" ";" prom_lines "${prom}")
set(sample_count 0)
foreach(line IN LISTS prom_lines)
  if(line STREQUAL "")
    continue()
  endif()
  if(line MATCHES "^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ")
    continue()
  endif()
  if(NOT line MATCHES "^[a-zA-Z_:][a-zA-Z0-9_:]*(\\{le=\"[^\"]+\"\\})? -?[0-9][0-9.eE+-]*$")
    message(FATAL_ERROR "metrics.prom line fails format lint: ${line}")
  endif()
  math(EXPR sample_count "${sample_count} + 1")
endforeach()
if(sample_count LESS 10)
  message(FATAL_ERROR "metrics.prom has only ${sample_count} samples")
endif()

# Both sweep scenarios must be accounted as terminal.
string(REGEX MATCH "etransform_farm_jobs_submitted_total ([0-9.]+)" _ "${prom}")
if(NOT CMAKE_MATCH_1 GREATER_EQUAL 2)
  message(FATAL_ERROR "submitted counter is '${CMAKE_MATCH_1}', want >= 2")
endif()

message(STATUS "metrics.prom OK: ${sample_count} samples")

# ---- stats.json -----------------------------------------------------------

file(READ "${telemetry_dir}/stats.json" sweep_stats)
string(JSON scenario_count LENGTH "${sweep_stats}")
if(scenario_count LESS 2)
  message(FATAL_ERROR "stats.json has ${scenario_count} entries, want 2 "
                      "(one per sweep scenario)")
endif()
string(JSON first_name GET "${sweep_stats}" 0 "name")
message(STATUS "stats.json OK: ${scenario_count} scenarios, root '${first_name}'")

# ---- exact engine: cut & branching telemetry ------------------------------
# A second, single-scenario run on the exact engine must surface the MILP
# cut-pipeline spans and the pseudocost/strong-branching metrics introduced
# with the cut-and-branch subsystem.
set(exact_dir "${WORK_DIR}/run_exact")
execute_process(
  COMMAND "${CLI}" plan "${instance}" --engine exact --time-limit 2000
          --telemetry-dir "${exact_dir}"
  RESULT_VARIABLE exact_result
  OUTPUT_QUIET ERROR_QUIET)
if(NOT exact_result EQUAL 0)
  message(FATAL_ERROR "etransform_cli plan --engine exact --telemetry-dir "
                      "failed (${exact_result})")
endif()

file(READ "${exact_dir}/trace.json" exact_trace)
if(NOT exact_trace MATCHES "\"name\":\"cuts\\.round\"")
  message(FATAL_ERROR "exact-engine trace.json has no 'cuts.round' span")
endif()

file(READ "${exact_dir}/metrics.prom" exact_prom)
foreach(needle
        "# TYPE etransform_milp_cut_rounds_total counter"
        "# TYPE etransform_milp_strong_branch_probes_total counter"
        "# TYPE etransform_milp_pseudocost_init_degradation histogram"
        "etransform_milp_pseudocost_init_degradation_bucket{le=\"+Inf\"}")
  string(FIND "${exact_prom}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "exact-engine metrics.prom is missing: ${needle}")
  endif()
endforeach()

message(STATUS "exact-engine telemetry OK: cut spans and MILP counters present")
