# Compares a fresh bench_solver_perf JSON run against the committed baseline
# (BENCH_solver.json at the repo root) and fails when the branch-and-bound
# node count or total LP iteration count of any matching BM_BranchAndBound*
# configuration — the assignment MILPs and the deterministic time-expanded
# multi-period solves — regresses by more than 20%. Both counters are deterministic
# (unlike timings), so a tight multiplicative ceiling is safe in CI; the
# lp_iters ceiling is what keeps the dual-simplex reoptimization savings
# locked in. Driven by the bench-smoke job:
#   cmake -DCURRENT=<fresh.json> -DBASELINE=<BENCH_solver.json> \
#         -P check_bench_regression.cmake
#
# When the machine that produced CURRENT has at least 8 CPUs, the parallel
# tree search's 8-thread run of BM_BranchAndBoundAssignmentThreads must also
# clear a minimum real-time speedup over its 1-thread run (SPEEDUP_MIN,
# default 4x). On smaller runners the fence is reported but not enforced —
# a 1-CPU container cannot express an 8-way speedup.
# Requires CMake >= 3.19 for string(JSON).
cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED CURRENT OR NOT DEFINED BASELINE)
  message(FATAL_ERROR "usage: cmake -DCURRENT=<fresh.json> "
                      "-DBASELINE=<baseline.json> -P check_bench_regression.cmake")
endif()

file(READ "${CURRENT}" current_json)
file(READ "${BASELINE}" baseline_json)

# google-benchmark writes counters in scientific notation
# ("7.6400000000000000e+02"). math(EXPR) is integer-only, so normalize a
# whole-valued counter to a plain integer: split mantissa/exponent, trim the
# trailing zeros of the fraction, and shift the decimal point.
function(parse_counter value out)
  if(value MATCHES "^([0-9]+)(\\.([0-9]*))?([eE]\\+?(-?[0-9]+))?$")
    set(whole "${CMAKE_MATCH_1}")
    set(frac "${CMAKE_MATCH_3}")
    set(exponent "${CMAKE_MATCH_5}")
    if(exponent STREQUAL "")
      set(exponent 0)
    endif()
    string(REGEX REPLACE "0+$" "" frac "${frac}")
    string(LENGTH "${frac}" frac_len)
    math(EXPR shift "${exponent} - ${frac_len}")
    if(shift LESS 0)
      message(FATAL_ERROR "counter '${value}' is not a whole number")
    endif()
    string(REPEAT "0" ${shift} zeros)
    set(digits "${whole}${frac}${zeros}")
    math(EXPR digits "${digits} + 0")  # canonicalize (drops leading zeros)
    set(${out} "${digits}" PARENT_SCOPE)
  else()
    message(FATAL_ERROR "unparseable counter value '${value}'")
  endif()
endfunction()

# Index the baseline: benchmark name -> {node, lp_iters} counts.
string(JSON baseline_count LENGTH "${baseline_json}" "benchmarks")
math(EXPR baseline_last "${baseline_count} - 1")
foreach(i RANGE ${baseline_last})
  string(JSON name GET "${baseline_json}" "benchmarks" ${i} "name")
  string(MD5 key "${name}")
  foreach(counter nodes lp_iters)
    string(JSON value ERROR_VARIABLE json_err GET "${baseline_json}"
           "benchmarks" ${i} "${counter}")
    if(json_err STREQUAL "NOTFOUND")
      parse_counter("${value}" value_int)
      set(baseline_${counter}_${key} "${value_int}")
    endif()
  endforeach()
endforeach()

string(JSON current_count LENGTH "${current_json}" "benchmarks")
math(EXPR current_last "${current_count} - 1")
set(checked 0)
foreach(i RANGE ${current_last})
  string(JSON name GET "${current_json}" "benchmarks" ${i} "name")
  if(NOT name MATCHES "^BM_BranchAndBound")
    continue()
  endif()
  string(JSON nodes ERROR_VARIABLE json_err GET "${current_json}"
         "benchmarks" ${i} "nodes")
  if(NOT json_err STREQUAL "NOTFOUND")
    continue()
  endif()
  string(MD5 key "${name}")
  if(NOT DEFINED baseline_nodes_${key})
    message(STATUS "no baseline for ${name}; skipping (new configuration)")
    continue()
  endif()
  foreach(counter nodes lp_iters)
    if(NOT DEFINED baseline_${counter}_${key})
      continue()
    endif()
    string(JSON value ERROR_VARIABLE json_err GET "${current_json}"
           "benchmarks" ${i} "${counter}")
    if(NOT json_err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "${name} lost its '${counter}' counter")
    endif()
    parse_counter("${value}" current_value)
    math(EXPR allowed "${baseline_${counter}_${key}} * 12 / 10")
    if(current_value GREATER allowed)
      message(FATAL_ERROR
              "${counter} regression in ${name}: ${current_value} vs "
              "baseline ${baseline_${counter}_${key}} (ceiling ${allowed}, "
              "+20%). If the search legitimately changed, regenerate "
              "BENCH_solver.json.")
    endif()
    message(STATUS "${name}: ${current_value} ${counter} "
                   "(baseline ${baseline_${counter}_${key}}, "
                   "ceiling ${allowed})")
  endforeach()
  math(EXPR checked "${checked} + 1")
endforeach()

if(checked EQUAL 0)
  message(FATAL_ERROR "no branch-and-bound node counters matched the "
                      "baseline; name scheme drift?")
endif()

message(STATUS "bench regression check OK: ${checked} configurations within "
               "+20% of committed node and lp_iters counts")

# ---------------------------------------------------------------------------
# Parallel tree-search speedup fence.

if(NOT DEFINED SPEEDUP_MIN)
  set(SPEEDUP_MIN 4)
endif()

# Parses a google-benchmark float ("2.6798632743279554e+05") into integer
# nanoseconds, truncating sub-nanosecond digits. Unlike parse_counter this
# accepts negative decimal shifts, which timing values always have.
function(parse_time_ns value out)
  if(NOT value MATCHES "^([0-9]+)(\\.([0-9]*))?([eE]\\+?(-?[0-9]+))?$")
    message(FATAL_ERROR "unparseable time value '${value}'")
  endif()
  set(whole "${CMAKE_MATCH_1}")
  set(frac "${CMAKE_MATCH_3}")
  set(exponent "${CMAKE_MATCH_5}")
  if(exponent STREQUAL "")
    set(exponent 0)
  endif()
  string(LENGTH "${frac}" frac_len)
  set(digits "${whole}${frac}")
  math(EXPR shift "${exponent} - ${frac_len}")
  if(shift GREATER_EQUAL 0)
    string(REPEAT "0" ${shift} zeros)
    set(digits "${digits}${zeros}")
  else()
    math(EXPR drop "0 - ${shift}")
    string(LENGTH "${digits}" digits_len)
    if(drop GREATER_EQUAL digits_len)
      set(digits 0)
    else()
      math(EXPR keep "${digits_len} - ${drop}")
      string(SUBSTRING "${digits}" 0 ${keep} digits)
    endif()
  endif()
  math(EXPR digits "${digits} + 0")  # canonicalize (drops leading zeros)
  set(${out} "${digits}" PARENT_SCOPE)
endfunction()

string(JSON num_cpus ERROR_VARIABLE cpus_err GET "${current_json}"
       "context" "num_cpus")
if(NOT cpus_err STREQUAL "NOTFOUND")
  set(num_cpus 0)
endif()

set(threads_rt_1 "")
set(threads_rt_8 "")
foreach(i RANGE ${current_last})
  string(JSON name GET "${current_json}" "benchmarks" ${i} "name")
  if(NOT name MATCHES "^BM_BranchAndBoundAssignmentThreads/")
    continue()
  endif()
  string(JSON rt GET "${current_json}" "benchmarks" ${i} "real_time")
  if(name MATCHES "threads:1(/|$)")
    parse_time_ns("${rt}" threads_rt_1)
  elseif(name MATCHES "threads:8(/|$)")
    parse_time_ns("${rt}" threads_rt_8)
  endif()
endforeach()

if(threads_rt_1 STREQUAL "" OR threads_rt_8 STREQUAL "")
  message(STATUS "speedup fence: thread-scaling benchmarks absent from this "
                 "run; skipping")
elseif(threads_rt_8 EQUAL 0)
  message(FATAL_ERROR "speedup fence: 8-thread real_time parsed as 0ns")
else()
  # Integer-only speedup in hundredths (e.g. 412 = 4.12x).
  math(EXPR speedup_x100 "${threads_rt_1} * 100 / ${threads_rt_8}")
  math(EXPR speedup_whole "${speedup_x100} / 100")
  math(EXPR speedup_frac "${speedup_x100} % 100")
  string(LENGTH "${speedup_frac}" frac_width)
  if(frac_width EQUAL 1)
    set(speedup_frac "0${speedup_frac}")
  endif()
  math(EXPR required_x100 "${SPEEDUP_MIN} * 100")
  if(num_cpus GREATER_EQUAL 8)
    if(speedup_x100 LESS required_x100)
      message(FATAL_ERROR
              "parallel speedup regression: 8-thread tree search is "
              "${speedup_whole}.${speedup_frac}x over 1 thread "
              "(minimum ${SPEEDUP_MIN}x on this ${num_cpus}-CPU machine)")
    endif()
    message(STATUS "speedup fence OK: 8 threads = "
                   "${speedup_whole}.${speedup_frac}x over 1 thread "
                   "(minimum ${SPEEDUP_MIN}x, ${num_cpus} CPUs)")
  else()
    message(STATUS "speedup fence: 8 threads = "
                   "${speedup_whole}.${speedup_frac}x over 1 thread; not "
                   "enforced on a ${num_cpus}-CPU machine (needs >= 8)")
  endif()
endif()
