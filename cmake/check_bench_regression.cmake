# Compares a fresh bench_solver_perf JSON run against the committed baseline
# (BENCH_solver.json at the repo root) and fails when the branch-and-bound
# node count or total LP iteration count of any matching assignment-MILP
# configuration regresses by more than 20%. Both counters are deterministic
# (unlike timings), so a tight multiplicative ceiling is safe in CI; the
# lp_iters ceiling is what keeps the dual-simplex reoptimization savings
# locked in. Driven by the bench-smoke job:
#   cmake -DCURRENT=<fresh.json> -DBASELINE=<BENCH_solver.json> \
#         -P check_bench_regression.cmake
# Requires CMake >= 3.19 for string(JSON).
cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED CURRENT OR NOT DEFINED BASELINE)
  message(FATAL_ERROR "usage: cmake -DCURRENT=<fresh.json> "
                      "-DBASELINE=<baseline.json> -P check_bench_regression.cmake")
endif()

file(READ "${CURRENT}" current_json)
file(READ "${BASELINE}" baseline_json)

# google-benchmark writes counters in scientific notation
# ("7.6400000000000000e+02"). math(EXPR) is integer-only, so normalize a
# whole-valued counter to a plain integer: split mantissa/exponent, trim the
# trailing zeros of the fraction, and shift the decimal point.
function(parse_counter value out)
  if(value MATCHES "^([0-9]+)(\\.([0-9]*))?([eE]\\+?(-?[0-9]+))?$")
    set(whole "${CMAKE_MATCH_1}")
    set(frac "${CMAKE_MATCH_3}")
    set(exponent "${CMAKE_MATCH_5}")
    if(exponent STREQUAL "")
      set(exponent 0)
    endif()
    string(REGEX REPLACE "0+$" "" frac "${frac}")
    string(LENGTH "${frac}" frac_len)
    math(EXPR shift "${exponent} - ${frac_len}")
    if(shift LESS 0)
      message(FATAL_ERROR "counter '${value}' is not a whole number")
    endif()
    string(REPEAT "0" ${shift} zeros)
    set(digits "${whole}${frac}${zeros}")
    math(EXPR digits "${digits} + 0")  # canonicalize (drops leading zeros)
    set(${out} "${digits}" PARENT_SCOPE)
  else()
    message(FATAL_ERROR "unparseable counter value '${value}'")
  endif()
endfunction()

# Index the baseline: benchmark name -> {node, lp_iters} counts.
string(JSON baseline_count LENGTH "${baseline_json}" "benchmarks")
math(EXPR baseline_last "${baseline_count} - 1")
foreach(i RANGE ${baseline_last})
  string(JSON name GET "${baseline_json}" "benchmarks" ${i} "name")
  string(MD5 key "${name}")
  foreach(counter nodes lp_iters)
    string(JSON value ERROR_VARIABLE json_err GET "${baseline_json}"
           "benchmarks" ${i} "${counter}")
    if(json_err STREQUAL "NOTFOUND")
      parse_counter("${value}" value_int)
      set(baseline_${counter}_${key} "${value_int}")
    endif()
  endforeach()
endforeach()

string(JSON current_count LENGTH "${current_json}" "benchmarks")
math(EXPR current_last "${current_count} - 1")
set(checked 0)
foreach(i RANGE ${current_last})
  string(JSON name GET "${current_json}" "benchmarks" ${i} "name")
  if(NOT name MATCHES "^BM_BranchAndBound")
    continue()
  endif()
  string(JSON nodes ERROR_VARIABLE json_err GET "${current_json}"
         "benchmarks" ${i} "nodes")
  if(NOT json_err STREQUAL "NOTFOUND")
    continue()
  endif()
  string(MD5 key "${name}")
  if(NOT DEFINED baseline_nodes_${key})
    message(STATUS "no baseline for ${name}; skipping (new configuration)")
    continue()
  endif()
  foreach(counter nodes lp_iters)
    if(NOT DEFINED baseline_${counter}_${key})
      continue()
    endif()
    string(JSON value ERROR_VARIABLE json_err GET "${current_json}"
           "benchmarks" ${i} "${counter}")
    if(NOT json_err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "${name} lost its '${counter}' counter")
    endif()
    parse_counter("${value}" current_value)
    math(EXPR allowed "${baseline_${counter}_${key}} * 12 / 10")
    if(current_value GREATER allowed)
      message(FATAL_ERROR
              "${counter} regression in ${name}: ${current_value} vs "
              "baseline ${baseline_${counter}_${key}} (ceiling ${allowed}, "
              "+20%). If the search legitimately changed, regenerate "
              "BENCH_solver.json.")
    endif()
    message(STATUS "${name}: ${current_value} ${counter} "
                   "(baseline ${baseline_${counter}_${key}}, "
                   "ceiling ${allowed})")
  endforeach()
  math(EXPR checked "${checked} + 1")
endforeach()

if(checked EQUAL 0)
  message(FATAL_ERROR "no branch-and-bound node counters matched the "
                      "baseline; name scheme drift?")
endif()

message(STATUS "bench regression check OK: ${checked} configurations within "
               "+20% of committed node and lp_iters counts")
