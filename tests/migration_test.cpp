// Tests for the phased migration scheduler.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "planner/etransform_planner.h"
#include "planner/migration.h"

namespace etransform {
namespace {

std::pair<ConsolidationInstance, Plan> planned_instance(std::uint64_t seed,
                                                        bool dr = false) {
  Rng rng(seed);
  auto instance = make_random_instance(rng, 12, 4, 2);
  const CostModel model(instance);
  PlannerOptions options;
  options.enable_dr = dr;
  options.engine = PlannerOptions::Engine::kHeuristic;
  const EtransformPlanner planner(options);
  SolveContext ctx;
  return {std::move(instance), planner.plan(PlanInput(model), ctx).plan};
}

TEST(Migration, UnlimitedBudgetYieldsOneWave) {
  const auto [instance, plan] = planned_instance(1);
  const MigrationSchedule schedule = schedule_migration(instance, plan);
  EXPECT_EQ(schedule.wave_count(), 1);
  EXPECT_TRUE(check_schedule(instance, plan, {}, schedule).empty());
}

TEST(Migration, MoveLimitBatchesWaves) {
  const auto [instance, plan] = planned_instance(2);
  MigrationLimits limits;
  limits.max_moves = 5;
  const MigrationSchedule schedule =
      schedule_migration(instance, plan, limits);
  EXPECT_EQ(schedule.wave_count(), 3);  // ceil(12 / 5)
  EXPECT_EQ(schedule.lower_bound_waves, 3);
  EXPECT_TRUE(check_schedule(instance, plan, limits, schedule).empty());
}

TEST(Migration, WanBudgetRespectedAndNearLowerBound) {
  const auto [instance, plan] = planned_instance(3);
  double total = 0.0;
  double biggest = 0.0;
  for (const auto& group : instance.groups) {
    total += group.monthly_data_megabits;
    biggest = std::max(biggest, group.monthly_data_megabits);
  }
  MigrationLimits limits;
  limits.wan_budget_megabits = std::max(total / 4.0, biggest);
  const MigrationSchedule schedule =
      schedule_migration(instance, plan, limits);
  EXPECT_TRUE(check_schedule(instance, plan, limits, schedule).empty());
  // First-fit-decreasing stays within a small factor of the bound.
  EXPECT_LE(schedule.wave_count(), schedule.lower_bound_waves + 2);
}

TEST(Migration, SeparatedGroupsNeverShareAWave) {
  auto [instance, plan] = planned_instance(4);
  instance.separations.push_back({0, 1});
  instance.separations.push_back({2, 3});
  const MigrationSchedule schedule = schedule_migration(instance, plan);
  EXPECT_TRUE(check_schedule(instance, plan, {}, schedule).empty());
  EXPECT_GE(schedule.wave_count(), 2);  // partners forced apart
}

TEST(Migration, DrPoolsProvisionedBeforeMoves) {
  const auto [instance, plan] = planned_instance(5, /*dr=*/true);
  MigrationLimits limits;
  limits.max_moves = 3;
  const MigrationSchedule schedule =
      schedule_migration(instance, plan, limits);
  EXPECT_TRUE(check_schedule(instance, plan, limits, schedule).empty());
  // Some wave provisions at least one backup site.
  bool any = false;
  for (const auto& wave : schedule.waves) {
    any |= !wave.provisioned_sites.empty();
  }
  EXPECT_TRUE(any);
}

TEST(Migration, RejectsImpossibleBudgets) {
  const auto [instance, plan] = planned_instance(6);
  MigrationLimits limits;
  limits.wan_budget_megabits = 0.5;  // below any single group's data
  EXPECT_THROW((void)schedule_migration(instance, plan, limits),
               InvalidInputError);
  MigrationLimits negative;
  negative.max_moves = -1;
  EXPECT_THROW((void)schedule_migration(instance, plan, negative),
               InvalidInputError);
}

TEST(Migration, CheckScheduleFlagsTampering) {
  const auto [instance, plan] = planned_instance(7);
  MigrationLimits limits;
  limits.max_moves = 4;
  MigrationSchedule schedule = schedule_migration(instance, plan, limits);
  ASSERT_TRUE(check_schedule(instance, plan, limits, schedule).empty());
  // Drop one group: flagged as never scheduled.
  MigrationSchedule missing = schedule;
  missing.waves[0].groups.pop_back();
  EXPECT_FALSE(check_schedule(instance, plan, limits, missing).empty());
  // Duplicate a group: flagged as scheduled twice.
  MigrationSchedule duplicated = schedule;
  duplicated.waves.back().groups.push_back(schedule.waves[0].groups[0]);
  EXPECT_FALSE(check_schedule(instance, plan, limits, duplicated).empty());
}

TEST(Migration, WaveCountMonotoneInMoveLimit) {
  const auto [instance, plan] = planned_instance(9);
  int previous = 1 << 30;
  for (const int limit : {2, 4, 8}) {
    MigrationLimits limits;
    limits.max_moves = limit;
    const MigrationSchedule schedule =
        schedule_migration(instance, plan, limits);
    EXPECT_LE(schedule.wave_count(), previous);
    previous = schedule.wave_count();
  }
}

class MigrationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MigrationPropertyTest, SchedulesAreAlwaysValid) {
  Rng rng(GetParam() + 40000);
  auto instance = make_random_instance(
      rng, 8 + static_cast<int>(GetParam() % 8), 4, 2);
  if (GetParam() % 2 == 0) instance.separations.push_back({0, 1});
  const CostModel model(instance);
  PlannerOptions options;
  options.engine = PlannerOptions::Engine::kHeuristic;
  options.enable_dr = (GetParam() % 3 == 0);
  SolveContext ctx;
  const Plan plan = EtransformPlanner(options).plan(PlanInput(model), ctx).plan;
  MigrationLimits limits;
  double biggest = 0.0;
  for (const auto& group : instance.groups) {
    biggest = std::max(biggest, group.monthly_data_megabits);
  }
  limits.wan_budget_megabits = biggest * (1.0 + rng.uniform());
  limits.max_moves = 1 + static_cast<int>(rng.uniform_int(1, 4));
  const MigrationSchedule schedule =
      schedule_migration(instance, plan, limits);
  EXPECT_TRUE(check_schedule(instance, plan, limits, schedule).empty())
      << "seed " << GetParam();
  EXPECT_GE(schedule.wave_count(), schedule.lower_bound_waves);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace etransform
