// Tests for the local-search improver and the Lagrangian lower bound.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.h"
#include "common/error.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "planner/lagrangian.h"
#include "planner/local_search.h"

namespace etransform {
namespace {

TEST(LocalSearch, NeverMakesAPlanWorseOrInfeasible) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const auto instance = make_random_instance(rng, 12, 4, 3);
    const CostModel model(instance);
    Plan plan = plan_manual(model, false);
    const Money before = plan.cost.total();
    improve_plan(model, plan);
    EXPECT_LE(plan.cost.total(), before + 1e-6) << "seed " << seed;
    EXPECT_TRUE(check_plan(instance, plan).empty()) << "seed " << seed;
  }
}

TEST(LocalSearch, FixesObviouslyBadPlacement) {
  // Everything starts at the expensive site; local search must relocate.
  ConsolidationInstance instance;
  instance.locations = {UserLocation{"l", {0, 0}}};
  for (int i = 0; i < 5; ++i) {
    ApplicationGroup group;
    group.name = "g" + std::to_string(i);
    group.servers = 2;
    group.users_per_location = {1.0};
    instance.groups.push_back(group);
  }
  for (int j = 0; j < 2; ++j) {
    DataCenterSite site;
    site.name = "dc" + std::to_string(j);
    site.capacity_servers = 20;
    site.space_cost_per_server = StepSchedule::flat(j == 0 ? 200.0 : 10.0);
    instance.sites.push_back(site);
    instance.latency_ms.push_back({5.0});
  }
  const CostModel model(instance);
  Plan plan;
  plan.primary.assign(5, 0);
  model.price_plan(plan);
  EXPECT_TRUE(improve_plan(model, plan));
  for (const int j : plan.primary) EXPECT_EQ(j, 1);
}

TEST(LocalSearch, SwapsEscapeCapacityDeadlock) {
  // Two sites of capacity 4; a 3-server group sits where a 4-server group
  // wants to be; single moves cannot fix it, a swap can.
  ConsolidationInstance instance;
  instance.locations = {UserLocation{"near", {0, 0}},
                        UserLocation{"far", {100, 0}}};
  ApplicationGroup big;
  big.name = "big";
  big.servers = 4;
  big.users_per_location = {50.0, 0.0};
  big.latency_penalty = LatencyPenaltyFunction::single_step(10.0, 100.0);
  ApplicationGroup small;
  small.name = "small";
  small.servers = 3;
  small.users_per_location = {0.0, 50.0};
  small.latency_penalty = LatencyPenaltyFunction::single_step(10.0, 100.0);
  instance.groups = {big, small};
  for (int j = 0; j < 2; ++j) {
    DataCenterSite site;
    site.name = j == 0 ? "near-dc" : "far-dc";
    site.capacity_servers = 4;
    site.space_cost_per_server = StepSchedule::flat(10.0);
    instance.sites.push_back(site);
  }
  instance.latency_ms = {{5.0, 30.0}, {30.0, 5.0}};
  const CostModel model(instance);
  Plan plan;
  plan.primary = {1, 0};  // both groups far from their users
  model.price_plan(plan);
  EXPECT_GT(plan.latency_violations, 0);
  EXPECT_TRUE(improve_plan(model, plan));
  EXPECT_EQ(plan.primary[0], 0);
  EXPECT_EQ(plan.primary[1], 1);
  EXPECT_EQ(plan.latency_violations, 0);
}

TEST(LocalSearch, ImprovesDrPlansIncludingSharing) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 20);
    const auto instance = make_random_instance(rng, 10, 4, 2);
    const CostModel model(instance);
    Plan plan = plan_greedy(model, true);
    // Normalize the greedy dedicated counts to the sharing law first.
    plan.backup_servers = required_backup_servers(instance, plan.primary,
                                                  plan.secondary);
    model.price_plan(plan);
    const Money before = plan.cost.total();
    improve_plan(model, plan);
    EXPECT_LE(plan.cost.total(), before + 1e-6);
    EXPECT_TRUE(check_plan(instance, plan).empty()) << "seed " << seed;
    // The improved plan still carries exactly the sharing-law counts.
    EXPECT_EQ(plan.backup_servers,
              required_backup_servers(instance, plan.primary, plan.secondary));
  }
}

TEST(LocalSearch, IncrementalCostMatchesReprice) {
  // After improvement, price_plan from scratch must agree with the plan's
  // stored cost (the incremental bookkeeping has no drift).
  Rng rng(33);
  const auto instance = make_random_instance(rng, 12, 4, 2);
  const CostModel model(instance);
  Plan plan = plan_greedy(model, true);
  plan.backup_servers =
      required_backup_servers(instance, plan.primary, plan.secondary);
  model.price_plan(plan);
  improve_plan(model, plan);
  Plan repriced = plan;
  model.price_plan(repriced);
  EXPECT_NEAR(repriced.cost.total(), plan.cost.total(),
              1e-7 * std::max(1.0, plan.cost.total()));
}

TEST(LocalSearch, RespectsPinsAndSeparations) {
  Rng rng(44);
  auto instance = make_random_instance(rng, 8, 4, 2);
  instance.groups[0].pinned_site = 2;
  instance.separations.push_back({1, 2});
  const CostModel model(instance);
  Plan plan;
  plan.primary.assign(static_cast<std::size_t>(instance.num_groups()), 2);
  plan.primary[1] = 0;  // keep the separated pair apart initially
  model.price_plan(plan);
  ASSERT_TRUE(check_plan(instance, plan).empty());
  improve_plan(model, plan);
  EXPECT_EQ(plan.primary[0], 2);
  EXPECT_NE(plan.primary[1], plan.primary[2]);
  EXPECT_TRUE(check_plan(instance, plan).empty());
}

TEST(LocalSearch, RejectsMismatchedPlan) {
  Rng rng(55);
  const auto instance = make_random_instance(rng, 5, 3, 2);
  const CostModel model(instance);
  Plan plan;
  plan.primary = {0, 1};
  EXPECT_THROW(improve_plan(model, plan), InvalidInputError);
}

TEST(Lagrangian, BoundsEveryFeasiblePlanFromBelow) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed + 60);
    const auto instance = make_random_instance(rng, 10, 3, 2);
    const CostModel model(instance);
    const auto bound = lagrangian_lower_bound(model);
    const Plan greedy = plan_greedy(model, false);
    EXPECT_LE(bound.lower_bound, greedy.cost.total() + 1e-6)
        << "seed " << seed;
  }
}

TEST(Lagrangian, TightensWithBindingCapacity) {
  // When capacity binds, the multipliers must lift the bound above the
  // naive cheapest-site relaxation.
  ConsolidationInstance instance;
  instance.locations = {UserLocation{"l", {0, 0}}};
  for (int i = 0; i < 4; ++i) {
    ApplicationGroup group;
    group.name = "g" + std::to_string(i);
    group.servers = 2;
    group.users_per_location = {1.0};
    instance.groups.push_back(group);
  }
  DataCenterSite cheap;
  cheap.name = "cheap";
  cheap.capacity_servers = 4;  // only half the estate fits
  cheap.space_cost_per_server = StepSchedule::flat(10.0);
  DataCenterSite pricey = cheap;
  pricey.name = "pricey";
  pricey.capacity_servers = 100;
  pricey.space_cost_per_server = StepSchedule::flat(100.0);
  instance.sites = {cheap, pricey};
  instance.latency_ms = {{5.0}, {5.0}};
  const CostModel model(instance);
  const auto bound = lagrangian_lower_bound(model);
  // Naive relaxation: all four groups at the cheap site = 8 * 10 = 80.
  // True optimum: 4 servers cheap + 4 pricey = 40 + 400 = 440.
  EXPECT_GT(bound.lower_bound, 80.0 + 1.0);
  EXPECT_LE(bound.lower_bound, 440.0 + 1e-6);
}

}  // namespace
}  // namespace etransform
