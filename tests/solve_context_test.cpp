// Tests for the SolveContext observability & control layer: deadlines
// interrupting the simplex mid-solve, cancellation from event callbacks and
// from a second thread, event ordering and stats counters, and JSON emission.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/json.h"
#include "common/solve_context.h"
#include "common/stopwatch.h"
#include "datagen/generators.h"
#include "lp/model.h"
#include "lp/presolve.h"
#include "lp/lp_engine.h"
#include "milp/branch_and_bound.h"
#include "milp/brute_force.h"
#include "planner/etransform_planner.h"

namespace etransform {
namespace {

using lp::Model;
using lp::Relation;
using lp::Sense;
using lp::Term;

/// A dense random LP large enough that one solve takes well over a
/// millisecond (the basis is rows x rows and refactorizes every 128 pivots).
Model dense_lp(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<Term> objective;
  for (int j = 0; j < cols; ++j) {
    objective.push_back({m.add_continuous("x" + std::to_string(j), 0.0, 10.0),
                         rng.uniform(-5.0, 5.0)});
  }
  m.set_objective(Sense::kMinimize, objective);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < cols; ++j) terms.push_back({j, rng.uniform(0.1, 2.0)});
    m.add_constraint("r" + std::to_string(i), terms, Relation::kGreaterEqual,
                     rng.uniform(5.0, 50.0));
  }
  return m;
}

/// A knapsack MILP whose branch-and-bound tree has plenty of nodes.
Model hard_knapsack(int items, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<Term> objective;
  std::vector<Term> cap;
  double total = 0.0;
  for (int i = 0; i < items; ++i) {
    const int b = m.add_binary("b" + std::to_string(i));
    objective.push_back({b, rng.uniform(10.0, 20.0)});
    const double w = rng.uniform(5.0, 10.0);
    total += w;
    cap.push_back({b, w});
  }
  m.set_objective(Sense::kMaximize, objective);
  m.add_constraint("cap", cap, Relation::kLessEqual, total * 0.5);
  return m;
}

// ---- deadline & cancellation plumbing ------------------------------------

TEST(SolveContext, DefaultsAreUnlimited) {
  SolveContext ctx;
  EXPECT_FALSE(ctx.deadline().expired());
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_FALSE(ctx.should_stop());
  EXPECT_EQ(ctx.deadline().remaining_ms(),
            std::numeric_limits<double>::infinity());
}

TEST(SolveContext, CancelTripsShouldStop) {
  SolveContext ctx;
  ctx.request_cancel();
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_TRUE(ctx.should_stop());
}

TEST(SolveContext, ExpiredDeadlineTripsShouldStop) {
  SolveContext ctx;
  ctx.set_time_limit_ms(0.0);
  EXPECT_TRUE(ctx.deadline().expired());
  EXPECT_TRUE(ctx.should_stop());
}

TEST(Deadline, EarliestPicksTheSoonerOfTwo) {
  const Deadline never = Deadline::unlimited();
  const Deadline soon = Deadline::after_ms(0.0);
  EXPECT_TRUE(Deadline::earliest(never, soon).expired());
  EXPECT_TRUE(Deadline::earliest(soon, never).expired());
  EXPECT_FALSE(Deadline::earliest(never, never).expired());
}

TEST(DeadlineGuard, TightensThenRestores) {
  SolveContext ctx;
  {
    const DeadlineGuard guard(ctx, Deadline::after_ms(0.0));
    EXPECT_TRUE(ctx.should_stop());
  }
  EXPECT_FALSE(ctx.should_stop());  // caller's unlimited deadline is back
}

// ---- simplex under deadline / cancellation -------------------------------

TEST(SolveContext, DeadlineInterruptsSimplexMidSolve) {
  const Model m = dense_lp(150, 300, 7);
  const lp::LpEngine solver;

  // Unlimited solve establishes how much work the model takes.
  SolveContext free_ctx;
  const auto full = solver.solve(m, free_ctx);
  ASSERT_EQ(full.status, lp::SolveStatus::kOptimal);
  ASSERT_GT(full.iterations, 0);

  // With a ~2 ms budget the pivot loop must notice the expiry at one of its
  // refactorization-interval polls and return kTimeLimit with valid partial
  // stats (never hang or report optimal after the deadline).
  SolveContext ctx;
  ctx.set_time_limit_ms(2.0);
  const auto limited = solver.solve(m, ctx);
  if (limited.status == lp::SolveStatus::kTimeLimit) {
    EXPECT_LE(limited.iterations, full.iterations);
    const SolveStats* simplex = ctx.stats().find("simplex");
    ASSERT_NE(simplex, nullptr);
    EXPECT_EQ(simplex->metric("pivots"), limited.iterations);
  } else {
    // A very fast machine may finish inside the budget; that is also legal.
    EXPECT_EQ(limited.status, lp::SolveStatus::kOptimal);
  }
}

TEST(SolveContext, PreExpiredDeadlineStopsSimplexAtFirstPoll) {
  const Model m = dense_lp(60, 120, 11);
  SolveContext ctx;
  ctx.set_time_limit_ms(0.0);
  const auto s = lp::LpEngine().solve(m, ctx);
  EXPECT_EQ(s.status, lp::SolveStatus::kTimeLimit);
  // The loop polls on entry, so not even one refactor interval of pivots.
  EXPECT_LT(s.iterations, 128);
}

TEST(SolveContext, CancellationBeatsDeadlineInSimplexStatus) {
  const Model m = dense_lp(60, 120, 13);
  SolveContext ctx;
  ctx.set_time_limit_ms(0.0);
  ctx.request_cancel();  // both tripped: cancellation wins the status race
  const auto s = lp::LpEngine().solve(m, ctx);
  EXPECT_EQ(s.status, lp::SolveStatus::kCancelled);
}

// ---- branch-and-bound control --------------------------------------------

TEST(SolveContext, CancellationFromNodeCallbackStopsBranchAndBound) {
  const Model m = hard_knapsack(26, 3);
  SolveContext ctx;
  std::atomic<int> nodes_seen{0};
  ctx.events.on_node = [&](const NodeEvent& event) {
    (void)event;
    if (++nodes_seen >= 5) ctx.request_cancel();
  };
  const auto s = milp::BranchAndBoundSolver().solve(m, ctx);
  EXPECT_EQ(s.status, milp::MilpStatus::kCancelled);
  EXPECT_GE(nodes_seen.load(), 5);
  // Cancellation is polled per node and inside node LPs: the tree must stop
  // promptly, not run to its natural end (which takes hundreds of nodes).
  EXPECT_LT(s.nodes, 64);
}

TEST(SolveContext, MilpTimeLimitRestoresCallerDeadline) {
  const Model m = hard_knapsack(30, 5);
  milp::SolverOptions options;
  options.search.time_limit_ms = 1;
  options.search.max_nodes = 1 << 30;
  SolveContext ctx;
  const auto s = milp::BranchAndBoundSolver(options).solve(m, ctx);
  EXPECT_TRUE(s.status == milp::MilpStatus::kTimeLimit ||
              s.status == milp::MilpStatus::kOptimal);
  EXPECT_FALSE(ctx.should_stop()) << "option deadline leaked into context";
}

// ---- events & stats ------------------------------------------------------

TEST(SolveContext, EventsFireInOrderWithConsistentCounters) {
  const Model m = hard_knapsack(14, 11);
  SolveContext ctx;
  int phases = 0;
  int nodes = 0;
  int incumbents = 0;
  int bound_moves = 0;
  long long last_node = -1;
  bool incumbent_before_node_end = false;
  ctx.events.on_simplex_phase = [&](const SimplexPhaseEvent& e) {
    EXPECT_TRUE(e.phase == 1 || e.phase == 2);
    EXPECT_GE(e.pivots, 0);
    ++phases;
  };
  ctx.events.on_node = [&](const NodeEvent& e) {
    EXPECT_GE(e.node, last_node) << "nodes must be announced in order";
    last_node = e.node;
    EXPECT_GE(e.depth, 0);
    ++nodes;
  };
  ctx.events.on_incumbent = [&](const IncumbentEvent& e) {
    EXPECT_GE(e.time_ms, 0.0);
    incumbent_before_node_end = true;
    ++incumbents;
  };
  ctx.events.on_bound_improvement = [&](const BoundEvent&) { ++bound_moves; };

  const auto s = milp::BranchAndBoundSolver().solve(m, ctx);
  ASSERT_EQ(s.status, milp::MilpStatus::kOptimal);
  EXPECT_GT(phases, 0);
  EXPECT_GT(nodes, 0);
  EXPECT_GE(incumbents, 1);  // an optimal solve must announce its incumbent
  EXPECT_TRUE(incumbent_before_node_end);

  const SolveStats* bb = ctx.stats().find("branch_and_bound");
  ASSERT_NE(bb, nullptr);
  EXPECT_EQ(bb->metric("nodes"), s.nodes);
  EXPECT_EQ(bb->metric("incumbents"), incumbents);
  EXPECT_EQ(bb->metric("bound_improvements"), bound_moves);
  EXPECT_FALSE(bb->trace.empty());
  // The trace ends at the final optimal state: incumbent meets bound.
  const TracePoint& last = bb->trace.back();
  EXPECT_NEAR(last.incumbent, s.objective, 1e-6);
  // Aggregated simplex counters roll up somewhere under the B&B subtree
  // (under "root_lp"/"cuts" scopes when the root closes the gap, directly
  // under the node loop otherwise).
  EXPECT_GE(bb->deep_metric("pivots"), 1.0);
  EXPECT_EQ(bb->wall_ms >= 0.0, true);
}

TEST(SolveContext, PresolveFiresReductionEvents) {
  Model m;
  const int x = m.add_continuous("x", 3.0, 3.0);  // fixed
  const int y = m.add_continuous("y", 0.0, 10.0);
  m.set_objective(Sense::kMinimize, {{x, 2.0}, {y, 1.0}});
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 5.0);
  SolveContext ctx;
  std::vector<std::string> rules;
  ctx.events.on_presolve_reduction = [&](const PresolveReductionEvent& e) {
    rules.push_back(e.rule);
  };
  const auto result = lp::presolve(m, ctx);
  ASSERT_EQ(result.status, lp::PresolveStatus::kReduced);
  ASSERT_FALSE(rules.empty());
  EXPECT_EQ(rules.front(), "fix_variable");
  const SolveStats* presolve_stats = ctx.stats().find("presolve");
  ASSERT_NE(presolve_stats, nullptr);
  EXPECT_EQ(presolve_stats->metric("vars_removed"), result.vars_removed);
  EXPECT_EQ(presolve_stats->metric("rows_removed"), result.rows_removed);
}

TEST(SolveStats, AggregatesRepeatedScopesInsteadOfGrowing) {
  SolveContext ctx;
  for (int i = 0; i < 100; ++i) {
    SolveScope scope(ctx, "simplex");
    scope.stats().add("calls", 1.0);
  }
  ASSERT_EQ(ctx.stats().children.size(), 1u);
  EXPECT_EQ(ctx.stats().children.front().metric("calls"), 100.0);
}

TEST(SolveStats, JsonIsWellFormedAndEscapes) {
  SolveStats stats;
  stats.name = "root \"quoted\"";
  stats.wall_ms = 1.5;
  stats.add("pivots", 42.0);
  stats.add("nan_metric", std::numeric_limits<double>::quiet_NaN());
  stats.trace.push_back({0.5, 1, 10.0, 9.0});
  stats.child("child").add("k", 1.0);
  const std::string json = stats.to_json();
  EXPECT_NE(json.find("\"root \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"pivots\":42"), std::string::npos);
  EXPECT_NE(json.find("\"nan_metric\":null"), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(SolveStats, JsonRoundTripsHostileNamesThroughAValidator) {
  // Names exercising every escape class the emitter handles: quotes,
  // backslashes, newline/tab, and sub-0x20 control characters.
  const std::string hostile = "q\"uo\\te\nnew\tline\x01\x1f end";
  SolveStats stats;
  stats.name = hostile;
  stats.wall_ms = 2.0;
  stats.add("metric \"with\\escapes\"", 7.0);
  stats.child("child\nname").add("k", 3.0);

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(stats.to_json(), doc, &error)) << error;
  ASSERT_EQ(doc.kind, json::Value::Kind::kObject);
  // Decoding the emitted JSON must yield the original bytes exactly.
  const json::Value* name = doc.get("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->str, hostile);
  const json::Value* metrics = doc.get("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->get("metric \"with\\escapes\""), nullptr);
  EXPECT_EQ(metrics->get("metric \"with\\escapes\"")->num, 7.0);
  const json::Value* children = doc.get("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->arr.size(), 1u);
  EXPECT_EQ(children->arr[0].get("name")->str, "child\nname");
}

TEST(SolveStats, DeepMetricSumsOverNestedChildren) {
  SolveStats stats;
  stats.add("pivots", 1.0);
  stats.child("a").add("pivots", 10.0);
  stats.child("a").child("a1").add("pivots", 100.0);
  stats.child("b").add("pivots", 1000.0);
  EXPECT_EQ(stats.deep_metric("pivots"), 1111.0);
  // Re-fetch: child() references are invalidated by sibling insertion.
  ASSERT_NE(stats.find("a"), nullptr);
  EXPECT_EQ(stats.find("a")->deep_metric("pivots"), 110.0);
  EXPECT_EQ(stats.deep_metric("absent"), 0.0);
}

TEST(SolveStats, RenderShowsEveryNodeWithMetricsAndIndentation) {
  SolveStats stats;
  stats.name = "root";
  stats.wall_ms = 12.0;
  stats.add("calls", 2.0);
  SolveStats& child = stats.child("inner");
  child.wall_ms = 5.0;
  child.trace.push_back({1.0, 1, 2.0, 3.0});
  const std::string text = stats.render();
  EXPECT_NE(text.find("root: 12.0 ms, calls=2"), std::string::npos);
  EXPECT_NE(text.find("\n  inner: 5.0 ms"), std::string::npos)
      << "children indent two spaces under the parent:\n" << text;
  EXPECT_NE(text.find("trace=1 samples"), std::string::npos);
}

TEST(SolveStats, FindWalksDottedPaths) {
  SolveStats stats;
  stats.child("branch_and_bound").child("simplex").add("pivots", 5.0);
  const SolveStats* deep = stats.find("branch_and_bound.simplex");
  ASSERT_NE(deep, nullptr);
  EXPECT_EQ(deep->metric("pivots"), 5.0);
  // Single names still address direct children only.
  EXPECT_NE(stats.find("branch_and_bound"), nullptr);
  EXPECT_EQ(stats.find("simplex"), nullptr);
  EXPECT_EQ(stats.find("branch_and_bound.missing"), nullptr);
  EXPECT_EQ(stats.find("missing.simplex"), nullptr);
  EXPECT_EQ(stats.find(""), nullptr);
}

TEST(SolveStats, FindRejectsMalformedDottedPaths) {
  // Regression test: an empty path segment used to match the first child
  // whose name happened to be empty (or walk into the wrong node) instead
  // of failing the lookup. Every malformed spelling must return null, even
  // when an empty-named child actually exists.
  SolveStats stats;
  stats.child("a").child("b").add("n", 1.0);
  stats.child("");  // hostile: deliberately empty child name
  EXPECT_EQ(stats.find("."), nullptr);
  EXPECT_EQ(stats.find(".a"), nullptr);
  EXPECT_EQ(stats.find("a."), nullptr);
  EXPECT_EQ(stats.find("a..b"), nullptr);
  EXPECT_EQ(stats.find(".."), nullptr);
  // Well-formed paths still resolve around the hostile sibling.
  ASSERT_NE(stats.find("a.b"), nullptr);
  EXPECT_EQ(stats.find("a.b")->metric("n"), 1.0);
}

TEST(SolveScope, EarlyParentCloseFlushesOpenChildWallTime) {
  SolveContext ctx;
  auto parent = std::make_unique<SolveScope>(ctx, "parent");
  auto child = std::make_unique<SolveScope>(ctx, "child");
  SolveStats& child_stats = child->stats();
  // Closing the parent while the child is still open must flush the child
  // first (innermost-out), so no wall time is lost from the tree.
  parent->close();
  EXPECT_GE(child_stats.wall_ms, 0.0);
  EXPECT_GE(parent->stats().wall_ms, child_stats.wall_ms);
  EXPECT_EQ(&ctx.current_stats(), &ctx.stats())
      << "current node must return to the root";
  // The child's own close (via destructor) is now a no-op; wall time must
  // not be double-counted.
  const double flushed = child_stats.wall_ms;
  child.reset();
  EXPECT_EQ(child_stats.wall_ms, flushed);
  parent.reset();
}

// ---- planner integration -------------------------------------------------

TEST(SolveContext, PlannerBuildsPerStageStatsTree) {
  Rng rng(5);
  const auto instance = make_random_instance(rng, 8, 3, 2);
  const CostModel model(instance);
  PlannerOptions options;
  options.milp.search.time_limit_ms = 5000;
  SolveContext ctx;
  const PlannerReport report = EtransformPlanner(options).plan(PlanInput(model), ctx);
  EXPECT_FALSE(report.interrupted);
  EXPECT_EQ(report.stats.name, "planner");
  EXPECT_GT(report.stats.wall_ms, 0.0);
  // The exact path must record formulation, presolve, and B&B stages.
  EXPECT_NE(report.stats.find("formulation"), nullptr);
  EXPECT_NE(report.stats.find("presolve"), nullptr);
  const SolveStats* bb = report.stats.find("branch_and_bound");
  ASSERT_NE(bb, nullptr);
  EXPECT_EQ(bb->deep_metric("nodes"), report.milp_nodes);
}

TEST(SolveContext, CancelledPlannerReturnsBestEffortPlan) {
  Rng rng(6);
  const auto instance = make_random_instance(rng, 8, 3, 2);
  const CostModel model(instance);
  SolveContext ctx;
  bool cancelled_once = false;
  ctx.events.on_incumbent = [&](const IncumbentEvent&) {
    // Cancel as soon as the first feasible plan exists.
    cancelled_once = true;
    ctx.request_cancel();
  };
  const PlannerReport report = EtransformPlanner().plan(PlanInput(model), ctx);
  if (cancelled_once) {
    EXPECT_TRUE(report.interrupted);
    EXPECT_TRUE(check_plan(instance, report.plan).empty())
        << "interrupted plan must still be feasible";
  }
}

// ---- cross-thread cancellation -------------------------------------------
//
// request_cancel() is an atomic flag, so any thread may flip it while a
// solver runs on another. These tests make the interleaving deterministic by
// parking the solver thread inside an event callback until the cancelling
// thread has actually issued the request: the solver's next cooperative poll
// is then guaranteed to observe it.

TEST(CrossThreadCancel, SecondThreadCancelsSimplexMidSolve) {
  const Model m = dense_lp(80, 160, 17);
  SolveContext ctx;
  std::mutex mu;
  std::condition_variable cv;
  bool phase1_done = false;
  bool cancel_issued = false;

  // Park the solver thread after phase 1; the phase-2 pivot loop polls the
  // context on entry, so it must see the cancellation before pivoting.
  ctx.events.on_simplex_phase = [&](const SimplexPhaseEvent& e) {
    if (e.phase != 1) return;
    std::unique_lock<std::mutex> lock(mu);
    phase1_done = true;
    cv.notify_all();
    cv.wait(lock, [&] { return cancel_issued; });
  };

  std::thread canceller([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return phase1_done; });
    ctx.request_cancel();
    cancel_issued = true;
    cv.notify_all();
  });

  const auto s = lp::LpEngine().solve(m, ctx);
  canceller.join();
  EXPECT_EQ(s.status, lp::SolveStatus::kCancelled);
  EXPECT_TRUE(ctx.cancelled());
}

TEST(CrossThreadCancel, SecondThreadCancelsBranchAndBoundKeepsIncumbent) {
  const Model m = hard_knapsack(26, 9);
  SolveContext ctx;
  std::mutex mu;
  std::condition_variable cv;
  bool have_incumbent = false;
  bool cancel_issued = false;

  // Park the solver once the first incumbent exists, cancel from the second
  // thread, and require the interrupted solve to hand that incumbent back.
  ctx.events.on_incumbent = [&](const IncumbentEvent&) {
    std::unique_lock<std::mutex> lock(mu);
    have_incumbent = true;
    cv.notify_all();
    cv.wait(lock, [&] { return cancel_issued; });
  };

  std::thread canceller([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return have_incumbent; });
    ctx.request_cancel();
    cancel_issued = true;
    cv.notify_all();
  });

  const auto s = milp::BranchAndBoundSolver().solve(m, ctx);
  canceller.join();
  EXPECT_EQ(s.status, milp::MilpStatus::kCancelled);
  ASSERT_FALSE(s.values.empty()) << "cancelled solve must keep its incumbent";
  EXPECT_TRUE(m.is_feasible(s.values, 1e-6));
  EXPECT_GT(s.objective, 0.0);
  // The tree must stop promptly instead of running to its natural end.
  EXPECT_LT(s.nodes, 512);
}

}  // namespace
}  // namespace etransform
