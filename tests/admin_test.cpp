// Tests for the iterative-modification admin interface (paper Fig. 5).
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "planner/admin.h"

namespace etransform {
namespace {

ConsolidationInstance instance_for_session(std::uint64_t seed = 9) {
  Rng rng(seed);
  return make_random_instance(rng, 8, 4, 2);
}

TEST(ScenarioSession, ReplanProducesFeasiblePlan) {
  ScenarioSession session(instance_for_session());
  const PlannerReport& report = session.replan();
  EXPECT_TRUE(check_plan(session.instance(), report.plan).empty());
  EXPECT_TRUE(session.last_report().has_value());
}

TEST(ScenarioSession, PinIsHonoredAfterReplan) {
  ScenarioSession session(instance_for_session());
  session.replan();
  session.pin_group(0, 3);
  const PlannerReport& report = session.replan();
  EXPECT_EQ(report.plan.primary[0], 3);
  EXPECT_EQ(session.modification_log().size(), 1u);
}

TEST(ScenarioSession, ForbidRemovesSiteFromConsideration) {
  ScenarioSession session(instance_for_session(11));
  const int before = session.replan().plan.primary[2];
  session.forbid_site(2, before);
  const PlannerReport& report = session.replan();
  EXPECT_NE(report.plan.primary[2], before);
}

TEST(ScenarioSession, SeparationKeepsGroupsApart) {
  ScenarioSession session(instance_for_session(13));
  session.require_separation(0, 1);
  const PlannerReport& report = session.replan();
  EXPECT_NE(report.plan.primary[0], report.plan.primary[1]);
}

TEST(ScenarioSession, LatencyPenaltyChangeShiftsPlacement) {
  // Make group 0 infinitely latency-averse: it must land at its best-latency
  // site afterwards.
  ScenarioSession session(instance_for_session(17));
  session.replan();
  session.set_latency_penalty(
      0, LatencyPenaltyFunction::single_step(5.0, 1.0e7));
  const PlannerReport& report = session.replan();
  const CostModel model(session.instance());
  const int placed = report.plan.primary[0];
  for (int j = 0; j < session.instance().num_sites(); ++j) {
    EXPECT_LE(model.latency_penalty(0, placed),
              model.latency_penalty(0, j) + 1e-6);
  }
}

TEST(ScenarioSession, ModificationsInvalidateTheLastReport) {
  ScenarioSession session(instance_for_session(19));
  session.replan();
  EXPECT_TRUE(session.last_report().has_value());
  session.pin_group(1, 0);
  EXPECT_FALSE(session.last_report().has_value());
}

TEST(ScenarioSession, RejectsBadModifications) {
  ScenarioSession session(instance_for_session(23));
  EXPECT_THROW(session.pin_group(99, 0), InvalidInputError);
  EXPECT_THROW(session.pin_group(0, 99), InvalidInputError);
  EXPECT_THROW(session.require_separation(2, 2), InvalidInputError);
  session.pin_group(0, 1);
  EXPECT_THROW(session.forbid_site(0, 1), InvalidInputError);
}

TEST(ScenarioSession, ForbiddingEverySiteThrows) {
  ScenarioSession session(instance_for_session(29));
  for (int j = 0; j < 3; ++j) session.forbid_site(0, j);
  EXPECT_THROW(session.forbid_site(0, 3), InfeasibleError);
}

TEST(ScenarioSession, AccumulatedConstraintsComposeAcrossReplans) {
  ScenarioSession session(instance_for_session(31));
  session.pin_group(0, 2);
  session.require_separation(1, 2);
  session.replan();
  session.forbid_site(3, session.last_report()
                             ? (*session.last_report()).plan.primary[3]
                             : 0);
  const auto forbidden = session.instance().groups[3].allowed_sites;
  const PlannerReport& report = session.replan();
  EXPECT_EQ(report.plan.primary[0], 2);
  EXPECT_NE(report.plan.primary[1], report.plan.primary[2]);
  EXPECT_TRUE(std::find(forbidden.begin(), forbidden.end(),
                        report.plan.primary[3]) != forbidden.end());
  EXPECT_EQ(session.modification_log().size(), 3u);
}

}  // namespace
}  // namespace etransform
