// Tests for the SolveFarm subsystem: the work-stealing ThreadPool, the
// priority JobQueue (observed through a single-threaded service), concurrent
// SolveService jobs with per-job cancellation, portfolio racing, scenario
// sweeps whose reports are byte-identical across thread counts, the parallel
// sensitivity path, and thread-safe tagged logging.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "datagen/generators.h"
#include "model/plan.h"
#include "report/sensitivity.h"
#include "service/scenario_set.h"
#include "service/solve_farm.h"

namespace etransform {
namespace {

// ---- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.outstanding(), 0);
}

TEST(ThreadPool, SubmitFromInsideAWorkerTask) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &count] {
      // A task spawning subtasks must not deadlock or lose work.
      for (int j = 0; j < 4; ++j) pool.submit([&count] { ++count; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, SubmitWhileWorkerIdlesNeverStrandsATask) {
  // Regression: submit() used to push the task outside the wake mutex, so
  // its notify could fire while the lone worker was mid-predicate (already
  // past the scan of that queue, not yet blocked) and get lost, stranding
  // the task and hanging wait_idle(). Hammer the idle -> submit edge.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 3000; ++i) {
    pool.submit([&count] { ++count; });
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 3000);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, 257, [&hits](int i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Degenerate counts run inline.
  std::atomic<int> one{0};
  parallel_for(pool, 1, [&one](int) { ++one; });
  EXPECT_EQ(one.load(), 1);
  parallel_for(pool, 0, [&one](int) { ++one; });
  EXPECT_EQ(one.load(), 1);
}

// ---- SolveService --------------------------------------------------------

ConsolidationInstance small_instance(std::uint64_t seed) {
  Rng rng(seed);
  return make_random_instance(rng, 8, 3, 2);
}

SolveRequest small_request(const std::string& name, std::uint64_t seed) {
  SolveRequest request;
  request.name = name;
  request.instance = small_instance(seed);
  return request;
}

TEST(SolveService, ConcurrentJobsAllProduceFeasiblePlans) {
  SolveService service(4);
  std::vector<JobHandle> jobs;
  std::vector<ConsolidationInstance> instances;
  for (int i = 0; i < 8; ++i) {
    auto request = small_request("job" + std::to_string(i),
                                 static_cast<std::uint64_t>(100 + i));
    instances.push_back(request.instance);
    jobs.push_back(service.submit(std::move(request)));
  }
  service.wait_all();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(jobs[static_cast<size_t>(i)]->state(), JobState::kDone);
    ASSERT_TRUE(jobs[static_cast<size_t>(i)]->has_report());
    const PlannerReport& report = jobs[static_cast<size_t>(i)]->report();
    EXPECT_TRUE(
        check_plan(instances[static_cast<size_t>(i)], report.plan).empty())
        << "job " << i << " produced an infeasible plan";
    EXPECT_GT(report.plan.cost.total(), 0.0);
  }
}

TEST(SolveService, JobIdsAreUniqueAndStatesReadable) {
  SolveService service(2);
  const JobHandle a = service.submit(small_request("a", 1));
  const JobHandle b = service.submit(small_request("b", 2));
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(a->name(), "a");
  a->wait();
  b->wait();
  EXPECT_STREQ(to_string(a->state()), "done");
}

// Parks the single worker of `service` until the returned function is
// called, so jobs submitted meanwhile stay queued.
std::function<void()> block_single_worker(SolveService& service) {
  auto released = std::make_shared<std::atomic<bool>>(false);
  auto mu = std::make_shared<std::mutex>();
  auto cv = std::make_shared<std::condition_variable>();
  service.pool().submit([released, mu, cv] {
    std::unique_lock<std::mutex> lock(*mu);
    cv->wait(lock, [&] { return released->load(); });
  });
  return [released, mu, cv] {
    {
      std::lock_guard<std::mutex> lock(*mu);
      released->store(true);
    }
    cv->notify_all();
  };
}

TEST(SolveService, QueueServesHigherPriorityFirst) {
  SolveService service(1);
  const auto release = block_single_worker(service);

  std::mutex order_mu;
  std::vector<std::string> order;
  auto record = [&order_mu, &order](const std::string& name) {
    return [&order_mu, &order, name] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(name);
    };
  };
  // Admitted low, normal, high — must run high, normal, low.
  auto low = small_request("low", 11);
  low.priority = JobPriority::kLow;
  low.on_complete = record("low");
  auto normal = small_request("normal", 12);
  normal.priority = JobPriority::kNormal;
  normal.on_complete = record("normal");
  auto high = small_request("high", 13);
  high.priority = JobPriority::kHigh;
  high.on_complete = record("high");

  const JobHandle j1 = service.submit(std::move(low));
  const JobHandle j2 = service.submit(std::move(normal));
  const JobHandle j3 = service.submit(std::move(high));
  release();
  service.wait_all();

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "normal");
  EXPECT_EQ(order[2], "low");
  EXPECT_EQ(j1->state(), JobState::kDone);
  EXPECT_EQ(j2->state(), JobState::kDone);
  EXPECT_EQ(j3->state(), JobState::kDone);
}

TEST(SolveService, CancellingAQueuedJobPreventsItFromRunning) {
  SolveService service(1);
  const auto release = block_single_worker(service);

  const JobHandle job = service.submit(small_request("doomed", 21));
  EXPECT_EQ(job->state(), JobState::kQueued);
  job->cancel();
  EXPECT_TRUE(job->cancel_requested());
  release();
  EXPECT_EQ(job->wait(), JobState::kCancelled);
  EXPECT_FALSE(job->has_report());
  EXPECT_EQ(job->solve_ms(), 0.0);
  service.wait_all();
}

TEST(SolveService, CancelRacingTheQueueClaimNeverStrandsARunningSolve) {
  // Regression: cancel() used to observe kQueued, drop the lock, and only
  // then mark the job terminal. JobQueue::pop() could claim the job in the
  // gap, so wait() returned kCancelled while the solve still ran and later
  // wrote its results over the released waiters. Race the two paths and
  // assert the terminal state and report visibility are stable after wait().
  for (int iter = 0; iter < 50; ++iter) {
    SolveService service(1);
    const auto release = block_single_worker(service);
    const JobHandle job = service.submit(
        small_request("victim", static_cast<std::uint64_t>(100 + iter)));
    std::thread canceller([&job] { job->cancel(); });
    release();  // pop() claims concurrently with the cancel
    canceller.join();
    const JobState terminal = job->wait();
    const bool had_report = job->has_report();
    service.wait_all();
    EXPECT_TRUE(terminal == JobState::kCancelled ||
                terminal == JobState::kDone);
    EXPECT_EQ(job->state(), terminal);
    EXPECT_EQ(job->has_report(), had_report);
  }
}

TEST(SolveService, CancellingARunningJobUnwindsViaContext) {
  SolveService service(1);
  // A hard exact instance: enough binaries and a tight business-impact cap
  // that branch-and-bound runs long enough to be cancelled mid-solve.
  Rng rng(31);
  SolveRequest request;
  request.name = "long-solve";
  request.instance = make_random_instance(rng, 20, 6, 3);
  request.options.engine = PlannerOptions::Engine::kExact;
  request.options.business_impact_omega = 0.4;
  request.options.milp.search.max_nodes = 1 << 30;
  request.options.milp.search.time_limit_ms = 600000;
  const JobHandle job = service.submit(std::move(request));

  while (job->state() == JobState::kQueued) std::this_thread::yield();
  job->cancel();
  EXPECT_EQ(job->wait(), JobState::kCancelled);
  service.wait_all();
}

TEST(SolveService, CancelAllDrainsTheFarm) {
  SolveService service(1);
  const auto release = block_single_worker(service);
  std::vector<JobHandle> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(
        service.submit(small_request("bulk" + std::to_string(i),
                                     static_cast<std::uint64_t>(40 + i))));
  }
  service.cancel_all();
  release();
  service.wait_all();
  for (const JobHandle& job : jobs) {
    EXPECT_EQ(job->state(), JobState::kCancelled);
  }
}

TEST(SolveService, DestructorShutsDownGracefullyWithQueuedWork) {
  std::vector<JobHandle> jobs;
  {
    SolveService service(1);
    const auto release = block_single_worker(service);
    for (int i = 0; i < 4; ++i) {
      jobs.push_back(
          service.submit(small_request("shutdown" + std::to_string(i),
                                       static_cast<std::uint64_t>(50 + i))));
    }
    release();
    // Destructor cancels what is still pending and waits for the drain.
  }
  for (const JobHandle& job : jobs) {
    const JobState state = job->state();
    EXPECT_TRUE(state == JobState::kDone || state == JobState::kCancelled)
        << to_string(state);
  }
}

TEST(SolveService, PerJobDeadlineTruncatesTheSolve) {
  SolveService service(2);
  Rng rng(61);
  SolveRequest request;
  request.name = "deadline";
  request.instance = make_random_instance(rng, 16, 5, 3);
  request.options.engine = PlannerOptions::Engine::kExact;
  request.options.business_impact_omega = 0.5;
  request.options.milp.search.max_nodes = 1 << 30;
  request.options.milp.search.time_limit_ms = 600000;
  request.time_limit_ms = 20.0;
  const JobHandle job = service.submit(std::move(request));
  const JobState state = job->wait();
  // A deadline-truncated solve is kDone with interrupted set (or, on a very
  // fast machine, a clean finish inside the budget).
  EXPECT_EQ(state, JobState::kDone);
  ASSERT_TRUE(job->has_report());
  service.wait_all();
}

// ---- portfolio racing ----------------------------------------------------

TEST(RacePortfolio, SingleThreadWinnerCancelsQueuedLoser) {
  // With one worker the exact leg (admitted first) runs to completion and
  // its on_complete cancels the still-queued heuristic leg: the loser must
  // observably unwind via kCancelled without ever running.
  SolveService service(1);
  const ConsolidationInstance instance = small_instance(71);
  const RaceOutcome outcome =
      race_portfolio(service, instance, PlannerOptions());
  EXPECT_EQ(outcome.winner_engine, "exact");
  EXPECT_EQ(outcome.first_finisher, "exact");
  EXPECT_EQ(outcome.exact_state, JobState::kDone);
  EXPECT_EQ(outcome.heuristic_state, JobState::kCancelled);
  EXPECT_TRUE(outcome.loser_cancelled);
  EXPECT_TRUE(check_plan(instance, outcome.best.plan).empty());
}

TEST(RacePortfolio, ConcurrentRaceReturnsAUsableBestPlan) {
  SolveService service(4);
  const ConsolidationInstance instance = small_instance(73);
  const RaceOutcome outcome =
      race_portfolio(service, instance, PlannerOptions());
  EXPECT_TRUE(outcome.winner_engine == "exact" ||
              outcome.winner_engine == "heuristic");
  EXPECT_TRUE(check_plan(instance, outcome.best.plan).empty());
  EXPECT_GT(outcome.best.plan.cost.total(), 0.0);
  // Both legs reached a terminal state.
  EXPECT_TRUE(outcome.exact_state == JobState::kDone ||
              outcome.exact_state == JobState::kCancelled);
  EXPECT_TRUE(outcome.heuristic_state == JobState::kDone ||
              outcome.heuristic_state == JobState::kCancelled);
  // The winner's plan is never worse than a completed loser's.
  if (outcome.exact_state == JobState::kDone &&
      outcome.heuristic_state == JobState::kDone) {
    EXPECT_EQ(outcome.winner_engine, "exact");
  }
}

// ---- scenario sweeps -----------------------------------------------------

ScenarioSet demo_sweep(std::uint64_t seed) {
  ScenarioSet set(small_instance(seed));
  set.add_omega_sweep({1.0, 0.75, 0.5});
  set.add_latency_penalty_sweep({0.0, 50.0});
  return set;
}

TEST(ScenarioSet, SweepBuildersNameScenariosInOrder) {
  const ScenarioSet set = demo_sweep(81);
  ASSERT_EQ(set.size(), 5u);
  EXPECT_EQ(set.scenarios()[0].name, "omega=1");
  EXPECT_EQ(set.scenarios()[1].name, "omega=0.75");
  EXPECT_EQ(set.scenarios()[2].name, "omega=0.5");
  EXPECT_EQ(set.scenarios()[3].name, "penalty=0");
  EXPECT_EQ(set.scenarios()[4].name, "penalty=50");
}

TEST(ScenarioSet, ResultsComeBackInScenarioOrder) {
  const ScenarioSet set = demo_sweep(83);
  SolveService service(4);
  const auto results = run_scenarios(set, service);
  ASSERT_EQ(results.size(), set.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].name, set.scenarios()[i].name);
    EXPECT_FALSE(results[i].failed) << results[i].error;
  }
}

TEST(ScenarioSet, SweepReportIsIdenticalAcrossThreadCounts) {
  const ScenarioSet set = demo_sweep(85);
  std::string sequential;
  std::string parallel;
  {
    SolveService service(1);
    sequential = render_scenario_results(run_scenarios(set, service));
  }
  {
    SolveService service(8);
    parallel = render_scenario_results(run_scenarios(set, service));
  }
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel)
      << "sweep reports must be byte-identical across thread counts";
}

TEST(ScenarioSet, AFailingScenarioDoesNotSinkTheSweep) {
  ScenarioSet set(small_instance(87));
  Scenario good;
  good.name = "good";
  set.add(good);
  Scenario bad;
  bad.name = "bad";
  bad.mutate = [](ConsolidationInstance& instance) {
    // Zero capacity everywhere: structurally infeasible.
    for (auto& site : instance.sites) site.capacity_servers = 0;
  };
  set.add(bad);
  SolveService service(2);
  const auto results = run_scenarios(set, service);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].failed);
  EXPECT_TRUE(results[1].failed);
  EXPECT_FALSE(results[1].error.empty());
  const std::string rendered = render_scenario_results(results);
  EXPECT_NE(rendered.find("bad"), std::string::npos);
}

// ---- parallel sensitivity ------------------------------------------------

TEST(ParallelSensitivity, MatchesSequentialExactly) {
  const ConsolidationInstance instance = small_instance(91);
  const CostModel model(instance);
  SolveContext ctx;
  const PlannerReport report = EtransformPlanner().plan(PlanInput(model), ctx);

  const SensitivityReport sequential = analyze_sensitivity(model, report.plan);
  ThreadPool pool(4);
  const SensitivityReport parallel =
      analyze_sensitivity(model, report.plan, pool);

  ASSERT_EQ(sequential.groups.size(), parallel.groups.size());
  for (std::size_t i = 0; i < sequential.groups.size(); ++i) {
    EXPECT_EQ(sequential.groups[i].group, parallel.groups[i].group);
    EXPECT_EQ(sequential.groups[i].chosen_site, parallel.groups[i].chosen_site);
    EXPECT_EQ(sequential.groups[i].runner_up_site,
              parallel.groups[i].runner_up_site);
    EXPECT_EQ(sequential.groups[i].regret, parallel.groups[i].regret);
  }
  ASSERT_EQ(sequential.sites.size(), parallel.sites.size());
  for (std::size_t i = 0; i < sequential.sites.size(); ++i) {
    EXPECT_EQ(sequential.sites[i].servers, parallel.sites[i].servers);
    EXPECT_EQ(sequential.sites[i].utilization, parallel.sites[i].utilization);
  }
  EXPECT_EQ(render_sensitivity(instance, sequential),
            render_sensitivity(instance, parallel));
}

// ---- thread-safe logging -------------------------------------------------

TEST(Logging, ConcurrentTaggedLinesNeverInterleave) {
  struct SinkGuard {
    ~SinkGuard() { set_log_sink(nullptr); }
  } guard;

  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  const LogLevel saved_level = log_level();
  set_log_level(LogLevel::kInfo);

  {
    ThreadPool pool(4);
    for (int t = 0; t < 4; ++t) {
      pool.submit([t] {
        LogTagScope tag("worker-" + std::to_string(t));
        for (int i = 0; i < 25; ++i) {
          ET_LOG(kInfo) << "message " << i << " from " << t;
        }
      });
    }
    pool.wait_idle();
  }
  set_log_level(saved_level);
  set_log_sink(nullptr);

  ASSERT_EQ(lines.size(), 100u);
  std::set<std::string> distinct(lines.begin(), lines.end());
  EXPECT_EQ(distinct.size(), 100u) << "every line must be unique and intact";
  for (const std::string& line : lines) {
    // "[INFO] [worker-T] message I from T" — tag matches the payload's
    // thread, proving tags never leak across threads.
    ASSERT_EQ(line.rfind("[INFO] [worker-", 0), 0u) << line;
    const char tag_thread = line[std::string("[INFO] [worker-").size()];
    EXPECT_EQ(line.back(), tag_thread) << line;
  }
}

TEST(Logging, TagScopeNestsAndRestores) {
  EXPECT_EQ(log_thread_tag(), "");
  {
    LogTagScope outer("outer");
    EXPECT_EQ(log_thread_tag(), "outer");
    {
      LogTagScope inner("inner");
      EXPECT_EQ(log_thread_tag(), "inner");
    }
    EXPECT_EQ(log_thread_tag(), "outer");
  }
  EXPECT_EQ(log_thread_tag(), "");
}

}  // namespace
}  // namespace etransform
