// Unit tests for the LP model builder: construction, validation, term
// merging, objective evaluation, feasibility checking.
#include <gtest/gtest.h>

#include "common/error.h"
#include "lp/model.h"

namespace etransform::lp {
namespace {

TEST(Model, AddVariableAssignsDenseIndices) {
  Model m;
  EXPECT_EQ(m.add_continuous("x"), 0);
  EXPECT_EQ(m.add_binary("b"), 1);
  EXPECT_EQ(m.add_variable("g", 0.0, 10.0, true), 2);
  EXPECT_EQ(m.num_variables(), 3);
  EXPECT_EQ(m.variable(0).name, "x");
  EXPECT_TRUE(m.variable(1).is_integer);
  EXPECT_EQ(m.variable(1).upper, 1.0);
  EXPECT_EQ(m.variable(2).upper, 10.0);
}

TEST(Model, RejectsBadVariables) {
  Model m;
  EXPECT_THROW(m.add_variable("", 0.0, 1.0), InvalidInputError);
  EXPECT_THROW(m.add_variable("x", 2.0, 1.0), InvalidInputError);
}

TEST(Model, RejectsOutOfRangeTerms) {
  Model m;
  m.add_continuous("x");
  EXPECT_THROW(m.add_constraint("c", {{5, 1.0}}, Relation::kLessEqual, 1.0),
               InvalidInputError);
  EXPECT_THROW(m.set_objective(Sense::kMinimize, {{-1, 1.0}}),
               InvalidInputError);
}

TEST(Model, RejectsNonFiniteCoefficients) {
  Model m;
  const int x = m.add_continuous("x");
  EXPECT_THROW(
      m.add_constraint("c", {{x, kInfinity}}, Relation::kLessEqual, 1.0),
      InvalidInputError);
  EXPECT_THROW(m.add_constraint("c", {{x, 1.0}}, Relation::kEqual, kInfinity),
               InvalidInputError);
  // Infinite rhs on an inequality is a vacuous row, not an error.
  EXPECT_NO_THROW(
      m.add_constraint("c", {{x, 1.0}}, Relation::kLessEqual, kInfinity));
  m.validate();
}

TEST(Model, MergeTermsCombinesDuplicates) {
  const auto merged = merge_terms({{2, 1.0}, {0, 2.0}, {2, 3.0}, {1, -1.0},
                                   {1, 1.0}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].var, 0);
  EXPECT_EQ(merged[0].coef, 2.0);
  EXPECT_EQ(merged[1].var, 2);
  EXPECT_EQ(merged[1].coef, 4.0);
}

TEST(Model, NormalizeMergesRowsAndObjective) {
  Model m;
  const int x = m.add_continuous("x");
  m.set_objective(Sense::kMinimize, {{x, 1.0}, {x, 2.0}});
  m.add_constraint("c", {{x, 1.0}, {x, -1.0}}, Relation::kLessEqual, 5.0);
  m.normalize();
  ASSERT_EQ(m.objective().size(), 1u);
  EXPECT_EQ(m.objective()[0].coef, 3.0);
  EXPECT_TRUE(m.constraint(0).terms.empty());
}

TEST(Model, EvaluateObjectiveIncludesConstant) {
  Model m;
  const int x = m.add_continuous("x");
  const int y = m.add_continuous("y");
  m.set_objective(Sense::kMinimize, {{x, 2.0}, {y, -1.0}}, 10.0);
  EXPECT_DOUBLE_EQ(m.evaluate_objective({3.0, 4.0}), 12.0);
  EXPECT_THROW((void)m.evaluate_objective({1.0}), InvalidInputError);
}

TEST(Model, FeasibilityChecksRowsBoundsAndIntegrality) {
  Model m;
  const int x = m.add_variable("x", 0.0, 5.0, true);
  const int y = m.add_continuous("y", 0.0, 10.0);
  m.add_constraint("cap", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 6.0);
  m.add_constraint("min", {{y, 1.0}}, Relation::kGreaterEqual, 1.0);
  m.add_constraint("tie", {{x, 2.0}, {y, -1.0}}, Relation::kEqual, 0.0);
  EXPECT_TRUE(m.is_feasible({2.0, 4.0}));
  EXPECT_FALSE(m.is_feasible({2.5, 5.0}));   // fractional integer
  EXPECT_FALSE(m.is_feasible({3.0, 6.0}));   // violates cap
  EXPECT_FALSE(m.is_feasible({0.0, 0.0}));   // violates min
  EXPECT_FALSE(m.is_feasible({1.0, 3.0}));   // violates tie
  EXPECT_FALSE(m.is_feasible({6.0, 1.0}));   // violates upper bound
  EXPECT_FALSE(m.is_feasible({1.0}));        // wrong arity
}

TEST(Model, SetBoundsAndIntegerMutateExistingVariable) {
  Model m;
  const int x = m.add_continuous("x");
  m.set_bounds(x, 1.0, 2.0);
  m.set_integer(x, true);
  EXPECT_EQ(m.variable(x).lower, 1.0);
  EXPECT_EQ(m.variable(x).upper, 2.0);
  EXPECT_TRUE(m.variable(x).is_integer);
  EXPECT_TRUE(m.has_integer_variables());
  EXPECT_THROW(m.set_bounds(x, 3.0, 2.0), InvalidInputError);
  EXPECT_THROW(m.set_bounds(9, 0.0, 1.0), InvalidInputError);
  EXPECT_THROW(m.set_integer(9, true), InvalidInputError);
}

TEST(Model, AccessorsRejectOutOfRange) {
  Model m;
  m.add_continuous("x");
  EXPECT_THROW((void)m.variable(1), InvalidInputError);
  EXPECT_THROW((void)m.constraint(0), InvalidInputError);
}

TEST(Model, AddObjectiveTermAccumulates) {
  Model m;
  const int x = m.add_continuous("x");
  m.set_objective(Sense::kMinimize, {{x, 1.0}});
  m.add_objective_term(x, 2.0);
  m.normalize();
  ASSERT_EQ(m.objective().size(), 1u);
  EXPECT_EQ(m.objective()[0].coef, 3.0);
}

}  // namespace
}  // namespace etransform::lp
