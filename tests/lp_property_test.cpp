// Property tests for the LP substrate on randomized models:
//  * write_lp -> parse_lp preserves solver outcomes exactly,
//  * optimal primal solutions are feasible,
//  * weak duality and dual sign conventions hold on standard-form LPs,
//  * MILP optima survive the file round-trip.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "lp/lp_format.h"
#include "lp/model.h"
#include "lp/lp_engine.h"
#include "milp/branch_and_bound.h"
#include "milp/cuts.h"

namespace etransform::lp {
namespace {

/// Random model with mixed bound styles (finite, infinite, fixed, free) and
/// mixed row relations, kept bounded below via box upper bounds.
Model random_model(Rng& rng, bool with_integers) {
  Model m;
  const int vars = static_cast<int>(rng.uniform_int(2, 8));
  const int rows = static_cast<int>(rng.uniform_int(1, 6));
  std::vector<Term> objective;
  for (int j = 0; j < vars; ++j) {
    const double style = rng.uniform();
    double lower = 0.0;
    double upper = rng.uniform(1.0, 10.0);
    if (style < 0.15) {
      lower = rng.uniform(-5.0, 0.0);
    } else if (style < 0.25) {
      lower = upper = rng.uniform(0.0, 5.0);  // fixed
    }
    const bool integer = with_integers && rng.uniform() < 0.5;
    const int v = m.add_variable("v" + std::to_string(j), lower, upper,
                                 integer);
    objective.push_back({v, rng.uniform(-5.0, 5.0)});
  }
  m.set_objective(rng.uniform() < 0.5 ? Sense::kMinimize : Sense::kMaximize,
                  objective, rng.uniform(-10.0, 10.0));
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < vars; ++j) {
      if (rng.uniform() < 0.5) terms.push_back({j, rng.uniform(-3.0, 3.0)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const double pick = rng.uniform();
    const Relation rel = pick < 0.5   ? Relation::kLessEqual
                         : pick < 0.8 ? Relation::kGreaterEqual
                                      : Relation::kEqual;
    // rhs near the achievable range keeps a decent feasibility rate.
    m.add_constraint("r" + std::to_string(i), terms, rel,
                     rng.uniform(-5.0, 15.0));
  }
  return m;
}

class LpRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpRoundTripProperty, SolverOutcomeSurvivesFileFormat) {
  Rng rng(GetParam());
  const Model original = random_model(rng, /*with_integers=*/false);
  const Model reparsed = parse_lp(write_lp(original));
  const LpEngine solver;
  SolveContext ctx;
  const auto a = solver.solve(original, ctx);
  const auto b = solver.solve(reparsed, ctx);
  ASSERT_EQ(a.status, b.status);
  if (a.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(a.objective, b.objective,
                1e-6 * std::max(1.0, std::abs(a.objective)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRoundTripProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

class SimplexFeasibilityProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexFeasibilityProperty, OptimalPointsAreFeasible) {
  Rng rng(GetParam() + 10000);
  const Model m = random_model(rng, /*with_integers=*/false);
  const LpEngine solver;
  SolveContext ctx;
  const auto s = solver.solve(m, ctx);
  if (s.status == SolveStatus::kOptimal) {
    EXPECT_TRUE(m.is_feasible(s.values, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexFeasibilityProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

class DualityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualityProperty, StandardFormDualsSatisfyStrongDuality) {
  // min c.x  st  Ax >= b, 0 <= x <= u.  With row duals y and reduced costs
  // d_j = c_j - y.A_j, LP duality gives the dual objective
  //     b.y + sum_j u_j * min(0, d_j)
  // (the second term carries the upper-bound multipliers), equal to c.x at
  // the optimum. Duals of >= rows in a minimization are non-negative.
  Rng rng(GetParam() + 20000);
  Model m;
  const int vars = static_cast<int>(rng.uniform_int(2, 6));
  const int rows = static_cast<int>(rng.uniform_int(1, 4));
  std::vector<double> cost(static_cast<std::size_t>(vars));
  std::vector<double> upper(static_cast<std::size_t>(vars));
  std::vector<Term> objective;
  for (int j = 0; j < vars; ++j) {
    upper[static_cast<std::size_t>(j)] = rng.uniform(5.0, 20.0);
    cost[static_cast<std::size_t>(j)] = rng.uniform(0.5, 5.0);
    const int v = m.add_continuous("x" + std::to_string(j), 0.0,
                                   upper[static_cast<std::size_t>(j)]);
    objective.push_back({v, cost[static_cast<std::size_t>(j)]});
  }
  m.set_objective(Sense::kMinimize, objective);
  std::vector<double> rhs(static_cast<std::size_t>(rows));
  std::vector<std::vector<double>> a(
      static_cast<std::size_t>(rows),
      std::vector<double>(static_cast<std::size_t>(vars)));
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < vars; ++j) {
      a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          rng.uniform(0.0, 3.0);
      terms.push_back(
          {j, a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]});
    }
    rhs[static_cast<std::size_t>(i)] = rng.uniform(1.0, 10.0);
    m.add_constraint("r" + std::to_string(i), terms, Relation::kGreaterEqual,
                     rhs[static_cast<std::size_t>(i)]);
  }
  const LpEngine solver;
  SolveContext ctx;
  const auto s = solver.solve(m, ctx);
  if (s.status != SolveStatus::kOptimal) return;  // rare: infeasible draw
  double dual_value = 0.0;
  for (int i = 0; i < rows; ++i) {
    EXPECT_GE(s.duals[static_cast<std::size_t>(i)], -1e-7);
    dual_value +=
        s.duals[static_cast<std::size_t>(i)] * rhs[static_cast<std::size_t>(i)];
  }
  for (int j = 0; j < vars; ++j) {
    double reduced = cost[static_cast<std::size_t>(j)];
    for (int i = 0; i < rows; ++i) {
      reduced -= s.duals[static_cast<std::size_t>(i)] *
                 a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
    dual_value += upper[static_cast<std::size_t>(j)] * std::min(0.0, reduced);
  }
  EXPECT_NEAR(dual_value, s.objective,
              1e-5 * std::max(1.0, std::abs(s.objective)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualityProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

class MilpRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MilpRoundTripProperty, MilpOptimaSurviveFileFormat) {
  Rng rng(GetParam() + 30000);
  const Model original = random_model(rng, /*with_integers=*/true);
  const Model reparsed = parse_lp(write_lp(original));
  milp::SolverOptions options;
  options.search.time_limit_ms = 5000;
  const milp::BranchAndBoundSolver solver(options);
  SolveContext ctx;
  const auto a = solver.solve(original, ctx);
  const auto b = solver.solve(reparsed, ctx);
  ASSERT_EQ(a.status, b.status);
  if (a.status == milp::MilpStatus::kOptimal) {
    EXPECT_NEAR(a.objective, b.objective,
                1e-6 * std::max(1.0, std::abs(a.objective)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpRoundTripProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

/// Cut validity: a separator may only emit inequalities satisfied by every
/// integer-feasible point. These instances are pure-integer with tiny box
/// domains, so the whole feasible lattice is enumerable and the property can
/// be checked exhaustively rather than just at one optimum.
class CutValidityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CutValidityProperty, NoCutRemovesAnyFeasibleIntegerPoint) {
  Rng rng(GetParam() + 40000);
  Model m;
  const int vars = static_cast<int>(rng.uniform_int(2, 4));
  std::vector<int> box;
  std::vector<Term> objective;
  for (int j = 0; j < vars; ++j) {
    // Mix binaries and small general integers so the Gomory rounding sees
    // both; positive row coefficients below keep cover detection in play.
    const int up = static_cast<int>(rng.uniform_int(1, 4));
    m.add_variable("v" + std::to_string(j), 0.0, up, /*integer=*/true);
    box.push_back(up);
    objective.push_back({j, rng.uniform(-5.0, 5.0)});
  }
  m.set_objective(rng.uniform() < 0.5 ? Sense::kMinimize : Sense::kMaximize,
                  objective);
  const int rows = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    double loose_rhs = 0.0;
    for (int j = 0; j < vars; ++j) {
      if (rng.uniform() < 0.75) {
        const double coef = rng.uniform(0.5, 4.0);
        terms.push_back({j, coef});
        loose_rhs += coef * box[static_cast<std::size_t>(j)];
      }
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    // A rhs strictly inside the achievable range so the row actually binds.
    m.add_constraint("r" + std::to_string(i), terms, Relation::kLessEqual,
                     loose_rhs * rng.uniform(0.25, 0.75));
  }

  const PreparedLp prep(m);
  std::vector<double> lower;
  std::vector<double> upper;
  for (int j = 0; j < vars; ++j) {
    lower.push_back(m.variable(j).lower);
    upper.push_back(m.variable(j).upper);
  }
  const LpEngine solver;
  SolveContext ctx;
  const auto relax = solver.solve(prep, lower, upper, ctx);
  if (relax.status != SolveStatus::kOptimal) return;  // nothing to separate

  milp::SeparationContext sep;
  sep.model = &m;
  sep.prep = &prep;
  sep.lower = &lower;
  sep.upper = &upper;
  sep.options = milp::CutOptions{};
  milp::CutPool pool;
  milp::GomoryMixedIntegerCutGenerator gomory;
  milp::CoverCutGenerator cover;
  gomory.separate(sep, relax, pool);
  cover.separate(sep, relax, pool);

  // Non-vacuity canary: this seed is known to have a fractional relaxation
  // that yields cuts (26 of the 40 seeds do). If generation changes and the
  // suite silently stops separating anything, this trips.
  if (GetParam() == 3) {
    EXPECT_GE(pool.size(), 1);
  }

  // Every pooled cut must be violated where it was separated...
  for (const auto& cut : pool.cuts()) {
    EXPECT_GE(cut.violation, sep.options.min_violation)
        << cut.name << " entered the pool without a real violation";
  }

  // ...and satisfied at every feasible lattice point (exhaustive check).
  std::vector<double> point(static_cast<std::size_t>(vars), 0.0);
  bool done = false;
  while (!done) {
    if (m.is_feasible(point, 1e-9)) {
      for (const auto& cut : pool.cuts()) {
        EXPECT_TRUE(milp::cut_satisfied(cut, point, 1e-6))
            << cut.name << " cuts off a feasible integer point";
      }
    }
    // Odometer increment over the box domains.
    int j = 0;
    for (; j < vars; ++j) {
      auto& value = point[static_cast<std::size_t>(j)];
      if (value + 0.5 < box[static_cast<std::size_t>(j)]) {
        value += 1.0;
        break;
      }
      value = 0.0;
    }
    done = j == vars;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutValidityProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace etransform::lp
