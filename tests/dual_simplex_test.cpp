// Tests for the bound-flipping dual simplex and the LpEngine mode
// selection: dual-vs-primal differential agreement on reoptimization
// restarts, bound-flip ratio tests on boxed LPs, warm starts across
// appended cut rows (extend_basis + Origin::kRowsAdded), the
// fallback-to-primal contract on dual-infeasible starts, and the
// branch-and-bound end-to-end differential.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "lp/lp_engine.h"
#include "milp/branch_and_bound.h"

namespace etransform::lp {
namespace {

Model random_boxed_lp(std::uint64_t seed, int vars, int rows, double density) {
  Rng rng(seed);
  Model model;
  std::vector<Term> objective;
  for (int j = 0; j < vars; ++j) {
    const int v = model.add_continuous("x" + std::to_string(j), 0.0,
                                       rng.uniform(1.0, 10.0));
    objective.push_back({v, rng.uniform(-5.0, 5.0)});
  }
  model.set_objective(Sense::kMinimize, objective);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < vars; ++j) {
      if (rng.uniform() < density) terms.push_back({j, rng.uniform(-2.0, 2.0)});
    }
    model.add_constraint("r" + std::to_string(i), terms, Relation::kLessEqual,
                         rng.uniform(1.0, 20.0));
  }
  return model;
}

std::vector<double> model_lowers(const Model& model) {
  std::vector<double> lower(static_cast<std::size_t>(model.num_variables()));
  for (int j = 0; j < model.num_variables(); ++j) {
    lower[static_cast<std::size_t>(j)] = model.variable(j).lower;
  }
  return lower;
}

std::vector<double> model_uppers(const Model& model) {
  std::vector<double> upper(static_cast<std::size_t>(model.num_variables()));
  for (int j = 0; j < model.num_variables(); ++j) {
    upper[static_cast<std::size_t>(j)] = model.variable(j).upper;
  }
  return upper;
}

// After a bound change the parent-optimal basis stays dual-feasible, so
// kAuto + Origin::kBoundChange must reoptimize with the dual simplex and
// land on the same optimum a cold primal solve finds.
TEST(DualSimplex, AgreesWithPrimalAfterBoundChanges) {
  const std::uint64_t seeds[] = {11, 12, 13, 14, 15, 16};
  int dual_runs = 0;
  for (const std::uint64_t seed : seeds) {
    const Model model = random_boxed_lp(seed, 60, 30, 0.3);
    const PreparedLp prep(model);
    std::vector<double> lower = model_lowers(model);
    std::vector<double> upper = model_uppers(model);

    SolveContext root_ctx;
    const LpEngine engine;
    const LpSolution root = engine.solve(prep, lower, upper, root_ctx);
    ASSERT_EQ(root.status, SolveStatus::kOptimal) << "seed " << seed;
    ASSERT_NE(root.basis, nullptr);

    // Tighten a third of the uppers (x = 0 stays feasible: every row is a
    // <= with positive rhs), the branching move that leaves the parent
    // basis dual-feasible but usually primal-infeasible.
    Rng rng(seed * 977);
    for (std::size_t j = 0; j < upper.size(); j += 3) {
      upper[j] *= rng.uniform(0.1, 0.6);
    }

    SimplexOptions primal_only;
    primal_only.mode = SolveMode::kPrimal;
    SolveContext cold_ctx;
    const LpSolution cold =
        LpEngine(primal_only).solve(prep, lower, upper, cold_ctx);
    ASSERT_EQ(cold.status, SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_FALSE(cold.used_dual);

    SolveContext warm_ctx;
    const LpSolution warm = engine.solve(
        prep, lower, upper, warm_ctx,
        LpStartBasis(root.basis.get(), LpStartBasis::Origin::kBoundChange));
    ASSERT_EQ(warm.status, SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-6 * (1.0 + std::abs(cold.objective)))
        << "seed " << seed;
    if (warm.used_dual) {
      ++dual_runs;
      EXPECT_GT(warm.dual_pivots + warm.bound_flips, 0) << "seed " << seed;
    }
  }
  // The optimal basis must pass the dual-feasibility gate on most seeds —
  // reduced costs do not move when bounds do.
  EXPECT_GE(dual_runs, 4);
}

// A single >=-row over near-equal-cost boxed variables: forbidding the
// variables the optimum selected leaves the row massively infeasible, and
// one BFRT ratio test must flip through several boxed breakpoints before
// an entering variable absorbs the rest.
TEST(DualSimplex, BoundFlippingRatioTestFlipsBoxedVariables) {
  const int n = 20;
  Model model;
  std::vector<Term> objective;
  std::vector<Term> row;
  for (int j = 0; j < n; ++j) {
    const int v = model.add_continuous("x" + std::to_string(j), 0.0, 1.0);
    objective.push_back({v, 1.0 + 0.01 * j});
    row.push_back({v, 1.0});
  }
  model.set_objective(Sense::kMinimize, objective);
  model.add_constraint("demand", row, Relation::kGreaterEqual, 10.0);

  const PreparedLp prep(model);
  std::vector<double> lower = model_lowers(model);
  std::vector<double> upper = model_uppers(model);

  SolveContext root_ctx;
  const LpEngine engine;
  const LpSolution root = engine.solve(prep, lower, upper, root_ctx);
  ASSERT_EQ(root.status, SolveStatus::kOptimal);
  EXPECT_NEAR(root.objective, 10.0 + 0.01 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 +
                                             8 + 9),
              1e-6);

  // Forbid the ten cheapest variables the optimum used.
  for (std::size_t j = 0; j < 10; ++j) upper[j] = 0.0;

  SolveContext warm_ctx;
  const LpSolution warm = engine.solve(
      prep, lower, upper, warm_ctx,
      LpStartBasis(root.basis.get(), LpStartBasis::Origin::kBoundChange));
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.used_dual);
  // Ten units of demand move to the ten remaining variables; one of them
  // enters, the others are bound flips of the same ratio test.
  EXPECT_GE(warm.bound_flips, 5);
  EXPECT_NEAR(warm.objective,
              10.0 + 0.01 * (10 + 11 + 12 + 13 + 14 + 15 + 16 + 17 + 18 + 19),
              1e-6);

  SimplexOptions primal_only;
  primal_only.mode = SolveMode::kPrimal;
  SolveContext cold_ctx;
  const LpSolution cold =
      LpEngine(primal_only).solve(prep, lower, upper, cold_ctx);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
}

// Appending a violated row and mapping the old basis over via extend_basis
// keeps the old duals (new slack basic), so Origin::kRowsAdded must take
// the dual path and agree with a cold solve of the grown model.
TEST(DualSimplex, WarmStartsAcrossAppendedCutRow) {
  const std::uint64_t seeds[] = {31, 32, 33, 34};
  int dual_runs = 0;
  for (const std::uint64_t seed : seeds) {
    Model model = random_boxed_lp(seed, 40, 20, 0.4);
    const PreparedLp prep(model);
    std::vector<double> lower = model_lowers(model);
    std::vector<double> upper = model_uppers(model);

    SolveContext root_ctx;
    const LpEngine engine;
    const LpSolution root = engine.solve(prep, lower, upper, root_ctx);
    ASSERT_EQ(root.status, SolveStatus::kOptimal) << "seed " << seed;

    // A cut through the current optimum: sum of the fractional-support
    // values, tightened by 20%. Feasibility survives (x = 0 satisfies it).
    std::vector<Term> cut;
    double activity = 0.0;
    for (int j = 0; j < model.num_variables(); ++j) {
      const double v = root.values[static_cast<std::size_t>(j)];
      if (v > 1e-9) {
        cut.push_back({j, 1.0});
        activity += v;
      }
    }
    ASSERT_FALSE(cut.empty()) << "seed " << seed;
    model.add_constraint("cut", cut, Relation::kLessEqual, 0.8 * activity);

    const PreparedLp grown(model);
    ASSERT_EQ(grown.num_rows(), prep.num_rows() + 1) << "seed " << seed;
    std::vector<int> old_row_of_new;
    for (int r = 0; r < prep.num_rows(); ++r) old_row_of_new.push_back(r);
    old_row_of_new.push_back(-1);
    const BasisSnapshot mapped =
        extend_basis(*root.basis, prep.num_vars, old_row_of_new,
                     grown.num_rows(), grown.num_columns());

    SolveContext warm_ctx;
    const LpSolution warm = engine.solve(
        grown, lower, upper, warm_ctx,
        LpStartBasis(&mapped, LpStartBasis::Origin::kRowsAdded));
    ASSERT_EQ(warm.status, SolveStatus::kOptimal) << "seed " << seed;

    SimplexOptions primal_only;
    primal_only.mode = SolveMode::kPrimal;
    SolveContext cold_ctx;
    const LpSolution cold =
        LpEngine(primal_only).solve(grown, lower, upper, cold_ctx);
    ASSERT_EQ(cold.status, SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-6 * (1.0 + std::abs(cold.objective)))
        << "seed " << seed;
    EXPECT_TRUE(warm.warm_started) << "seed " << seed;
    if (warm.used_dual) ++dual_runs;
  }
  EXPECT_GE(dual_runs, 3);
}

// A cold start carries no reoptimization claim: kAuto must not attempt the
// dual simplex, and kDual from a dual-infeasible start (attractive reduced
// costs at the slack basis) must fall back to the primal and still solve.
TEST(DualSimplex, FallsBackToPrimalOnDualInfeasibleStart) {
  // min -x - y subject to x + y <= 4, x, y in [0, 3]: at the slack basis
  // both reduced costs are -1, so no dual-feasible start exists cold.
  Model model;
  const int x = model.add_continuous("x", 0.0, 3.0);
  const int y = model.add_continuous("y", 0.0, 3.0);
  model.set_objective(Sense::kMinimize, {{x, -1.0}, {y, -1.0}});
  model.add_constraint("cap", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0);

  SolveContext auto_ctx;
  const LpSolution cold = LpEngine().solve(model, auto_ctx);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_FALSE(cold.used_dual);
  EXPECT_EQ(cold.dual_pivots, 0);
  EXPECT_NEAR(cold.objective, -4.0, 1e-9);

  SimplexOptions dual_mode;
  dual_mode.mode = SolveMode::kDual;
  SolveContext dual_ctx;
  const LpSolution forced = LpEngine(dual_mode).solve(model, dual_ctx);
  ASSERT_EQ(forced.status, SolveStatus::kOptimal);
  EXPECT_FALSE(forced.used_dual);  // gate rejected the start; primal solved
  EXPECT_NEAR(forced.objective, -4.0, 1e-9);
}

// End-to-end differential: branch-and-bound under forced-primal and
// default-auto LP modes must prove the same optimum, and auto must
// actually run dual re-solves on the node restarts.
TEST(DualSimplex, BranchAndBoundAgreesAcrossLpModes) {
  Rng rng(23);
  Model model;
  const int tasks = 8;
  const int agents = 3;
  std::vector<std::vector<int>> x(static_cast<std::size_t>(tasks));
  std::vector<Term> objective;
  for (int t = 0; t < tasks; ++t) {
    for (int a = 0; a < agents; ++a) {
      const int v = model.add_binary("x_" + std::to_string(t) + "_" +
                                     std::to_string(a));
      x[static_cast<std::size_t>(t)].push_back(v);
      objective.push_back({v, rng.uniform(1.0, 20.0)});
    }
  }
  model.set_objective(Sense::kMinimize, objective);
  for (int t = 0; t < tasks; ++t) {
    std::vector<Term> row;
    for (const int v : x[static_cast<std::size_t>(t)]) row.push_back({v, 1.0});
    model.add_constraint("assign" + std::to_string(t), row, Relation::kEqual,
                         1.0);
  }
  for (int a = 0; a < agents; ++a) {
    std::vector<Term> row;
    for (int t = 0; t < tasks; ++t) {
      row.push_back(
          {x[static_cast<std::size_t>(t)][static_cast<std::size_t>(a)],
           rng.uniform(1.0, 8.0)});
    }
    model.add_constraint("cap" + std::to_string(a), row, Relation::kLessEqual,
                         3.0 * tasks / agents);
  }

  milp::SolverOptions primal_options;
  primal_options.lp.mode = SolveMode::kPrimal;
  milp::SolverOptions auto_options;  // default kAuto

  SolveContext primal_ctx;
  const auto primal =
      milp::BranchAndBoundSolver(primal_options).solve(model, primal_ctx);
  SolveContext auto_ctx;
  const auto dual =
      milp::BranchAndBoundSolver(auto_options).solve(model, auto_ctx);

  ASSERT_EQ(primal.status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(dual.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(primal.objective, dual.objective, 1e-6);

  // The simplex subtrees hang off whichever phase ran the LPs (root_lp,
  // cuts, node re-solves), so aggregate over the whole branch_and_bound
  // subtree.
  const SolveStats* bb = auto_ctx.stats().find("branch_and_bound");
  ASSERT_NE(bb, nullptr);
  EXPECT_GT(bb->metric("dual_reopt_nodes"), 0.0);
  EXPECT_GT(bb->deep_metric("dual_solves"), 0.0);
  EXPECT_GT(bb->deep_metric("dual_pivots") + bb->deep_metric("bound_flips"),
            0.0);

  const SolveStats* primal_bb = primal_ctx.stats().find("branch_and_bound");
  ASSERT_NE(primal_bb, nullptr);
  EXPECT_NEAR(primal_bb->metric("dual_reopt_nodes"), 0.0, 1e-9);
  EXPECT_NEAR(primal_bb->deep_metric("dual_solves"), 0.0, 1e-9);
}

// Rebuilds `model` keeping only the variables and constraints the
// predicates admit, preserving names and coefficients — the shape of a
// replan delta that dropped columns and rows from the formulation.
template <typename KeepVar, typename KeepRow>
Model drop_from_model(const Model& model, KeepVar keep_var, KeepRow keep_row) {
  Model out;
  std::vector<int> new_of_old(static_cast<std::size_t>(model.num_variables()),
                              -1);
  std::vector<Term> objective;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!keep_var(j)) continue;
    const Variable& v = model.variable(j);
    new_of_old[static_cast<std::size_t>(j)] =
        out.add_continuous(v.name, v.lower, v.upper);
  }
  for (const Term& t : model.objective()) {
    const int nj = new_of_old[static_cast<std::size_t>(t.var)];
    if (nj >= 0) objective.push_back({nj, t.coef});
  }
  out.set_objective(model.sense(), objective);
  for (int i = 0; i < model.num_constraints(); ++i) {
    if (!keep_row(i)) continue;
    const Constraint& row = model.constraint(i);
    std::vector<Term> terms;
    for (const Term& t : row.terms) {
      const int nj = new_of_old[static_cast<std::size_t>(t.var)];
      if (nj >= 0) terms.push_back({nj, t.coef});
    }
    out.add_constraint(row.name, terms, row.relation, row.rhs);
  }
  return out;
}

// A basis named against a model and remapped back onto the same model must
// reproduce the optimal basis exactly: the warm solve starts optimal.
TEST(NamedBasis, RoundTripOnSameModelStartsOptimal) {
  const Model model = random_boxed_lp(71, 50, 25, 0.3);
  const LpEngine engine;
  SolveContext cold_ctx;
  const LpSolution cold = engine.solve(model, cold_ctx);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_NE(cold.basis, nullptr);

  const NamedBasis named = name_basis(model, *cold.basis);
  EXPECT_EQ(static_cast<int>(named.variables.size()), model.num_variables());
  const auto mapped = remap_basis(named, model);
  ASSERT_TRUE(mapped.has_value());

  const PreparedLp prep(model);
  SolveContext warm_ctx;
  const LpSolution warm =
      engine.solve(prep, model_lowers(model), model_uppers(model), warm_ctx,
                   LpStartBasis(&*mapped, LpStartBasis::Origin::kBoundChange));
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
  EXPECT_LT(warm.iterations, cold.iterations);
}

// Remapping across a delta that removed columns and a row: the carried
// basis (repaired if the survivors went singular) must warm-start the new
// LP and land on the same optimum a cold solve finds.
TEST(NamedBasis, RemapSurvivesDroppedColumnsAndRows) {
  const std::uint64_t seeds[] = {21, 22, 23, 24};
  int warm_runs = 0;
  for (const std::uint64_t seed : seeds) {
    const Model model = random_boxed_lp(seed, 60, 30, 0.3);
    const LpEngine engine;
    SolveContext base_ctx;
    const LpSolution base = engine.solve(model, base_ctx);
    ASSERT_EQ(base.status, SolveStatus::kOptimal) << "seed " << seed;
    const NamedBasis named = name_basis(model, *base.basis);

    // Drop every 9th variable and two rows — a "pin" style delta.
    const Model target = drop_from_model(
        model, [](int j) { return j % 9 != 0; },
        [](int i) { return i != 4 && i != 17; });
    const auto mapped = remap_basis(named, target);
    ASSERT_TRUE(mapped.has_value()) << "seed " << seed;

    const PreparedLp prep(target);
    SolveContext cold_ctx;
    const LpSolution cold =
        engine.solve(prep, model_lowers(target), model_uppers(target),
                     cold_ctx);
    SolveContext warm_ctx;
    const LpSolution warm = engine.solve(
        prep, model_lowers(target), model_uppers(target), warm_ctx,
        LpStartBasis(&*mapped, LpStartBasis::Origin::kBoundChange));
    ASSERT_EQ(cold.status, SolveStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(warm.status, SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << "seed " << seed;
    if (warm.warm_started) ++warm_runs;
  }
  // The repair may reject an occasional degenerate map, but a name-based
  // carry-over that never applies would be broken.
  EXPECT_GT(warm_runs, 0);
}

// Malformed inputs: a snapshot that does not match the model's standard
// form is an input error for name_basis, and a NamedBasis whose recorded
// shape disagrees with its snapshot remaps to nullopt.
TEST(NamedBasis, RejectsMalformedShapes) {
  const Model model = random_boxed_lp(31, 20, 10, 0.4);
  const LpEngine engine;
  SolveContext ctx;
  const LpSolution sol = engine.solve(model, ctx);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);

  BasisSnapshot truncated = *sol.basis;
  truncated.basic_columns.pop_back();
  EXPECT_THROW((void)name_basis(model, truncated), etransform::InvalidInputError);

  NamedBasis inconsistent = name_basis(model, *sol.basis);
  inconsistent.variables.pop_back();
  EXPECT_FALSE(remap_basis(inconsistent, model).has_value());
}

}  // namespace
}  // namespace etransform::lp
