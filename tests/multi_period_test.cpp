// Multi-period planning tests: the horizon-of-one differential against the
// static planner, optimality against a time-expanded brute force on tiny
// horizons, the locked-placement ("best static") dominance ordering, the
// online right-sizing baselines, the traffic-curve generators, and the
// .etfh horizon round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "baselines/online_rightsizing.h"
#include "common/error.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "model/horizon.h"
#include "model/instance_io.h"
#include "planner/etransform_planner.h"

namespace etransform {
namespace {

PlannerReport run_planner(const CostModel& model, PlanningHorizon horizon,
                          PlannerOptions options = {},
                          bool lock_placement = false) {
  options.milp.search.time_limit_ms =
      std::min(options.milp.search.time_limit_ms, 10000);
  const EtransformPlanner planner(options);
  PlanInput input(model, std::move(horizon));
  input.lock_placement = lock_placement;
  SolveContext ctx;
  return planner.plan(input, ctx);
}

/// Every period plan must satisfy that period's demand-scaled instance.
void expect_periods_feasible(const ConsolidationInstance& base,
                             const PlanningHorizon& horizon,
                             const MultiPeriodPlan& multi) {
  ASSERT_EQ(static_cast<int>(multi.periods.size()), horizon.num_periods());
  for (int t = 0; t < horizon.num_periods(); ++t) {
    const auto scaled = apply_period(base, horizon, t);
    EXPECT_TRUE(
        check_plan(scaled, multi.periods[static_cast<std::size_t>(t)]).empty())
        << "period " << t;
  }
}

// ---- the horizon-of-one differential ---------------------------------------

TEST(MultiPeriod, HorizonOfOneMatchesStaticExactly) {
  // The v2 contract: a single unit period at multiplier 1 is the classic
  // static problem, and the weighted horizon total equals the static monthly
  // total to the last bit of rounding.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 7000);
    const auto instance = make_random_instance(rng, 6, 3, 2);
    const CostModel model(instance);
    const PlannerReport static_report = run_planner(model, {});
    const PlannerReport horizon_report =
        run_planner(model, PlanningHorizon::uniform(1));
    ASSERT_TRUE(horizon_report.is_multi_period());
    EXPECT_FALSE(static_report.is_multi_period());
    EXPECT_NEAR(horizon_report.objective(), static_report.objective(),
                1e-9 * std::max(1.0, static_report.objective()))
        << "seed " << seed;
    EXPECT_EQ(horizon_report.multi.total_moves, 0);
    EXPECT_EQ(horizon_report.multi.cost.migration, 0.0);
    expect_periods_feasible(instance, PlanningHorizon::uniform(1),
                            horizon_report.multi);
  }
}

TEST(MultiPeriod, HorizonOfOneMatchesStaticOnHeuristicPath) {
  Rng rng(7100);
  const auto instance = make_random_instance(rng, 12, 4, 2);
  const CostModel model(instance);
  PlannerOptions options;
  options.engine = PlannerOptions::Engine::kHeuristic;
  const PlannerReport static_report = run_planner(model, {}, options);
  const PlannerReport horizon_report =
      run_planner(model, PlanningHorizon::uniform(1), options);
  ASSERT_TRUE(horizon_report.is_multi_period());
  EXPECT_FALSE(horizon_report.used_exact_solver);
  EXPECT_NEAR(horizon_report.objective(), static_report.objective(),
              1e-9 * std::max(1.0, static_report.objective()));
}

// ---- optimality against brute force on tiny horizons -----------------------

/// Exhaustively finds the cheapest feasible two-period trajectory: every
/// (period-0 assignment, period-1 assignment) pair, priced per period and
/// totalled by assemble_multi_period — the same rule the planner uses.
MultiPeriodPlan brute_force_two_periods(const ConsolidationInstance& base,
                                        const PlanningHorizon& horizon) {
  const int n = base.num_groups();
  const int sites = base.num_sites();
  std::vector<ConsolidationInstance> scaled;
  std::vector<CostModel> models;
  scaled.reserve(2);
  for (int t = 0; t < 2; ++t) scaled.push_back(apply_period(base, horizon, t));
  // CostModel holds a reference; the vector is fully built first.
  models.reserve(2);
  for (int t = 0; t < 2; ++t) models.emplace_back(scaled[t]);

  const auto enumerate_plans = [&](int t) {
    std::vector<Plan> feasible;
    std::vector<int> assignment(static_cast<std::size_t>(n), 0);
    while (true) {
      Plan candidate;
      candidate.primary = assignment;
      if (check_plan(scaled[static_cast<std::size_t>(t)], candidate).empty()) {
        models[static_cast<std::size_t>(t)].price_plan(candidate);
        feasible.push_back(candidate);
      }
      int k = 0;
      while (k < n) {
        if (++assignment[static_cast<std::size_t>(k)] < sites) break;
        assignment[static_cast<std::size_t>(k)] = 0;
        ++k;
      }
      if (k == n) break;
    }
    return feasible;
  };

  const std::vector<Plan> first = enumerate_plans(0);
  const std::vector<Plan> second = enumerate_plans(1);
  MultiPeriodPlan best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Plan& p0 : first) {
    for (const Plan& p1 : second) {
      MultiPeriodPlan candidate =
          assemble_multi_period(base, horizon, {p0, p1}, "brute");
      if (candidate.cost.total() < best_cost) {
        best_cost = candidate.cost.total();
        best = std::move(candidate);
      }
    }
  }
  return best;
}

TEST(MultiPeriod, MatchesBruteForceOnTinyHorizons) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed + 7200);
    const auto instance = make_random_instance(rng, 4, 3, 2);
    PlanningHorizon horizon;
    horizon.periods.resize(2);
    horizon.periods[0].multiplier = 1.0;
    horizon.periods[1].multiplier = 0.5;
    horizon.migration_cost_per_server = 3.0;
    const MultiPeriodPlan reference =
        brute_force_two_periods(instance, horizon);

    const CostModel model(instance);
    PlannerOptions options;
    options.engine = PlannerOptions::Engine::kExact;
    const PlannerReport report = run_planner(model, horizon, options);
    ASSERT_TRUE(report.is_multi_period());
    EXPECT_TRUE(report.used_exact_solver);
    expect_periods_feasible(instance, horizon, report.multi);
    EXPECT_NEAR(report.multi.cost.total(), reference.cost.total(),
                1e-6 * std::max(1.0, reference.cost.total()))
        << "seed " << seed;
  }
}

// ---- dominance orderings ---------------------------------------------------

PlanningHorizon rightsizing_curve() {
  TrafficCurveSpec spec;
  spec.num_periods = 4;
  spec.trough_multiplier = 0.25;
  spec.migration_cost_per_server = 0.5;
  return make_traffic_curve(spec);
}

TEST(MultiPeriod, TimeExpandedBeatsLockedStaticOnRightsizingEstate) {
  // The estate is shaped so troughs pack into cheap sites: following demand
  // must strictly beat holding the peak placement all horizon long.
  const auto instance = make_rightsizing_estate({});
  const CostModel model(instance);
  const PlanningHorizon horizon = rightsizing_curve();
  const PlannerReport expanded = run_planner(model, horizon);
  const PlannerReport locked =
      run_planner(model, horizon, {}, /*lock_placement=*/true);
  ASSERT_TRUE(expanded.proven_optimal);
  ASSERT_TRUE(locked.proven_optimal);
  EXPECT_GT(expanded.multi.total_moves, 0);
  EXPECT_EQ(locked.multi.total_moves, 0);
  EXPECT_LT(expanded.objective(), locked.objective() - 1e-6);
  expect_periods_feasible(instance, horizon, expanded.multi);
  expect_periods_feasible(instance, horizon, locked.multi);
}

TEST(MultiPeriod, OnlineNeverBeatsProvenOptimalOffline) {
  // The offline time-expanded optimum sees the whole horizon; no online play
  // can beat it (they are totalled by the same assemble_multi_period rule).
  const auto instance = make_rightsizing_estate({});
  const CostModel model(instance);
  const PlanningHorizon horizon = rightsizing_curve();
  const PlannerReport offline = run_planner(model, horizon);
  ASSERT_TRUE(offline.proven_optimal);
  for (const auto variant : {OnlineRightSizingOptions::Variant::kLazy,
                             OnlineRightSizingOptions::Variant::kProbabilistic}) {
    OnlineRightSizingOptions options;
    options.variant = variant;
    const MultiPeriodPlan online =
        plan_online_rightsizing(model, horizon, options);
    expect_periods_feasible(instance, horizon, online);
    EXPECT_GE(online.cost.total(), offline.objective() - 1e-6)
        << to_string(variant);
  }
}

TEST(MultiPeriod, ProhibitiveMigrationCostFreezesTheOnlinePlayer) {
  // A horizon that starts at the peak and only shrinks: demand never forces
  // a move, and with an astronomic move price the lazy player's regret never
  // reaches the threshold — the initial placement must persist.
  const auto instance = make_rightsizing_estate({});
  const CostModel model(instance);
  PlanningHorizon horizon = PlanningHorizon::uniform(4, 1e9);
  horizon.periods[1].multiplier = 0.5;
  horizon.periods[2].multiplier = 0.25;
  horizon.periods[3].multiplier = 0.5;
  const MultiPeriodPlan online = plan_online_rightsizing(model, horizon);
  EXPECT_EQ(online.total_moves, 0);
  EXPECT_EQ(online.cost.migration, 0.0);
}

TEST(MultiPeriod, OnlineDegeneratesToGreedyOnStaticHorizon) {
  Rng rng(7300);
  const auto instance = make_random_instance(rng, 8, 4, 2);
  const CostModel model(instance);
  const MultiPeriodPlan online = plan_online_rightsizing(model, {});
  ASSERT_EQ(online.periods.size(), 1u);
  EXPECT_TRUE(check_plan(instance, online.periods.front()).empty());
  EXPECT_EQ(online.total_moves, 0);
}

// ---- traffic-curve generators ----------------------------------------------

TEST(MultiPeriod, DiurnalCurveCyclesBetweenTroughAndPeak) {
  TrafficCurveSpec spec;
  spec.num_periods = 8;
  spec.peak_multiplier = 1.2;
  spec.trough_multiplier = 0.4;
  const PlanningHorizon horizon = make_traffic_curve(spec);
  ASSERT_EQ(horizon.num_periods(), 8);
  double low = std::numeric_limits<double>::infinity();
  double high = -low;
  for (int t = 0; t < 8; ++t) {
    const double m = horizon.multiplier(t, 0);
    EXPECT_GE(m, spec.trough_multiplier - 1e-9);
    EXPECT_LE(m, spec.peak_multiplier + 1e-9);
    low = std::min(low, m);
    high = std::max(high, m);
  }
  EXPECT_NEAR(low, spec.trough_multiplier, 1e-9);
  EXPECT_NEAR(high, spec.peak_multiplier, 1e-9);
  // The cycle starts in the trough and peaks half way through.
  EXPECT_NEAR(horizon.multiplier(0, 0), spec.trough_multiplier, 1e-9);
  EXPECT_NEAR(horizon.multiplier(4, 0), spec.peak_multiplier, 1e-9);
}

TEST(MultiPeriod, AntiphaseGroupsRunHalfACycleOut) {
  TrafficCurveSpec spec;
  spec.num_periods = 4;
  spec.antiphase_fraction = 0.5;
  spec.num_groups = 8;
  const PlanningHorizon horizon = make_traffic_curve(spec);
  // Some group must peak when the base curve troughs.
  bool any_antiphase = false;
  for (int i = 0; i < spec.num_groups; ++i) {
    if (std::abs(horizon.multiplier(0, i) - horizon.multiplier(2, i)) < 1e-9) {
      continue;
    }
    if (horizon.multiplier(0, i) > horizon.multiplier(2, i)) {
      any_antiphase = true;
    }
  }
  EXPECT_TRUE(any_antiphase);
  // And the result is a valid horizon for any instance with 8 groups.
  Rng rng(7400);
  const auto instance = make_random_instance(rng, 8, 3, 2);
  EXPECT_NO_THROW(validate_horizon(instance, horizon));
}

TEST(MultiPeriod, AddFailurePeriodKeepsTheWeightConvention) {
  TrafficCurveSpec spec;
  spec.num_periods = 3;
  spec.period_weight = 0.0;  // the auto-1/T convention
  PlanningHorizon horizon = make_traffic_curve(spec);
  add_failure_period(horizon, {0});
  ASSERT_EQ(horizon.num_periods(), 4);
  EXPECT_EQ(horizon.periods.back().failed_sites, std::vector<int>{0});
  // Mixed zero/nonzero weights are invalid; the helper must keep all-zero.
  EXPECT_EQ(horizon.periods.back().weight, 0.0);
  const auto instance = make_rightsizing_estate({});
  EXPECT_NO_THROW(validate_horizon(instance, horizon));
}

TEST(MultiPeriod, FailedSiteIsEvacuated) {
  const auto instance = make_rightsizing_estate({});
  const CostModel model(instance);
  PlanningHorizon horizon = PlanningHorizon::uniform(1);
  horizon.periods[0].multiplier = 0.5;  // leave room to evacuate site 3
  add_failure_period(horizon, {3}, 0.5);
  const PlannerReport report = run_planner(model, horizon);
  ASSERT_TRUE(report.is_multi_period());
  for (const int j : report.multi.periods.back().primary) EXPECT_NE(j, 3);
  expect_periods_feasible(instance, horizon, report.multi);
}

TEST(MultiPeriod, CurveSpecValidation) {
  TrafficCurveSpec bad;
  bad.num_periods = 0;
  EXPECT_THROW((void)make_traffic_curve(bad), InvalidInputError);
  bad = {};
  bad.trough_multiplier = 1.5;  // above the peak
  EXPECT_THROW((void)make_traffic_curve(bad), InvalidInputError);
  bad = {};
  bad.antiphase_fraction = 0.5;  // requires num_groups
  EXPECT_THROW((void)make_traffic_curve(bad), InvalidInputError);
}

// ---- horizon file round-trip -----------------------------------------------

TEST(MultiPeriod, HorizonFileRoundTrips) {
  const auto instance = make_rightsizing_estate({});
  TrafficCurveSpec spec;
  spec.num_periods = 3;
  spec.migration_cost_per_server = 2.5;
  spec.antiphase_fraction = 0.25;
  spec.num_groups = instance.num_groups();
  PlanningHorizon horizon = make_traffic_curve(spec);
  add_failure_period(horizon, {1, 2});

  const std::string text = write_horizon(horizon, instance);
  const PlanningHorizon parsed = parse_horizon(text, instance);
  ASSERT_EQ(parsed.num_periods(), horizon.num_periods());
  EXPECT_EQ(parsed.migration_cost_per_server,
            horizon.migration_cost_per_server);
  for (int t = 0; t < horizon.num_periods(); ++t) {
    EXPECT_EQ(parsed.period_name(t), horizon.period_name(t));
    EXPECT_NEAR(parsed.period_weight(t), horizon.period_weight(t), 1e-12);
    for (int i = 0; i < instance.num_groups(); ++i) {
      EXPECT_NEAR(parsed.multiplier(t, i), horizon.multiplier(t, i), 1e-12)
          << "t=" << t << " i=" << i;
    }
    EXPECT_EQ(parsed.periods[static_cast<std::size_t>(t)].failed_sites,
              horizon.periods[static_cast<std::size_t>(t)].failed_sites);
  }
  // The canonical encodings agree too (the daemon's cache-key property).
  EXPECT_EQ(horizon_fingerprint(parsed), horizon_fingerprint(horizon));
}

// ---- the deprecated single-snapshot shim -----------------------------------

TEST(MultiPeriod, DeprecatedPlanOverloadStillMatchesPlanInput) {
  Rng rng(7500);
  const auto instance = make_random_instance(rng, 6, 3, 2);
  const CostModel model(instance);
  const EtransformPlanner planner;
  SolveContext ctx;
  const PlannerReport via_input = planner.plan(PlanInput(model), ctx);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const PlannerReport via_shim = planner.plan(model, ctx);
#pragma GCC diagnostic pop
  EXPECT_EQ(via_shim.plan.primary, via_input.plan.primary);
  EXPECT_NEAR(via_shim.plan.cost.total(), via_input.plan.cost.total(), 1e-9);
}

}  // namespace
}  // namespace etransform
