// Tests for the domain model: step schedules, latency penalty functions,
// instance validation, plan checking, and the DR backup sharing law.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "model/cost_schedule.h"
#include "model/entities.h"
#include "model/latency.h"
#include "model/plan.h"

namespace etransform {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(StepSchedule, FlatScheduleIsConstant) {
  const auto schedule = StepSchedule::flat(5.0);
  EXPECT_DOUBLE_EQ(schedule.unit_price(0.0), 5.0);
  EXPECT_DOUBLE_EQ(schedule.unit_price(1e9), 5.0);
  EXPECT_DOUBLE_EQ(schedule.total_cost(10.0), 50.0);
  EXPECT_TRUE(schedule.is_flat());
}

TEST(StepSchedule, VolumeDiscountStepsDown) {
  // $100 base, 8-unit tiers, $10 off per tier, 3 tiers.
  const auto schedule = StepSchedule::volume_discount(100.0, 8.0, 10.0, 3);
  EXPECT_DOUBLE_EQ(schedule.unit_price(1.0), 100.0);
  EXPECT_DOUBLE_EQ(schedule.unit_price(8.0), 100.0);   // boundary inclusive
  EXPECT_DOUBLE_EQ(schedule.unit_price(8.5), 90.0);
  EXPECT_DOUBLE_EQ(schedule.unit_price(16.5), 80.0);
  EXPECT_DOUBLE_EQ(schedule.unit_price(1e6), 80.0);    // last tier infinite
  EXPECT_FALSE(schedule.is_flat());
  // Paper semantics: the discounted price applies to all units.
  EXPECT_DOUBLE_EQ(schedule.total_cost(20.0), 20.0 * 80.0);
}

TEST(StepSchedule, PricesFloorAtZero) {
  const auto schedule = StepSchedule::volume_discount(10.0, 5.0, 8.0, 4);
  EXPECT_DOUBLE_EQ(schedule.unit_price(6.0), 2.0);
  EXPECT_DOUBLE_EQ(schedule.unit_price(11.0), 0.0);
}

TEST(StepSchedule, ExplicitTiersExtendToInfinity) {
  const StepSchedule schedule({{10.0, 4.0}, {20.0, 3.0}});
  EXPECT_DOUBLE_EQ(schedule.unit_price(25.0), 3.0);
  EXPECT_EQ(schedule.tiers().size(), 3u);  // synthetic infinite tail
  EXPECT_TRUE(std::isinf(schedule.tiers().back().upto));
}

TEST(StepSchedule, RejectsInvalidTiers) {
  EXPECT_THROW(StepSchedule({}), InvalidInputError);
  EXPECT_THROW(StepSchedule({{10.0, 1.0}, {5.0, 0.5}}), InvalidInputError);
  EXPECT_THROW(StepSchedule({{10.0, -1.0}}), InvalidInputError);
  EXPECT_THROW(StepSchedule::volume_discount(10.0, 0.0, 1.0, 2),
               InvalidInputError);
  EXPECT_THROW(StepSchedule::volume_discount(10.0, 5.0, 1.0, 0),
               InvalidInputError);
  const auto schedule = StepSchedule::flat(1.0);
  EXPECT_THROW((void)schedule.unit_price(-1.0), InvalidInputError);
}

TEST(LatencyPenalty, DefaultIsInsensitive) {
  const LatencyPenaltyFunction penalty;
  EXPECT_TRUE(penalty.is_insensitive());
  EXPECT_DOUBLE_EQ(penalty.penalty_per_user(1000.0), 0.0);
  EXPECT_FALSE(penalty.violated_at(1000.0));
}

TEST(LatencyPenalty, SingleStepMatchesPaperExample) {
  // $100 per user if average latency exceeds 10 ms.
  const auto penalty = LatencyPenaltyFunction::single_step(10.0, 100.0);
  EXPECT_DOUBLE_EQ(penalty.penalty_per_user(10.0), 0.0);  // not exceeded
  EXPECT_DOUBLE_EQ(penalty.penalty_per_user(10.1), 100.0);
  EXPECT_TRUE(penalty.violated_at(11.0));
  EXPECT_FALSE(penalty.violated_at(9.0));
}

TEST(LatencyPenalty, MultiStepEscalates) {
  const LatencyPenaltyFunction penalty({{10.0, 50.0}, {50.0, 200.0}});
  EXPECT_DOUBLE_EQ(penalty.penalty_per_user(5.0), 0.0);
  EXPECT_DOUBLE_EQ(penalty.penalty_per_user(20.0), 50.0);
  EXPECT_DOUBLE_EQ(penalty.penalty_per_user(60.0), 200.0);
}

TEST(LatencyPenalty, RejectsBadSteps) {
  EXPECT_THROW(LatencyPenaltyFunction({{10.0, 50.0}, {10.0, 60.0}}),
               InvalidInputError);
  EXPECT_THROW(LatencyPenaltyFunction({{10.0, 50.0}, {20.0, 40.0}}),
               InvalidInputError);
  EXPECT_THROW(LatencyPenaltyFunction({{-1.0, 50.0}}), InvalidInputError);
}

TEST(WeightedAverageLatency, WeightsByUsers) {
  EXPECT_DOUBLE_EQ(weighted_average_latency({10.0, 30.0}, {3.0, 1.0}), 15.0);
  EXPECT_DOUBLE_EQ(weighted_average_latency({10.0, 30.0}, {0.0, 0.0}), 0.0);
  EXPECT_THROW((void)weighted_average_latency({10.0}, {1.0, 2.0}),
               InvalidInputError);
  EXPECT_THROW((void)weighted_average_latency({10.0}, {-1.0}),
               InvalidInputError);
}

// ---- instance fixtures -----------------------------------------------------

ConsolidationInstance tiny_instance() {
  ConsolidationInstance instance;
  instance.name = "tiny";
  instance.locations = {UserLocation{"l0", {0, 0}}, UserLocation{"l1", {10, 0}}};
  for (int i = 0; i < 3; ++i) {
    ApplicationGroup group;
    group.name = "g" + std::to_string(i);
    group.servers = i + 1;
    group.monthly_data_megabits = 1000.0;
    group.users_per_location = {10.0, 5.0};
    instance.groups.push_back(group);
  }
  for (int j = 0; j < 2; ++j) {
    DataCenterSite site;
    site.name = "dc" + std::to_string(j);
    site.capacity_servers = 20;
    site.space_cost_per_server = StepSchedule::flat(100.0);
    site.power_cost_per_kwh = StepSchedule::flat(0.1);
    site.labor_cost_per_admin = StepSchedule::flat(6000.0);
    site.wan_cost_per_megabit = StepSchedule::flat(1e-5);
    instance.sites.push_back(site);
    instance.latency_ms.push_back({5.0, 20.0});
  }
  AsIsDataCenter center;
  center.name = "old";
  center.servers = 6;
  center.space_cost_per_server = 200.0;
  center.power_cost_per_kwh = 0.15;
  center.labor_cost_per_admin = 8000.0;
  center.wan_cost_per_megabit = 2e-5;
  instance.as_is_centers.push_back(center);
  instance.as_is_placement = {0, 0, 0};
  instance.as_is_latency_ms.push_back({8.0, 8.0});
  return instance;
}

TEST(ValidateInstance, AcceptsConsistentInstance) {
  EXPECT_NO_THROW(validate_instance(tiny_instance()));
}

TEST(ValidateInstance, RejectsShapeErrors) {
  {
    auto instance = tiny_instance();
    instance.groups[0].users_per_location = {1.0};  // wrong arity
    EXPECT_THROW(validate_instance(instance), InvalidInputError);
  }
  {
    auto instance = tiny_instance();
    instance.latency_ms.pop_back();
    EXPECT_THROW(validate_instance(instance), InvalidInputError);
  }
  {
    auto instance = tiny_instance();
    instance.groups[1].servers = 0;
    EXPECT_THROW(validate_instance(instance), InvalidInputError);
  }
  {
    auto instance = tiny_instance();
    instance.as_is_placement = {0, 0, 7};
    EXPECT_THROW(validate_instance(instance), InvalidInputError);
  }
  {
    auto instance = tiny_instance();
    instance.groups[0].pinned_site = 9;
    EXPECT_THROW(validate_instance(instance), InvalidInputError);
  }
  {
    auto instance = tiny_instance();
    instance.separations.push_back({0, 0});
    EXPECT_THROW(validate_instance(instance), InvalidInputError);
  }
}

TEST(ValidateInstance, RejectsCapacityShortfall) {
  auto instance = tiny_instance();
  for (auto& site : instance.sites) site.capacity_servers = 2;
  EXPECT_THROW(validate_instance(instance), InfeasibleError);
}

TEST(ValidateInstance, RejectsGroupThatFitsNowhereAllowed) {
  auto instance = tiny_instance();
  instance.groups[2].allowed_sites = {1};
  instance.sites[1].capacity_servers = 2;  // group 2 needs 3 servers
  instance.sites[0].capacity_servers = 50;
  EXPECT_THROW(validate_instance(instance), InfeasibleError);
}

TEST(RequiredBackupServers, ImplementsSharingLaw) {
  auto instance = tiny_instance();
  instance.sites.push_back(instance.sites[0]);
  instance.sites[2].name = "dc2";
  instance.latency_ms.push_back({10.0, 10.0});
  // Groups 0 (1 server) and 1 (2 servers) primary at dc0; group 2 (3
  // servers) primary at dc1. All back up at dc2.
  const auto backups =
      required_backup_servers(instance, {0, 0, 1}, {2, 2, 2});
  // dc2 must cover max(loss of dc0, loss of dc1) = max(1+2, 3) = 3.
  EXPECT_EQ(backups[2], 3);
  EXPECT_EQ(backups[0], 0);
  EXPECT_EQ(backups[1], 0);
}

TEST(RequiredBackupServers, SplitBackupsShrinkEachSite) {
  auto instance = tiny_instance();
  instance.sites.push_back(instance.sites[0]);
  instance.sites[2].name = "dc2";
  instance.latency_ms.push_back({10.0, 10.0});
  // dc0 hosts groups 0,1 (3 servers); backups split across dc1 and dc2.
  const auto backups =
      required_backup_servers(instance, {0, 0, 1}, {1, 2, 0});
  EXPECT_EQ(backups[1], 1);  // group 0 only
  EXPECT_EQ(backups[2], 2);  // group 1 only
  EXPECT_EQ(backups[0], 3);  // group 2's 3 servers
}

TEST(CheckPlan, AcceptsFeasiblePlan) {
  const auto instance = tiny_instance();
  Plan plan;
  plan.primary = {0, 0, 1};
  EXPECT_TRUE(check_plan(instance, plan).empty());
}

TEST(CheckPlan, FlagsCapacityPinAndSeparationViolations) {
  auto instance = tiny_instance();
  instance.groups[0].pinned_site = 1;
  instance.separations.push_back({1, 2});
  Plan plan;
  plan.primary = {0, 1, 1};  // violates pin and separation
  const auto problems = check_plan(instance, plan);
  EXPECT_EQ(problems.size(), 2u);

  auto small = tiny_instance();
  small.sites[0].capacity_servers = 2;
  Plan overflow;
  overflow.primary = {0, 0, 1};  // 3 servers at dc0 > 2
  EXPECT_FALSE(check_plan(small, overflow).empty());
}

TEST(CheckPlan, FlagsUnderProvisionedBackups) {
  auto instance = tiny_instance();
  instance.sites.push_back(instance.sites[0]);
  instance.sites[2].name = "dc2";
  instance.latency_ms.push_back({10.0, 10.0});
  Plan plan;
  plan.primary = {0, 0, 1};
  plan.secondary = {2, 2, 2};
  plan.backup_servers = {0, 0, 2};  // needs 3
  EXPECT_FALSE(check_plan(instance, plan).empty());
  plan.backup_servers = {0, 0, 3};
  EXPECT_TRUE(check_plan(instance, plan).empty());
}

TEST(CheckPlan, FlagsIdenticalPrimaryAndSecondary) {
  const auto instance = tiny_instance();
  Plan plan;
  plan.primary = {0, 0, 1};
  plan.secondary = {0, 1, 0};  // group 0: primary == secondary
  plan.backup_servers = {3, 3};
  EXPECT_FALSE(check_plan(instance, plan).empty());
}

TEST(PlanAccessors, SitesUsedAndBackupTotals) {
  Plan plan;
  plan.primary = {0, 0, 1};
  EXPECT_EQ(plan.sites_used(), 2);
  EXPECT_FALSE(plan.has_dr());
  plan.secondary = {1, 1, 0};
  plan.backup_servers = {3, 3};
  EXPECT_TRUE(plan.has_dr());
  EXPECT_EQ(plan.total_backup_servers(), 6);
}

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(CostBreakdown, TotalsAddUp) {
  CostBreakdown cost;
  cost.space = 10;
  cost.power = 20;
  cost.labor = 30;
  cost.wan = 40;
  cost.latency_penalty = 5;
  cost.backup_capex = 100;
  EXPECT_DOUBLE_EQ(cost.operational(), 200.0);
  EXPECT_DOUBLE_EQ(cost.total(), 205.0);
}

}  // namespace
}  // namespace etransform
