// Integration tests: the paper's qualitative claims, asserted end-to-end on
// shrunken datasets (the bench binaries print the full-scale versions).
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "cost/cost_model.h"
#include "datagen/generators.h"
#include "planner/etransform_planner.h"

namespace etransform {
namespace {

EnterpriseSpec mini_spec(std::uint64_t seed) {
  EnterpriseSpec spec;
  spec.name = "mini";
  spec.num_groups = 24;
  spec.total_servers = 140;
  spec.num_as_is_centers = 8;
  spec.num_target_sites = 5;
  spec.total_users = 2400.0;
  spec.seed = seed;
  return spec;
}

PlannerOptions fast_options(bool dr = false) {
  PlannerOptions options;
  options.enable_dr = dr;
  options.milp.search.time_limit_ms = 8000;
  options.milp.search.max_nodes = 8000;
  return options;
}

TEST(Integration, Fig4ShapeOnMiniDataset) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto instance = make_enterprise(mini_spec(seed));
    const CostModel model(instance);

    const Money as_is = model.as_is_cost().total();
    const Plan manual = plan_manual(model, false);
    const Plan greedy = plan_greedy(model, false);
    const EtransformPlanner planner(fast_options());
    SolveContext ctx;
    const PlannerReport report = planner.plan(PlanInput(model), ctx);

    // Everyone beats as-is; eTransform beats both baselines (Fig. 4d).
    EXPECT_LT(manual.cost.total(), as_is) << "seed " << seed;
    EXPECT_LT(greedy.cost.total(), as_is) << "seed " << seed;
    EXPECT_LE(report.plan.cost.total(), greedy.cost.total() + 1e-6)
        << "seed " << seed;
    EXPECT_LE(report.plan.cost.total(), manual.cost.total() + 1e-6)
        << "seed " << seed;
    // eTransform satisfies (nearly) all latency constraints (Fig. 4e);
    // manual, being latency-blind, violates at least as many.
    EXPECT_LE(report.plan.latency_violations, manual.latency_violations)
        << "seed " << seed;
    // Meaningful reduction on the mini estate (the >50% headline is a
    // full-dataset property, exercised by bench_fig4_consolidation; tiny
    // estates have high draw variance).
    EXPECT_LT(report.plan.cost.total(), 0.85 * as_is) << "seed " << seed;
  }
}

TEST(Integration, Fig6ShapeOnMiniDataset) {
  const auto instance = make_enterprise(mini_spec(7));
  const CostModel model(instance);

  const Money as_is_dr = as_is_plus_dr_cost(model).total();
  const Plan manual = plan_manual(model, true);
  const Plan greedy = plan_greedy(model, true);
  const EtransformPlanner planner(fast_options(true));
  SolveContext ctx;
  const PlannerReport report = planner.plan(PlanInput(model), ctx);

  EXPECT_TRUE(check_plan(instance, report.plan).empty());
  // The integrated plan beats bolting DR onto the as-is estate by a wide
  // margin (paper: >25% cheaper) and beats both DR baselines.
  EXPECT_LT(report.plan.cost.total(), 0.75 * as_is_dr);
  EXPECT_LE(report.plan.cost.total(), greedy.cost.total() + 1e-6);
  EXPECT_LE(report.plan.cost.total(), manual.cost.total() + 1e-6);
  // Shared backups: eTransform provisions fewer backup servers than
  // greedy's dedicated mirror.
  EXPECT_LE(report.plan.total_backup_servers(),
            greedy.total_backup_servers());
}

TEST(Integration, Fig7ShapeLatencySweep) {
  // Users far from the cheap site: rising penalties move groups toward the
  // users — total cost saturates, mean latency falls.
  double previous_latency = 1e18;
  double cost_at_zero = 0.0;
  double cost_at_high = 0.0;
  for (const double penalty : {0.0, 60.0, 120.0}) {
    LatencyLineSpec spec;
    spec.num_groups = 40;
    spec.total_servers = 200;
    spec.penalty_per_user = penalty;
    spec.fraction_users_near = 0.0;
    spec.users_per_group = 2.0;
    const auto instance = make_latency_line(spec);
    const CostModel model(instance);
    const EtransformPlanner planner(fast_options());
    SolveContext ctx;
    const PlannerReport report = planner.plan(PlanInput(model), ctx);

    double weighted = 0.0;
    double users = 0.0;
    for (int i = 0; i < instance.num_groups(); ++i) {
      const auto& group = instance.groups[static_cast<std::size_t>(i)];
      weighted += group.total_users() *
                  model.average_latency(
                      i, report.plan.primary[static_cast<std::size_t>(i)]);
      users += group.total_users();
    }
    const double mean_latency = weighted / users;
    EXPECT_LE(mean_latency, previous_latency + 1e-9);
    previous_latency = mean_latency;
    if (penalty == 0.0) cost_at_zero = report.plan.cost.total();
    if (penalty == 120.0) cost_at_high = report.plan.cost.total();
  }
  EXPECT_GT(cost_at_high, cost_at_zero);   // penalties push cost up...
  EXPECT_LT(previous_latency, 20.0);       // ...but latency ends near users
}

TEST(Integration, Fig9UShapedTradeoff) {
  VpnTradeoffSpec spec;
  spec.num_groups = 0;  // only the site cost structure matters here
  const auto instance = make_vpn_tradeoff(spec);
  ApplicationGroup probe;
  probe.name = "probe";
  probe.servers = 1;
  probe.monthly_data_megabits = spec.data_per_group_megabits;
  probe.users_per_location = {1.0};
  auto probed = instance;
  probed.groups.push_back(probe);
  probed.as_is_centers.push_back(
      AsIsDataCenter{"asis", {0, 0}, 1, 10.0, 0.0, 0.0, 0.0});
  probed.as_is_placement = {0};
  probed.as_is_latency_ms.push_back({1.0});
  const CostModel model(probed);

  std::vector<double> totals;
  for (int j = 0; j < probed.num_sites(); ++j) {
    totals.push_back(model.assignment_cost(0, j));
  }
  // U-shape: the minimum is interior, and max/min is large (paper: ~7x).
  const auto lowest = std::min_element(totals.begin(), totals.end());
  const auto highest = std::max_element(totals.begin(), totals.end());
  EXPECT_NE(lowest, totals.begin());
  EXPECT_NE(lowest, totals.end() - 1);
  EXPECT_GT(*highest / *lowest, 4.0);
}

TEST(Integration, Fig10FillsCheapestSiteFirst) {
  VpnTradeoffSpec spec;
  spec.num_groups = 150;
  const auto instance = make_vpn_tradeoff(spec);
  const CostModel model(instance);
  const EtransformPlanner planner(fast_options());
  SolveContext ctx;
  const PlannerReport report = planner.plan(PlanInput(model), ctx);
  EXPECT_EQ(report.plan.sites_used(), 2);  // 150 groups / 100 capacity

  // The fuller site must be the globally cheapest one for a single group.
  std::vector<int> counts(static_cast<std::size_t>(instance.num_sites()), 0);
  for (const int j : report.plan.primary) {
    counts[static_cast<std::size_t>(j)] += 1;
  }
  int fullest = 0;
  for (int j = 1; j < instance.num_sites(); ++j) {
    if (counts[static_cast<std::size_t>(j)] >
        counts[static_cast<std::size_t>(fullest)]) {
      fullest = j;
    }
  }
  int cheapest = 0;
  for (int j = 1; j < instance.num_sites(); ++j) {
    if (model.assignment_cost(0, j) < model.assignment_cost(0, cheapest)) {
      cheapest = j;
    }
  }
  EXPECT_EQ(fullest, cheapest);
  EXPECT_EQ(counts[static_cast<std::size_t>(cheapest)], 100);  // filled
}

}  // namespace
}  // namespace etransform
