// Tests for the LP presolve: reductions preserve optima, infeasibility is
// caught, postsolve reconstructs full solutions, randomized equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/random.h"
#include "lp/presolve.h"
#include "lp/lp_engine.h"
#include "milp/branch_and_bound.h"

namespace etransform::lp {
namespace {

PresolveResult run_presolve(const Model& m) {
  SolveContext ctx;
  return presolve(m, ctx);
}

TEST(Presolve, SubstitutesFixedVariables) {
  Model m;
  const int x = m.add_continuous("x", 3.0, 3.0);  // fixed
  const int y = m.add_continuous("y", 0.0, 10.0);
  m.set_objective(Sense::kMinimize, {{x, 2.0}, {y, 1.0}});
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 5.0);
  const auto result = run_presolve(m);
  ASSERT_EQ(result.status, PresolveStatus::kReduced);
  EXPECT_EQ(result.vars_removed, 1);
  EXPECT_EQ(result.reduced.num_variables(), 1);
  // Row became y >= 2 (a singleton) and was folded into the bound.
  EXPECT_EQ(result.reduced.num_constraints(), 0);
  EXPECT_DOUBLE_EQ(result.reduced.variable(0).lower, 2.0);
  // Objective constant carries 2 * 3.
  EXPECT_DOUBLE_EQ(result.reduced.objective_constant(), 6.0);
}

TEST(Presolve, SingletonRowsTightenBounds) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 100.0);
  m.set_objective(Sense::kMaximize, {{x, 1.0}});
  m.add_constraint("ub", {{x, 2.0}}, Relation::kLessEqual, 10.0);
  m.add_constraint("lb", {{x, -1.0}}, Relation::kLessEqual, -2.0);
  const auto result = run_presolve(m);
  ASSERT_EQ(result.status, PresolveStatus::kReduced);
  EXPECT_EQ(result.reduced.num_constraints(), 0);
  EXPECT_DOUBLE_EQ(result.reduced.variable(0).lower, 2.0);
  EXPECT_DOUBLE_EQ(result.reduced.variable(0).upper, 5.0);
}

TEST(Presolve, IntegerBoundsRoundInward) {
  Model m;
  const int x = m.add_variable("x", 0.2, 7.9, true);
  m.set_objective(Sense::kMinimize, {{x, 1.0}});
  const auto result = run_presolve(m);
  ASSERT_EQ(result.status, PresolveStatus::kReduced);
  EXPECT_DOUBLE_EQ(result.reduced.variable(0).lower, 1.0);
  EXPECT_DOUBLE_EQ(result.reduced.variable(0).upper, 7.0);
}

TEST(Presolve, DetectsInfeasibility) {
  {
    Model m;
    const int x = m.add_continuous("x", 0.0, 1.0);
    m.set_objective(Sense::kMinimize, {{x, 1.0}});
    m.add_constraint("c", {{x, 1.0}}, Relation::kGreaterEqual, 2.0);
    EXPECT_EQ(run_presolve(m).status, PresolveStatus::kInfeasible);
  }
  {
    // Integer var confined to (0.2, 0.8): no integer point.
    Model m;
    m.add_variable("x", 0.2, 0.8, true);
    m.set_objective(Sense::kMinimize, {{0, 1.0}});
    EXPECT_EQ(run_presolve(m).status, PresolveStatus::kInfeasible);
  }
  {
    // Fixed variables make an equality row impossible.
    Model m;
    const int x = m.add_continuous("x", 1.0, 1.0);
    const int y = m.add_continuous("y", 2.0, 2.0);
    m.set_objective(Sense::kMinimize, {});
    m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Relation::kEqual, 7.0);
    EXPECT_EQ(run_presolve(m).status, PresolveStatus::kInfeasible);
  }
}

TEST(Presolve, PostsolveReconstructsFullSolution) {
  Model m;
  const int x = m.add_continuous("x", 4.0, 4.0);
  const int y = m.add_continuous("y", 0.0, 10.0);
  const int z = m.add_continuous("z", 1.0, 1.0);
  m.set_objective(Sense::kMinimize, {{x, 1.0}, {y, 1.0}, {z, 1.0}});
  m.add_constraint("c", {{y, 1.0}}, Relation::kGreaterEqual, 2.0);
  const auto result = run_presolve(m);
  ASSERT_EQ(result.status, PresolveStatus::kReduced);
  const LpEngine solver;
  SolveContext ctx;
  const auto reduced = solver.solve(result.reduced, ctx);
  ASSERT_EQ(reduced.status, SolveStatus::kOptimal);
  const auto full = postsolve(result, reduced.values);
  ASSERT_EQ(full.size(), 3u);
  EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(x)], 4.0);
  EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(y)], 2.0);
  EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(z)], 1.0);
  EXPECT_TRUE(m.is_feasible(full));
  EXPECT_NEAR(m.evaluate_objective(full), reduced.objective, 1e-9);
}

TEST(Presolve, PostsolveRejectsWrongArity) {
  Model m;
  m.add_continuous("x", 0.0, 1.0);
  m.set_objective(Sense::kMinimize, {{0, 1.0}});
  const auto result = run_presolve(m);
  EXPECT_THROW((void)postsolve(result, {0.0, 1.0}), InvalidInputError);
}

class PresolveEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PresolveEquivalence, ReducedModelHasTheSameOptimum) {
  Rng rng(GetParam() + 500);
  Model m;
  const int vars = static_cast<int>(rng.uniform_int(3, 8));
  std::vector<Term> objective;
  for (int j = 0; j < vars; ++j) {
    const double style = rng.uniform();
    double lo = 0.0;
    double hi = rng.uniform(1.0, 8.0);
    if (style < 0.3) lo = hi = rng.uniform(0.0, 4.0);  // many fixed vars
    objective.push_back(
        {m.add_variable("v" + std::to_string(j), lo, hi,
                        rng.uniform() < 0.3),
         rng.uniform(-4.0, 4.0)});
  }
  m.set_objective(Sense::kMinimize, objective, rng.uniform(-5.0, 5.0));
  const int rows = static_cast<int>(rng.uniform_int(1, 5));
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    const int width = static_cast<int>(rng.uniform_int(1, 3));
    for (int k = 0; k < width; ++k) {
      terms.push_back({static_cast<int>(rng.uniform_int(0, vars - 1)),
                       rng.uniform(-2.0, 2.0)});
    }
    m.add_constraint("r" + std::to_string(i), merge_terms(std::move(terms)),
                     rng.uniform() < 0.6 ? Relation::kLessEqual
                                         : Relation::kGreaterEqual,
                     rng.uniform(-4.0, 10.0));
  }

  const milp::BranchAndBoundSolver solver;
  SolveContext ctx;
  const auto direct = solver.solve(m, ctx);
  const auto result = run_presolve(m);
  if (result.status == PresolveStatus::kInfeasible) {
    EXPECT_EQ(direct.status, milp::MilpStatus::kInfeasible);
    return;
  }
  const auto reduced = solver.solve(result.reduced, ctx);
  ASSERT_EQ(direct.status == milp::MilpStatus::kOptimal,
            reduced.status == milp::MilpStatus::kOptimal);
  if (direct.status == milp::MilpStatus::kOptimal) {
    EXPECT_NEAR(direct.objective, reduced.objective,
                1e-6 * std::max(1.0, std::abs(direct.objective)));
    const auto full = postsolve(result, reduced.values);
    EXPECT_TRUE(m.is_feasible(full, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveEquivalence,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace etransform::lp
