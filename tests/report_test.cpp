// Tests for report rendering.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "cost/cost_model.h"
#include "datagen/generators.h"
#include "report/report.h"

namespace etransform {
namespace {

TEST(Report, SummarizeFromPlanCopiesFields) {
  Plan plan;
  plan.primary = {0};
  plan.cost.space = 100.0;
  plan.cost.latency_penalty = 25.0;
  plan.latency_violations = 3;
  const AlgorithmResult result = summarize("X", plan);
  EXPECT_EQ(result.label, "X");
  EXPECT_DOUBLE_EQ(result.operational_cost, 100.0);
  EXPECT_DOUBLE_EQ(result.latency_penalty, 25.0);
  EXPECT_DOUBLE_EQ(result.total(), 125.0);
  EXPECT_EQ(result.latency_violations, 3);
}

TEST(Report, ComparisonShowsReductionsAgainstFirstRow) {
  AlgorithmResult as_is{"AS-IS", 1000.0, 0.0, 0};
  AlgorithmResult better{"eTransform", 400.0, 0.0, 0};
  AlgorithmResult worse{"manual", 1100.0, 100.0, 7};
  const std::string text =
      render_comparison("dataset-x", {as_is, better, worse});
  EXPECT_NE(text.find("dataset-x"), std::string::npos);
  EXPECT_NE(text.find("-60.0%"), std::string::npos);
  EXPECT_NE(text.find("+20.0%"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_THROW((void)render_comparison("x", {}), InvalidInputError);
}

TEST(Report, CostBreakdownListsAllComponents) {
  CostBreakdown cost;
  cost.space = 1;
  cost.power = 2;
  cost.labor = 3;
  cost.wan = 4;
  cost.latency_penalty = 5;
  const std::string text = render_cost_breakdown(cost);
  for (const char* label :
       {"space", "power", "labor", "wan", "latency penalty", "total"}) {
    EXPECT_NE(text.find(label), std::string::npos) << label;
  }
  EXPECT_EQ(text.find("backup capex"), std::string::npos);
  cost.backup_capex = 6;
  EXPECT_NE(render_cost_breakdown(cost).find("backup capex"),
            std::string::npos);
}

TEST(Report, PlanSummaryListsSitesAndBackups) {
  Rng rng(3);
  const auto instance = make_random_instance(rng, 6, 3, 2);
  const CostModel model(instance);
  Plan plan;
  plan.primary.assign(static_cast<std::size_t>(instance.num_groups()), 0);
  plan.secondary.assign(static_cast<std::size_t>(instance.num_groups()), 1);
  plan.backup_servers =
      required_backup_servers(instance, plan.primary, plan.secondary);
  model.price_plan(plan);
  plan.algorithm = "test";
  const std::string text = render_plan_summary(instance, plan);
  EXPECT_NE(text.find("to-be state"), std::string::npos);
  EXPECT_NE(text.find("backup servers"), std::string::npos);
  EXPECT_NE(text.find(instance.sites[0].name), std::string::npos);
}

TEST(Report, InstanceSummaryShowsTableIIStatistics) {
  Rng rng(5);
  const auto instance = make_random_instance(rng, 6, 3, 2);
  const std::string text = render_instance_summary(instance);
  EXPECT_NE(text.find("application groups"), std::string::npos);
  EXPECT_NE(text.find("physical servers"), std::string::npos);
  EXPECT_NE(text.find("target data centers"), std::string::npos);
}

}  // namespace
}  // namespace etransform
