// Tests for the cost model: coefficient algebra, volume discounts in plan
// pricing, VPN-link WAN, DR pricing, as-is pricing, marginal costs.
#include <gtest/gtest.h>

#include "common/error.h"
#include "cost/cost_model.h"

namespace etransform {
namespace {

ConsolidationInstance base_instance() {
  ConsolidationInstance instance;
  instance.name = "cost-test";
  instance.locations = {UserLocation{"l0", {0, 0}},
                        UserLocation{"l1", {100, 0}}};
  ApplicationGroup a;
  a.name = "a";
  a.servers = 2;
  a.monthly_data_megabits = 1.0e6;
  a.users_per_location = {30.0, 10.0};
  a.latency_penalty = LatencyPenaltyFunction::single_step(10.0, 100.0);
  ApplicationGroup b;
  b.name = "b";
  b.servers = 4;
  b.monthly_data_megabits = 2.0e6;
  b.users_per_location = {0.0, 20.0};
  instance.groups = {a, b};

  DataCenterSite near_site;
  near_site.name = "near";
  near_site.capacity_servers = 100;
  near_site.space_cost_per_server = StepSchedule::flat(100.0);
  near_site.power_cost_per_kwh = StepSchedule::flat(0.1);
  near_site.labor_cost_per_admin = StepSchedule::flat(6500.0);
  near_site.wan_cost_per_megabit = StepSchedule::flat(1.0e-5);
  DataCenterSite far_site = near_site;
  far_site.name = "far";
  far_site.space_cost_per_server = StepSchedule::flat(60.0);
  instance.sites = {near_site, far_site};
  instance.latency_ms = {{5.0, 20.0}, {20.0, 5.0}};

  AsIsDataCenter center;
  center.name = "old";
  center.servers = 6;
  center.space_cost_per_server = 200.0;
  center.power_cost_per_kwh = 0.12;
  center.labor_cost_per_admin = 7800.0;
  center.wan_cost_per_megabit = 2.0e-5;
  instance.as_is_centers = {center};
  instance.as_is_placement = {0, 0};
  instance.as_is_latency_ms = {{6.0, 25.0}};

  instance.params.server_power_kw = 0.4;
  instance.params.servers_per_admin = 130.0;
  instance.params.hours_per_month = 730.0;
  return instance;
}

TEST(CostModel, AverageLatencyIsUserWeighted) {
  const auto instance = base_instance();
  const CostModel model(instance);
  // Group a at "near": (30*5 + 10*20) / 40 = 8.75 ms.
  EXPECT_NEAR(model.average_latency(0, 0), 8.75, 1e-12);
  // Group a at "far": (30*20 + 10*5) / 40 = 16.25 ms.
  EXPECT_NEAR(model.average_latency(0, 1), 16.25, 1e-12);
  // Group b (all users at l1) at "far": 5 ms.
  EXPECT_NEAR(model.average_latency(1, 1), 5.0, 1e-12);
}

TEST(CostModel, LatencyPenaltyAppliesBeyondThreshold) {
  const auto instance = base_instance();
  const CostModel model(instance);
  EXPECT_DOUBLE_EQ(model.latency_penalty(0, 0), 0.0);  // 8.75 <= 10
  EXPECT_DOUBLE_EQ(model.latency_penalty(0, 1), 40.0 * 100.0);
  EXPECT_FALSE(model.latency_violated(0, 0));
  EXPECT_TRUE(model.latency_violated(0, 1));
  // Group b is insensitive everywhere.
  EXPECT_DOUBLE_EQ(model.latency_penalty(1, 0), 0.0);
  EXPECT_FALSE(model.latency_violated(1, 0));
}

TEST(CostModel, AssignmentCostCombinesComponents) {
  const auto instance = base_instance();
  const CostModel model(instance);
  // Group b at far: 4 * (60 + 0.1*0.4*730 + 6500/130) + 2e6 * 1e-5 + 0.
  const double expected = 4 * (60.0 + 29.2 + 50.0) + 20.0;
  EXPECT_NEAR(model.assignment_cost(1, 1), expected, 1e-9);
}

TEST(CostModel, SiteCostAppliesVolumeDiscounts) {
  auto instance = base_instance();
  instance.sites[0].space_cost_per_server =
      StepSchedule::volume_discount(100.0, 3.0, 20.0, 3);
  const CostModel model(instance);
  // 2 servers: first tier, $100 each.
  EXPECT_NEAR(model.site_cost(0, 2, 0.0).space, 200.0, 1e-9);
  // 6 servers: second tier, $80 each (applies to all units).
  EXPECT_NEAR(model.site_cost(0, 6, 0.0).space, 480.0, 1e-9);
  EXPECT_THROW((void)model.site_cost(0, -1, 0.0), InvalidInputError);
  EXPECT_THROW((void)model.site_cost(5, 1, 0.0), InvalidInputError);
}

TEST(CostModel, PricePlanMatchesHandComputation) {
  const auto instance = base_instance();
  const CostModel model(instance);
  Plan plan;
  plan.primary = {0, 1};
  model.price_plan(plan);
  // Site near: 2 servers. Site far: 4 servers.
  const double space = 2 * 100.0 + 4 * 60.0;
  const double power = 6 * 0.4 * 730 * 0.1;
  const double labor = 6 / 130.0 * 6500.0;
  const double wan = 1.0e6 * 1e-5 + 2.0e6 * 1e-5;
  EXPECT_NEAR(plan.cost.space, space, 1e-9);
  EXPECT_NEAR(plan.cost.power, power, 1e-9);
  EXPECT_NEAR(plan.cost.labor, labor, 1e-9);
  EXPECT_NEAR(plan.cost.wan, wan, 1e-9);
  EXPECT_DOUBLE_EQ(plan.cost.latency_penalty, 0.0);
  EXPECT_EQ(plan.latency_violations, 0);
}

TEST(CostModel, PricePlanCountsViolations) {
  const auto instance = base_instance();
  const CostModel model(instance);
  Plan plan;
  plan.primary = {1, 1};  // group a far from its users
  model.price_plan(plan);
  EXPECT_EQ(plan.latency_violations, 1);
  EXPECT_DOUBLE_EQ(plan.cost.latency_penalty, 4000.0);
}

TEST(CostModel, DrPlanAddsBackupCosts) {
  const auto instance = base_instance();
  const CostModel model(instance);
  Plan plan;
  plan.primary = {0, 1};
  plan.secondary = {1, 0};
  plan.backup_servers = {4, 2};
  model.price_plan(plan);
  // Backups join the server aggregates: near 2+4, far 4+2.
  EXPECT_NEAR(plan.cost.space, 6 * 100.0 + 6 * 60.0, 1e-9);
  // Replication doubles the WAN bytes (each group's data at both sites).
  EXPECT_NEAR(plan.cost.wan, 2 * (1.0e6 + 2.0e6) * 1e-5, 1e-9);
  EXPECT_NEAR(plan.cost.backup_capex, 6 * 1000.0, 1e-9);
  // Group a's secondary is "far": one violation and its penalty.
  EXPECT_EQ(plan.latency_violations, 1);
  EXPECT_DOUBLE_EQ(plan.cost.latency_penalty, 4000.0);
}

TEST(CostModel, VpnModeUsesLinkFormula) {
  auto instance = base_instance();
  instance.use_vpn_links = true;
  instance.params.vpn_link_capacity_megabits = 1.0e5;
  instance.vpn_link_monthly_cost = {{100.0, 400.0}, {400.0, 100.0}};
  const CostModel model(instance);
  // Group a at site 0: share l0 = 0.75, l1 = 0.25, data 1e6 => links
  // 7.5 and 2.5 => 7.5*100 + 2.5*400 = 1750.
  EXPECT_NEAR(model.wan_cost(0, 0), 1750.0, 1e-9);
  // Flat-WAN aggregate must not also be charged in VPN mode.
  Plan plan;
  plan.primary = {0, 1};
  model.price_plan(plan);
  const double wan_b_at_far = (20.0 / 20.0) * 2.0e6 / 1.0e5 * 100.0;
  EXPECT_NEAR(plan.cost.wan, 1750.0 + wan_b_at_far, 1e-9);
}

TEST(CostModel, MarginalCostMatchesSiteCostDelta) {
  auto instance = base_instance();
  instance.sites[0].space_cost_per_server =
      StepSchedule::volume_discount(100.0, 3.0, 20.0, 3);
  const CostModel model(instance);
  const Money before = model.site_cost(0, 2, 5.0e5).total();
  const Money after = model.site_cost(0, 6, 2.5e6).total();
  EXPECT_NEAR(model.marginal_cost(1, 0, 2, 5.0e5),
              after - before + model.latency_penalty(1, 0), 1e-9);
}

TEST(CostModel, AsIsCostUsesCenterRates) {
  const auto instance = base_instance();
  const CostModel model(instance);
  const CostBreakdown cost = model.as_is_cost();
  EXPECT_NEAR(cost.space, 6 * 200.0, 1e-9);
  EXPECT_NEAR(cost.power, 6 * 0.4 * 730 * 0.12, 1e-9);
  EXPECT_NEAR(cost.labor, 6 / 130.0 * 7800.0, 1e-9);
  EXPECT_NEAR(cost.wan, 3.0e6 * 2.0e-5, 1e-9);
  // As-is latency for group a: (30*6 + 10*25)/40 = 10.75 > 10 -> penalty.
  EXPECT_DOUBLE_EQ(cost.latency_penalty, 4000.0);
  EXPECT_EQ(model.as_is_latency_violations(), 1);
}

TEST(CostModel, RejectsMalformedPlans) {
  const auto instance = base_instance();
  const CostModel model(instance);
  Plan plan;
  plan.primary = {0};
  EXPECT_THROW(model.price_plan(plan), InvalidInputError);
  plan.primary = {0, 9};
  EXPECT_THROW(model.price_plan(plan), InvalidInputError);
  plan.primary = {0, 1};
  plan.secondary = {1, 0};
  EXPECT_THROW(model.price_plan(plan), InvalidInputError);  // missing backups
}

TEST(CostModel, IndexChecksThrow) {
  const auto instance = base_instance();
  const CostModel model(instance);
  EXPECT_THROW((void)model.average_latency(-1, 0), InvalidInputError);
  EXPECT_THROW((void)model.latency_penalty(0, 2), InvalidInputError);
}

}  // namespace
}  // namespace etransform
