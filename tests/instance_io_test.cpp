// Tests for the .etf instance serialization: round-trips, hand-written
// files, and malformed-input rejection.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "model/instance_io.h"

namespace etransform {
namespace {

void expect_equivalent(const ConsolidationInstance& a,
                       const ConsolidationInstance& b) {
  ASSERT_EQ(a.num_groups(), b.num_groups());
  ASSERT_EQ(a.num_sites(), b.num_sites());
  ASSERT_EQ(a.num_locations(), b.num_locations());
  EXPECT_EQ(a.use_vpn_links, b.use_vpn_links);
  EXPECT_EQ(a.as_is_placement, b.as_is_placement);
  for (int i = 0; i < a.num_groups(); ++i) {
    const auto& ga = a.groups[static_cast<std::size_t>(i)];
    const auto& gb = b.groups[static_cast<std::size_t>(i)];
    EXPECT_EQ(ga.servers, gb.servers);
    EXPECT_DOUBLE_EQ(ga.monthly_data_megabits, gb.monthly_data_megabits);
    EXPECT_EQ(ga.users_per_location, gb.users_per_location);
    EXPECT_EQ(ga.pinned_site, gb.pinned_site);
    EXPECT_EQ(ga.allowed_sites, gb.allowed_sites);
    ASSERT_EQ(ga.latency_penalty.steps().size(),
              gb.latency_penalty.steps().size());
    for (std::size_t s = 0; s < ga.latency_penalty.steps().size(); ++s) {
      EXPECT_DOUBLE_EQ(ga.latency_penalty.steps()[s].threshold_ms,
                       gb.latency_penalty.steps()[s].threshold_ms);
      EXPECT_DOUBLE_EQ(ga.latency_penalty.steps()[s].penalty_per_user,
                       gb.latency_penalty.steps()[s].penalty_per_user);
    }
  }
  for (int j = 0; j < a.num_sites(); ++j) {
    const auto& sa = a.sites[static_cast<std::size_t>(j)];
    const auto& sb = b.sites[static_cast<std::size_t>(j)];
    EXPECT_EQ(sa.capacity_servers, sb.capacity_servers);
    ASSERT_EQ(sa.space_cost_per_server.tiers().size(),
              sb.space_cost_per_server.tiers().size());
    for (std::size_t t = 0; t < sa.space_cost_per_server.tiers().size();
         ++t) {
      EXPECT_DOUBLE_EQ(sa.space_cost_per_server.tiers()[t].unit_price,
                       sb.space_cost_per_server.tiers()[t].unit_price);
    }
    EXPECT_EQ(a.latency_ms[static_cast<std::size_t>(j)],
              b.latency_ms[static_cast<std::size_t>(j)]);
  }
  EXPECT_EQ(a.separations.size(), b.separations.size());
  EXPECT_EQ(a.as_is_centers.size(), b.as_is_centers.size());
}

TEST(InstanceIo, RoundTripsRandomInstances) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    auto instance = make_random_instance(rng, 8, 3, 2);
    instance.groups[0].pinned_site = 1;
    instance.groups[1].allowed_sites = {0, 2};
    instance.separations.push_back({2, 3});
    const ConsolidationInstance reparsed =
        parse_instance(write_instance(instance));
    expect_equivalent(instance, reparsed);
    // Fixed point: a second write is byte-identical.
    EXPECT_EQ(write_instance(instance), write_instance(reparsed));
  }
}

TEST(InstanceIo, RoundTripsVpnMode) {
  VpnTradeoffSpec spec;
  spec.num_groups = 20;
  const auto instance = make_vpn_tradeoff(spec);
  const ConsolidationInstance reparsed =
      parse_instance(write_instance(instance));
  EXPECT_TRUE(reparsed.use_vpn_links);
  expect_equivalent(instance, reparsed);
}

TEST(InstanceIo, RoundTripsEnterprise1Exactly) {
  const auto instance = make_enterprise1();
  const ConsolidationInstance reparsed =
      parse_instance(write_instance(instance));
  expect_equivalent(instance, reparsed);
  EXPECT_EQ(reparsed.total_servers(), 1070);
}

TEST(InstanceIo, ParsesHandWrittenFile) {
  const std::string text = R"(# tiny estate
etransform-instance v1
name demo
params 0.35 130 1e6 1000 730
location east 0 0
location west 100 0
site colo-a 10 0 50
site.space colo-a 20 100 inf 80
site.power colo-a inf 0.1
site.labor colo-a inf 6000
site.wan colo-a inf 1.5e-5
site.latency colo-a 5 30
site colo-b 90 0 50
site.space colo-b inf 120
site.power colo-b inf 0.12
site.labor colo-b inf 7000
site.wan colo-b inf 1.5e-5
site.latency colo-b 30 5
group crm 8 1e6 100 0
group.penalty crm 10 100
group erp 12 2e6 50 50
group.allow erp colo-a colo-b
asis room 0 0 250 3e-5 0.2 9000
asis.latency room 6 28
place crm room
place erp room
end
)";
  const ConsolidationInstance instance = parse_instance(text);
  EXPECT_EQ(instance.name, "demo");
  EXPECT_EQ(instance.num_groups(), 2);
  EXPECT_EQ(instance.num_sites(), 2);
  EXPECT_EQ(instance.groups[0].servers, 8);
  EXPECT_DOUBLE_EQ(
      instance.groups[0].latency_penalty.penalty_per_user(11.0), 100.0);
  EXPECT_EQ(instance.groups[1].allowed_sites, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(
      instance.sites[0].space_cost_per_server.unit_price(25.0), 80.0);
  EXPECT_EQ(instance.as_is_placement, (std::vector<int>{0, 0}));
  EXPECT_EQ(instance.as_is_centers[0].servers, 20);
}

TEST(InstanceIo, RejectsMalformedFiles) {
  EXPECT_THROW((void)parse_instance(""), ParseError);
  EXPECT_THROW((void)parse_instance("wrong header\nend\n"), ParseError);
  EXPECT_THROW((void)parse_instance("etransform-instance v1\n"), ParseError);
  // Unknown directive.
  EXPECT_THROW(
      (void)parse_instance("etransform-instance v1\nbogus x\nend\n"),
      ParseError);
  // Reference before definition.
  EXPECT_THROW((void)parse_instance(
                   "etransform-instance v1\nsite.latency nowhere 1\nend\n"),
               ParseError);
  // Bad number.
  EXPECT_THROW((void)parse_instance(
                   "etransform-instance v1\nlocation l x 0\nend\n"),
               ParseError);
  // Wrong per-location arity.
  EXPECT_THROW(
      (void)parse_instance("etransform-instance v1\nlocation l 0 0\n"
                           "site s 0 0 10\nsite.latency s 1 2\nend\n"),
      ParseError);
}

TEST(InstanceIo, ReportsLineNumbers) {
  try {
    (void)parse_instance("etransform-instance v1\nname ok\nbogus\nend\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(InstanceIo, ParsedInstanceFailsValidationWhenInconsistent) {
  // Structurally parseable but semantically infeasible: capacity shortfall.
  const std::string text = R"(etransform-instance v1
name bad
params 0.35 130 1e6 1000 730
location l 0 0
site s 0 0 2
site.space s inf 10
site.power s inf 0
site.labor s inf 0
site.wan s inf 0
site.latency s 5
group g 5 0 1
end
)";
  EXPECT_THROW((void)parse_instance(text), InfeasibleError);
}

}  // namespace
}  // namespace etransform
