// Tests for the shared JSON library (common/json.h): writer escaping and
// number formatting, parser strictness, DOM helpers, and round-tripping.
#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace etransform {
namespace {

using json::Value;

// ---- writer --------------------------------------------------------------

TEST(JsonWriter, EscapesSpecialAndControlCharacters) {
  EXPECT_EQ(json::escape("plain"), "\"plain\"");
  EXPECT_EQ(json::escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json::escape("\b\f\n\r\t"), "\"\\b\\f\\n\\r\\t\"");
  EXPECT_EQ(json::escape(std::string("\x01\x1f", 2)), "\"\\u0001\\u001f\"");
  // UTF-8 multibyte passes through untouched.
  EXPECT_EQ(json::escape("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
}

TEST(JsonWriter, NumbersRoundTripAndNonFiniteIsNull) {
  std::string out;
  json::append_number(out, 0.1);
  Value parsed;
  ASSERT_TRUE(json::parse(out, parsed, nullptr));
  EXPECT_EQ(parsed.num, 0.1);  // %.17g is round-trippable

  out.clear();
  json::append_number(out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "null");
  out.clear();
  json::append_number(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
}

TEST(JsonWriter, DumpsNestedDocuments) {
  Value doc = Value::object();
  doc.set("name", Value::string("a\nb"));
  doc.set("count", Value::number(3));
  doc.set("ok", Value::boolean(true));
  doc.set("nothing", Value::null());
  Value list = Value::array();
  list.push(Value::number(1)).push(Value::number(2));
  doc.set("list", std::move(list));
  EXPECT_EQ(doc.dump(),
            "{\"name\":\"a\\nb\",\"count\":3,\"ok\":true,"
            "\"nothing\":null,\"list\":[1,2]}");
}

TEST(JsonWriter, SetReplacesExistingKeyInPlace) {
  Value doc = Value::object();
  doc.set("k", Value::number(1));
  doc.set("other", Value::number(2));
  doc.set("k", Value::number(9));
  EXPECT_EQ(doc.dump(), "{\"k\":9,\"other\":2}");
}

// ---- parser --------------------------------------------------------------

TEST(JsonParser, RoundTripsWriterOutput) {
  Value doc = Value::object();
  doc.set("text", Value::string("line1\nline2\t\"quoted\""));
  doc.set("pi", Value::number(3.14159265358979));
  Value reparsed;
  ASSERT_TRUE(json::parse(doc.dump(), reparsed, nullptr));
  ASSERT_TRUE(reparsed.is_object());
  EXPECT_EQ(reparsed.get("text")->str, "line1\nline2\t\"quoted\"");
  EXPECT_EQ(reparsed.get("pi")->num, 3.14159265358979);
  // Dump of the reparse is byte-identical: a fixed point.
  EXPECT_EQ(reparsed.dump(), doc.dump());
}

TEST(JsonParser, DecodesUnicodeEscapesAsUtf8) {
  Value v;
  ASSERT_TRUE(json::parse("\"\\u0041\\u00e9\\u20ac\"", v, nullptr));
  EXPECT_EQ(v.str, "A\xc3\xa9\xe2\x82\xac");  // A, é, €
}

TEST(JsonParser, RejectsMalformedDocuments) {
  Value v;
  std::string error;
  EXPECT_FALSE(json::parse("{\"a\":1} trailing", v, &error));
  EXPECT_EQ(error, "trailing garbage");
  EXPECT_FALSE(json::parse("\"unterminated", v, nullptr));
  EXPECT_FALSE(json::parse("\"bad\\qescape\"", v, nullptr));
  EXPECT_FALSE(json::parse(std::string("\"raw\x01ctl\""), v, nullptr));
  EXPECT_FALSE(json::parse("[1,2", v, nullptr));
  EXPECT_FALSE(json::parse("{\"a\" 1}", v, nullptr));
  EXPECT_FALSE(json::parse("tru", v, nullptr));
  EXPECT_FALSE(json::parse("", v, nullptr));
}

TEST(JsonParser, RejectsPathologicallyDeepNestingWithoutCrashing) {
  // Each bracket recurses once; without the depth cap a hostile request
  // body of a few hundred thousand brackets overflows the parser's stack.
  Value v;
  std::string error;
  EXPECT_FALSE(json::parse(std::string(500000, '['), v, &error));
  EXPECT_EQ(error, "nesting too deep");
  std::string mixed;
  for (int i = 0; i < 250000; ++i) mixed += "{\"k\":[";
  EXPECT_FALSE(json::parse(mixed, v, nullptr));
  // Well under the cap still parses.
  const std::string deep_ok =
      std::string(200, '[') + "1" + std::string(200, ']');
  EXPECT_TRUE(json::parse(deep_ok, v, nullptr));
  // Depth is nesting, not element count: long flat arrays are fine.
  std::string flat = "[0";
  for (int i = 0; i < 1000; ++i) flat += ",[0]";
  flat += "]";
  EXPECT_TRUE(json::parse(flat, v, nullptr));
}

TEST(JsonParser, ParsesScalarsAndContainers) {
  Value v;
  ASSERT_TRUE(json::parse(" [ null , true , -2.5e3 , {} ] ", v, nullptr));
  ASSERT_EQ(v.arr.size(), 4u);
  EXPECT_TRUE(v.arr[0].is_null());
  EXPECT_TRUE(v.arr[1].b);
  EXPECT_EQ(v.arr[2].num, -2500.0);
  EXPECT_TRUE(v.arr[3].is_object());
}

}  // namespace
}  // namespace etransform
