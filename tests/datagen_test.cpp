// Tests for the dataset generators: Table II statistics, §VI-B setup rules,
// determinism, and scenario shapes for Figs. 7-10.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.h"
#include "cost/cost_model.h"
#include "datagen/generators.h"

namespace etransform {
namespace {

TEST(Datagen, Enterprise1MatchesTableII) {
  const auto instance = make_enterprise1();
  EXPECT_EQ(instance.num_groups(), 190);
  EXPECT_EQ(instance.total_servers(), 1070);
  EXPECT_EQ(instance.as_is_centers.size(), 67u);
  EXPECT_EQ(instance.num_sites(), 10);
  EXPECT_EQ(instance.num_locations(), 4);
  double users = 0.0;
  for (const auto& group : instance.groups) users += group.total_users();
  EXPECT_NEAR(users, 18913.0, 1.0);
}

TEST(Datagen, FloridaMatchesTableII) {
  const auto instance = make_florida();
  EXPECT_EQ(instance.num_groups(), 190);
  EXPECT_EQ(instance.total_servers(), 3907);
  EXPECT_EQ(instance.as_is_centers.size(), 43u);
  EXPECT_EQ(instance.num_sites(), 10);
}

TEST(Datagen, FederalMatchesTableII) {
  const auto instance = make_federal();
  EXPECT_EQ(instance.num_groups(), 1900);
  EXPECT_EQ(instance.total_servers(), 42800);
  EXPECT_EQ(instance.as_is_centers.size(), 2094u);
  EXPECT_EQ(instance.num_sites(), 100);
}

TEST(Datagen, HalfTheGroupsAreLatencySensitive) {
  const auto instance = make_enterprise1();
  int sensitive = 0;
  for (const auto& group : instance.groups) {
    if (!group.latency_penalty.is_insensitive()) {
      ++sensitive;
      // $100 per user beyond 10 ms (§VI-B).
      EXPECT_DOUBLE_EQ(group.latency_penalty.penalty_per_user(11.0), 100.0);
      EXPECT_DOUBLE_EQ(group.latency_penalty.penalty_per_user(9.0), 0.0);
    }
  }
  EXPECT_EQ(sensitive, 95);
}

TEST(Datagen, SitesFallIntoFiveLatencyClasses) {
  const auto instance = make_enterprise1();
  for (const auto& row : instance.latency_ms) {
    const std::multiset<double> values(row.begin(), row.end());
    const bool near_one =
        values == std::multiset<double>{5.0, 20.0, 20.0, 20.0};
    const bool central =
        values == std::multiset<double>{10.0, 10.0, 10.0, 10.0};
    EXPECT_TRUE(near_one || central);
  }
}

TEST(Datagen, GroupSizesAreHeavyTailed) {
  const auto instance = make_enterprise1();
  int biggest = 0;
  int smallest = 1 << 30;
  for (const auto& group : instance.groups) {
    biggest = std::max(biggest, group.servers);
    smallest = std::min(smallest, group.servers);
  }
  EXPECT_EQ(smallest, 1);
  EXPECT_GT(biggest, 20);
}

TEST(Datagen, DeterministicPerSeed) {
  const auto a = make_enterprise1(42);
  const auto b = make_enterprise1(42);
  const auto c = make_enterprise1(7);
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (int i = 0; i < a.num_groups(); ++i) {
    EXPECT_EQ(a.groups[static_cast<std::size_t>(i)].servers,
              b.groups[static_cast<std::size_t>(i)].servers);
  }
  bool any_difference = false;
  for (int i = 0; i < a.num_groups(); ++i) {
    any_difference |= a.groups[static_cast<std::size_t>(i)].servers !=
                      c.groups[static_cast<std::size_t>(i)].servers;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Datagen, AsIsRatesExceedTargetBaseRates) {
  // The consolidation story requires the old estate to be pricier than the
  // target colocation sites on average.
  const auto instance = make_enterprise1();
  double as_is_space = 0.0;
  for (const auto& center : instance.as_is_centers) {
    as_is_space += center.space_cost_per_server;
  }
  as_is_space /= static_cast<double>(instance.as_is_centers.size());
  double target_space = 0.0;
  for (const auto& site : instance.sites) {
    target_space += site.space_cost_per_server.unit_price(0.0);
  }
  target_space /= instance.num_sites();
  EXPECT_GT(as_is_space, target_space);
}

TEST(Datagen, TargetSitesHaveVolumeDiscounts) {
  const auto instance = make_enterprise1();
  for (const auto& site : instance.sites) {
    EXPECT_FALSE(site.space_cost_per_server.is_flat());
    EXPECT_GT(site.space_cost_per_server.unit_price(0.0),
              site.space_cost_per_server.unit_price(
                  site.capacity_servers));
  }
}

TEST(Datagen, LatencyLineShape) {
  LatencyLineSpec spec;
  spec.penalty_per_user = 50.0;
  spec.fraction_users_near = 0.25;
  const auto instance = make_latency_line(spec);
  EXPECT_EQ(instance.num_sites(), 10);
  EXPECT_EQ(instance.num_locations(), 2);
  EXPECT_EQ(instance.total_servers(), 1070);
  // Latency rises away from "near", falls toward "far"; space cost rises.
  EXPECT_DOUBLE_EQ(instance.latency_ms[0][0], 5.0);
  EXPECT_DOUBLE_EQ(instance.latency_ms[9][0], 5.0 + 15.0 * 9);
  EXPECT_DOUBLE_EQ(instance.latency_ms[9][1], 5.0);
  EXPECT_LT(instance.sites[0].space_cost_per_server.unit_price(0.0),
            instance.sites[9].space_cost_per_server.unit_price(0.0));
  // User split honored.
  EXPECT_NEAR(instance.groups[0].users_per_location[0], 0.25, 1e-12);
  EXPECT_NEAR(instance.groups[0].users_per_location[1], 0.75, 1e-12);
}

TEST(Datagen, VpnTradeoffIsUShaped) {
  VpnTradeoffSpec spec;
  const auto instance = make_vpn_tradeoff(spec);
  EXPECT_TRUE(instance.use_vpn_links);
  EXPECT_EQ(instance.num_groups(), 700);
  // Space rises with k, VPN cost falls with k.
  for (int k = 1; k < instance.num_sites(); ++k) {
    EXPECT_GT(
        instance.sites[static_cast<std::size_t>(k)]
            .space_cost_per_server.unit_price(0.0),
        instance.sites[static_cast<std::size_t>(k - 1)]
            .space_cost_per_server.unit_price(0.0));
    EXPECT_LT(instance.vpn_link_monthly_cost[static_cast<std::size_t>(k)][0],
              instance.vpn_link_monthly_cost[static_cast<std::size_t>(k - 1)]
                                            [0]);
  }
}

TEST(Datagen, RejectsBadSpecs) {
  EnterpriseSpec bad;
  bad.num_groups = 0;
  EXPECT_THROW((void)make_enterprise(bad), InvalidInputError);
  LatencyLineSpec bad_line;
  bad_line.num_sites = 1;
  EXPECT_THROW((void)make_latency_line(bad_line), InvalidInputError);
  VpnTradeoffSpec bad_vpn;
  bad_vpn.site_capacity = 0;
  EXPECT_THROW((void)make_vpn_tradeoff(bad_vpn), InvalidInputError);
}

TEST(Datagen, AsIsPlacementSitsNearUsers) {
  // Enterprises grew next to their users: groups with a dominant user
  // region live in a center of that region, so the as-is state's latency
  // violations come only from the uniform-user class (~1/5 of the 95
  // sensitive groups).
  const auto instance = make_enterprise1();
  const CostModel model(instance);
  EXPECT_LT(model.as_is_latency_violations(), 35);
  EXPECT_GT(model.as_is_latency_violations(), 0);
}

TEST(Datagen, AsIsCostExceedsTypicalPlanCost) {
  // The consolidation story: the dispersed estate at retail rates costs a
  // multiple of what the colocation sites charge at volume.
  const auto instance = make_enterprise1();
  const CostModel model(instance);
  const CostBreakdown as_is = model.as_is_cost();
  // Rough floor: all servers at the cheapest site's deepest tier.
  Money cheapest_unit = 1e18;
  for (const auto& site : instance.sites) {
    cheapest_unit = std::min(
        cheapest_unit,
        site.space_cost_per_server.unit_price(site.capacity_servers));
  }
  EXPECT_GT(as_is.space, 2.0 * cheapest_unit * instance.total_servers());
}

TEST(Datagen, RandomInstancesAlwaysValidate) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    EXPECT_NO_THROW((void)make_random_instance(rng, 10, 4, 3));
  }
}

}  // namespace
}  // namespace etransform
