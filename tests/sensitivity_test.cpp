// Tests for the placement sensitivity analysis.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "planner/etransform_planner.h"
#include "report/sensitivity.h"

namespace etransform {
namespace {

TEST(Sensitivity, RegretIsNonNegativeForOptimalPlans) {
  // If the plan is optimal, moving any single group cannot reduce cost, so
  // every regret is >= 0 (up to solver tolerance).
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const auto instance = make_random_instance(rng, 8, 3, 2);
    const CostModel model(instance);
    PlannerOptions options;
    options.milp.search.time_limit_ms = 5000;
    const EtransformPlanner planner(options);
    SolveContext ctx;
    const PlannerReport report = planner.plan(PlanInput(model), ctx);
    const SensitivityReport sensitivity =
        analyze_sensitivity(model, report.plan);
    for (const auto& g : sensitivity.groups) {
      if (g.runner_up_site >= 0) {
        EXPECT_GE(g.regret, -1e-5) << "seed " << seed << " group " << g.group;
      }
    }
  }
}

TEST(Sensitivity, RegretMatchesHandComputation) {
  // Two flat-price sites: regret of moving a group from the cheap site to
  // the pricey one is exactly servers * price delta.
  ConsolidationInstance instance;
  instance.locations = {UserLocation{"l", {0, 0}}};
  for (int i = 0; i < 2; ++i) {
    ApplicationGroup group;
    group.name = "g" + std::to_string(i);
    group.servers = 3;
    group.users_per_location = {1.0};
    instance.groups.push_back(group);
  }
  for (int j = 0; j < 2; ++j) {
    DataCenterSite site;
    site.name = "dc" + std::to_string(j);
    site.capacity_servers = 20;
    site.space_cost_per_server = StepSchedule::flat(j == 0 ? 40.0 : 100.0);
    instance.sites.push_back(site);
    instance.latency_ms.push_back({5.0});
  }
  const CostModel model(instance);
  Plan plan;
  plan.primary = {0, 0};
  model.price_plan(plan);
  const SensitivityReport report = analyze_sensitivity(model, plan);
  ASSERT_EQ(report.groups.size(), 2u);
  for (const auto& g : report.groups) {
    EXPECT_EQ(g.chosen_site, 0);
    EXPECT_EQ(g.runner_up_site, 1);
    EXPECT_NEAR(g.regret, 3 * (100.0 - 40.0), 1e-9);
  }
}

TEST(Sensitivity, SortedByDescendingRegret) {
  Rng rng(11);
  const auto instance = make_random_instance(rng, 10, 4, 2);
  const CostModel model(instance);
  Plan plan = [&] {
    PlannerOptions options;
    options.engine = PlannerOptions::Engine::kHeuristic;
    SolveContext ctx;
    return EtransformPlanner(options).plan(PlanInput(model), ctx).plan;
  }();
  const SensitivityReport report = analyze_sensitivity(model, plan);
  for (std::size_t k = 1; k < report.groups.size(); ++k) {
    EXPECT_GE(report.groups[k - 1].regret, report.groups[k].regret);
  }
}

TEST(Sensitivity, SiteUtilizationAccountsBackups) {
  Rng rng(13);
  const auto instance = make_random_instance(rng, 8, 4, 2);
  const CostModel model(instance);
  PlannerOptions options;
  options.enable_dr = true;
  options.engine = PlannerOptions::Engine::kHeuristic;
  SolveContext ctx;
  const PlannerReport planned = EtransformPlanner(options).plan(PlanInput(model), ctx);
  const SensitivityReport report = analyze_sensitivity(model, planned.plan);
  long long total = 0;
  for (const auto& site : report.sites) {
    EXPECT_LE(site.servers, site.capacity);
    total += site.servers;
  }
  EXPECT_EQ(total, instance.total_servers() +
                       planned.plan.total_backup_servers());
}

TEST(Sensitivity, RejectsInfeasiblePlans) {
  Rng rng(17);
  const auto instance = make_random_instance(rng, 5, 3, 2);
  const CostModel model(instance);
  Plan bogus;
  bogus.primary.assign(5, 0);
  bogus.primary[0] = 99;
  EXPECT_THROW((void)analyze_sensitivity(model, bogus), InvalidInputError);
}

TEST(Sensitivity, RenderListsTopRegrets) {
  Rng rng(19);
  const auto instance = make_random_instance(rng, 6, 3, 2);
  const CostModel model(instance);
  PlannerOptions options;
  options.engine = PlannerOptions::Engine::kHeuristic;
  SolveContext ctx;
  const PlannerReport planned = EtransformPlanner(options).plan(PlanInput(model), ctx);
  const SensitivityReport report = analyze_sensitivity(model, planned.plan);
  const std::string text = render_sensitivity(instance, report, 3);
  EXPECT_NE(text.find("placement regret"), std::string::npos);
  EXPECT_NE(text.find("site utilization"), std::string::npos);
}

}  // namespace
}  // namespace etransform
