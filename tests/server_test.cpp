// Tests for the etransformd server subsystem: the instance-hash result
// cache (hit/miss/eviction/collision determinism), the wire schema
// (options parsing, fingerprints), and the daemon end to end over real
// HTTP — submit/poll, cache-hit jobs, queued-job cancellation,
// backpressure 429, replan-equals-fresh differential, the event stream,
// drain, and a concurrent submission hammer (exercised under TSan in CI).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "model/instance_io.h"
#include "planner/admin.h"
#include "server/api_json.h"
#include "server/daemon.h"
#include "server/http.h"
#include "server/instance_cache.h"

namespace etransform {
namespace {

using server::ClientResponse;
using server::DaemonOptions;
using server::InstanceCache;
using server::PlannerDaemon;

ConsolidationInstance small_instance(std::uint64_t seed = 7) {
  Rng rng(seed);
  return make_random_instance(rng, 8, 3, 2);
}

// ---- cache ---------------------------------------------------------------

TEST(InstanceCacheTest, DigestIsDeterministicAndTextSensitive) {
  EXPECT_EQ(server::digest_hex("abc"), server::digest_hex("abc"));
  EXPECT_NE(server::digest_hex("abc"), server::digest_hex("abd"));
  EXPECT_EQ(server::cache_key("inst", "opts"),
            server::cache_key("inst", "opts"));
  EXPECT_NE(server::cache_key("inst", "opts"),
            server::cache_key("inst", "other"));
  EXPECT_NE(server::cache_key("inst", "opts"),
            server::cache_key("insto", "pts"));  // split must matter
}

std::shared_ptr<server::CachedResult> make_result(const std::string& payload) {
  auto result = std::make_shared<server::CachedResult>();
  result->result_json = payload;
  result->solve_ms = 1.0;
  return result;
}

TEST(InstanceCacheTest, HitMissAndCollisionGuard) {
  InstanceCache cache(1 << 20);
  EXPECT_EQ(cache.lookup("k1", "text-a"), nullptr);  // miss
  cache.insert("k1", "text-a", make_result("r1"));
  const auto hit = cache.lookup("k1", "text-a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result_json, "r1");
  // Same key, different canonical text: a digest collision must be a miss.
  EXPECT_EQ(cache.lookup("k1", "text-b"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(InstanceCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Budget fits exactly two entries (each costs ~1024 overhead + payload).
  InstanceCache cache(2 * 1100);
  cache.insert("a", "aaaa", make_result("ra"));
  cache.insert("b", "bbbb", make_result("rb"));
  EXPECT_EQ(cache.stats().entries, 2u);
  // Touch "a" so "b" is the LRU victim.
  EXPECT_NE(cache.lookup("a", "aaaa"), nullptr);
  EXPECT_EQ(cache.insert("c", "cccc", make_result("rc")), 1u);
  EXPECT_NE(cache.lookup("a", "aaaa"), nullptr);
  EXPECT_EQ(cache.lookup("b", "bbbb"), nullptr);  // evicted
  EXPECT_NE(cache.lookup("c", "cccc"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(InstanceCacheTest, OversizedEntryIsNotCachedAndZeroBudgetDisables) {
  InstanceCache tiny(8);
  tiny.insert("k", "text", make_result("r"));
  EXPECT_EQ(tiny.lookup("k", "text"), nullptr);
  EXPECT_EQ(tiny.stats().entries, 0u);
}

TEST(InstanceCacheTest, ReplacingAKeyKeepsByteAccountingConsistent) {
  InstanceCache cache(1 << 20);
  cache.insert("k", "text", make_result(std::string(1000, 'x')));
  const std::size_t bytes_first = cache.stats().bytes;
  cache.insert("k", "text", make_result("small"));
  EXPECT_LT(cache.stats().bytes, bytes_first);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// ---- wire schema ---------------------------------------------------------

TEST(ApiJsonTest, ParsesOptionsAndRejectsUnknownKeys) {
  json::Value options = json::Value::object();
  options.set("engine", json::Value::string("exact"));
  options.set("dr", json::Value::boolean(true));
  options.set("omega", json::Value::number(0.5));
  options.set("cuts", json::Value::string("gomory"));
  options.set("lp_algorithm", json::Value::string("dual"));
  options.set("max_nodes", json::Value::number(123));
  const PlannerOptions parsed = server::parse_options_json(&options);
  EXPECT_EQ(parsed.engine, PlannerOptions::Engine::kExact);
  EXPECT_TRUE(parsed.enable_dr);
  EXPECT_EQ(parsed.business_impact_omega, 0.5);
  EXPECT_TRUE(parsed.milp.cuts.gomory);
  EXPECT_FALSE(parsed.milp.cuts.cover);
  EXPECT_EQ(parsed.milp.lp.mode, lp::SolveMode::kDual);
  EXPECT_EQ(parsed.milp.search.max_nodes, 123);

  json::Value bad = json::Value::object();
  bad.set("engne", json::Value::string("exact"));
  EXPECT_THROW((void)server::parse_options_json(&bad), InvalidInputError);
  json::Value bad_value = json::Value::object();
  bad_value.set("engine", json::Value::string("cplex"));
  EXPECT_THROW((void)server::parse_options_json(&bad_value), InvalidInputError);
}

TEST(ApiJsonTest, FingerprintSeparatesResultAffectingOptions) {
  PlannerOptions a;
  PlannerOptions b;
  EXPECT_EQ(server::options_fingerprint(a, 0.0),
            server::options_fingerprint(b, 0.0));
  b.enable_dr = true;
  EXPECT_NE(server::options_fingerprint(a, 0.0),
            server::options_fingerprint(b, 0.0));
  EXPECT_NE(server::options_fingerprint(a, 0.0),
            server::options_fingerprint(a, 1000.0));
}

TEST(ApiJsonTest, ParseHorizonJsonAcceptsPeriodsAndTrafficCurve) {
  const ConsolidationInstance instance = small_instance();

  // Explicit "periods": names, weights, a per-group multiplier vector, and
  // failed sites referenced by name and by index.
  json::Value body = json::Value::object();
  body.set("api_version", json::Value::number(2));
  json::Value periods = json::Value::array();
  json::Value peak = json::Value::object();
  peak.set("name", json::Value::string("peak"));
  peak.set("weight", json::Value::number(2.0));
  peak.set("multiplier", json::Value::number(1.0));
  periods.push(std::move(peak));
  json::Value trough = json::Value::object();
  trough.set("weight", json::Value::number(1.0));
  json::Value per_group = json::Value::array();
  for (int g = 0; g < instance.num_groups(); ++g) {
    per_group.push(json::Value::number(0.5));
  }
  trough.set("group_multipliers", std::move(per_group));
  json::Value failed = json::Value::array();
  failed.push(json::Value::string(instance.sites[0].name));  // by name
  failed.push(json::Value::number(1));                       // by index
  trough.set("failed_sites", std::move(failed));
  periods.push(std::move(trough));
  body.set("periods", std::move(periods));
  body.set("migration_cost_per_server", json::Value::number(4.0));

  const PlanningHorizon horizon = server::parse_horizon_json(body, instance);
  ASSERT_EQ(horizon.num_periods(), 2);
  EXPECT_EQ(horizon.period_name(0), "peak");
  EXPECT_DOUBLE_EQ(horizon.period_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(horizon.multiplier(1, 0), 0.5);
  ASSERT_EQ(horizon.periods[1].failed_sites.size(), 2u);
  EXPECT_EQ(horizon.periods[1].failed_sites[0], 0);
  EXPECT_EQ(horizon.periods[1].failed_sites[1], 1);
  EXPECT_DOUBLE_EQ(horizon.migration_cost_per_server, 4.0);

  // A declarative curve expands through make_traffic_curve.
  json::Value curve_body = json::Value::object();
  curve_body.set("api_version", json::Value::number(2));
  json::Value curve = json::Value::object();
  curve.set("shape", json::Value::string("seasonal"));
  curve.set("num_periods", json::Value::number(6));
  curve.set("peak", json::Value::number(1.2));
  curve.set("trough", json::Value::number(0.3));
  curve_body.set("traffic_curve", std::move(curve));
  const PlanningHorizon expanded =
      server::parse_horizon_json(curve_body, instance);
  EXPECT_EQ(expanded.num_periods(), 6);
  for (int t = 0; t < expanded.num_periods(); ++t) {
    EXPECT_GE(expanded.multiplier(t, 0), 0.3 - 1e-9);
    EXPECT_LE(expanded.multiplier(t, 0), 1.2 + 1e-9);
  }

  // A body with no v2 members is the static horizon (every v1 request).
  EXPECT_TRUE(
      server::parse_horizon_json(json::Value::object(), instance).is_static());
}

TEST(ApiJsonTest, ParseHorizonJsonRejectsV2MembersInV1Bodies) {
  const ConsolidationInstance instance = small_instance();
  const auto rejects = [&](const json::Value& body) {
    EXPECT_THROW((void)server::parse_horizon_json(body, instance),
                 InvalidInputError);
  };

  // Multi-period members without "api_version": 2 must not silently work.
  json::Value v1_with_periods = json::Value::object();
  v1_with_periods.set("periods", json::Value::array());
  rejects(v1_with_periods);
  json::Value v1_with_migration = json::Value::object();
  v1_with_migration.set("migration_cost_per_server", json::Value::number(1.0));
  rejects(v1_with_migration);

  json::Value future = json::Value::object();
  future.set("api_version", json::Value::number(3));
  rejects(future);

  json::Value both = json::Value::object();
  both.set("api_version", json::Value::number(2));
  both.set("periods", json::Value::array());
  both.set("traffic_curve", json::Value::object());
  rejects(both);  // mutually exclusive

  json::Value unknown_key = json::Value::object();
  unknown_key.set("api_version", json::Value::number(2));
  json::Value typo_periods = json::Value::array();
  json::Value typo_period = json::Value::object();
  typo_period.set("multipler", json::Value::number(1.0));
  typo_periods.push(std::move(typo_period));
  unknown_key.set("periods", std::move(typo_periods));
  rejects(unknown_key);

  json::Value bad_site = json::Value::object();
  bad_site.set("api_version", json::Value::number(2));
  json::Value failing_periods = json::Value::array();
  json::Value failing = json::Value::object();
  json::Value failed = json::Value::array();
  failed.push(json::Value::string("no-such-site"));
  failing.set("failed_sites", std::move(failed));
  failing_periods.push(std::move(failing));
  bad_site.set("periods", std::move(failing_periods));
  rejects(bad_site);
}

TEST(ApiJsonTest, FingerprintSeparatesHorizonAndPlacementLock) {
  const PlannerOptions options;
  const PlanningHorizon two = PlanningHorizon::uniform(2);
  const std::string fp_static = server::options_fingerprint(options, 0.0);
  const std::string fp_two = server::options_fingerprint(options, 0.0, two);
  EXPECT_NE(fp_static, fp_two);
  EXPECT_NE(fp_two, server::options_fingerprint(options, 0.0,
                                                PlanningHorizon::uniform(3)));
  EXPECT_NE(fp_two, server::options_fingerprint(
                        options, 0.0, PlanningHorizon::uniform(2, 5.0)));
  EXPECT_NE(fp_two, server::options_fingerprint(options, 0.0, two, true));
  EXPECT_EQ(fp_two, server::options_fingerprint(options, 0.0,
                                                PlanningHorizon::uniform(2)));
}

// ---- daemon over HTTP ----------------------------------------------------

/// Boots a daemon on an ephemeral port and tears it down on scope exit.
struct DaemonFixture {
  explicit DaemonFixture(DaemonOptions options = {}) : daemon(prepare(options)) {
    daemon.start();
  }
  static DaemonOptions prepare(DaemonOptions options) {
    options.port = 0;  // ephemeral
    return options;
  }

  ClientResponse request(const std::string& method, const std::string& target,
                         const std::string& body = "") {
    ClientResponse response;
    std::string error;
    if (!server::http_request(daemon.port(), method, target, body, &response,
                              &error)) {
      ADD_FAILURE() << "http_request failed: " << error;
    }
    return response;
  }

  json::Value request_json(const std::string& method,
                           const std::string& target,
                           const std::string& body = "",
                           int expected_status = -1) {
    const ClientResponse response = request(method, target, body);
    if (expected_status >= 0) {
      EXPECT_EQ(response.status, expected_status) << response.body;
    }
    json::Value doc;
    std::string error;
    EXPECT_TRUE(json::parse(response.body, doc, &error))
        << error << ": " << response.body;
    return doc;
  }

  /// POSTs a plan request for `instance`; returns the response document.
  json::Value submit(const ConsolidationInstance& instance,
                     const std::string& engine = "heuristic",
                     bool cache = true, double time_limit_ms = 0.0,
                     bool dr = false) {
    json::Value body = json::Value::object();
    body.set("instance", json::Value::string(write_instance(instance)));
    json::Value options = json::Value::object();
    options.set("engine", json::Value::string(engine));
    if (dr) options.set("dr", json::Value::boolean(true));
    body.set("options", std::move(options));
    if (!cache) body.set("cache", json::Value::boolean(false));
    if (time_limit_ms > 0.0) {
      body.set("time_limit_ms", json::Value::number(time_limit_ms));
    }
    return request_json("POST", "/v1/plan", body.dump());
  }

  /// POSTs an api_version 2 plan request: a T-period peak/trough horizon
  /// with a unit migration rate, solved by the heuristic engine.
  json::Value submit_v2(const ConsolidationInstance& instance, int num_periods,
                        bool cache = true) {
    json::Value body = json::Value::object();
    body.set("instance", json::Value::string(write_instance(instance)));
    body.set("api_version", json::Value::number(2));
    json::Value periods = json::Value::array();
    for (int t = 0; t < num_periods; ++t) {
      json::Value period = json::Value::object();
      period.set("multiplier", json::Value::number(t % 2 == 0 ? 1.0 : 0.5));
      periods.push(std::move(period));
    }
    body.set("periods", std::move(periods));
    body.set("migration_cost_per_server", json::Value::number(1.0));
    json::Value options = json::Value::object();
    options.set("engine", json::Value::string("heuristic"));
    body.set("options", std::move(options));
    if (!cache) body.set("cache", json::Value::boolean(false));
    return request_json("POST", "/v1/plan", body.dump());
  }

  /// Polls a job to a terminal state; returns the final status document.
  json::Value await(long long job) {
    while (true) {
      json::Value doc =
          request_json("GET", "/v1/jobs/" + std::to_string(job), "", 200);
      const std::string state = doc.get("state")->str;
      if (state == "done" || state == "cancelled" || state == "failed") {
        return doc;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  PlannerDaemon daemon;
};

long long job_id(const json::Value& doc) {
  const json::Value* id = doc.get("job");
  EXPECT_NE(id, nullptr);
  return id != nullptr ? static_cast<long long>(id->num) : -1;
}

TEST(ServerTest, PlanSubmitPollAndResultDocument) {
  DaemonFixture fixture;
  const ConsolidationInstance instance = small_instance();
  const json::Value submitted = fixture.submit(instance);
  const json::Value done = fixture.await(job_id(submitted));
  EXPECT_EQ(done.get("state")->str, "done");
  EXPECT_FALSE(done.get("cache_hit")->b);
  const json::Value* result = done.get("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->get("cost")->get("total")->num, 0.0);
  EXPECT_EQ(result->get("assignments")->arr.size(),
            static_cast<std::size_t>(instance.num_groups()));
  EXPECT_FALSE(result->get("algorithm")->str.empty());
  EXPECT_GT(result->get("solve_ms")->num, 0.0);
}

TEST(ServerTest, SecondIdenticalSubmissionIsACacheHit) {
  DaemonFixture fixture;
  const ConsolidationInstance instance = small_instance();
  const json::Value first = fixture.submit(instance);
  const json::Value cold = fixture.await(job_id(first));

  const json::Value second = fixture.submit(instance);
  // A hit is terminal in the submission response itself.
  EXPECT_EQ(second.get("state")->str, "done");
  EXPECT_TRUE(second.get("cache_hit")->b);
  EXPECT_EQ(second.get("result")->get("cost")->get("total")->num,
            cold.get("result")->get("cost")->get("total")->num);

  // Different options -> different fingerprint -> miss.
  const json::Value third = fixture.submit(instance, "heuristic", true, 5000);
  EXPECT_EQ(third.get("state")->str, "queued");
  fixture.await(job_id(third));

  // cache=false bypasses the probe even for an identical request.
  const json::Value fourth = fixture.submit(instance, "heuristic", false);
  EXPECT_EQ(fourth.get("state")->str, "queued");
  fixture.await(job_id(fourth));
}

TEST(ServerTest, MultiPeriodPlanCarriesTheHorizonSubtree) {
  DaemonFixture fixture;
  const ConsolidationInstance instance = small_instance();
  const json::Value done =
      fixture.await(job_id(fixture.submit_v2(instance, 2)));
  ASSERT_EQ(done.get("state")->str, "done");
  const json::Value* result = done.get("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->get("api_version")->num, 2);
  const json::Value* horizon = result->get("horizon");
  ASSERT_NE(horizon, nullptr);
  ASSERT_EQ(horizon->get("periods")->arr.size(), 2u);
  EXPECT_GT(horizon->get("cost")->get("total")->num, 0.0);
  EXPECT_FALSE(horizon->get("algorithm")->str.empty());
  // v1 consumers read the first period through the top-level members.
  EXPECT_DOUBLE_EQ(
      result->get("cost")->get("total")->num,
      horizon->get("periods")->arr[0].get("cost")->get("total")->num);
  EXPECT_EQ(result->get("assignments")->arr.size(),
            static_cast<std::size_t>(instance.num_groups()));

  // A static solve of the same instance has no horizon subtree.
  const json::Value static_done =
      fixture.await(job_id(fixture.submit(instance)));
  ASSERT_EQ(static_done.get("state")->str, "done");
  EXPECT_EQ(static_done.get("result")->get("horizon"), nullptr);
}

TEST(ServerTest, V1BodiesCannotSmuggleMultiPeriodMembers) {
  DaemonFixture fixture;
  const ConsolidationInstance instance = small_instance();

  // "periods" without "api_version": 2 is a 400, not a silent upgrade.
  json::Value smuggled = json::Value::object();
  smuggled.set("instance", json::Value::string(write_instance(instance)));
  json::Value periods = json::Value::array();
  json::Value period = json::Value::object();
  period.set("multiplier", json::Value::number(0.5));
  periods.push(std::move(period));
  smuggled.set("periods", std::move(periods));
  EXPECT_EQ(fixture.request("POST", "/v1/plan", smuggled.dump()).status, 400);

  // lock_placement is meaningless without a horizon to lock across.
  json::Value lock_only = json::Value::object();
  lock_only.set("instance", json::Value::string(write_instance(instance)));
  lock_only.set("lock_placement", json::Value::boolean(true));
  EXPECT_EQ(fixture.request("POST", "/v1/plan", lock_only.dump()).status, 400);
}

TEST(ServerTest, CacheNeverMixesStaticAndMultiPeriodResults) {
  DaemonFixture fixture;
  const ConsolidationInstance instance = small_instance();
  fixture.await(job_id(fixture.submit(instance)));

  // Same instance and options, but a horizon: must be a fresh solve.
  const json::Value multi = fixture.submit_v2(instance, 2);
  EXPECT_EQ(multi.get("state")->str, "queued");
  fixture.await(job_id(multi));

  // Identical multi-period resubmission hits, and serves the horizon tree.
  const json::Value again = fixture.submit_v2(instance, 2);
  EXPECT_EQ(again.get("state")->str, "done");
  EXPECT_TRUE(again.get("cache_hit")->b);
  EXPECT_NE(again.get("result")->get("horizon"), nullptr);

  // A different period count is a different fingerprint.
  const json::Value longer = fixture.submit_v2(instance, 3);
  EXPECT_EQ(longer.get("state")->str, "queued");
  fixture.await(job_id(longer));

  // And the static entry is still intact.
  const json::Value static_again = fixture.submit(instance);
  EXPECT_EQ(static_again.get("state")->str, "done");
  EXPECT_TRUE(static_again.get("cache_hit")->b);
  EXPECT_EQ(static_again.get("result")->get("horizon"), nullptr);
}

TEST(ServerTest, MalformedRequestsGetHttp400AndUnknownPaths404) {
  DaemonFixture fixture;
  EXPECT_EQ(fixture.request("POST", "/v1/plan", "not json").status, 400);
  EXPECT_EQ(fixture.request("POST", "/v1/plan", "{}").status, 400);
  json::Value body = json::Value::object();
  body.set("instance", json::Value::string("etransform-instance v1\ngarbage"));
  EXPECT_EQ(fixture.request("POST", "/v1/plan", body.dump()).status, 400);
  EXPECT_EQ(fixture.request("GET", "/v1/jobs/999").status, 404);
  EXPECT_EQ(fixture.request("GET", "/nope").status, 404);
  EXPECT_EQ(fixture.request("GET", "/healthz").status, 200);
}

TEST(ServerTest, QueuedJobCancelledOverHttpNeverRuns) {
  DaemonOptions options;
  options.workers = 1;
  DaemonFixture fixture(options);
  Rng rng(11);
  // Occupy the single worker with a capped joint-DR exact solve (runs to its
  // time limit unless cancelled; a plain exact solve here is milliseconds).
  const ConsolidationInstance big = make_random_instance(rng, 20, 6, 3);
  const json::Value blocker =
      fixture.submit(big, "exact", false, 10000.0, /*dr=*/true);
  // ...then cancel a queued job before the worker can reach it.
  const json::Value queued = fixture.submit(small_instance(), "heuristic",
                                            /*cache=*/false);
  const long long queued_id = job_id(queued);
  const json::Value cancel = fixture.request_json(
      "POST", "/v1/jobs/" + std::to_string(queued_id) + "/cancel", "", 200);
  EXPECT_TRUE(cancel.get("cancel_requested")->b);
  const json::Value final_state = fixture.await(queued_id);
  EXPECT_EQ(final_state.get("state")->str, "cancelled");
  EXPECT_EQ(final_state.get("result"), nullptr);  // never ran
  // Unblock the worker.
  fixture.request("POST", "/v1/jobs/" + std::to_string(job_id(blocker)) +
                              "/cancel");
  fixture.await(job_id(blocker));
}

TEST(ServerTest, BackpressureRejectsWith429AndRetryAfter) {
  DaemonOptions options;
  options.workers = 1;
  options.max_queue_depth = 1;
  DaemonFixture fixture(options);
  Rng rng(13);
  const ConsolidationInstance big = make_random_instance(rng, 20, 6, 3);
  const json::Value running =
      fixture.submit(big, "exact", false, 10000.0, /*dr=*/true);
  // Wait until the blocker is claimed so the next submit is truly queued.
  while (fixture
             .request_json("GET",
                           "/v1/jobs/" + std::to_string(job_id(running)))
             .get("state")
             ->str == "queued") {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const json::Value queued = fixture.submit(small_instance(), "heuristic",
                                            /*cache=*/false);
  EXPECT_EQ(queued.get("state")->str, "queued");

  json::Value body = json::Value::object();
  body.set("instance",
           json::Value::string(write_instance(small_instance(99))));
  body.set("cache", json::Value::boolean(false));
  const ClientResponse rejected =
      fixture.request("POST", "/v1/plan", body.dump());
  EXPECT_EQ(rejected.status, 429);
  EXPECT_EQ(rejected.headers.at("retry-after"), "1");

  fixture.request("POST",
                  "/v1/jobs/" + std::to_string(job_id(running)) + "/cancel");
  fixture.await(job_id(running));
  fixture.await(job_id(queued));
}

TEST(ServerTest, ReplanWithDeltaMatchesFreshSolveOfModifiedInstance) {
  DaemonFixture fixture;
  Rng rng(17);
  const ConsolidationInstance instance = make_random_instance(rng, 10, 4, 2);
  const json::Value base = fixture.submit(instance, "exact", true, 0.0);
  const json::Value base_done = fixture.await(job_id(base));
  ASSERT_EQ(base_done.get("state")->str, "done");

  // Replan: pin group 0 to site 1 (delta path, warm-started).
  json::Value replan = json::Value::object();
  replan.set("base_job", json::Value::number(
                             static_cast<double>(job_id(base))));
  json::Value delta = json::Value::object();
  json::Value pins = json::Value::array();
  json::Value pin = json::Value::object();
  pin.set("group", json::Value::number(0));
  pin.set("site", json::Value::number(1));
  pins.push(std::move(pin));
  delta.set("pin", std::move(pins));
  replan.set("delta", std::move(delta));
  replan.set("cache", json::Value::boolean(false));
  const json::Value replan_submitted =
      fixture.request_json("POST", "/v1/replan", replan.dump(), 202);
  EXPECT_TRUE(replan_submitted.get("warm_started")->b);
  const json::Value replanned = fixture.await(job_id(replan_submitted));
  ASSERT_EQ(replanned.get("state")->str, "done");

  // Fresh solve of the identically-modified instance must cost the same.
  ScenarioSession session(instance);
  session.pin_group(0, 1);
  json::Value fresh_body = json::Value::object();
  fresh_body.set("instance",
                 json::Value::string(write_instance(session.instance())));
  json::Value fresh_options = json::Value::object();
  fresh_options.set("engine", json::Value::string("exact"));
  fresh_body.set("options", std::move(fresh_options));
  fresh_body.set("cache", json::Value::boolean(false));
  const json::Value fresh =
      fixture.request_json("POST", "/v1/plan", fresh_body.dump(), 202);
  const json::Value fresh_done = fixture.await(job_id(fresh));
  ASSERT_EQ(fresh_done.get("state")->str, "done");

  EXPECT_DOUBLE_EQ(
      replanned.get("result")->get("cost")->get("total")->num,
      fresh_done.get("result")->get("cost")->get("total")->num);
}

TEST(ServerTest, ReplanInheritsTheBaseJobsHorizon) {
  DaemonFixture fixture;
  const ConsolidationInstance instance = small_instance();
  const json::Value base = fixture.submit_v2(instance, 2, /*cache=*/false);
  const json::Value base_done = fixture.await(job_id(base));
  ASSERT_EQ(base_done.get("state")->str, "done");

  // No v2 members in the replan body: the delta solves under the base
  // job's horizon, so the result is still multi-period.
  json::Value replan = json::Value::object();
  replan.set("base_job",
             json::Value::number(static_cast<double>(job_id(base))));
  json::Value delta = json::Value::object();
  json::Value pins = json::Value::array();
  json::Value pin = json::Value::object();
  pin.set("group", json::Value::number(0));
  pin.set("site", json::Value::number(1));
  pins.push(std::move(pin));
  delta.set("pin", std::move(pins));
  replan.set("delta", std::move(delta));
  replan.set("cache", json::Value::boolean(false));
  const json::Value submitted =
      fixture.request_json("POST", "/v1/replan", replan.dump(), 202);
  const json::Value replanned = fixture.await(job_id(submitted));
  ASSERT_EQ(replanned.get("state")->str, "done");
  const json::Value* horizon = replanned.get("result")->get("horizon");
  ASSERT_NE(horizon, nullptr);
  EXPECT_EQ(horizon->get("periods")->arr.size(), 2u);
}

TEST(ServerTest, ReplanOfAReplanWarmStartsAndMatchesFreshSolve) {
  // Replan chains deeper than one hop: a completed replan job is itself a
  // valid warm-start base, so an operator can iterate deltas without ever
  // paying a cold solve.
  DaemonFixture fixture;
  Rng rng(29);
  const ConsolidationInstance instance = make_random_instance(rng, 10, 4, 2);
  const json::Value base = fixture.submit(instance, "exact", true, 0.0);
  ASSERT_EQ(fixture.await(job_id(base)).get("state")->str, "done");

  const auto replan_with_pin = [&](long long base_job, int group, int site) {
    json::Value replan = json::Value::object();
    replan.set("base_job", json::Value::number(static_cast<double>(base_job)));
    json::Value delta = json::Value::object();
    json::Value pins = json::Value::array();
    json::Value pin = json::Value::object();
    pin.set("group", json::Value::number(group));
    pin.set("site", json::Value::number(site));
    pins.push(std::move(pin));
    delta.set("pin", std::move(pins));
    replan.set("delta", std::move(delta));
    replan.set("cache", json::Value::boolean(false));
    return fixture.request_json("POST", "/v1/replan", replan.dump(), 202);
  };

  // Hop 1: pin group 0. Hop 2: replan *of the replan*, adding a pin on
  // group 1. Both hops must warm-start from their base's stored basis.
  const json::Value hop1 = replan_with_pin(job_id(base), 0, 1);
  EXPECT_TRUE(hop1.get("warm_started")->b);
  ASSERT_EQ(fixture.await(job_id(hop1)).get("state")->str, "done");

  const json::Value hop2 = replan_with_pin(job_id(hop1), 1, 0);
  EXPECT_TRUE(hop2.get("warm_started")->b);
  const json::Value hop2_done = fixture.await(job_id(hop2));
  ASSERT_EQ(hop2_done.get("state")->str, "done");

  // A fresh solve with both pins applied must land on the same cost.
  ScenarioSession session(instance);
  session.pin_group(0, 1);
  session.pin_group(1, 0);
  json::Value fresh_body = json::Value::object();
  fresh_body.set("instance",
                 json::Value::string(write_instance(session.instance())));
  json::Value fresh_options = json::Value::object();
  fresh_options.set("engine", json::Value::string("exact"));
  fresh_body.set("options", std::move(fresh_options));
  fresh_body.set("cache", json::Value::boolean(false));
  const json::Value fresh =
      fixture.request_json("POST", "/v1/plan", fresh_body.dump(), 202);
  const json::Value fresh_done = fixture.await(job_id(fresh));
  ASSERT_EQ(fresh_done.get("state")->str, "done");

  EXPECT_DOUBLE_EQ(
      hop2_done.get("result")->get("cost")->get("total")->num,
      fresh_done.get("result")->get("cost")->get("total")->num);
}

TEST(ServerTest, ReplanRequiresTerminalDoneBase) {
  DaemonFixture fixture;
  json::Value replan = json::Value::object();
  replan.set("base_job", json::Value::number(404));
  EXPECT_EQ(fixture.request("POST", "/v1/replan", replan.dump()).status, 404);
}

TEST(ServerTest, ReplanRejectsOutOfRangeNumericReferences) {
  DaemonFixture fixture;
  const json::Value base = fixture.submit(small_instance());
  fixture.await(job_id(base));

  // A group/site index that cannot survive the double->int cast (huge,
  // negative, fractional) must come back 400, not invoke UB.
  const auto pin_status = [&](double group_ref, double site_ref) {
    json::Value replan = json::Value::object();
    replan.set("base_job",
               json::Value::number(static_cast<double>(job_id(base))));
    json::Value pin = json::Value::object();
    pin.set("group", json::Value::number(group_ref));
    pin.set("site", json::Value::number(site_ref));
    json::Value pins = json::Value::array();
    pins.push(std::move(pin));
    json::Value delta = json::Value::object();
    delta.set("pin", std::move(pins));
    replan.set("delta", std::move(delta));
    return fixture.request("POST", "/v1/replan", replan.dump()).status;
  };
  EXPECT_EQ(pin_status(1e300, 0), 400);
  EXPECT_EQ(pin_status(0, 1e300), 400);
  EXPECT_EQ(pin_status(-1, 0), 400);
  EXPECT_EQ(pin_status(1.5, 0), 400);

  // base_job gets the same treatment before its long long cast.
  json::Value replan = json::Value::object();
  replan.set("base_job", json::Value::number(1e300));
  EXPECT_EQ(fixture.request("POST", "/v1/replan", replan.dump()).status, 400);
  replan.set("base_job", json::Value::number(2.5));
  EXPECT_EQ(fixture.request("POST", "/v1/replan", replan.dump()).status, 400);
}

TEST(ServerTest, OldestTerminalJobsAgeOutOfTheRegistry) {
  DaemonOptions options;
  options.max_jobs = 2;
  DaemonFixture fixture(options);
  const long long first = job_id(fixture.submit(small_instance(1)));
  fixture.await(first);
  const long long second = job_id(fixture.submit(small_instance(2)));
  fixture.await(second);
  // Registering the third job pushes the registry past the cap; the first
  // (oldest terminal) job is dropped and its id 404s from then on.
  const long long third = job_id(fixture.submit(small_instance(3)));
  fixture.await(third);
  EXPECT_EQ(
      fixture.request("GET", "/v1/jobs/" + std::to_string(first)).status, 404);
  EXPECT_EQ(
      fixture.request("GET", "/v1/jobs/" + std::to_string(third)).status, 200);
  // An aged-out id is gone as a replan base too.
  json::Value replan = json::Value::object();
  replan.set("base_job", json::Value::number(static_cast<double>(first)));
  EXPECT_EQ(fixture.request("POST", "/v1/replan", replan.dump()).status, 404);
}

TEST(ServerTest, OversizedDeclaredBodyGets413) {
  DaemonFixture fixture;
  // The client helper always sends Content-Length == body size, so speak
  // raw sockets: declare a body far past kMaxBodyBytes and send none.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(fixture.daemon.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request =
      "POST /v1/plan HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Content-Length: 999999999999\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("413 Payload Too Large"), std::string::npos)
      << response;
}

TEST(ServerTest, EventStreamEndsWithTerminalState) {
  DaemonFixture fixture;
  const json::Value submitted =
      fixture.submit(small_instance(), "exact", false);
  const long long id = job_id(submitted);
  // The chunked stream closes once the job is terminal; the client helper
  // de-chunks the whole body.
  const ClientResponse stream = fixture.request(
      "GET", "/v1/jobs/" + std::to_string(id) + "/events");
  EXPECT_EQ(stream.status, 200);
  const std::size_t last_line_start =
      stream.body.rfind('\n', stream.body.size() - 2);
  const std::string last_line = stream.body.substr(
      last_line_start == std::string::npos ? 0 : last_line_start + 1);
  EXPECT_EQ(last_line, "state done\n");
  EXPECT_NE(stream.body.find("queued"), std::string::npos);
}

TEST(ServerTest, DrainRejectsNewWorkAndHealthzTurns503) {
  DaemonFixture fixture;
  const json::Value before = fixture.submit(small_instance());
  fixture.await(job_id(before));
  fixture.daemon.request_drain();
  EXPECT_EQ(fixture.request("GET", "/healthz").status, 503);
  const ClientResponse rejected = fixture.request(
      "POST", "/v1/plan", "{\"instance\":\"x\"}");
  EXPECT_EQ(rejected.status, 503);
  // Existing jobs stay queryable during the drain.
  EXPECT_EQ(fixture
                .request("GET", "/v1/jobs/" + std::to_string(job_id(before)))
                .status,
            200);
  fixture.daemon.stop();
}

TEST(ServerTest, MetricsEndpointExposesServerFamilies) {
  DaemonFixture fixture;
  const json::Value submitted = fixture.submit(small_instance());
  fixture.await(job_id(submitted));
  fixture.submit(small_instance());  // cache hit
  const ClientResponse metrics = fixture.request("GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  for (const char* family :
       {"etransform_server_requests_total", "etransform_server_cache_hits_total",
        "etransform_server_cache_misses_total",
        "etransform_server_rejected_total", "etransform_server_queue_depth",
        "etransform_server_jobs_inflight", "etransform_server_request_ms",
        "etransform_farm_jobs_submitted_total"}) {
    EXPECT_NE(metrics.body.find(family), std::string::npos) << family;
  }
}

TEST(ServerTest, ConcurrentSubmissionHammer) {
  DaemonOptions options;
  options.workers = 4;
  options.max_queue_depth = 256;
  DaemonFixture fixture(options);
  // Three distinct instances: submissions race each other to be the first
  // cold solve; the rest hit the cache or solve redundantly — all must
  // land terminal with consistent documents.
  std::vector<std::string> texts;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    texts.push_back(write_instance(small_instance(seed)));
  }
  constexpr int kThreads = 8;
  constexpr int kPerThread = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fixture, &texts, &failures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        json::Value body = json::Value::object();
        body.set("instance",
                 json::Value::string(texts[(t + i) % texts.size()]));
        ClientResponse response;
        if (!server::http_request(fixture.daemon.port(), "POST", "/v1/plan",
                                  body.dump(), &response, nullptr) ||
            (response.status != 200 && response.status != 202)) {
          ++failures;
          continue;
        }
        json::Value doc;
        if (!json::parse(response.body, doc, nullptr) ||
            doc.get("job") == nullptr) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Every admitted job reaches a terminal state before stop() returns.
  fixture.daemon.stop();
  const std::string exposition = fixture.daemon.metrics().render_prometheus();
  EXPECT_NE(exposition.find("etransform_server_cache_hits_total"),
            std::string::npos);
}

// ---- request-scoped observability ----------------------------------------

/// Parses a /trace body and asserts every event belongs to `job`: the
/// Chrome trace is request-scoped, not the shared rings verbatim.
void expect_trace_scoped_to(const std::string& body, long long job,
                            std::size_t* events_out = nullptr) {
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(body, doc, &error)) << error;
  const json::Value* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t events_seen = 0;
  for (const json::Value& e : events->arr) {
    if (e.get("ph")->str == "M") continue;
    const json::Value* args = e.get("args");
    ASSERT_NE(args, nullptr);
    const json::Value* trace_id = args->get("trace_id");
    ASSERT_NE(trace_id, nullptr);
    EXPECT_EQ(trace_id->num, static_cast<double>(job))
        << "foreign span leaked into job " << job << "'s trace";
    ++events_seen;
  }
  if (events_out != nullptr) *events_out = events_seen;
}

/// Asserts a /progress document's timeline is well-formed: time and nodes
/// non-decreasing, gap non-increasing (the "best proven gap" contract).
void expect_progress_monotone(const json::Value& doc) {
  const json::Value* timeline = doc.get("timeline");
  ASSERT_NE(timeline, nullptr);
  double last_time = -1.0;
  double last_nodes = -1.0;
  double last_gap = std::numeric_limits<double>::infinity();
  for (const json::Value& sample : timeline->arr) {
    const double time_ms = sample.get("time_ms")->num;
    const double nodes = sample.get("nodes")->num;
    EXPECT_GE(time_ms, last_time);
    EXPECT_GE(nodes, last_nodes);
    last_time = time_ms;
    last_nodes = nodes;
    if (const json::Value* gap = sample.get("gap")) {
      EXPECT_LE(gap->num, last_gap) << "gap must be non-increasing";
      last_gap = gap->num;
    }
  }
}

TEST(ServerTest, ProgressEndpointReportsMonotoneTimelineForLiveJob) {
  DaemonOptions options;
  options.workers = 1;
  DaemonFixture fixture(options);
  Rng rng(41);
  const ConsolidationInstance big = make_random_instance(rng, 20, 6, 3);
  const json::Value submitted =
      fixture.submit(big, "exact", false, 10000.0, /*dr=*/true);
  const long long id = job_id(submitted);
  const std::string target = "/v1/jobs/" + std::to_string(id) + "/progress";

  // Poll the live job until the solver has published something (or it
  // finished first — the timeline stays readable either way).
  json::Value doc;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    doc = fixture.request_json("GET", target, "", 200);
    const bool terminal = doc.get("state")->str == "done" ||
                          doc.get("state")->str == "cancelled" ||
                          doc.get("state")->str == "failed";
    if (!doc.get("timeline")->arr.empty() || terminal) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_FALSE(doc.get("timeline")->arr.empty())
      << "a capped exact+dr solve must publish progress";
  expect_progress_monotone(doc);
  EXPECT_GE(doc.get("published")->num,
            static_cast<double>(doc.get("timeline")->arr.size()));

  fixture.request("POST", "/v1/jobs/" + std::to_string(id) + "/cancel");
  fixture.await(id);
  // Terminal jobs keep their timeline (the handle pins the ring).
  const json::Value after = fixture.request_json("GET", target, "", 200);
  expect_progress_monotone(after);
}

TEST(ServerTest, ProgressForCacheHitJobIsEmptyNotAnError) {
  DaemonFixture fixture;
  const json::Value first = fixture.submit(small_instance());
  fixture.await(job_id(first));
  const json::Value hit = fixture.submit(small_instance());
  ASSERT_TRUE(hit.get("cache_hit")->b);
  const json::Value doc = fixture.request_json(
      "GET", "/v1/jobs/" + std::to_string(job_id(hit)) + "/progress", "",
      200);
  EXPECT_EQ(doc.get("state")->str, "done");
  EXPECT_TRUE(doc.get("timeline")->arr.empty());
  EXPECT_EQ(doc.get("published")->num, 0.0);
}

TEST(ServerTest, TraceEndpointIsScopedToTheRequestedJob) {
  DaemonFixture fixture;
  Rng rng(43);
  // Two distinct exact solves, run to completion, sharing the daemon's
  // rings; each /trace must come back with only its own spans.
  const ConsolidationInstance a = make_random_instance(rng, 10, 4, 2);
  const ConsolidationInstance b = make_random_instance(rng, 10, 4, 2);
  const long long id_a = job_id(fixture.submit(a, "exact", false));
  const long long id_b = job_id(fixture.submit(b, "exact", false));
  fixture.await(id_a);
  fixture.await(id_b);
  for (const long long id : {id_a, id_b}) {
    const ClientResponse trace = fixture.request(
        "GET", "/v1/jobs/" + std::to_string(id) + "/trace");
    EXPECT_EQ(trace.status, 200);
    std::size_t events = 0;
    expect_trace_scoped_to(trace.body, id, &events);
    EXPECT_GT(events, 0u) << "job " << id << " must have recorded spans";
  }
}

TEST(ServerTest, SloViolationArmsTheFlightRecorder) {
  DaemonOptions options;
  options.slo_ms = 0.001;  // everything violates: the recorder always arms
  DaemonFixture fixture(options);
  const json::Value submitted =
      fixture.submit(small_instance(), "exact", false);
  const long long id = job_id(submitted);
  ASSERT_EQ(fixture.await(id).get("state")->str, "done");

  const ClientResponse trace = fixture.request(
      "GET", "/v1/jobs/" + std::to_string(id) + "/trace");
  EXPECT_EQ(trace.status, 200);
  std::size_t events = 0;
  expect_trace_scoped_to(trace.body, id, &events);
  EXPECT_GT(events, 0u) << "the flight recorder must have captured spans";

  const ClientResponse metrics = fixture.request("GET", "/metrics");
  EXPECT_NE(metrics.body.find("etransform_server_slo_violations_total 1"),
            std::string::npos)
      << metrics.body.substr(0, 400);
  EXPECT_NE(metrics.body.find("etransform_server_job_anomalies_total 1"),
            std::string::npos);
}

TEST(ServerTest, CancelledJobKeepsAFlightRecorderCapture) {
  DaemonOptions options;
  options.workers = 1;
  DaemonFixture fixture(options);
  Rng rng(47);
  const ConsolidationInstance big = make_random_instance(rng, 20, 6, 3);
  const json::Value submitted =
      fixture.submit(big, "exact", false, 10000.0, /*dr=*/true);
  const long long id = job_id(submitted);
  // Let it actually start solving before cancelling, so there are spans.
  while (fixture
             .request_json("GET", "/v1/jobs/" + std::to_string(id))
             .get("state")
             ->str == "queued") {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fixture.request("POST", "/v1/jobs/" + std::to_string(id) + "/cancel");
  ASSERT_EQ(fixture.await(id).get("state")->str, "cancelled");

  const ClientResponse trace = fixture.request(
      "GET", "/v1/jobs/" + std::to_string(id) + "/trace");
  EXPECT_EQ(trace.status, 200);
  std::size_t events = 0;
  expect_trace_scoped_to(trace.body, id, &events);
  EXPECT_GT(events, 0u);
  const ClientResponse metrics = fixture.request("GET", "/metrics");
  EXPECT_NE(metrics.body.find("etransform_server_job_anomalies_total 1"),
            std::string::npos);
}

TEST(ServerTest, MetricsExposeBuildInfoUptimeAndLatencySummaries) {
  DaemonFixture fixture;
  fixture.await(job_id(fixture.submit(small_instance())));
  const ClientResponse metrics = fixture.request("GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("etransform_build_info 1"), std::string::npos);
  EXPECT_NE(metrics.body.find("etransform_uptime_seconds "),
            std::string::npos);
  for (const char* line :
       {"etransform_server_request_ms_p50 ", "etransform_server_request_ms_p95 ",
        "etransform_server_request_ms_p99 "}) {
    EXPECT_NE(metrics.body.find(line), std::string::npos) << line;
  }
}

TEST(ServerTest, ConcurrentJobsKeepProgressAndTracesIsolated) {
  // The TSan-targeted hammer: N exact jobs in flight while pollers hit
  // /progress and /trace for every job. Each job's gap timeline must stay
  // monotone and its trace must never contain another job's spans.
  DaemonOptions options;
  options.workers = 4;
  options.max_queue_depth = 64;
  DaemonFixture fixture(options);
  constexpr int kJobs = 6;
  std::vector<long long> ids;
  for (int j = 0; j < kJobs; ++j) {
    Rng rng(100 + static_cast<std::uint64_t>(j));
    const ConsolidationInstance instance = make_random_instance(rng, 12, 4, 2);
    ids.push_back(
        job_id(fixture.submit(instance, "exact", false, 4000.0, /*dr=*/true)));
  }
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> pollers;
  for (int p = 0; p < 3; ++p) {
    pollers.emplace_back([&fixture, &ids, &stop, &violations] {
      while (!stop.load(std::memory_order_acquire)) {
        for (const long long id : ids) {
          ClientResponse progress;
          if (server::http_request(
                  fixture.daemon.port(), "GET",
                  "/v1/jobs/" + std::to_string(id) + "/progress", "",
                  &progress, nullptr) &&
              progress.status == 200) {
            json::Value doc;
            if (!json::parse(progress.body, doc, nullptr)) {
              ++violations;
              continue;
            }
            double last_gap = std::numeric_limits<double>::infinity();
            for (const json::Value& s : doc.get("timeline")->arr) {
              if (const json::Value* gap = s.get("gap")) {
                if (gap->num > last_gap + 1e-12) ++violations;
                last_gap = gap->num;
              }
            }
          }
          ClientResponse trace;
          if (server::http_request(fixture.daemon.port(), "GET",
                                   "/v1/jobs/" + std::to_string(id) +
                                       "/trace",
                                   "", &trace, nullptr) &&
              trace.status == 200) {
            json::Value doc;
            if (!json::parse(trace.body, doc, nullptr)) {
              ++violations;
              continue;
            }
            for (const json::Value& e : doc.get("traceEvents")->arr) {
              if (e.get("ph")->str == "M") continue;
              const json::Value* args = e.get("args");
              const json::Value* trace_id =
                  args != nullptr ? args->get("trace_id") : nullptr;
              if (trace_id == nullptr ||
                  trace_id->num != static_cast<double>(id)) {
                ++violations;
              }
            }
          }
        }
      }
    });
  }
  // Let the solves and pollers overlap, then wind everything down.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (const long long id : ids) {
    fixture.request("POST", "/v1/jobs/" + std::to_string(id) + "/cancel");
  }
  for (const long long id : ids) fixture.await(id);
  stop.store(true, std::memory_order_release);
  for (std::thread& poller : pollers) poller.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(ServerTest, TelemetryDirCollectsFlightTracesAndRunArtifacts) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("etransformd_server_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  long long id = -1;
  {
    DaemonOptions options;
    options.slo_ms = 0.001;  // force an anomaly so a flight trace is dumped
    options.telemetry_dir = dir.string();
    DaemonFixture fixture(options);
    id = job_id(fixture.submit(small_instance(), "exact", false));
    fixture.await(id);
    fixture.daemon.stop();  // writes trace.json / metrics.prom
  }
  EXPECT_TRUE(std::filesystem::exists(
      dir / ("job-" + std::to_string(id) + "-trace.json")));
  EXPECT_TRUE(std::filesystem::exists(dir / "trace.json"));
  EXPECT_TRUE(std::filesystem::exists(dir / "metrics.prom"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace etransform
