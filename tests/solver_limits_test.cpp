// Edge-case and budget-handling tests for the solver stack: iteration
// limits, node limits, time limits, relative gaps, and tolerance knobs.
#include <gtest/gtest.h>

#include "common/random.h"
#include "lp/model.h"
#include "lp/lp_engine.h"
#include "milp/branch_and_bound.h"

namespace etransform {
namespace {

using lp::Model;
using lp::Relation;
using lp::Sense;
using lp::Term;

Model hard_knapsack(int items, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<Term> objective;
  std::vector<Term> cap;
  double total = 0.0;
  for (int i = 0; i < items; ++i) {
    const int b = m.add_binary("b" + std::to_string(i));
    objective.push_back({b, rng.uniform(10.0, 20.0)});
    const double w = rng.uniform(5.0, 10.0);
    total += w;
    cap.push_back({b, w});
  }
  m.set_objective(Sense::kMaximize, objective);
  m.add_constraint("cap", cap, Relation::kLessEqual, total * 0.5);
  return m;
}

TEST(SolverLimits, SimplexIterationLimitReported) {
  lp::SimplexOptions options;
  options.max_iterations = 1;
  const lp::LpEngine solver(options);
  Rng rng(3);
  Model m;
  std::vector<Term> objective;
  for (int j = 0; j < 20; ++j) {
    objective.push_back({m.add_continuous("x" + std::to_string(j), 0.0, 5.0),
                         rng.uniform(-3.0, 3.0)});
  }
  m.set_objective(Sense::kMinimize, objective);
  for (int i = 0; i < 10; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < 20; ++j) terms.push_back({j, rng.uniform(0.1, 1.0)});
    m.add_constraint("r" + std::to_string(i), terms, Relation::kGreaterEqual,
                     2.0);
  }
  SolveContext ctx;
  const auto s = solver.solve(m, ctx);
  EXPECT_EQ(s.status, lp::SolveStatus::kIterationLimit);
}

TEST(SolverLimits, MilpTimeLimitProducesIncumbentNotProof) {
  milp::SolverOptions options;
  options.search.time_limit_ms = 1;  // expire almost immediately
  options.search.max_nodes = 1 << 30;
  const milp::BranchAndBoundSolver solver(options);
  SolveContext ctx;
  const auto s = solver.solve(hard_knapsack(30, 5), ctx);
  // Normally the deadline fires first (kTimeLimit, with or without an
  // incumbent); a fast machine may still close the gap inside 1 ms.
  EXPECT_TRUE(s.status == milp::MilpStatus::kTimeLimit ||
              s.status == milp::MilpStatus::kOptimal);
  if (s.has_incumbent()) {
    EXPECT_TRUE(hard_knapsack(30, 5).is_feasible(s.values, 1e-6));
  }
  // The search.time_limit_ms deadline is scoped to the solve: the caller's context
  // must be usable again afterwards.
  EXPECT_FALSE(ctx.should_stop());
}

TEST(SolverLimits, LooseRelativeGapStopsEarlyButValid) {
  milp::SolverOptions tight;
  tight.search.relative_gap = 1e-9;
  milp::SolverOptions loose = tight;
  loose.search.relative_gap = 0.25;
  const auto model = hard_knapsack(18, 9);
  SolveContext ctx;
  const auto exact = milp::BranchAndBoundSolver(tight).solve(model, ctx);
  const auto approx = milp::BranchAndBoundSolver(loose).solve(model, ctx);
  ASSERT_EQ(exact.status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(approx.status, milp::MilpStatus::kOptimal);
  // Maximization: approx incumbent within 25% of the proven optimum.
  EXPECT_GE(approx.objective, exact.objective * 0.75 - 1e-6);
  EXPECT_LE(approx.nodes, exact.nodes);
  EXPECT_TRUE(model.is_feasible(approx.values, 1e-6));
}

TEST(SolverLimits, NodeCountsAreReported) {
  const auto model = hard_knapsack(14, 11);
  SolveContext ctx;
  const auto s = milp::BranchAndBoundSolver().solve(model, ctx);
  ASSERT_EQ(s.status, milp::MilpStatus::kOptimal);
  EXPECT_GE(s.nodes, 1);
  EXPECT_GE(s.lp_iterations, 1);
}

TEST(SolverLimits, ZeroVariableModelSolves) {
  Model m;
  m.set_objective(Sense::kMinimize, {}, 42.0);
  const lp::LpEngine solver;
  SolveContext ctx;
  const auto s = solver.solve(m, ctx);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 42.0);
  const auto milp_solution = milp::BranchAndBoundSolver().solve(m, ctx);
  ASSERT_EQ(milp_solution.status, milp::MilpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(milp_solution.objective, 42.0);
}

TEST(SolverLimits, FixedEverythingModelSolvesImmediately) {
  Model m;
  const int x = m.add_variable("x", 2.0, 2.0, true);
  const int y = m.add_continuous("y", 3.0, 3.0);
  m.set_objective(Sense::kMaximize, {{x, 2.0}, {y, 1.0}});
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 5.0);
  SolveContext ctx;
  const auto s = milp::BranchAndBoundSolver().solve(m, ctx);
  ASSERT_EQ(s.status, milp::MilpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 7.0);
}

TEST(SolverLimits, EqualityOnlySystemWithUniqueSolution) {
  // No optimization freedom at all: Ax = b pins the point.
  Model m;
  const int x = m.add_continuous("x", 0.0, 10.0);
  const int y = m.add_continuous("y", 0.0, 10.0);
  m.set_objective(Sense::kMinimize, {{x, 5.0}, {y, -2.0}});
  m.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, Relation::kEqual, 7.0);
  m.add_constraint("c2", {{x, 1.0}, {y, -1.0}}, Relation::kEqual, 1.0);
  SolveContext ctx;
  const auto s = lp::LpEngine().solve(m, ctx);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 4.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], 3.0, 1e-7);
}

TEST(SolverLimits, LargeCoefficientSpreadStaysAccurate) {
  // Mimics the planner's LPs: coefficients spanning ~9 orders of magnitude.
  Model m;
  const int big = m.add_continuous("data", 0.0, 1.0e9);
  const int small = m.add_binary("pick");
  m.set_objective(Sense::kMinimize, {{big, 1.5e-5}, {small, 100.0}});
  m.add_constraint("need", {{big, 1.0}, {small, 1.0e8}},
                   Relation::kGreaterEqual, 2.0e8);
  SolveContext ctx;
  const auto s = milp::BranchAndBoundSolver().solve(m, ctx);
  ASSERT_EQ(s.status, milp::MilpStatus::kOptimal);
  // Options: all data (2e8 * 1.5e-5 = 3000) vs pick + 1e8 data (1600).
  EXPECT_NEAR(s.objective, 1600.0, 1e-3);
}

}  // namespace
}  // namespace etransform
