// Tests for the MILP formulation builder: decoded plans are feasible, the
// objective the solver sees matches the exact evaluator (including tier
// linearization), and the DR sizing variants behave as specified.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "milp/branch_and_bound.h"
#include "planner/formulation.h"

namespace etransform {
namespace {

ConsolidationInstance small_instance(std::uint64_t seed = 5) {
  Rng rng(seed);
  return make_random_instance(rng, 8, 3, 2);
}

milp::MilpSolution solve(const lp::Model& model) {
  milp::SolverOptions options;
  options.search.time_limit_ms = 30000;
  const milp::BranchAndBoundSolver solver(options);
  SolveContext ctx;
  return solver.solve(model, ctx);
}

TEST(Formulation, NonDrDecodesToFeasiblePlan) {
  const auto instance = small_instance();
  const CostModel model(instance);
  FormulationOptions options;
  const Formulation f = build_formulation(model, options);
  const auto solution = solve(f.model);
  ASSERT_EQ(solution.status, milp::MilpStatus::kOptimal);
  const Plan plan = decode_plan(model, f, options, solution.values, "test");
  EXPECT_TRUE(check_plan(instance, plan).empty());
}

TEST(Formulation, ObjectiveMatchesEvaluatorOnFlatSchedules) {
  // With flat schedules the MILP objective must equal the evaluator's total
  // exactly (no tier-boundary slack).
  Rng rng(17);
  auto instance = make_random_instance(rng, 6, 3, 2);
  for (auto& site : instance.sites) {
    site.space_cost_per_server =
        StepSchedule::flat(site.space_cost_per_server.unit_price(0.0));
  }
  const CostModel model(instance);
  FormulationOptions options;
  const Formulation f = build_formulation(model, options);
  const auto solution = solve(f.model);
  ASSERT_EQ(solution.status, milp::MilpStatus::kOptimal);
  const Plan plan = decode_plan(model, f, options, solution.values, "test");
  EXPECT_NEAR(solution.objective, plan.cost.total(),
              1e-6 * std::max(1.0, plan.cost.total()));
}

TEST(Formulation, TierLinearizationMatchesScheduleSemantics) {
  // One site with a volume discount; force different volumes through it and
  // check the MILP prices them like StepSchedule::total_cost.
  ConsolidationInstance instance;
  instance.locations = {UserLocation{"l", {0, 0}}};
  for (int i = 0; i < 4; ++i) {
    ApplicationGroup group;
    group.name = "g" + std::to_string(i);
    group.servers = 3;
    group.users_per_location = {1.0};
    instance.groups.push_back(group);
  }
  DataCenterSite site;
  site.name = "dc";
  site.capacity_servers = 40;
  site.space_cost_per_server = StepSchedule::volume_discount(100.0, 5.0, 30.0,
                                                             3);
  DataCenterSite other = site;
  other.name = "dc2";
  other.space_cost_per_server = StepSchedule::flat(1000.0);  // decoy
  instance.sites = {site, other};
  instance.latency_ms = {{5.0}, {5.0}};
  const CostModel model(instance);
  FormulationOptions options;
  const Formulation f = build_formulation(model, options);
  const auto solution = solve(f.model);
  ASSERT_EQ(solution.status, milp::MilpStatus::kOptimal);
  // All 12 servers at dc: third tier (> 10), $40 each.
  const Plan plan = decode_plan(model, f, options, solution.values, "test");
  for (const int j : plan.primary) EXPECT_EQ(j, 0);
  EXPECT_NEAR(plan.cost.space, 12 * 40.0, 1e-9);
  EXPECT_NEAR(solution.objective, plan.cost.total(), 1e-6);
}

TEST(Formulation, EconomiesOfScaleRewardConsolidation) {
  // Two equal-base-price sites, one with discounts. With economies on, all
  // groups consolidate at the discounting site; with economies off the
  // solver sees identical prices and spreading is cost-neutral.
  ConsolidationInstance instance;
  instance.locations = {UserLocation{"l", {0, 0}}};
  for (int i = 0; i < 6; ++i) {
    ApplicationGroup group;
    group.name = "g" + std::to_string(i);
    group.servers = 2;
    group.users_per_location = {1.0};
    instance.groups.push_back(group);
  }
  DataCenterSite discounted;
  discounted.name = "bulk";
  discounted.capacity_servers = 20;
  discounted.space_cost_per_server =
      StepSchedule::volume_discount(100.0, 4.0, 25.0, 3);
  DataCenterSite flat_site;
  flat_site.name = "flat";
  flat_site.capacity_servers = 20;
  flat_site.space_cost_per_server = StepSchedule::flat(100.0);
  instance.sites = {discounted, flat_site};
  instance.latency_ms = {{5.0}, {5.0}};
  const CostModel model(instance);
  FormulationOptions options;
  options.economies_of_scale = true;
  const Formulation f = build_formulation(model, options);
  const auto solution = solve(f.model);
  ASSERT_EQ(solution.status, milp::MilpStatus::kOptimal);
  const Plan plan = decode_plan(model, f, options, solution.values, "test");
  for (const int j : plan.primary) EXPECT_EQ(j, 0);
  EXPECT_NEAR(plan.cost.space, 12 * 50.0, 1e-9);  // deepest tier
}

TEST(Formulation, BusinessImpactOmegaSpreadsGroups) {
  // 4 identical groups, 2 identical sites, omega = 0.5: max 2 groups/site.
  ConsolidationInstance instance;
  instance.locations = {UserLocation{"l", {0, 0}}};
  for (int i = 0; i < 4; ++i) {
    ApplicationGroup group;
    group.name = "g" + std::to_string(i);
    group.servers = 1;
    group.users_per_location = {1.0};
    instance.groups.push_back(group);
  }
  for (int j = 0; j < 2; ++j) {
    DataCenterSite site;
    site.name = "dc" + std::to_string(j);
    site.capacity_servers = 10;
    site.space_cost_per_server = StepSchedule::flat(j == 0 ? 10.0 : 20.0);
    instance.sites.push_back(site);
    instance.latency_ms.push_back({5.0});
  }
  const CostModel model(instance);
  FormulationOptions options;
  options.business_impact_omega = 0.5;
  const Formulation f = build_formulation(model, options);
  const auto solution = solve(f.model);
  ASSERT_EQ(solution.status, milp::MilpStatus::kOptimal);
  const Plan plan = decode_plan(model, f, options, solution.values, "test");
  int at_zero = 0;
  for (const int j : plan.primary) at_zero += (j == 0) ? 1 : 0;
  EXPECT_EQ(at_zero, 2);
}

TEST(Formulation, PinsAndSeparationsAreRespected) {
  auto instance = small_instance(23);
  instance.groups[0].pinned_site = 2;
  instance.separations.push_back({1, 2});
  const CostModel model(instance);
  FormulationOptions options;
  const Formulation f = build_formulation(model, options);
  const auto solution = solve(f.model);
  ASSERT_EQ(solution.status, milp::MilpStatus::kOptimal);
  const Plan plan = decode_plan(model, f, options, solution.values, "test");
  EXPECT_EQ(plan.primary[0], 2);
  EXPECT_NE(plan.primary[1], plan.primary[2]);
  EXPECT_TRUE(check_plan(instance, plan).empty());
}

TEST(Formulation, JointDrSharesBackups) {
  // Two primary sites, groups split across them, one cheap backup site: the
  // joint formulation must discover sharing (G = max, not sum).
  ConsolidationInstance instance;
  instance.locations = {UserLocation{"l", {0, 0}}};
  for (int i = 0; i < 4; ++i) {
    ApplicationGroup group;
    group.name = "g" + std::to_string(i);
    group.servers = 2;
    group.users_per_location = {1.0};
    instance.groups.push_back(group);
  }
  for (int j = 0; j < 3; ++j) {
    DataCenterSite site;
    site.name = "dc" + std::to_string(j);
    site.capacity_servers = 8;
    site.space_cost_per_server = StepSchedule::flat(j == 2 ? 10.0 : 20.0);
    instance.sites.push_back(site);
    instance.latency_ms.push_back({5.0});
  }
  instance.params.dr_server_cost = 500.0;
  const CostModel model(instance);
  FormulationOptions options;
  options.enable_dr = true;
  options.backup_sizing = BackupSizing::kSharedJoint;
  const Formulation f = build_formulation(model, options);
  const auto solution = solve(f.model);
  ASSERT_EQ(solution.status, milp::MilpStatus::kOptimal);
  const Plan plan = decode_plan(model, f, options, solution.values, "test");
  EXPECT_TRUE(check_plan(instance, plan).empty());
  // Sharing law bound: total backups needed is at most the largest site
  // loss, summed over backup sites — strictly less than total servers when
  // primaries are split and backups shared.
  const auto required =
      required_backup_servers(instance, plan.primary, plan.secondary);
  for (int j = 0; j < instance.num_sites(); ++j) {
    EXPECT_EQ(plan.backup_servers[static_cast<std::size_t>(j)],
              required[static_cast<std::size_t>(j)]);
  }
  EXPECT_LT(plan.total_backup_servers(), instance.total_servers());
}

TEST(Formulation, FixedPrimarySizingMatchesSharingLaw) {
  const auto instance = small_instance(31);
  const CostModel model(instance);
  // Stage 1: any feasible primary assignment.
  std::vector<int> primary(static_cast<std::size_t>(instance.num_groups()));
  for (int i = 0; i < instance.num_groups(); ++i) {
    primary[static_cast<std::size_t>(i)] = i % 2;
  }
  FormulationOptions options;
  options.enable_dr = true;
  options.backup_sizing = BackupSizing::kSharedFixedPrimary;
  options.fixed_primary = &primary;
  const Formulation f = build_formulation(model, options);
  const auto solution = solve(f.model);
  ASSERT_TRUE(solution.status == milp::MilpStatus::kOptimal ||
              solution.status == milp::MilpStatus::kFeasible);
  const Plan plan = decode_plan(model, f, options, solution.values, "test");
  EXPECT_EQ(plan.primary, primary);
  EXPECT_TRUE(check_plan(instance, plan).empty());
}

TEST(Formulation, RejectsInconsistentOptions) {
  const auto instance = small_instance();
  const CostModel model(instance);
  FormulationOptions options;
  options.backup_sizing = BackupSizing::kSharedFixedPrimary;
  options.enable_dr = true;
  EXPECT_THROW((void)build_formulation(model, options), InvalidInputError);
  options.enable_dr = false;
  options.backup_sizing = BackupSizing::kSharedJoint;
  options.business_impact_omega = 0.0;
  EXPECT_THROW((void)build_formulation(model, options), InvalidInputError);
}

TEST(Formulation, DecodeRejectsWrongValueVector) {
  const auto instance = small_instance();
  const CostModel model(instance);
  FormulationOptions options;
  const Formulation f = build_formulation(model, options);
  EXPECT_THROW(
      (void)decode_plan(model, f, options, std::vector<double>(3, 0.0), "x"),
      InvalidInputError);
}

}  // namespace
}  // namespace etransform
