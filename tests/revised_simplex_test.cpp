// Tests for the sparse revised simplex core: sparse-vs-dense differential
// agreement, cycling/degeneracy under partial pricing, warm-start
// regressions, numerical-error reporting, and the basis-engine contract
// across repeated refactorizations.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "lp/basis.h"
#include "lp/lp_engine.h"
#include "milp/branch_and_bound.h"

namespace etransform::lp {
namespace {

Model random_lp(std::uint64_t seed, int vars, int rows, double density) {
  Rng rng(seed);
  Model model;
  std::vector<Term> objective;
  for (int j = 0; j < vars; ++j) {
    const int v = model.add_continuous("x" + std::to_string(j), 0.0,
                                       rng.uniform(1.0, 10.0));
    objective.push_back({v, rng.uniform(-5.0, 5.0)});
  }
  model.set_objective(Sense::kMinimize, objective);
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < vars; ++j) {
      if (rng.uniform() < density) terms.push_back({j, rng.uniform(-2.0, 2.0)});
    }
    model.add_constraint("r" + std::to_string(i), terms, Relation::kLessEqual,
                         rng.uniform(1.0, 20.0));
  }
  return model;
}

LpSolution solve_sparse(const Model& model) {
  SolveContext ctx;
  return LpEngine().solve(model, ctx);
}

LpSolution solve_dense(const Model& model) {
  SimplexOptions options;
  options.use_dense_fallback = true;
  options.pricing = PricingRule::kDantzig;
  SolveContext ctx;
  return LpEngine(options).solve(model, ctx);
}

// The two engines take different pivot paths but must agree on the optimum.
// Densities above the dense-window threshold exercise the hybrid
// Markowitz-then-dense factorization; sparse ones stay pure Markowitz.
TEST(RevisedSimplex, SparseAndDenseAgreeOnRandomLps) {
  const struct {
    std::uint64_t seed;
    int vars;
    int rows;
    double density;
  } cases[] = {
      {3, 40, 20, 0.3},  {4, 40, 30, 0.7},  {5, 80, 40, 0.1},
      {6, 80, 40, 0.5},  {7, 120, 60, 0.3}, {8, 60, 60, 0.9},
  };
  for (const auto& c : cases) {
    const Model model = random_lp(c.seed, c.vars, c.rows, c.density);
    const LpSolution sparse = solve_sparse(model);
    const LpSolution dense = solve_dense(model);
    SCOPED_TRACE("seed=" + std::to_string(c.seed));
    ASSERT_EQ(sparse.status, SolveStatus::kOptimal);
    ASSERT_EQ(dense.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sparse.objective, dense.objective,
                1e-6 * (1.0 + std::abs(dense.objective)));
    // Duals of an optimal basis certify the objective; both engines must
    // produce complementary prices even if the optimal basis differs.
    ASSERT_EQ(sparse.duals.size(), dense.duals.size());
    double sparse_dual_obj = 0.0;
    double dense_dual_obj = 0.0;
    for (std::size_t r = 0; r < sparse.duals.size(); ++r) {
      sparse_dual_obj += sparse.duals[r];
      dense_dual_obj += dense.duals[r];
    }
    EXPECT_TRUE(std::isfinite(sparse_dual_obj));
    EXPECT_TRUE(std::isfinite(dense_dual_obj));
  }
}

// Beale's classic cycling example: Dantzig pricing without safeguards
// cycles forever on it. Partial pricing with the Bland fallback must
// terminate at the optimum, objective -1/20.
TEST(RevisedSimplex, BealeCyclingLpTerminates) {
  Model model;
  const int x4 = model.add_continuous("x4", 0.0, kInfinity);
  const int x5 = model.add_continuous("x5", 0.0, kInfinity);
  const int x6 = model.add_continuous("x6", 0.0, kInfinity);
  const int x7 = model.add_continuous("x7", 0.0, kInfinity);
  model.set_objective(Sense::kMinimize, {{x4, -0.75},
                                         {x5, 150.0},
                                         {x6, -0.02},
                                         {x7, 6.0}});
  model.add_constraint("r1",
                       {{x4, 0.25}, {x5, -60.0}, {x6, -1.0 / 25.0}, {x7, 9.0}},
                       Relation::kLessEqual, 0.0);
  model.add_constraint("r2",
                       {{x4, 0.5}, {x5, -90.0}, {x6, -1.0 / 50.0}, {x7, 3.0}},
                       Relation::kLessEqual, 0.0);
  model.add_constraint("r3", {{x6, 1.0}}, Relation::kLessEqual, 1.0);

  const LpSolution sparse = solve_sparse(model);
  ASSERT_EQ(sparse.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sparse.objective, -0.05, 1e-9);
  EXPECT_LT(sparse.iterations, 1000);

  const LpSolution dense = solve_dense(model);
  ASSERT_EQ(dense.status, SolveStatus::kOptimal);
  EXPECT_NEAR(dense.objective, -0.05, 1e-9);
}

// Warm-starting from the parent's optimal basis after a single branching
// bound change must re-solve in far fewer pivots than a cold start, and
// reach the same optimum.
TEST(RevisedSimplex, WarmStartAfterBoundChangeSavesIterations) {
  const Model model = random_lp(11, 100, 50, 0.3);
  const PreparedLp prep(model);
  const LpEngine solver;

  std::vector<double> lower(static_cast<std::size_t>(model.num_variables()));
  std::vector<double> upper(static_cast<std::size_t>(model.num_variables()));
  for (int j = 0; j < model.num_variables(); ++j) {
    lower[static_cast<std::size_t>(j)] = model.variable(j).lower;
    upper[static_cast<std::size_t>(j)] = model.variable(j).upper;
  }

  SolveContext root_ctx;
  const LpSolution root = solver.solve(prep, lower, upper, root_ctx);
  ASSERT_EQ(root.status, SolveStatus::kOptimal);
  ASSERT_NE(root.basis, nullptr);

  // "Branch": fix the first variable with a fractional-looking value to 0.
  upper[0] = 0.0;

  SolveContext cold_ctx;
  const LpSolution cold = solver.solve(prep, lower, upper, cold_ctx);
  SolveContext warm_ctx;
  const LpSolution warm =
      solver.solve(prep, lower, upper, warm_ctx,
                   LpStartBasis(root.basis.get()));

  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-6 * (1.0 + std::abs(cold.objective)));
  EXPECT_LT(warm.iterations, cold.iterations);
  EXPECT_LE(warm.phase1_iterations, cold.phase1_iterations);
}

// A numerically singular basis must be reported as such by the engine, for
// both factorization paths.
TEST(RevisedSimplex, EnginesRejectSingularBasis) {
  // Two identical columns plus one slack: rank 2 < 3.
  std::vector<SparseColumn> columns(3);
  columns[0].rows = {0, 1, 2};
  columns[0].coefs = {1.0, 2.0, 3.0};
  columns[1] = columns[0];
  columns[2].rows = {2};
  columns[2].coefs = {1.0};
  const std::vector<int> basis = {0, 1, 2};
  for (const bool dense : {false, true}) {
    const auto engine = make_basis_factorization(3, dense, 1e-9);
    EXPECT_FALSE(engine->factorize(columns, basis))
        << (dense ? "dense" : "sparse");
  }
}

// Regression for a factorization-reuse bug: the Schur-update scratch marks
// persist across factorize() calls, so a second factorization of the same
// object must still produce the same factors as a fresh engine (the broken
// version silently dropped fill-in entries on every refactorization).
TEST(RevisedSimplex, RefactorizeTwiceMatchesFreshEngine) {
  const int m = 40;
  Rng rng(17);
  std::vector<SparseColumn> columns(static_cast<std::size_t>(2 * m));
  for (int j = 0; j < 2 * m; ++j) {
    auto& col = columns[static_cast<std::size_t>(j)];
    for (int i = 0; i < m; ++i) {
      if (rng.uniform() < 0.25) {
        col.rows.push_back(i);
        col.coefs.push_back(rng.uniform(-2.0, 2.0));
      }
    }
    // Guarantee a structural diagonal so random bases stay nonsingular.
    const int diag = j % m;
    col.rows.push_back(diag);
    col.coefs.push_back(3.0 + rng.uniform(0.0, 1.0));
  }
  std::vector<int> basis(static_cast<std::size_t>(m));
  for (int k = 0; k < m; ++k) basis[static_cast<std::size_t>(k)] = k;

  const auto engine = make_basis_factorization(m, /*dense=*/false, 1e-9);
  ASSERT_TRUE(engine->factorize(columns, basis));

  // Pivot a few replacement columns in via product-form updates.
  std::vector<double> w(static_cast<std::size_t>(m));
  for (int pivot = 0; pivot < 6; ++pivot) {
    const int entering = m + pivot;
    const SparseColumn& col = columns[static_cast<std::size_t>(entering)];
    std::fill(w.begin(), w.end(), 0.0);
    for (std::size_t e = 0; e < col.rows.size(); ++e) {
      w[static_cast<std::size_t>(col.rows[e])] = col.coefs[e];
    }
    engine->ftran(w);
    const int r = pivot;  // replace basis position `pivot`
    ASSERT_TRUE(engine->update(w, r));
    basis[static_cast<std::size_t>(r)] = entering;
  }

  // Refactorize the SAME engine object, then compare its solves against a
  // brand-new engine factorizing the same basis.
  ASSERT_TRUE(engine->factorize(columns, basis));
  const auto fresh = make_basis_factorization(m, /*dense=*/false, 1e-9);
  ASSERT_TRUE(fresh->factorize(columns, basis));

  Rng probe_rng(23);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      x[static_cast<std::size_t>(i)] = probe_rng.uniform(-1.0, 1.0);
    }
    std::vector<double> ftran_reused = x;
    std::vector<double> ftran_fresh = x;
    engine->ftran(ftran_reused);
    fresh->ftran(ftran_fresh);
    std::vector<double> btran_reused = x;
    std::vector<double> btran_fresh = x;
    engine->btran(btran_reused);
    fresh->btran(btran_fresh);
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(ftran_reused[static_cast<std::size_t>(i)],
                  ftran_fresh[static_cast<std::size_t>(i)], 1e-8)
          << "ftran trial " << trial << " row " << i;
      EXPECT_NEAR(btran_reused[static_cast<std::size_t>(i)],
                  btran_fresh[static_cast<std::size_t>(i)], 1e-8)
          << "btran trial " << trial << " row " << i;
    }
  }
}

// B&B node warm-starting must reduce the total simplex work on a
// branching-heavy assignment MILP without changing the optimum.
TEST(RevisedSimplex, BranchAndBoundWarmStartReducesLpIterations) {
  Rng rng(23);
  Model model;
  const int tasks = 8;
  const int agents = 3;
  std::vector<std::vector<int>> x(static_cast<std::size_t>(tasks));
  std::vector<Term> objective;
  for (int t = 0; t < tasks; ++t) {
    for (int a = 0; a < agents; ++a) {
      const int v = model.add_binary("x_" + std::to_string(t) + "_" +
                                     std::to_string(a));
      x[static_cast<std::size_t>(t)].push_back(v);
      objective.push_back({v, rng.uniform(1.0, 20.0)});
    }
  }
  model.set_objective(Sense::kMinimize, objective);
  for (int t = 0; t < tasks; ++t) {
    std::vector<Term> row;
    for (const int v : x[static_cast<std::size_t>(t)]) row.push_back({v, 1.0});
    model.add_constraint("assign" + std::to_string(t), row, Relation::kEqual,
                         1.0);
  }
  for (int a = 0; a < agents; ++a) {
    std::vector<Term> row;
    for (int t = 0; t < tasks; ++t) {
      row.push_back(
          {x[static_cast<std::size_t>(t)][static_cast<std::size_t>(a)],
           rng.uniform(1.0, 8.0)});
    }
    model.add_constraint("cap" + std::to_string(a), row, Relation::kLessEqual,
                         3.0 * tasks / agents);
  }

  // Cuts off: the root cutting loop can close this instance at the root,
  // and this test is specifically about node-LP warm starts in the tree.
  milp::SolverOptions warm_options;
  warm_options.search.warm_start_nodes = true;
  warm_options.cuts.enable = false;
  milp::SolverOptions cold_options;
  cold_options.search.warm_start_nodes = false;
  cold_options.cuts.enable = false;

  SolveContext warm_ctx;
  const auto warm = milp::BranchAndBoundSolver(warm_options).solve(model,
                                                                   warm_ctx);
  SolveContext cold_ctx;
  const auto cold = milp::BranchAndBoundSolver(cold_options).solve(model,
                                                                   cold_ctx);

  ASSERT_EQ(warm.status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(cold.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
  EXPECT_LT(warm.lp_iterations, cold.lp_iterations);

  // The stats tree records how many nodes actually reused a parent basis.
  const SolveStats* bb = warm_ctx.stats().find("branch_and_bound");
  ASSERT_NE(bb, nullptr);
  EXPECT_GT(bb->metric("warm_started_nodes"), 0.0);
}

// TableauRowExtractor recovers rows of B^-1 A by one BTRAN each (the cut
// separators build Gomory cuts from them). Two identities pin it down on an
// optimal basis of a random LP:
//   * the coefficient of the q-th basic column in tableau row p is δ_pq
//     (B^-1 B = I),
//   * every tableau row is satisfied by the primal point: since A x = b in
//     the internal form, rho_p . (A x) must equal rho_p . b.
TEST(RevisedSimplex, TableauRowExtractorRecoversIdentityOnBasicColumns) {
  const Model model = random_lp(/*seed=*/11, /*vars=*/8, /*rows=*/6,
                                /*density=*/0.6);
  const PreparedLp prep(model);
  std::vector<double> lower;
  std::vector<double> upper;
  for (int j = 0; j < model.num_variables(); ++j) {
    lower.push_back(model.variable(j).lower);
    upper.push_back(model.variable(j).upper);
  }
  SolveContext ctx;
  const auto solution =
      LpEngine().solve(prep, lower, upper, ctx);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  ASSERT_NE(solution.basis, nullptr);
  const auto& basic = solution.basis->basic_columns;
  ASSERT_EQ(static_cast<int>(basic.size()), prep.num_rows());

  TableauRowExtractor extractor;
  ASSERT_TRUE(extractor.load(prep.num_rows(), prep.columns, basic));

  // Internal primal point: model variables then one slack per row
  // (a.x + s = rhs).
  std::vector<double> internal(static_cast<std::size_t>(prep.num_columns()),
                               0.0);
  for (int j = 0; j < prep.num_vars; ++j) {
    internal[static_cast<std::size_t>(j)] = solution.values[static_cast<std::size_t>(j)];
  }
  std::vector<double> activity(static_cast<std::size_t>(prep.num_rows()), 0.0);
  for (int j = 0; j < prep.num_vars; ++j) {
    const auto& column = prep.columns[static_cast<std::size_t>(j)];
    for (std::size_t k = 0; k < column.rows.size(); ++k) {
      activity[static_cast<std::size_t>(column.rows[k])] +=
          column.coefs[k] * internal[static_cast<std::size_t>(j)];
    }
  }
  for (int r = 0; r < prep.num_rows(); ++r) {
    internal[static_cast<std::size_t>(prep.num_vars + r)] =
        prep.rhs[static_cast<std::size_t>(r)] -
        activity[static_cast<std::size_t>(r)];
  }

  for (int p = 0; p < prep.num_rows(); ++p) {
    const auto& rho = extractor.row_multipliers(p);
    // Identity block over the basic columns.
    for (int q = 0; q < prep.num_rows(); ++q) {
      const double coef = TableauRowExtractor::row_coefficient(
          rho, prep.columns[static_cast<std::size_t>(
                   basic[static_cast<std::size_t>(q)])]);
      EXPECT_NEAR(coef, p == q ? 1.0 : 0.0, 1e-8)
          << "tableau row " << p << ", basic column " << q;
    }
    // Row equation: sum_j abar_j x_j == rho . rhs at the primal point.
    double lhs = 0.0;
    for (int c = 0; c < prep.num_columns(); ++c) {
      lhs += TableauRowExtractor::row_coefficient(
                 rho, prep.columns[static_cast<std::size_t>(c)]) *
             internal[static_cast<std::size_t>(c)];
    }
    double rhs = 0.0;
    for (int r = 0; r < prep.num_rows(); ++r) {
      rhs += rho[static_cast<std::size_t>(r)] *
             prep.rhs[static_cast<std::size_t>(r)];
    }
    EXPECT_NEAR(lhs, rhs, 1e-7) << "tableau row " << p;
  }
}

}  // namespace
}  // namespace etransform::lp
