// Unit tests for the common utilities: RNG determinism and distributions,
// money/table formatting, string helpers, CSV escaping, strong ids.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "common/csv.h"
#include "common/error.h"
#include "common/ids.h"
#include "common/money.h"
#include "common/random.h"
#include "common/strings.h"
#include "common/table.h"

namespace etransform {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), InvalidInputError);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) {
    counts[rng.weighted_index(weights)]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), InvalidInputError);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), InvalidInputError);
}

TEST(SplitTotalLognormal, SumsExactlyAndRespectsMinimum) {
  Rng rng(23);
  const auto shares = split_total_lognormal(rng, 1070, 190, 1.0, 1.0, 1);
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), 0), 1070);
  for (const int s : shares) EXPECT_GE(s, 1);
}

TEST(SplitTotalLognormal, HeavyTailProducesSpread) {
  Rng rng(29);
  const auto shares = split_total_lognormal(rng, 10000, 100, 1.0, 1.2, 1);
  const auto [lo, hi] = std::minmax_element(shares.begin(), shares.end());
  EXPECT_GT(*hi, 4 * *lo);
}

TEST(SplitTotalLognormal, RejectsImpossibleTotals) {
  Rng rng(1);
  EXPECT_THROW(split_total_lognormal(rng, 5, 10, 0.0, 1.0, 1),
               InvalidInputError);
  EXPECT_THROW(split_total_lognormal(rng, 10, 0, 0.0, 1.0, 1),
               InvalidInputError);
}

TEST(Money, FormatsWithThousandsSeparators) {
  EXPECT_EQ(format_money(0.0), "$0.00");
  EXPECT_EQ(format_money(1234567.891), "$1,234,567.89");
  EXPECT_EQ(format_money(-42.5), "-$42.50");
  EXPECT_EQ(format_money(999.994), "$999.99");
}

TEST(Money, CompactSuffixes) {
  EXPECT_EQ(format_money_compact(1500.0), "$1.50K");
  EXPECT_EQ(format_money_compact(2.5e6), "$2.50M");
  EXPECT_EQ(format_money_compact(3.2e9), "$3.20B");
  EXPECT_EQ(format_money_compact(-1.0e6), "-$1.00M");
  EXPECT_EQ(format_money_compact(12.0), "$12.00");
}

TEST(Strings, TrimRemovesEdges) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  const auto fields = split_whitespace("  a \t b\nc  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_TRUE(starts_with_icase("Subject To", "subject"));
  EXPECT_FALSE(starts_with_icase("Sub", "subject"));
  EXPECT_TRUE(equals_icase("END", "end"));
  EXPECT_FALSE(equals_icase("end", "ends"));
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"x", "y"});
  writer.write_row({"1", "2,3"});
  EXPECT_EQ(out.str(), "x,y\n1,\"2,3\"\n");
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "cost"});
  table.add_row({"alpha", "$10.00"});
  table.add_row({"b", "$1,000.00"});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("$1,000.00"), std::string::npos);
  // All lines equally wide for data rows.
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, RejectsMismatchedRows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidInputError);
  EXPECT_THROW(TextTable({}), InvalidInputError);
}

TEST(FormatHelpers, DoubleAndPercent) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_percent(-43.21), "-43.2%");
  EXPECT_EQ(format_percent(12.0), "+12.0%");
}

TEST(StrongId, DistinctTypesAndOrdering) {
  const GroupId g1(1);
  const GroupId g2(2);
  EXPECT_LT(g1, g2);
  EXPECT_EQ(GroupId(3), GroupId(3));
  EXPECT_EQ(g1.value(), 1u);
  static_assert(!std::is_convertible_v<GroupId, SiteId>);
  static_assert(!std::is_convertible_v<std::size_t, GroupId>);
}

}  // namespace
}  // namespace etransform
