// Compat shim: the strict test-side JSON parser was promoted into the shared
// library (src/common/json.{h,cpp}) when the server subsystem needed a real
// request parser. Existing tests keep the etransform::test::JValue spelling;
// new code should include "common/json.h" directly.
#pragma once

#include <string>

#include "common/json.h"

namespace etransform::test {

using JValue = ::etransform::json::Value;

inline bool json_parse(const std::string& text, JValue& out,
                       std::string* error = nullptr) {
  return ::etransform::json::parse(text, out, error);
}

}  // namespace etransform::test
