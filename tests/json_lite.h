// Minimal strict JSON parser for test assertions (round-tripping the JSON
// the library emits: SolveStats::to_json, TraceRecorder::to_chrome_json).
// Test-only by design — no error recovery, no streaming, everything in one
// DOM. Rejects trailing garbage, unterminated strings, bad escapes, and
// malformed numbers, which is exactly what the escaping tests need.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace etransform::test {

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JValue> arr;
  std::vector<std::pair<std::string, JValue>> obj;  // insertion order kept

  /// Object member by key, or nullptr.
  [[nodiscard]] const JValue* get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace json_detail {

struct Parser {
  const char* p;
  const char* end;
  std::string* error;

  bool fail(const std::string& message) {
    if (error != nullptr && error->empty()) *error = message;
    return false;
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool literal(const char* word, std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) return false;
    for (std::size_t i = 0; i < n; ++i) {
      if (p[i] != word[i]) return false;
    }
    p += n;
    return true;
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c < 0x20) return fail("raw control char in string");
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("truncated escape");
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end - p < 5) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = p[i];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // The library only emits \u00xx; decode BMP codepoints as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            p += 4;
            break;
          }
          default:
            return fail("bad escape");
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_value(JValue& out) {
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    switch (*p) {
      case 'n':
        if (!literal("null", 4)) return fail("bad literal");
        out.kind = JValue::Kind::kNull;
        return true;
      case 't':
        if (!literal("true", 4)) return fail("bad literal");
        out.kind = JValue::Kind::kBool;
        out.b = true;
        return true;
      case 'f':
        if (!literal("false", 5)) return fail("bad literal");
        out.kind = JValue::Kind::kBool;
        out.b = false;
        return true;
      case '"':
        out.kind = JValue::Kind::kString;
        return parse_string(out.str);
      case '[': {
        ++p;
        out.kind = JValue::Kind::kArray;
        skip_ws();
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        while (true) {
          JValue item;
          if (!parse_value(item)) return false;
          out.arr.push_back(std::move(item));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++p;
        out.kind = JValue::Kind::kObject;
        skip_ws();
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (p >= end || *p != ':') return fail("expected ':'");
          ++p;
          JValue item;
          if (!parse_value(item)) return false;
          out.obj.emplace_back(std::move(key), std::move(item));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default: {
        // Number.
        char* num_end = nullptr;
        const double v = std::strtod(p, &num_end);
        if (num_end == p || num_end > end) return fail("bad number");
        out.kind = JValue::Kind::kNumber;
        out.num = v;
        p = num_end;
        return true;
      }
    }
  }
};

}  // namespace json_detail

/// Parses `text` as one JSON document (no trailing garbage). On failure
/// returns false and describes the problem in `*error` (when given).
inline bool json_parse(const std::string& text, JValue& out,
                       std::string* error = nullptr) {
  json_detail::Parser parser{text.data(), text.data() + text.size(), error};
  if (!parser.parse_value(out)) return false;
  parser.skip_ws();
  if (parser.p != parser.end) return parser.fail("trailing garbage");
  return true;
}

}  // namespace etransform::test
