// Robustness sweeps: randomly mutated inputs must never crash the parsers
// or solvers — every failure surfaces as a typed Error.
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "lp/lp_format.h"
#include "lp/lp_engine.h"
#include "model/instance_io.h"

namespace etransform {
namespace {

/// Applies `count` random single-character mutations (replace, delete,
/// insert) to `text`.
std::string mutate(Rng& rng, std::string text, int count) {
  const std::string alphabet =
      "abcxyz0123456789 .+-<>=\n\t#_";
  for (int k = 0; k < count && !text.empty(); ++k) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
    const char c = alphabet[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    switch (rng.uniform_int(0, 2)) {
      case 0: text[pos] = c; break;
      case 1: text.erase(pos, 1); break;
      default: text.insert(pos, 1, c); break;
    }
  }
  return text;
}

class LpParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpParserFuzz, MutatedLpFilesNeverCrash) {
  Rng rng(GetParam());
  // Start from a valid file so mutations explore near-valid space.
  lp::Model m;
  const int x = m.add_continuous("x", 0.0, 4.0);
  const int y = m.add_binary("y");
  m.set_objective(lp::Sense::kMinimize, {{x, 1.5}, {y, -2.0}}, 3.0);
  m.add_constraint("c1", {{x, 1.0}, {y, 2.0}}, lp::Relation::kLessEqual, 5.0);
  m.add_constraint("c2", {{x, -1.0}}, lp::Relation::kGreaterEqual, -3.0);
  const std::string base = lp::write_lp(m);
  for (int round = 0; round < 40; ++round) {
    const std::string mutated =
        mutate(rng, base, 1 + static_cast<int>(rng.uniform_int(0, 8)));
    try {
      const lp::Model parsed = lp::parse_lp(mutated);
      // If it parsed, it must also solve without crashing.
      SolveContext ctx;
      (void)lp::LpEngine().solve(parsed, ctx);
    } catch (const Error&) {
      // Typed rejection is the expected outcome for broken inputs.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpParserFuzz,
                         ::testing::Range<std::uint64_t>(0, 10));

class InstanceParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InstanceParserFuzz, MutatedInstanceFilesNeverCrash) {
  Rng rng(GetParam() + 100);
  Rng gen(7);
  const std::string base = write_instance(make_random_instance(gen, 5, 3, 2));
  for (int round = 0; round < 30; ++round) {
    const std::string mutated =
        mutate(rng, base, 1 + static_cast<int>(rng.uniform_int(0, 10)));
    try {
      (void)parse_instance(mutated);
    } catch (const Error&) {
      // ParseError / InvalidInputError / InfeasibleError are all fine.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InstanceParserFuzz,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(SolutionParserFuzz, MutatedSolutionFilesNeverCrash) {
  Rng rng(55);
  const std::string base = "status optimal\nobjective 12.5\nx 1\ny 0\n";
  for (int round = 0; round < 200; ++round) {
    const std::string mutated =
        mutate(rng, base, 1 + static_cast<int>(rng.uniform_int(0, 6)));
    try {
      (void)lp::parse_solution(mutated);
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace etransform
