// End-to-end planner tests: optimality against brute force on tiny
// instances, dominance over the baselines, DR plan quality, engine
// selection, and randomized property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.h"
#include "common/error.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "milp/brute_force.h"
#include "planner/etransform_planner.h"
#include "planner/formulation.h"

namespace etransform {
namespace {

PlannerReport run_planner(const ConsolidationInstance& instance,
                          PlannerOptions options = {}) {
  // Keep the suite fast: tiny instances don't need the production budget.
  options.milp.search.time_limit_ms = std::min(options.milp.search.time_limit_ms, 5000);
  options.milp.search.max_nodes = std::min(options.milp.search.max_nodes, 5000);
  const CostModel model(instance);
  const EtransformPlanner planner(options);
  SolveContext ctx;
  return planner.plan(PlanInput(model), ctx);
}

/// Exhaustively finds the cheapest feasible non-DR plan.
Plan brute_force_plan(const CostModel& model) {
  const auto& instance = model.instance();
  const int n = instance.num_groups();
  const int sites = instance.num_sites();
  std::vector<int> assignment(static_cast<std::size_t>(n), 0);
  Plan best;
  double best_cost = std::numeric_limits<double>::infinity();
  while (true) {
    Plan candidate;
    candidate.primary = assignment;
    if (check_plan(instance, candidate).empty()) {
      model.price_plan(candidate);
      if (candidate.cost.total() < best_cost) {
        best_cost = candidate.cost.total();
        best = candidate;
      }
    }
    int k = 0;
    while (k < n) {
      if (++assignment[static_cast<std::size_t>(k)] < sites) break;
      assignment[static_cast<std::size_t>(k)] = 0;
      ++k;
    }
    if (k == n) break;
  }
  return best;
}

TEST(Planner, MatchesBruteForceOnTinyInstances) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    const auto instance = make_random_instance(rng, 6, 3, 2);
    const CostModel model(instance);
    const Plan reference = brute_force_plan(model);
    const PlannerReport report = run_planner(instance);
    EXPECT_TRUE(check_plan(instance, report.plan).empty());
    EXPECT_TRUE(report.used_exact_solver);
    EXPECT_NEAR(report.plan.cost.total(), reference.cost.total(),
                1e-6 * std::max(1.0, reference.cost.total()))
        << "seed " << seed;
  }
}

TEST(Planner, NeverWorseThanBaselines) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed + 100);
    const auto instance = make_random_instance(rng, 14, 4, 3);
    const CostModel model(instance);
    const PlannerReport report = run_planner(instance);
    const Plan greedy = plan_greedy(model, false);
    const Plan manual = plan_manual(model, false);
    EXPECT_LE(report.plan.cost.total(), greedy.cost.total() + 1e-6)
        << "seed " << seed;
    EXPECT_LE(report.plan.cost.total(), manual.cost.total() + 1e-6)
        << "seed " << seed;
  }
}

TEST(Planner, LowerBoundBracketsExactCost) {
  Rng rng(41);
  const auto instance = make_random_instance(rng, 10, 3, 2);
  const PlannerReport report = run_planner(instance);
  ASSERT_TRUE(report.used_exact_solver);
  if (report.proven_optimal) {
    EXPECT_LE(report.lower_bound,
              report.plan.cost.total() + 1e-4 * report.plan.cost.total());
  }
}

TEST(Planner, DrPlansAreFeasibleAndShareBackups) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 50);
    const auto instance = make_random_instance(rng, 8, 4, 2);
    PlannerOptions options;
    options.enable_dr = true;
    const PlannerReport report = run_planner(instance, options);
    EXPECT_TRUE(check_plan(instance, report.plan).empty()) << "seed " << seed;
    EXPECT_TRUE(report.plan.has_dr());
    // Backup counts match the sharing law exactly (decode recomputes them).
    const auto required = required_backup_servers(
        instance, report.plan.primary, report.plan.secondary);
    EXPECT_EQ(report.plan.backup_servers, required);
  }
}

TEST(Planner, DrNeverWorseThanGreedyDr) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 500);
    const auto instance = make_random_instance(rng, 10, 4, 2);
    const CostModel model(instance);
    PlannerOptions options;
    options.enable_dr = true;
    const PlannerReport report = run_planner(instance, options);
    const Plan greedy = plan_greedy(model, true);
    EXPECT_LE(report.plan.cost.total(), greedy.cost.total() + 1e-6)
        << "seed " << seed;
  }
}

TEST(Planner, BusinessImpactOmegaBindsOnHeuristicPath) {
  // The heuristic engine must honor omega too (seeds and local search carry
  // the per-site group cap).
  Rng rng(2500);
  const auto instance = make_random_instance(rng, 12, 4, 2);
  PlannerOptions options;
  options.engine = PlannerOptions::Engine::kHeuristic;
  options.business_impact_omega = 0.25;  // max 3 of 12 groups per site
  const PlannerReport report = run_planner(instance, options);
  std::vector<int> per_site(4, 0);
  for (const int j : report.plan.primary) {
    per_site[static_cast<std::size_t>(j)] += 1;
  }
  for (const int count : per_site) EXPECT_LE(count, 3);
  EXPECT_TRUE(check_plan(instance, report.plan).empty());

  // Impossible cap: even perfect spreading cannot satisfy it.
  options.business_impact_omega = 0.1;  // cap 1 per site, 12 groups, 4 sites
  EXPECT_THROW(run_planner(instance, options), InfeasibleError);
}

TEST(Planner, DedicatedDrProvisionsFullMirrors) {
  // Multi-failure mode: every group gets its own backups, so the total
  // backup count equals the total server count, and the plan costs at least
  // as much as the shared single-failure plan.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed + 1500);
    const auto instance = make_random_instance(rng, 8, 4, 2);
    PlannerOptions shared;
    shared.enable_dr = true;
    PlannerOptions dedicated = shared;
    dedicated.dr_sizing = PlannerOptions::DrSizing::kDedicated;
    const PlannerReport shared_report = run_planner(instance, shared);
    const PlannerReport dedicated_report = run_planner(instance, dedicated);
    EXPECT_TRUE(check_plan(instance, dedicated_report.plan).empty())
        << "seed " << seed;
    EXPECT_EQ(dedicated_report.plan.total_backup_servers(),
              instance.total_servers())
        << "seed " << seed;
    EXPECT_LE(shared_report.plan.total_backup_servers(),
              dedicated_report.plan.total_backup_servers());
    EXPECT_LE(shared_report.plan.cost.total(),
              dedicated_report.plan.cost.total() + 1e-6)
        << "seed " << seed;
    // The dedicated counts match the dedicated sizing law exactly.
    EXPECT_EQ(dedicated_report.plan.backup_servers,
              dedicated_backup_servers(instance,
                                       dedicated_report.plan.primary,
                                       dedicated_report.plan.secondary));
  }
}

TEST(Planner, TwoStageDrCloseToJointOnSmallInstances) {
  // The documented substitution: two-stage must land near the joint optimum.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed + 900);
    const auto instance = make_random_instance(rng, 6, 3, 2);
    PlannerOptions joint;
    joint.enable_dr = true;
    joint.joint_dr_var_limit = 1 << 20;
    const PlannerReport joint_report = run_planner(instance, joint);

    PlannerOptions two_stage;
    two_stage.enable_dr = true;
    two_stage.joint_dr_var_limit = 0;  // force the two-stage path
    const PlannerReport staged_report = run_planner(instance, two_stage);

    EXPECT_TRUE(check_plan(instance, staged_report.plan).empty());
    EXPECT_LE(staged_report.plan.cost.total(),
              1.10 * joint_report.plan.cost.total() + 1e-6)
        << "seed " << seed;
  }
}

TEST(Planner, HeuristicEngineMatchesExactOnSmallInstances) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 300);
    const auto instance = make_random_instance(rng, 10, 3, 2);
    PlannerOptions exact;
    exact.engine = PlannerOptions::Engine::kExact;
    PlannerOptions heuristic;
    heuristic.engine = PlannerOptions::Engine::kHeuristic;
    const PlannerReport exact_report = run_planner(instance, exact);
    const PlannerReport heuristic_report = run_planner(instance, heuristic);
    EXPECT_FALSE(heuristic_report.used_exact_solver);
    EXPECT_TRUE(check_plan(instance, heuristic_report.plan).empty());
    EXPECT_LE(heuristic_report.plan.cost.total(),
              1.05 * exact_report.plan.cost.total() + 1e-6)
        << "seed " << seed;
  }
}

TEST(Planner, AutoSwitchesToHeuristicAboveVarLimit) {
  Rng rng(77);
  const auto instance = make_random_instance(rng, 20, 4, 2);
  PlannerOptions options;
  options.exact_var_limit = 10;  // force the heuristic branch
  const PlannerReport report = run_planner(instance, options);
  EXPECT_FALSE(report.used_exact_solver);
  EXPECT_TRUE(check_plan(instance, report.plan).empty());
}

TEST(Planner, HonorsPinsForbidsAndSeparations) {
  Rng rng(88);
  auto instance = make_random_instance(rng, 8, 4, 2);
  instance.groups[0].pinned_site = 3;
  instance.groups[1].allowed_sites = {0, 1};
  instance.separations.push_back({2, 3});
  const PlannerReport report = run_planner(instance);
  EXPECT_EQ(report.plan.primary[0], 3);
  EXPECT_TRUE(report.plan.primary[1] == 0 || report.plan.primary[1] == 1);
  EXPECT_NE(report.plan.primary[2], report.plan.primary[3]);
}

TEST(Planner, ThrowsOnInfeasibleInstance) {
  Rng rng(99);
  auto instance = make_random_instance(rng, 6, 3, 2);
  for (auto& site : instance.sites) site.capacity_servers = 1;
  EXPECT_THROW(run_planner(instance), Error);
}

TEST(Planner, LatencyPenaltyDrivesPlacement) {
  // Cheap far site vs expensive near site: low penalty -> far, high -> near.
  LatencyLineSpec spec;
  spec.num_sites = 2;
  spec.num_groups = 5;
  spec.total_servers = 20;
  spec.fraction_users_near = 0.0;  // users at the far end
  spec.users_per_group = 10.0;
  spec.penalty_per_user = 0.0;
  const auto cheap_wins = run_planner(make_latency_line(spec));
  for (const int j : cheap_wins.plan.primary) EXPECT_EQ(j, 0);

  spec.penalty_per_user = 200.0;
  const auto users_win = run_planner(make_latency_line(spec));
  for (const int j : users_win.plan.primary) EXPECT_EQ(j, 1);
  EXPECT_EQ(users_win.plan.latency_violations, 0);
}

TEST(Planner, HighDrServerCostSpreadsPrimaries) {
  // Fig. 8's mechanism: when backup servers are expensive, spreading
  // primaries over more sites lets one backup pool cover them all.
  LatencyLineSpec spec;
  spec.num_groups = 24;
  spec.total_servers = 240;
  spec.num_sites = 8;
  spec.site_capacity = 400;
  spec.penalty_per_user = 0.0;
  // Space gradient strictly dominates a $1 backup server (consolidate) and
  // is dominated by a $100k one (spread) — no tied moves either way.
  spec.space_step = 5.0;

  PlannerOptions options;
  options.enable_dr = true;
  options.engine = PlannerOptions::Engine::kHeuristic;

  spec.dr_server_cost = 1.0;
  const auto cheap = run_planner(make_latency_line(spec), options);
  spec.dr_server_cost = 100000.0;
  const auto expensive = run_planner(make_latency_line(spec), options);
  EXPECT_GT(expensive.plan.sites_used(), cheap.plan.sites_used());
  EXPECT_LT(expensive.plan.total_backup_servers(),
            cheap.plan.total_backup_servers());
}

// ---- randomized sweep ------------------------------------------------------

class PlannerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlannerPropertyTest, PlansAreFeasibleAndDominateGreedy) {
  Rng rng(GetParam() + 4000);
  const auto instance = make_random_instance(
      rng, 6 + static_cast<int>(GetParam() % 10), 3 + GetParam() % 3, 2);
  const CostModel model(instance);
  const PlannerReport report = run_planner(instance);
  EXPECT_TRUE(check_plan(instance, report.plan).empty());
  const Plan greedy = plan_greedy(model, false);
  EXPECT_LE(report.plan.cost.total(), greedy.cost.total() + 1e-6);
  // Re-pricing is idempotent.
  Plan copy = report.plan;
  model.price_plan(copy);
  EXPECT_NEAR(copy.cost.total(), report.plan.cost.total(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 12));

class PlannerDrPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PlannerDrPropertyTest, DrPlansFeasibleAndBackupsShared) {
  Rng rng(GetParam() + 6000);
  const auto instance = make_random_instance(rng, 8, 4, 2);
  PlannerOptions options;
  options.enable_dr = true;
  const PlannerReport report = run_planner(instance, options);
  EXPECT_TRUE(check_plan(instance, report.plan).empty());
  // Shared sizing can never exceed dedicated sizing.
  long long dedicated = 0;
  for (const auto& group : instance.groups) dedicated += group.servers;
  EXPECT_LE(report.plan.total_backup_servers(), dedicated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerDrPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace etransform
