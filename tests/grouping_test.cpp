// Tests for application grouping from traffic matrices.
#include <gtest/gtest.h>

#include "common/error.h"
#include "model/grouping.h"

namespace etransform {
namespace {

std::vector<ApplicationSpec> three_apps() {
  ApplicationSpec web;
  web.name = "web";
  web.servers = 2;
  web.monthly_data_megabits = 1000.0;
  web.users_per_location = {10.0, 0.0};
  web.latency_penalty = LatencyPenaltyFunction::single_step(10.0, 100.0);
  ApplicationSpec db;
  db.name = "db";
  db.servers = 4;
  db.monthly_data_megabits = 0.0;
  db.users_per_location = {0.0, 0.0};
  ApplicationSpec batch;
  batch.name = "batch";
  batch.servers = 3;
  batch.monthly_data_megabits = 500.0;
  batch.users_per_location = {0.0, 5.0};
  return {web, db, batch};
}

TEST(Grouping, ClustersByTrafficThreshold) {
  // web <-> db exchange heavy traffic; batch is independent.
  const std::vector<std::vector<double>> traffic = {
      {0.0, 900.0, 0.1},
      {900.0, 0.0, 0.0},
      {0.1, 0.0, 0.0},
  };
  GroupingOptions options;
  options.traffic_threshold_megabits = 100.0;
  const GroupingResult result =
      build_application_groups(three_apps(), traffic, options);
  ASSERT_EQ(result.groups.size(), 2u);
  EXPECT_EQ(result.membership[0], result.membership[1]);
  EXPECT_NE(result.membership[0], result.membership[2]);
  const auto& merged =
      result.groups[static_cast<std::size_t>(result.membership[0])];
  EXPECT_EQ(merged.servers, 6);
  EXPECT_DOUBLE_EQ(merged.monthly_data_megabits, 1000.0);
  EXPECT_DOUBLE_EQ(merged.users_per_location[0], 10.0);
  // The group inherits web's latency SLA.
  EXPECT_DOUBLE_EQ(merged.latency_penalty.penalty_per_user(11.0), 100.0);
  EXPECT_DOUBLE_EQ(result.intra_group_traffic_megabits, 1800.0);
}

TEST(Grouping, TransitivityChainsClusters) {
  // a-b heavy, b-c heavy, a-c nothing: one group by transitivity.
  const std::vector<std::vector<double>> traffic = {
      {0.0, 500.0, 0.0},
      {500.0, 0.0, 500.0},
      {0.0, 500.0, 0.0},
  };
  const GroupingResult result =
      build_application_groups(three_apps(), traffic, {});
  EXPECT_EQ(result.groups.size(), 1u);
  EXPECT_EQ(result.groups[0].servers, 9);
}

TEST(Grouping, HighThresholdKeepsEveryoneApart) {
  const std::vector<std::vector<double>> traffic = {
      {0.0, 900.0, 0.1},
      {900.0, 0.0, 0.0},
      {0.1, 0.0, 0.0},
  };
  GroupingOptions options;
  options.traffic_threshold_megabits = 1.0e9;
  const GroupingResult result =
      build_application_groups(three_apps(), traffic, options);
  EXPECT_EQ(result.groups.size(), 3u);
  EXPECT_DOUBLE_EQ(result.intra_group_traffic_megabits, 0.0);
}

TEST(Grouping, EnforcesMaxGroupServers) {
  const std::vector<std::vector<double>> traffic = {
      {0.0, 900.0, 900.0},
      {900.0, 0.0, 900.0},
      {900.0, 900.0, 0.0},
  };
  GroupingOptions options;
  options.max_group_servers = 5;  // cluster needs 9
  EXPECT_THROW((void)build_application_groups(three_apps(), traffic, options),
               InfeasibleError);
}

TEST(Grouping, RejectsMalformedInput) {
  EXPECT_THROW((void)build_application_groups({}, {}, {}), InvalidInputError);
  auto apps = three_apps();
  EXPECT_THROW((void)build_application_groups(
                   apps, {{0.0, 1.0}, {1.0, 0.0}}, {}),
               InvalidInputError);
  const std::vector<std::vector<double>> negative = {
      {0.0, -1.0, 0.0}, {-1.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
  EXPECT_THROW((void)build_application_groups(apps, negative, {}),
               InvalidInputError);
  apps[1].users_per_location = {1.0};
  const std::vector<std::vector<double>> zero(
      3, std::vector<double>(3, 0.0));
  EXPECT_THROW((void)build_application_groups(apps, zero, {}),
               InvalidInputError);
  GroupingOptions bad;
  bad.traffic_threshold_megabits = 0.0;
  EXPECT_THROW(
      (void)build_application_groups(three_apps(), zero, bad),
      InvalidInputError);
}

TEST(MergeLatencyPenalties, TakesPointwiseMaximum) {
  const auto a = LatencyPenaltyFunction::single_step(10.0, 100.0);
  const LatencyPenaltyFunction b({{5.0, 20.0}, {50.0, 150.0}});
  const auto merged = merge_latency_penalties(a, b);
  EXPECT_DOUBLE_EQ(merged.penalty_per_user(4.0), 0.0);
  EXPECT_DOUBLE_EQ(merged.penalty_per_user(7.0), 20.0);    // b only
  EXPECT_DOUBLE_EQ(merged.penalty_per_user(20.0), 100.0);  // a dominates
  EXPECT_DOUBLE_EQ(merged.penalty_per_user(60.0), 150.0);  // b's top step
}

TEST(MergeLatencyPenalties, IdentityWithInsensitive) {
  const auto a = LatencyPenaltyFunction::single_step(10.0, 100.0);
  const LatencyPenaltyFunction none;
  EXPECT_DOUBLE_EQ(
      merge_latency_penalties(a, none).penalty_per_user(11.0), 100.0);
  EXPECT_TRUE(merge_latency_penalties(none, none).is_insensitive());
}

}  // namespace
}  // namespace etransform
