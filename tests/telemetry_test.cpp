// Tests for the telemetry subsystem: trace recorder allocation discipline
// (zero-allocation hot path), drop-never-wrap semantics, Chrome JSON drain
// validity under concurrency, metrics registry math and Prometheus
// exposition, artifact writing, and end-to-end SolveFarm/SolveScope
// integration.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>
#include <new>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/progress.h"
#include "common/random.h"
#include "common/solve_context.h"
#include "datagen/generators.h"
#include "common/json.h"
#include "lp/model.h"
#include "lp/lp_engine.h"
#include "service/solve_farm.h"
#include "telemetry/artifacts.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Counts every scalar/array new in the process so
// tests can assert the recorder's hot path allocates nothing.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace etransform {
namespace {

using telemetry::MetricsRegistry;
using telemetry::TraceRecorder;
using telemetry::TraceSpan;

std::uint64_t allocations() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

/// Parses a drained trace and fails the test on malformed JSON.
json::Value parse_trace(const std::string& json) {
  json::Value doc;
  std::string error;
  EXPECT_TRUE(json::parse(json, doc, &error)) << error;
  return doc;
}

/// Per-tid duration balance: every "E" closes an earlier "B"; all depths
/// return to zero; timestamps never go backwards within a tid.
void expect_balanced_and_monotonic(const json::Value& doc) {
  const json::Value* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<double, int> depth;
  std::map<double, double> last_ts;
  for (const json::Value& e : events->arr) {
    const std::string& ph = e.get("ph")->str;
    if (ph == "M") continue;
    const double tid = e.get("tid")->num;
    const double ts = e.get("ts")->num;
    EXPECT_GE(ts, last_ts[tid]) << "timestamps regress within tid " << tid;
    last_ts[tid] = ts;
    if (ph == "B") ++depth[tid];
    if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "E without matching B on tid " << tid;
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
  }
}

// ---- recorder basics ------------------------------------------------------

TEST(TraceRecorder, DrainsNestedSpansAsBalancedChromeJson) {
  TraceRecorder recorder;
  recorder.set_current_thread_name("main");
  recorder.begin("a", "outer");
  recorder.begin("a", "inner");
  recorder.instant("a", "tick", 42);
  recorder.end("a", "inner");
  recorder.end("a", "outer");
  EXPECT_EQ(recorder.recorded(), 5u);
  EXPECT_EQ(recorder.thread_count(), 1);

  const json::Value doc = parse_trace(recorder.to_chrome_json());
  EXPECT_EQ(doc.get("displayTimeUnit")->str, "ms");
  const json::Value* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  // 1 thread_name metadata record + 5 events.
  ASSERT_EQ(events->arr.size(), 6u);
  EXPECT_EQ(events->arr[0].get("ph")->str, "M");
  EXPECT_EQ(events->arr[0].get("args")->get("name")->str, "main");
  EXPECT_EQ(events->arr[1].get("name")->str, "outer");
  EXPECT_EQ(events->arr[1].get("ph")->str, "B");
  const json::Value& instant = events->arr[3];
  EXPECT_EQ(instant.get("ph")->str, "i");
  EXPECT_EQ(instant.get("s")->str, "t");
  EXPECT_EQ(instant.get("args")->get("value")->num, 42.0);
  expect_balanced_and_monotonic(doc);
}

TEST(TraceRecorder, AsyncEventsCarryTheirIdAcrossThreads) {
  TraceRecorder recorder;
  recorder.async_begin("job", "job", 7);
  std::thread worker([&] {
    recorder.async_instant("job", "claim", 7);
    recorder.async_end("job", "job", 7);
  });
  worker.join();
  const json::Value doc = parse_trace(recorder.to_chrome_json());
  int b = 0;
  int n = 0;
  int e = 0;
  for (const json::Value& event : doc.get("traceEvents")->arr) {
    const std::string& ph = event.get("ph")->str;
    if (ph == "M") continue;
    ASSERT_NE(event.get("id"), nullptr) << "async events must carry an id";
    EXPECT_EQ(event.get("id")->num, 7.0);
    if (ph == "b") ++b;
    if (ph == "n") ++n;
    if (ph == "e") ++e;
  }
  EXPECT_EQ(b, 1);
  EXPECT_EQ(n, 1);
  EXPECT_EQ(e, 1);
  EXPECT_EQ(recorder.thread_count(), 2);
}

TEST(TraceRecorder, TruncatesOverlongNamesInsteadOfCorrupting) {
  TraceRecorder recorder;
  const std::string long_name(200, 'x');
  recorder.begin("category-name-far-beyond-fifteen", long_name);
  recorder.end("category-name-far-beyond-fifteen", long_name);
  const json::Value doc = parse_trace(recorder.to_chrome_json());
  const json::Value* events = doc.get("traceEvents");
  bool saw = false;
  for (const json::Value& e : events->arr) {
    if (e.get("ph")->str != "B") continue;
    saw = true;
    EXPECT_LT(e.get("name")->str.size(), long_name.size());
    EXPECT_EQ(e.get("name")->str.substr(0, 8), "xxxxxxxx");
    EXPECT_LE(e.get("cat")->str.size(), 14u);
  }
  EXPECT_TRUE(saw);
}

TEST(TraceRecorder, OpenSpansAreSynthesizedClosedAtDrain) {
  TraceRecorder recorder;
  recorder.begin("a", "left-open");
  recorder.begin("a", "also-open");
  const json::Value doc = parse_trace(recorder.to_chrome_json());
  expect_balanced_and_monotonic(doc);
  int ends = 0;
  for (const json::Value& e : doc.get("traceEvents")->arr) {
    if (e.get("ph")->str == "E") ++ends;
  }
  EXPECT_EQ(ends, 2) << "drain must close both open spans synthetically";
}

TEST(TraceRecorder, FullBufferDropsNewRecordsAndStaysBalanced) {
  // 16 is the recorder's minimum per-thread capacity.
  TraceRecorder recorder(/*capacity_per_thread=*/16);
  for (int i = 0; i < 100; ++i) {
    recorder.begin("a", "span");
    recorder.instant("a", "tick");
    recorder.end("a", "span");
  }
  EXPECT_LE(recorder.recorded(), 16u);
  EXPECT_GT(recorder.dropped(), 0u);
  expect_balanced_and_monotonic(parse_trace(recorder.to_chrome_json()));
}

TEST(TraceRecorder, ClearResetsForReuse) {
  TraceRecorder recorder;
  recorder.begin("a", "x");
  recorder.end("a", "x");
  ASSERT_EQ(recorder.recorded(), 2u);
  recorder.clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  recorder.instant("a", "after-clear");
  EXPECT_EQ(recorder.recorded(), 1u);
  expect_balanced_and_monotonic(parse_trace(recorder.to_chrome_json()));
}

// ---- allocation discipline ------------------------------------------------

TEST(TraceRecorder, DisabledSpanIsAllocationFree) {
  const std::uint64_t before = allocations();
  for (int i = 0; i < 1000; ++i) {
    const TraceSpan span(nullptr, "lp", "simplex.factorize");
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "a null-recorder TraceSpan must be a branch, not an allocation";
}

TEST(TraceRecorder, EnabledHotPathIsAllocationFreeAfterRegistration) {
  TraceRecorder recorder(/*capacity_per_thread=*/1 << 14);
  recorder.instant("warm", "register-thread");  // first record registers
  const std::uint64_t before = allocations();
  for (int i = 0; i < 1000; ++i) {
    const TraceSpan span(&recorder, "lp", "simplex.factorize");
    recorder.instant("lp", "tick", i);
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "recording into the preallocated ring must not allocate";
  EXPECT_EQ(recorder.recorded(), 3001u);
}

// ---- concurrency (primary TSan target) ------------------------------------

TEST(TraceRecorder, ConcurrentRecordingAndDrainingIsSafe) {
  TraceRecorder recorder(/*capacity_per_thread=*/1 << 12);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 400;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      recorder.set_current_thread_name("worker-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        const TraceSpan span(&recorder, "test", "work");
        recorder.async_instant("test", "beat", t);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Drain concurrently with the writers: must be safe (and see a prefix).
  for (int drains = 0; drains < 5; ++drains) {
    const json::Value doc = parse_trace(recorder.to_chrome_json());
    expect_balanced_and_monotonic(doc);
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 3);
  EXPECT_EQ(recorder.thread_count(), kThreads);
  const json::Value doc = parse_trace(recorder.to_chrome_json());
  expect_balanced_and_monotonic(doc);
  std::set<std::string> names;
  for (const json::Value& e : doc.get("traceEvents")->arr) {
    if (e.get("ph")->str == "M") names.insert(e.get("args")->get("name")->str);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kThreads));
}

// ---- drain ordering (satellite: stable cross-thread merge) ----------------

/// Global (not just per-tid) timestamp monotonicity: the drained stream is
/// one merged timeline, so downstream tools can binary-search it.
void expect_globally_monotonic(const json::Value& doc) {
  const json::Value* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  double last_ts = -1.0;
  for (const json::Value& e : events->arr) {
    if (e.get("ph")->str == "M") continue;
    const double ts = e.get("ts")->num;
    EXPECT_GE(ts, last_ts) << "drained events must be globally ts-sorted";
    last_ts = ts;
  }
}

TEST(TraceRecorder, DrainMergesThreadsInTimestampOrder) {
  // Two threads strictly alternate instants with a cv handshake and a real
  // sleep between turns, so the true global order interleaves A,B,A,B,...
  // A buffer-by-buffer drain would emit all of A then all of B and regress
  // in time at the seam; the merged drain must not.
  TraceRecorder recorder;
  std::mutex mu;
  std::condition_variable cv;
  int turn = 0;  // even: thread A, odd: thread B
  constexpr int kTurns = 12;
  const auto player = [&](int parity, const char* name) {
    for (int t = parity; t < kTurns; t += 2) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return turn == t; });
      // value = turn + 1: a zero value would elide the args object entirely.
      recorder.instant("turns", name, t + 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ++turn;
      cv.notify_all();
    }
  };
  std::thread a([&] { player(0, "a"); });
  std::thread b([&] { player(1, "b"); });
  a.join();
  b.join();

  const json::Value doc = parse_trace(recorder.to_chrome_json());
  expect_globally_monotonic(doc);
  expect_balanced_and_monotonic(doc);
  // The merged order is the handshake order: instants carry turn + 1 as
  // the arg value, which must come out 1,2,3,...
  int expected_turn = 0;
  for (const json::Value& e : doc.get("traceEvents")->arr) {
    if (e.get("ph")->str != "i") continue;
    const json::Value* args = e.get("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->get("value")->num, ++expected_turn);
  }
  EXPECT_EQ(expected_turn, kTurns);
}

TEST(TraceRecorder, SyntheticClosesSortAfterTheirThreadsEvents) {
  // An open span on a thread that stopped recording early must still close
  // after every event that thread recorded, even once the global sort runs.
  TraceRecorder recorder;
  recorder.begin("a", "left-open");
  std::thread([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    recorder.instant("a", "later");
  }).join();
  const json::Value doc = parse_trace(recorder.to_chrome_json());
  expect_globally_monotonic(doc);
  expect_balanced_and_monotonic(doc);
}

// ---- request attribution (tentpole: trace ids) ----------------------------

TEST(TraceRecorder, BindScopeStampsAndRestoresTraceIds) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.current_thread_trace(), 0u);
  {
    const telemetry::TraceBindScope outer(&recorder, 5);
    EXPECT_EQ(recorder.current_thread_trace(), 5u);
    {
      const telemetry::TraceBindScope inner(&recorder, 9);
      EXPECT_EQ(recorder.current_thread_trace(), 9u);
    }
    EXPECT_EQ(recorder.current_thread_trace(), 5u);
  }
  EXPECT_EQ(recorder.current_thread_trace(), 0u);
  // A null recorder is a no-op, like a null-recorder TraceSpan.
  const telemetry::TraceBindScope noop(nullptr, 7);
}

TEST(TraceRecorder, FilteredDrainReturnsOnlyTheRequestedTrace) {
  TraceRecorder recorder;
  {
    const telemetry::TraceBindScope bind(&recorder, 7);
    const TraceSpan span(&recorder, "a", "seven");
    recorder.instant("a", "seven-tick");
  }
  {
    const telemetry::TraceBindScope bind(&recorder, 8);
    recorder.instant("a", "eight-tick");
  }
  recorder.instant("a", "unattributed");

  const json::Value doc = parse_trace(recorder.to_chrome_json_for_trace(7));
  expect_balanced_and_monotonic(doc);
  int matched = 0;
  for (const json::Value& e : doc.get("traceEvents")->arr) {
    if (e.get("ph")->str == "M") continue;
    ASSERT_NE(e.get("args"), nullptr);
    ASSERT_NE(e.get("args")->get("trace_id"), nullptr);
    EXPECT_EQ(e.get("args")->get("trace_id")->num, 7.0);
    EXPECT_EQ(e.get("name")->str.substr(0, 5), "seven");
    ++matched;
  }
  EXPECT_EQ(matched, 3) << "B + i + E of trace 7, nothing else";

  // The unfiltered drain still carries everything, ids included.
  const json::Value all = parse_trace(recorder.to_chrome_json());
  int with_id = 0;
  int without_id = 0;
  for (const json::Value& e : all.get("traceEvents")->arr) {
    if (e.get("ph")->str == "M") continue;
    const json::Value* args = e.get("args");
    if (args != nullptr && args->get("trace_id") != nullptr) {
      ++with_id;
    } else {
      ++without_id;
    }
  }
  EXPECT_EQ(with_id, 4);
  EXPECT_EQ(without_id, 1);
}

TEST(TraceRecorder, FilteredDrainTailCapsPerThreadAndStaysBalanced) {
  TraceRecorder recorder(/*capacity_per_thread=*/1 << 10);
  const telemetry::TraceBindScope bind(&recorder, 3);
  for (int i = 0; i < 200; ++i) {
    const TraceSpan span(&recorder, "a", "work");
    recorder.instant("a", "tick", i);
  }
  const json::Value doc =
      parse_trace(recorder.to_chrome_json_for_trace(3, /*max=*/50));
  expect_balanced_and_monotonic(doc);
  std::size_t events = 0;
  double newest_tick = -1.0;
  for (const json::Value& e : doc.get("traceEvents")->arr) {
    if (e.get("ph")->str == "M") continue;
    ++events;
    if (e.get("ph")->str == "i") {
      newest_tick = std::max(newest_tick, e.get("args")->get("value")->num);
    }
  }
  EXPECT_LE(events, 51u);  // 50 kept + at most one synthetic close
  EXPECT_EQ(newest_tick, 199.0) << "the cap keeps the tail, not the head";
}

TEST(TraceRecorder, ReleasedThreadBuffersAreAdoptedNotLeaked) {
  TraceRecorder recorder;
  recorder.instant("a", "main");
  ASSERT_EQ(recorder.thread_count(), 1);
  // Short-lived threads that release on exit (the daemon's connection
  // handler pattern): all of them share one adopted buffer.
  for (int i = 0; i < 8; ++i) {
    std::thread([&] {
      recorder.instant("a", "conn");
      recorder.release_current_thread();
    }).join();
  }
  EXPECT_EQ(recorder.thread_count(), 2)
      << "released buffers must be adopted by later threads, not leaked";
  // Releasing resets the binding: an adopter starts unattributed.
  std::thread([&] {
    recorder.instant("a", "probe");
    EXPECT_EQ(recorder.current_thread_trace(), 0u);
    recorder.release_current_thread();
  }).join();
  expect_balanced_and_monotonic(parse_trace(recorder.to_chrome_json()));
}

TEST(Integration, FarmJobsAreTraceFilterableByRequestId) {
  TraceRecorder recorder;
  MetricsRegistry registry;
  Rng rng(33);
  const auto instance = make_random_instance(rng, 6, 3, 2);
  {
    SolveService service(2);
    service.attach_telemetry(&recorder, &registry);
    PlannerOptions options;
    options.engine = PlannerOptions::Engine::kExact;
    SolveRequest first;
    first.instance = instance;
    first.options = options;
    first.trace_id = 101;
    SolveRequest second;
    second.instance = instance;
    second.options = options;
    second.trace_id = 102;
    const JobHandle a = service.submit(first);
    const JobHandle b = service.submit(second);
    a->wait();
    b->wait();
    EXPECT_EQ(a->trace_id(), 101u);
    EXPECT_EQ(b->trace_id(), 102u);
  }
  for (const std::uint64_t id : {101u, 102u}) {
    const json::Value doc =
        parse_trace(recorder.to_chrome_json_for_trace(id));
    expect_balanced_and_monotonic(doc);
    std::size_t events = 0;
    for (const json::Value& e : doc.get("traceEvents")->arr) {
      if (e.get("ph")->str == "M") continue;
      ASSERT_NE(e.get("args")->get("trace_id"), nullptr);
      EXPECT_EQ(e.get("args")->get("trace_id")->num,
                static_cast<double>(id));
      ++events;
    }
    EXPECT_GT(events, 0u) << "trace " << id << " must have its own spans";
  }
}

// ---- solve progress ring --------------------------------------------------

TEST(SolveProgress, TimelineKeepsOrderAndClampsGapMonotone) {
  SolveProgress progress(16);
  progress.publish(1.0, 10, 0.0, false, 90.0, true);    // bound only
  progress.publish(2.0, 20, 100.0, true, 90.0, true);   // gap 0.10
  progress.publish(3.0, 30, 100.0, true, 95.0, true);   // gap 0.05
  progress.publish(4.0, 40, 100.0, true, 94.0, true);   // regressed: clamped
  const SolveProgress::Snapshot snap = progress.snapshot();
  EXPECT_EQ(snap.published, 4u);
  ASSERT_EQ(snap.timeline.size(), 4u);
  EXPECT_TRUE(std::isnan(snap.timeline[0].incumbent));
  EXPECT_TRUE(std::isinf(snap.timeline[0].gap));
  EXPECT_NEAR(snap.timeline[1].gap, 0.10, 1e-12);
  EXPECT_NEAR(snap.timeline[2].gap, 0.05, 1e-12);
  EXPECT_NEAR(snap.timeline[3].gap, 0.05, 1e-12)
      << "a bound regression must not widen the reported gap";
  for (std::size_t i = 1; i < snap.timeline.size(); ++i) {
    EXPECT_LE(snap.timeline[i].gap, snap.timeline[i - 1].gap);
    EXPECT_GE(snap.timeline[i].time_ms, snap.timeline[i - 1].time_ms);
  }
}

TEST(SolveProgress, RingWrapsKeepingTheNewestSamples) {
  SolveProgress progress(8);
  for (int i = 0; i < 20; ++i) {
    progress.publish(static_cast<double>(i), i, 100.0, true, 50.0 + i, true);
  }
  const SolveProgress::Snapshot snap = progress.snapshot();
  EXPECT_EQ(snap.published, 20u);
  ASSERT_EQ(snap.timeline.size(), 8u);
  EXPECT_EQ(snap.timeline.front().nodes, 12);
  EXPECT_EQ(snap.timeline.back().nodes, 19);
}

TEST(SolveProgress, ConcurrentReadersSeeOnlyConsistentSamples) {
  SolveProgress progress(32);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const SolveProgress::Snapshot snap = progress.snapshot();
        double last_time = -1.0;
        double last_gap = std::numeric_limits<double>::infinity();
        for (const ProgressSample& s : snap.timeline) {
          EXPECT_GE(s.time_ms, last_time) << "torn sample escaped the seqlock";
          EXPECT_LE(s.gap, last_gap);
          // The writer always publishes incumbent 100 with a tightening
          // bound, so any consistent sample satisfies this.
          EXPECT_EQ(s.incumbent, 100.0);
          last_time = s.time_ms;
          last_gap = s.gap;
        }
      }
    });
  }
  for (int i = 0; i < 50000; ++i) {
    progress.publish(static_cast<double>(i), i, 100.0, true,
                     100.0 - 100.0 / (1.0 + i), true);
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(progress.snapshot().published, 50000u);
}

// ---- metrics registry -----------------------------------------------------

TEST(Metrics, CounterIsMonotoneAndIgnoresNegativeDeltas) {
  MetricsRegistry registry;
  telemetry::Counter& c = registry.counter("etransform_test_total", "help");
  c.increment();
  c.add(4.0);
  c.add(-100.0);  // ignored: counters only go up
  c.add(0.0);     // ignored
  EXPECT_EQ(c.value(), 5.0);
  // Same name returns the same instrument.
  EXPECT_EQ(&registry.counter("etransform_test_total"), &c);
}

TEST(Metrics, GaugeMovesBothWays) {
  MetricsRegistry registry;
  telemetry::Gauge& g = registry.gauge("etransform_depth");
  g.set(10.0);
  g.add(-3.0);
  EXPECT_EQ(g.value(), 7.0);
}

TEST(Metrics, HistogramBucketsObservationsCumulatively) {
  MetricsRegistry registry;
  telemetry::Histogram& h =
      registry.histogram("etransform_lat_ms", "", {1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.5, 3.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.0);
  EXPECT_EQ(h.bucket_count(0), 1u);  // <= 1
  EXPECT_EQ(h.bucket_count(1), 1u);  // (1, 2]
  EXPECT_EQ(h.bucket_count(2), 1u);  // (2, 4]
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf

  const std::string prom = registry.render_prometheus();
  EXPECT_NE(prom.find("etransform_lat_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("etransform_lat_ms_bucket{le=\"4\"} 3\n"),
            std::string::npos)
      << "buckets must be cumulative";
  EXPECT_NE(prom.find("etransform_lat_ms_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(prom.find("etransform_lat_ms_sum 105\n"), std::string::npos);
  EXPECT_NE(prom.find("etransform_lat_ms_count 4\n"), std::string::npos);
}

TEST(Metrics, LogBucketsSpanTheRequestedRange) {
  const std::vector<double> b = MetricsRegistry::log_buckets(1.0, 8.0, 2.0);
  EXPECT_EQ(b, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_THROW(MetricsRegistry::log_buckets(0.0, 8.0), std::invalid_argument);
  EXPECT_THROW(MetricsRegistry::log_buckets(1.0, 8.0, 1.0),
               std::invalid_argument);
  const std::vector<double> defaults =
      MetricsRegistry::default_latency_ms_buckets();
  ASSERT_FALSE(defaults.empty());
  EXPECT_LT(defaults.front(), 1.0);      // sub-ms LP solves land in a bucket
  EXPECT_GE(defaults.back(), 60000.0);   // minute-scale sweeps do too
}

TEST(Metrics, QuantileInterpolatesInsideTheTargetBucket) {
  MetricsRegistry registry;
  telemetry::Histogram& h =
      registry.histogram("etransform_q_ms", "", {1.0, 2.0, 4.0});
  EXPECT_EQ(h.quantile(0.5), 0.0) << "empty histogram reports 0";
  for (const double v : {0.5, 1.5, 3.0, 100.0}) h.observe(v);
  // target rank 2 lands at the end of the (1,2] bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  // rank 1 is the whole first bucket: interpolates to its upper bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);
  // the +Inf bucket clamps to the highest finite bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  // out-of-range q is clamped, not UB.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(Metrics, ExpositionCarriesLatencySummaryGauges) {
  MetricsRegistry registry;
  telemetry::Histogram& h = registry.histogram("etransform_req_ms", "reqs");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const std::string prom = registry.render_prometheus();
  for (const char* suffix : {"_p50", "_p95", "_p99"}) {
    const std::string name = std::string("etransform_req_ms") + suffix;
    EXPECT_NE(prom.find("# TYPE " + name + " gauge\n"), std::string::npos);
    EXPECT_NE(prom.find("\n" + name + " "), std::string::npos);
  }
  // The summaries order correctly and bracket the data.
  EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
  EXPECT_GT(h.quantile(0.50), 0.0);
}

TEST(Metrics, RejectsInvalidNamesAndKindMismatches) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter("0starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has space"), std::invalid_argument);
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
  registry.counter("etransform_x_total");
  EXPECT_THROW(registry.gauge("etransform_x_total"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("etransform_x_total"),
               std::invalid_argument);
}

TEST(Metrics, ExpositionPassesALineLevelFormatLint) {
  MetricsRegistry registry;
  registry.counter("etransform_a_total", "a counter").add(3.0);
  registry.gauge("etransform_b", "a gauge").set(-2.5);
  registry.histogram("etransform_c_ms", "a histogram").observe(10.0);
  const std::string prom = registry.render_prometheus();
  // Every line is either a # HELP/# TYPE comment or `name{labels} value`.
  const std::regex comment(R"(^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$)");
  const std::regex sample(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9][0-9.eE+\-]*$)");
  std::istringstream lines(prom);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "no blank lines in the exposition";
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, comment)) << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample)) << line;
      ++samples;
    }
  }
  // counter + gauge + (buckets + Inf + sum + count).
  EXPECT_GE(samples, 2 + 4);
}

TEST(Metrics, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry registry;
  telemetry::Counter& c = registry.counter("etransform_hits_total");
  telemetry::Gauge& g = registry.gauge("etransform_level");
  telemetry::Histogram& h = registry.histogram("etransform_obs_ms");
  constexpr int kThreads = 8;
  constexpr int kOps = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        c.increment();
        g.add(1.0);
        h.observe(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(), static_cast<double>(kThreads) * kOps);
  EXPECT_EQ(g.value(), static_cast<double>(kThreads) * kOps);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kOps);
}

// ---- artifacts ------------------------------------------------------------

TEST(Artifacts, WritesEveryRequestedFileIntoTheRunDirectory) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("etransform_telemetry_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  TraceRecorder recorder;
  recorder.instant("t", "x");
  MetricsRegistry registry;
  registry.counter("etransform_y_total").increment();

  telemetry::ArtifactPaths paths;
  std::string error;
  ASSERT_TRUE(telemetry::write_run_artifacts(dir.string(), &recorder,
                                             &registry, "{\"k\":1}", &paths,
                                             &error))
      << error;
  EXPECT_TRUE(std::filesystem::exists(paths.trace_json));
  EXPECT_TRUE(std::filesystem::exists(paths.metrics_prom));
  EXPECT_TRUE(std::filesystem::exists(paths.stats_json));

  std::ifstream trace_in(paths.trace_json);
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  parse_trace(trace_text.str());

  // Null sources are skipped, not errors.
  telemetry::ArtifactPaths partial;
  ASSERT_TRUE(telemetry::write_run_artifacts(
      (dir / "partial").string(), nullptr, nullptr, "", &partial, &error));
  EXPECT_TRUE(partial.trace_json.empty());
  EXPECT_TRUE(partial.metrics_prom.empty());
  EXPECT_TRUE(partial.stats_json.empty());
  std::filesystem::remove_all(dir);
}

// ---- solver-stack integration ---------------------------------------------

TEST(Integration, SolveScopesEmitMatchingTraceSpans) {
  TraceRecorder recorder;
  SolveContext ctx;
  ctx.set_trace(&recorder);
  {
    SolveScope outer(ctx, "planner");
    SolveScope inner(ctx, "simplex");
  }
  const json::Value doc = parse_trace(recorder.to_chrome_json());
  expect_balanced_and_monotonic(doc);
  std::vector<std::string> sequence;
  for (const json::Value& e : doc.get("traceEvents")->arr) {
    const std::string& ph = e.get("ph")->str;
    if (ph == "B" || ph == "E") {
      sequence.push_back(ph + ":" + e.get("name")->str);
      EXPECT_EQ(e.get("cat")->str, "solve");
    }
  }
  const std::vector<std::string> expected = {"B:planner", "B:simplex",
                                             "E:simplex", "E:planner"};
  EXPECT_EQ(sequence, expected);
}

TEST(Integration, SimplexPublishesProcessCountersWhenRegistryAttached) {
  lp::Model m;
  const int x = m.add_continuous("x", 0.0, 10.0);
  const int y = m.add_continuous("y", 0.0, 10.0);
  m.set_objective(lp::Sense::kMaximize, {{x, 3.0}, {y, 2.0}});
  m.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, lp::Relation::kLessEqual, 8.0);
  m.add_constraint("c2", {{x, 2.0}, {y, 1.0}}, lp::Relation::kLessEqual, 12.0);

  MetricsRegistry registry;
  TraceRecorder recorder;
  SolveContext ctx;
  ctx.set_metrics(&registry);
  ctx.set_trace(&recorder);
  const auto solution = lp::LpEngine().solve(m, ctx);
  ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(registry.counter("etransform_simplex_solves_total").value(), 1.0);
  EXPECT_GE(registry.counter("etransform_simplex_pivots_total").value(), 1.0);
  EXPECT_GE(
      registry.counter("etransform_simplex_refactorizations_total").value(),
      1.0);
  // The factorization shows up as an "lp" span inside the "simplex" scope.
  const std::string json = recorder.to_chrome_json();
  EXPECT_NE(json.find("simplex.factorize"), std::string::npos);
  expect_balanced_and_monotonic(parse_trace(json));
}

TEST(Integration, SolveFarmLifecycleIsFullyAccounted) {
  TraceRecorder recorder;
  MetricsRegistry registry;
  Rng rng(21);
  const auto instance = make_random_instance(rng, 6, 3, 2);

  {
    SolveService service(2);
    service.attach_telemetry(&recorder, &registry);
    PlannerOptions options;
    options.engine = PlannerOptions::Engine::kHeuristic;
    std::vector<JobHandle> jobs;
    for (int i = 0; i < 6; ++i) {
      SolveRequest request;
      request.name = "job-" + std::to_string(i);
      request.instance = instance;
      request.options = options;
      jobs.push_back(service.submit(request));
    }
    // A burst of low-priority jobs, immediately cancelled: most are still
    // queued, so the cancel path must finish their lifecycle itself.
    std::vector<JobHandle> doomed;
    for (int i = 0; i < 4; ++i) {
      SolveRequest request;
      request.name = "doomed-" + std::to_string(i);
      request.instance = instance;
      request.options = options;
      request.priority = JobPriority::kLow;
      doomed.push_back(service.submit(request));
    }
    for (const auto& job : doomed) job->cancel();
    service.wait_all();
    for (const auto& job : jobs) EXPECT_EQ(job->state(), JobState::kDone);
  }

  const double submitted =
      registry.counter("etransform_farm_jobs_submitted_total").value();
  const double done = registry.counter("etransform_farm_jobs_done_total").value();
  const double cancelled =
      registry.counter("etransform_farm_jobs_cancelled_total").value();
  const double failed =
      registry.counter("etransform_farm_jobs_failed_total").value();
  EXPECT_EQ(submitted, 10.0);
  EXPECT_GE(done, 6.0);
  EXPECT_EQ(done + cancelled + failed, submitted)
      << "every admitted job must reach exactly one terminal counter";
  EXPECT_EQ(registry.gauge("etransform_farm_jobs_inflight").value(), 0.0);
  // Wait/solve latency is observed once per *claimed* job (jobs cancelled
  // while still queued are never claimed), so the two histograms agree with
  // each other and bracket the terminal counters.
  const std::uint64_t claimed =
      registry.histogram("etransform_farm_job_wait_ms").count();
  EXPECT_EQ(registry.histogram("etransform_farm_job_solve_ms").count(),
            claimed);
  EXPECT_GE(claimed, static_cast<std::uint64_t>(done + failed));
  EXPECT_LE(claimed, static_cast<std::uint64_t>(submitted));

  // Trace: async job lifecycles balance (b == e, same ids), and the worker
  // threads announced themselves.
  const json::Value doc = parse_trace(recorder.to_chrome_json());
  expect_balanced_and_monotonic(doc);
  int async_begin = 0;
  int async_end = 0;
  std::set<std::string> thread_names;
  for (const json::Value& e : doc.get("traceEvents")->arr) {
    const std::string& ph = e.get("ph")->str;
    if (ph == "M") thread_names.insert(e.get("args")->get("name")->str);
    if (ph == "b") ++async_begin;
    if (ph == "e") ++async_end;
  }
  EXPECT_EQ(async_begin, 10);
  EXPECT_EQ(async_end, 10);
  EXPECT_TRUE(thread_names.count("worker-0") == 1 ||
              thread_names.count("worker-1") == 1)
      << "pool workers must name their trace tracks";
}

}  // namespace
}  // namespace etransform
