// Tests for the bounded-variable two-phase simplex.
//
// Coverage: textbook LPs with known optima, equality/>= rows (phase 1),
// variable bound handling (upper, fixed, free, negative, shifted), infeasible
// and unbounded detection, degenerate problems, duals, maximization, bound
// overrides, and randomized property checks (objective matches a brute-force
// vertex enumeration on small dense LPs).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/random.h"
#include "lp/model.h"
#include "lp/lp_engine.h"

namespace etransform::lp {
namespace {

LpSolution solve(const Model& m) {
  const LpEngine solver;
  SolveContext ctx;
  return solver.solve(m, ctx);
}

TEST(Simplex, TextbookTwoVariableMaximum) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj 36.
  Model m;
  const int x = m.add_continuous("x");
  const int y = m.add_continuous("y");
  m.set_objective(Sense::kMaximize, {{x, 3.0}, {y, 5.0}});
  m.add_constraint("c1", {{x, 1.0}}, Relation::kLessEqual, 4.0);
  m.add_constraint("c2", {{y, 2.0}}, Relation::kLessEqual, 12.0);
  m.add_constraint("c3", {{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], 6.0, 1e-7);
}

TEST(Simplex, MinimizationWithGreaterEqualRowsNeedsPhase1) {
  // min 2x + 3y st x + y >= 4, x + 3y >= 6 -> x=3, y=1, obj 9.
  Model m;
  const int x = m.add_continuous("x");
  const int y = m.add_continuous("y");
  m.set_objective(Sense::kMinimize, {{x, 2.0}, {y, 3.0}});
  m.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 4.0);
  m.add_constraint("c2", {{x, 1.0}, {y, 3.0}}, Relation::kGreaterEqual, 6.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 3.0, 1e-6);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], 1.0, 1e-6);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y + 3z st x + y + z = 10, x - y = 2, z <= 4.
  // Optimal pushes cost to x: z=0, x-y=2, x+y=10 -> x=6, y=4, obj 14.
  Model m;
  const int x = m.add_continuous("x");
  const int y = m.add_continuous("y");
  const int z = m.add_continuous("z", 0.0, 4.0);
  m.set_objective(Sense::kMinimize, {{x, 1.0}, {y, 2.0}, {z, 3.0}});
  m.add_constraint("sum", {{x, 1.0}, {y, 1.0}, {z, 1.0}}, Relation::kEqual,
                   10.0);
  m.add_constraint("diff", {{x, 1.0}, {y, -1.0}}, Relation::kEqual, 2.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 14.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(z)], 0.0, 1e-7);
}

TEST(Simplex, UpperBoundsActivate) {
  // max x + y st x + y <= 10 with x <= 3, y <= 4 -> obj 7.
  Model m;
  const int x = m.add_continuous("x", 0.0, 3.0);
  const int y = m.add_continuous("y", 0.0, 4.0);
  m.set_objective(Sense::kMaximize, {{x, 1.0}, {y, 1.0}});
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 10.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 7.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 3.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], 4.0, 1e-7);
}

TEST(Simplex, FixedVariablesAreRespected) {
  Model m;
  const int x = m.add_continuous("x", 2.0, 2.0);
  const int y = m.add_continuous("y");
  m.set_objective(Sense::kMinimize, {{y, 1.0}});
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 5.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], 3.0, 1e-7);
}

TEST(Simplex, FreeVariables) {
  // min |style| problem: min x + y st x + y >= 2, x - y = 5, y free.
  // y = x - 5; x + (x-5) >= 2 -> x >= 3.5; obj = 2x - 5 minimized at x=3.5.
  Model m;
  const int x = m.add_continuous("x");
  const int y = m.add_variable("y", -kInfinity, kInfinity);
  m.set_objective(Sense::kMinimize, {{x, 1.0}, {y, 1.0}});
  m.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 2.0);
  m.add_constraint("c2", {{x, 1.0}, {y, -1.0}}, Relation::kEqual, 5.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], -1.5, 1e-6);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x st x >= -3 (bound), x >= -10 (row) -> x = -3.
  Model m;
  const int x = m.add_variable("x", -3.0, kInfinity);
  m.set_objective(Sense::kMinimize, {{x, 1.0}});
  m.add_constraint("c", {{x, 1.0}}, Relation::kGreaterEqual, -10.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -3.0, 1e-9);
}

TEST(Simplex, UpperBoundOnlyVariable) {
  // max x st x <= 7 via bound with lower = -inf, row x >= 1.
  Model m;
  const int x = m.add_variable("x", -kInfinity, 7.0);
  m.set_objective(Sense::kMaximize, {{x, 1.0}});
  m.add_constraint("c", {{x, 1.0}}, Relation::kGreaterEqual, 1.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 7.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibleRows) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 1.0);
  m.set_objective(Sense::kMinimize, {{x, 1.0}});
  m.add_constraint("c", {{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  Model m;
  const int x = m.add_continuous("x");
  const int y = m.add_continuous("y");
  m.set_objective(Sense::kMinimize, {{x, 1.0}});
  m.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, Relation::kEqual, 1.0);
  m.add_constraint("c2", {{x, 1.0}, {y, 1.0}}, Relation::kEqual, 2.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsTriviallyInvertedBounds) {
  Model m;
  const int x = m.add_continuous("x");
  m.set_objective(Sense::kMinimize, {{x, 1.0}});
  const LpEngine solver;
  SolveContext ctx;
  EXPECT_EQ(solver.solve(m, {5.0}, {4.0}, ctx).status,
            SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const int x = m.add_continuous("x");
  m.set_objective(Sense::kMaximize, {{x, 1.0}});
  m.add_constraint("c", {{x, 1.0}}, Relation::kGreaterEqual, 0.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, UnboundedBelowWithFreeVariable) {
  Model m;
  const int x = m.add_variable("x", -kInfinity, kInfinity);
  m.set_objective(Sense::kMinimize, {{x, 1.0}});
  EXPECT_EQ(solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NoConstraintsPicksCheapBounds) {
  Model m;
  const int x = m.add_continuous("x", 1.0, 5.0);
  const int y = m.add_continuous("y", 2.0, 6.0);
  m.set_objective(Sense::kMinimize, {{x, 1.0}, {y, -1.0}});
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 1.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], 6.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic cycling-prone example (Beale); Bland fallback must terminate.
  Model m;
  const int x1 = m.add_continuous("x1");
  const int x2 = m.add_continuous("x2");
  const int x3 = m.add_continuous("x3");
  const int x4 = m.add_continuous("x4");
  m.set_objective(Sense::kMinimize,
                  {{x1, -0.75}, {x2, 150.0}, {x3, -0.02}, {x4, 6.0}});
  m.add_constraint("r1", {{x1, 0.25}, {x2, -60.0}, {x3, -1.0 / 25.0}, {x4, 9.0}},
                   Relation::kLessEqual, 0.0);
  m.add_constraint("r2", {{x1, 0.5}, {x2, -90.0}, {x3, -1.0 / 50.0}, {x4, 3.0}},
                   Relation::kLessEqual, 0.0);
  m.add_constraint("r3", {{x3, 1.0}}, Relation::kLessEqual, 1.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-7);
}

TEST(Simplex, ObjectiveConstantCarriesThrough) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 2.0);
  m.set_objective(Sense::kMinimize, {{x, 1.0}}, 100.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 100.0, 1e-9);
}

TEST(Simplex, DualsSatisfyStrongDualityOnStandardForm) {
  // min c.x st Ax >= b, x >= 0: optimal primal = b.y with y the duals.
  Model m;
  const int x = m.add_continuous("x");
  const int y = m.add_continuous("y");
  m.set_objective(Sense::kMinimize, {{x, 12.0}, {y, 16.0}});
  m.add_constraint("c1", {{x, 1.0}, {y, 2.0}}, Relation::kGreaterEqual, 40.0);
  m.add_constraint("c2", {{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 30.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  const double dual_objective = 40.0 * s.duals[0] + 30.0 * s.duals[1];
  EXPECT_NEAR(dual_objective, s.objective, 1e-6);
}

TEST(Simplex, BoundOverridesDoNotMutateModel) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 10.0);
  m.set_objective(Sense::kMaximize, {{x, 1.0}});
  const LpEngine solver;
  SolveContext ctx;
  const auto tightened = solver.solve(m, {0.0}, {4.0}, ctx);
  ASSERT_EQ(tightened.status, SolveStatus::kOptimal);
  EXPECT_NEAR(tightened.objective, 4.0, 1e-9);
  const auto original = solver.solve(m, ctx);
  EXPECT_NEAR(original.objective, 10.0, 1e-9);
  EXPECT_EQ(m.variable(x).upper, 10.0);
}

TEST(Simplex, RejectsWrongOverrideArity) {
  Model m;
  m.add_continuous("x");
  const LpEngine solver;
  SolveContext ctx;
  EXPECT_THROW((void)solver.solve(m, {0.0, 0.0}, {1.0, 1.0}, ctx),
               InvalidInputError);
}

TEST(Simplex, VacuousInfiniteRhsRowsAreIgnored) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 3.0);
  m.set_objective(Sense::kMaximize, {{x, 1.0}});
  m.add_constraint("vacuous", {{x, 1.0}}, Relation::kLessEqual, kInfinity);
  m.add_constraint("vacuous2", {{x, 1.0}}, Relation::kGreaterEqual, -kInfinity);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
}

TEST(Simplex, TransportationProblem) {
  // 2 supplies (10, 20), 3 demands (7, 13, 10); costs rowwise.
  const double costs[2][3] = {{4, 6, 9}, {5, 3, 8}};
  Model m;
  std::vector<int> ship;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      ship.push_back(m.add_continuous("s" + std::to_string(i) +
                                      std::to_string(j)));
    }
  }
  std::vector<Term> objective;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      objective.push_back({ship[static_cast<std::size_t>(3 * i + j)],
                           costs[i][j]});
    }
  }
  m.set_objective(Sense::kMinimize, objective);
  const double supply[2] = {10, 20};
  const double demand[3] = {7, 13, 10};
  for (int i = 0; i < 2; ++i) {
    std::vector<Term> row;
    for (int j = 0; j < 3; ++j) {
      row.push_back({ship[static_cast<std::size_t>(3 * i + j)], 1.0});
    }
    m.add_constraint("supply" + std::to_string(i), row, Relation::kLessEqual,
                     supply[i]);
  }
  for (int j = 0; j < 3; ++j) {
    std::vector<Term> col;
    for (int i = 0; i < 2; ++i) {
      col.push_back({ship[static_cast<std::size_t>(3 * i + j)], 1.0});
    }
    m.add_constraint("demand" + std::to_string(j), col,
                     Relation::kGreaterEqual, demand[j]);
  }
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  // Optimal: supply0 ships 7 to d0 and 3 to d2; supply1 ships 13 to d1 and
  // 7 to d2: 7*4 + 3*9 + 13*3 + 7*8 = 150.
  EXPECT_NEAR(s.objective, 150.0, 1e-6);
}

// ---- randomized property sweep ------------------------------------------

struct RandomLpCase {
  std::uint64_t seed;
};

class SimplexRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

// Brute-force reference: for a 2-variable LP with box bounds and rows,
// sample a fine grid and keep the best feasible point; the simplex optimum
// must not be worse (within tolerance) and must be feasible.
TEST_P(SimplexRandomTest, BeatsGridSearchOnRandomTwoVariableLps) {
  Rng rng(GetParam());
  Model m;
  const int x = m.add_continuous("x", 0.0, rng.uniform(1.0, 10.0));
  const int y = m.add_continuous("y", 0.0, rng.uniform(1.0, 10.0));
  const double cx = rng.uniform(-5.0, 5.0);
  const double cy = rng.uniform(-5.0, 5.0);
  m.set_objective(Sense::kMinimize, {{x, cx}, {y, cy}});
  const int rows = static_cast<int>(rng.uniform_int(1, 4));
  for (int r = 0; r < rows; ++r) {
    const double ax = rng.uniform(-2.0, 2.0);
    const double ay = rng.uniform(-2.0, 2.0);
    // Choose rhs so the origin stays feasible: ax*0+ay*0 = 0 <= rhs >= 0.
    const double rhs = rng.uniform(0.0, 8.0);
    m.add_constraint("r" + std::to_string(r), {{x, ax}, {y, ay}},
                     Relation::kLessEqual, rhs);
  }
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_TRUE(m.is_feasible(s.values, 1e-5));

  double best_grid = kInfinity;
  const double ux = m.variable(x).upper;
  const double uy = m.variable(y).upper;
  for (int i = 0; i <= 60; ++i) {
    for (int j = 0; j <= 60; ++j) {
      const std::vector<double> point = {ux * i / 60.0, uy * j / 60.0};
      if (m.is_feasible(point, 1e-9)) {
        best_grid = std::min(best_grid, m.evaluate_objective(point));
      }
    }
  }
  EXPECT_LE(s.objective, best_grid + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace etransform::lp
