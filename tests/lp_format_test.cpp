// Tests for the CPLEX LP format writer/parser and the solution file I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "lp/lp_format.h"
#include "lp/model.h"
#include "lp/lp_engine.h"

namespace etransform::lp {
namespace {

Model sample_model() {
  Model m;
  const int x = m.add_continuous("x", 0.0, 4.0);
  const int y = m.add_continuous("y", -2.0, kInfinity);
  const int b = m.add_binary("pick");
  const int g = m.add_variable("count", 0.0, 9.0, true);
  const int f = m.add_variable("slackish", -kInfinity, kInfinity);
  m.set_objective(Sense::kMinimize,
                  {{x, 1.5}, {y, -2.0}, {b, 10.0}, {g, 0.25}}, 7.0);
  m.add_constraint("r1", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 10.0);
  m.add_constraint("r2", {{x, 2.0}, {b, -3.0}}, Relation::kGreaterEqual, -1.0);
  m.add_constraint("r3", {{g, 1.0}, {f, 1.0}}, Relation::kEqual, 5.0);
  return m;
}

TEST(LpWriter, EmitsAllSections) {
  const std::string text = write_lp(sample_model());
  EXPECT_NE(text.find("Minimize"), std::string::npos);
  EXPECT_NE(text.find("Subject To"), std::string::npos);
  EXPECT_NE(text.find("Bounds"), std::string::npos);
  EXPECT_NE(text.find("Binary"), std::string::npos);
  EXPECT_NE(text.find("General"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
  EXPECT_NE(text.find("slackish free"), std::string::npos);
}

TEST(LpRoundTrip, PreservesStructureAndSemantics) {
  const Model original = sample_model();
  const Model reparsed = parse_lp(write_lp(original));
  ASSERT_EQ(reparsed.num_variables(), original.num_variables());
  ASSERT_EQ(reparsed.num_constraints(), original.num_constraints());
  EXPECT_EQ(reparsed.sense(), original.sense());
  EXPECT_DOUBLE_EQ(reparsed.objective_constant(),
                   original.objective_constant());
  for (int j = 0; j < original.num_variables(); ++j) {
    EXPECT_EQ(reparsed.variable(j).lower, original.variable(j).lower);
    EXPECT_EQ(reparsed.variable(j).upper, original.variable(j).upper);
    EXPECT_EQ(reparsed.variable(j).is_integer, original.variable(j).is_integer);
  }
  // Second write must be a fixed point of write/parse.
  EXPECT_EQ(write_lp(reparsed), write_lp(parse_lp(write_lp(reparsed))));
}

TEST(LpRoundTrip, SolvesToTheSameOptimum) {
  Model m;
  const int x = m.add_continuous("x");
  const int y = m.add_continuous("y");
  m.set_objective(Sense::kMaximize, {{x, 3.0}, {y, 5.0}});
  m.add_constraint("c1", {{x, 1.0}}, Relation::kLessEqual, 4.0);
  m.add_constraint("c2", {{y, 2.0}}, Relation::kLessEqual, 12.0);
  m.add_constraint("c3", {{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  const LpEngine solver;
  SolveContext ctx;
  const auto direct = solver.solve(m, ctx);
  const auto reparsed = solver.solve(parse_lp(write_lp(m)), ctx);
  ASSERT_EQ(direct.status, SolveStatus::kOptimal);
  ASSERT_EQ(reparsed.status, SolveStatus::kOptimal);
  EXPECT_NEAR(direct.objective, reparsed.objective, 1e-9);
}

TEST(LpWriter, SanitizesHostileNames) {
  Model m;
  const int a = m.add_continuous("3 bad name!");
  const int b = m.add_continuous("e9risky");
  const int c = m.add_continuous("ok_name");
  m.set_objective(Sense::kMinimize, {{a, 1.0}, {b, 1.0}, {c, 1.0}});
  m.add_constraint("weird row?", {{a, 1.0}, {b, 1.0}, {c, 1.0}},
                   Relation::kGreaterEqual, 1.0);
  const Model reparsed = parse_lp(write_lp(m));
  EXPECT_EQ(reparsed.num_variables(), 3);
  EXPECT_EQ(reparsed.num_constraints(), 1);
}

TEST(LpWriter, UniquifiesDuplicateNames) {
  Model m;
  const int a = m.add_continuous("x");
  const int b = m.add_continuous("x");
  m.set_objective(Sense::kMinimize, {{a, 1.0}, {b, 2.0}});
  m.add_constraint("c", {{a, 1.0}, {b, 1.0}}, Relation::kGreaterEqual, 2.0);
  const Model reparsed = parse_lp(write_lp(m));
  EXPECT_EQ(reparsed.num_variables(), 2);
  const LpEngine solver;
  SolveContext ctx;
  const auto s = solver.solve(reparsed, ctx);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);  // all weight on the cheap copy
}

TEST(LpParser, AcceptsHandWrittenFile) {
  const std::string text = R"(\ hand-written
Minimize
 obj: 2 x + 3 y - 4
Subject To
 cap: x + y <= 10
 floor: x - y >= -2
 tie: x + 2 y = 8
Bounds
 -1 <= x <= 6
 y <= 9
General
 y
End
)";
  const Model m = parse_lp(text);
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_EQ(m.num_constraints(), 3);
  EXPECT_DOUBLE_EQ(m.objective_constant(), -4.0);
  EXPECT_EQ(m.variable(0).lower, -1.0);
  EXPECT_EQ(m.variable(0).upper, 6.0);
  EXPECT_EQ(m.variable(1).upper, 9.0);
  EXPECT_TRUE(m.variable(1).is_integer);
  EXPECT_EQ(m.constraint(1).relation, Relation::kGreaterEqual);
  EXPECT_DOUBLE_EQ(m.constraint(1).rhs, -2.0);
}

TEST(LpParser, HandlesVariablesOnBothSidesOfRelation) {
  const std::string text = R"(Minimize
 obj: x
Subject To
 c: 2 x + 1 <= x + 5
End
)";
  const Model m = parse_lp(text);
  ASSERT_EQ(m.num_constraints(), 1);
  const auto& row = m.constraint(0);
  ASSERT_EQ(row.terms.size(), 1u);
  EXPECT_DOUBLE_EQ(row.terms[0].coef, 1.0);
  EXPECT_DOUBLE_EQ(row.rhs, 4.0);
}

TEST(LpParser, HandlesScientificNotationAndSigns) {
  const std::string text = R"(Maximize
 obj: 1e2 x - 2.5e-1 y + - 3 z
Subject To
 c: x + y + z <= 1
End
)";
  const Model m = parse_lp(text);
  EXPECT_EQ(m.num_variables(), 3);
  const auto terms = merge_terms(m.objective());
  EXPECT_DOUBLE_EQ(terms[0].coef, 100.0);
  EXPECT_DOUBLE_EQ(terms[1].coef, -0.25);
  EXPECT_DOUBLE_EQ(terms[2].coef, -3.0);
}

TEST(LpParser, InfiniteBounds) {
  const std::string text = R"(Minimize
 obj: x + y
Subject To
 c: x + y >= 1
Bounds
 -inf <= x <= 5
 y free
End
)";
  const Model m = parse_lp(text);
  EXPECT_EQ(m.variable(0).lower, -kInfinity);
  EXPECT_EQ(m.variable(0).upper, 5.0);
  EXPECT_EQ(m.variable(1).lower, -kInfinity);
  EXPECT_EQ(m.variable(1).upper, kInfinity);
}

TEST(LpParser, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_lp("Subject To\n c: x <= 1\nEnd\n"), ParseError);
  EXPECT_THROW((void)parse_lp("Minimize\n obj: x +\nEnd\n"), ParseError);
  EXPECT_THROW((void)parse_lp("Minimize\n obj: x\nSubject To\n c: x ? 1\nEnd\n"),
               ParseError);
  EXPECT_THROW((void)parse_lp("Minimize\n obj: x\nBounds\n x <= oops\nEnd\n"),
               ParseError);
}

TEST(LpParser, ReportsLineNumbers) {
  try {
    (void)parse_lp("Minimize\n obj: x\nSubject To\n c: x ? 1\nEnd\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(SolutionFile, RoundTripsThroughText) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 4.0);
  m.set_objective(Sense::kMaximize, {{x, 2.0}});
  const LpEngine solver;
  SolveContext ctx;
  const auto solution = solver.solve(m, ctx);
  const std::string text = write_solution(m, solution);
  const SolutionFile parsed = parse_solution(text);
  EXPECT_EQ(parsed.status, "optimal");
  EXPECT_NEAR(parsed.objective, 8.0, 1e-9);
  ASSERT_EQ(parsed.values.size(), 1u);
  EXPECT_EQ(parsed.values[0].first, "x");
  EXPECT_NEAR(parsed.values[0].second, 4.0, 1e-9);
}

TEST(SolutionFile, RejectsMalformedText) {
  EXPECT_THROW((void)parse_solution("x 1\n"), ParseError);
  EXPECT_THROW((void)parse_solution("status optimal\nobjective x\n"),
               ParseError);
  EXPECT_THROW(
      (void)parse_solution("status optimal\nobjective 1\nx one two\n"),
      ParseError);
}

TEST(LpWriter, StreamOverloadMatchesString) {
  const Model m = sample_model();
  std::ostringstream out;
  write_lp(m, out);
  EXPECT_EQ(out.str(), write_lp(m));
}

}  // namespace
}  // namespace etransform::lp
