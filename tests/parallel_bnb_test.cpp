// Tests for the parallel branch-and-bound tree search: deterministic-mode
// reproducibility across thread counts, parallel-vs-sequential objective
// differentials, cross-thread cancellation mid-search, and the per-worker
// stats the parallel search stamps under "parallel".
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "milp/branch_and_bound.h"
#include "milp/brute_force.h"

namespace etransform::milp {
namespace {

using lp::Model;
using lp::Relation;
using lp::Sense;
using lp::Term;

/// Generalized-assignment MILP (the bench's branching-heavy shape): `tasks`
/// binaries per agent, one assign-exactly-once equality per task, one
/// capacity row per agent.
Model assignment_milp(int tasks, int agents, std::uint64_t seed) {
  Rng rng(seed);
  Model model;
  std::vector<std::vector<int>> x(static_cast<std::size_t>(tasks));
  std::vector<Term> objective;
  for (int t = 0; t < tasks; ++t) {
    for (int a = 0; a < agents; ++a) {
      const int v = model.add_binary("x_" + std::to_string(t) + "_" +
                                     std::to_string(a));
      x[static_cast<std::size_t>(t)].push_back(v);
      objective.push_back({v, rng.uniform(1.0, 20.0)});
    }
  }
  model.set_objective(Sense::kMinimize, objective);
  for (int t = 0; t < tasks; ++t) {
    std::vector<Term> row;
    for (const int v : x[static_cast<std::size_t>(t)]) row.push_back({v, 1.0});
    model.add_constraint("assign" + std::to_string(t), row, Relation::kEqual,
                         1.0);
  }
  for (int a = 0; a < agents; ++a) {
    std::vector<Term> row;
    for (int t = 0; t < tasks; ++t) {
      row.push_back(
          {x[static_cast<std::size_t>(t)][static_cast<std::size_t>(a)],
           rng.uniform(1.0, 8.0)});
    }
    model.add_constraint("cap" + std::to_string(a), row, Relation::kLessEqual,
                         3.0 * tasks / agents);
  }
  return model;
}

Model knapsack_milp(int items, std::uint64_t seed) {
  Rng rng(seed);
  Model model;
  std::vector<Term> objective;
  std::vector<Term> cap;
  double total = 0.0;
  for (int i = 0; i < items; ++i) {
    const int b = model.add_binary("b" + std::to_string(i));
    objective.push_back({b, rng.uniform(1.0, 30.0)});
    const double w = rng.uniform(1.0, 10.0);
    total += w;
    cap.push_back({b, w});
  }
  model.set_objective(Sense::kMaximize, objective);
  model.add_constraint("cap", cap, Relation::kLessEqual, 0.4 * total);
  return model;
}

MilpSolution solve_with(const Model& model, int threads, bool deterministic) {
  SolverOptions options;
  options.search.threads = threads;
  options.search.deterministic = deterministic;
  const BranchAndBoundSolver solver(options);
  SolveContext ctx;
  return solver.solve(model, ctx);
}

/// Sum of a per-worker metric over the "parallel" stats child.
double sum_worker_metric(const SolveStats& stats, const std::string& key) {
  const SolveStats* parallel = stats.find("parallel");
  if (parallel == nullptr) return -1.0;
  double total = 0.0;
  for (const SolveStats& worker : parallel->children) {
    total += worker.metric(key);
  }
  return total;
}

TEST(DeterministicSearch, IdenticalResultAt1_2_8Threads) {
  const Model model = assignment_milp(/*tasks=*/12, /*agents=*/4, 23);
  const MilpSolution base = solve_with(model, /*threads=*/1,
                                       /*deterministic=*/true);
  ASSERT_EQ(base.status, MilpStatus::kOptimal);
  for (const int threads : {2, 8}) {
    const MilpSolution s = solve_with(model, threads, /*deterministic=*/true);
    ASSERT_EQ(s.status, MilpStatus::kOptimal) << threads << " threads";
    // Byte-stable contract: not just the same optimum, the same explored
    // tree — node count, total simplex iterations, bound, and the exact
    // incumbent vector.
    EXPECT_EQ(s.objective, base.objective) << threads << " threads";
    EXPECT_EQ(s.nodes, base.nodes) << threads << " threads";
    EXPECT_EQ(s.lp_iterations, base.lp_iterations) << threads << " threads";
    EXPECT_EQ(s.best_bound, base.best_bound) << threads << " threads";
    EXPECT_EQ(s.values, base.values) << threads << " threads";
  }
}

TEST(DeterministicSearch, RepeatedRunsAreByteStable) {
  const Model model = assignment_milp(/*tasks=*/10, /*agents=*/4, 7);
  const MilpSolution first = solve_with(model, /*threads=*/4,
                                        /*deterministic=*/true);
  const MilpSolution second = solve_with(model, /*threads=*/4,
                                         /*deterministic=*/true);
  ASSERT_EQ(first.status, MilpStatus::kOptimal);
  EXPECT_EQ(first.objective, second.objective);
  EXPECT_EQ(first.nodes, second.nodes);
  EXPECT_EQ(first.lp_iterations, second.lp_iterations);
  EXPECT_EQ(first.values, second.values);
}

TEST(DeterministicSearch, MatchesSequentialObjective) {
  // The deterministic epoch tree differs from the classic sequential tree,
  // but both must land on the same optimum.
  for (const std::uint64_t seed : {1u, 9u, 42u}) {
    const Model model = assignment_milp(/*tasks=*/10, /*agents=*/4, seed);
    const MilpSolution seq = solve_with(model, 1, /*deterministic=*/false);
    const MilpSolution det = solve_with(model, 4, /*deterministic=*/true);
    // Some seeds are genuinely infeasible — the modes must agree on that
    // verdict too.
    ASSERT_EQ(det.status, seq.status) << "seed " << seed;
    if (seq.status == MilpStatus::kOptimal) {
      EXPECT_NEAR(det.objective, seq.objective, 1e-6) << "seed " << seed;
    }
  }
}

TEST(ParallelSearch, MatchesSequentialOnAssignmentInstances) {
  for (const std::uint64_t seed : {3u, 11u, 23u, 31u}) {
    const Model model = assignment_milp(/*tasks=*/10, /*agents=*/4, seed);
    const MilpSolution seq = solve_with(model, 1, /*deterministic=*/false);
    const MilpSolution par = solve_with(model, 4, /*deterministic=*/false);
    // Some seeds are genuinely infeasible — the modes must agree on that
    // verdict too.
    ASSERT_EQ(par.status, seq.status) << "seed " << seed;
    if (seq.status == MilpStatus::kOptimal) {
      EXPECT_NEAR(par.objective, seq.objective, 1e-6) << "seed " << seed;
      EXPECT_NEAR(par.best_bound, seq.best_bound, 1e-6) << "seed " << seed;
    }
  }
}

TEST(ParallelSearch, MatchesSequentialOnKnapsacks) {
  for (const std::uint64_t seed : {2u, 17u}) {
    const Model model = knapsack_milp(/*items=*/24, seed);
    const MilpSolution seq = solve_with(model, 1, /*deterministic=*/false);
    const MilpSolution par = solve_with(model, 8, /*deterministic=*/false);
    ASSERT_EQ(seq.status, MilpStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(par.status, MilpStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(par.objective, seq.objective, 1e-6) << "seed " << seed;
  }
}

TEST(ParallelSearch, MatchesBruteForceOnSmallModels) {
  for (const std::uint64_t seed : {5u, 13u}) {
    const Model model = assignment_milp(/*tasks=*/6, /*agents=*/3, seed);
    SolveContext reference_ctx;
    const MilpSolution reference = solve_brute_force(model, reference_ctx);
    const MilpSolution par = solve_with(model, 4, /*deterministic=*/false);
    // Brute force is ground truth: agree on infeasibility, match the optimum
    // otherwise.
    if (reference.status == MilpStatus::kInfeasible) {
      EXPECT_EQ(par.status, MilpStatus::kInfeasible) << "seed " << seed;
      continue;
    }
    ASSERT_EQ(reference.status, MilpStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(par.status, MilpStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(par.objective, reference.objective, 1e-6) << "seed " << seed;
  }
}

TEST(ParallelSearch, HardwareThreadsRequestIsAccepted) {
  const Model model = assignment_milp(/*tasks=*/8, /*agents=*/4, 19);
  const MilpSolution seq = solve_with(model, 1, /*deterministic=*/false);
  const MilpSolution par = solve_with(model, /*threads=*/0,
                                      /*deterministic=*/false);
  ASSERT_EQ(par.status, MilpStatus::kOptimal);
  EXPECT_NEAR(par.objective, seq.objective, 1e-6);
}

TEST(ParallelSearch, StampsPerWorkerCounters) {
  const Model model = assignment_milp(/*tasks=*/12, /*agents=*/4, 23);
  const MilpSolution s = solve_with(model, 4, /*deterministic=*/false);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  const SolveStats* parallel = s.stats.find("parallel");
  ASSERT_NE(parallel, nullptr);
  EXPECT_EQ(parallel->metric("threads"), 4.0);
  // Tree nodes (everything but the root LP) were all expanded by workers.
  EXPECT_EQ(sum_worker_metric(s.stats, "nodes"),
            static_cast<double>(s.nodes - 1));
  // The workers' simplex subtrees merge into the solve's, same as the
  // sequential shape.
  EXPECT_NE(s.stats.find("simplex"), nullptr);
}

TEST(DeterministicSearch, StampsPerWorkerCounters) {
  const Model model = assignment_milp(/*tasks=*/12, /*agents=*/4, 23);
  const MilpSolution s = solve_with(model, 2, /*deterministic=*/true);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  const SolveStats* parallel = s.stats.find("parallel");
  ASSERT_NE(parallel, nullptr);
  EXPECT_EQ(parallel->metric("threads"), 2.0);
  EXPECT_EQ(sum_worker_metric(s.stats, "nodes"),
            static_cast<double>(s.nodes - 1));
}

TEST(ParallelSearch, CrossThreadCancellationMidSearch) {
  // A deliberately hard configuration (no cuts, most-fractional branching)
  // so the tree is large enough that cancellation lands mid-search.
  const Model model = assignment_milp(/*tasks=*/20, /*agents=*/4, 23);
  SolverOptions options;
  options.search.threads = 4;
  options.cuts.enable = false;
  options.branching.rule = BranchingOptions::Rule::kMostFractional;
  const BranchAndBoundSolver solver(options);

  SolveContext ctx;
  std::atomic<long long> nodes_seen{0};
  ctx.events.on_node = [&](const NodeEvent&) { ++nodes_seen; };
  std::thread canceller([&] {
    // Wait until the workers are demonstrably mid-search, then cancel from
    // this (non-worker, non-solve) thread.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (nodes_seen.load() < 16 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    ctx.request_cancel();
  });
  const MilpSolution s = solver.solve(model, ctx);
  canceller.join();
  EXPECT_EQ(s.status, MilpStatus::kCancelled);
  // The partial bound survives cancellation.
  EXPECT_GT(s.nodes, 0);
}

TEST(DeterministicSearch, CancellationUnwinds) {
  const Model model = assignment_milp(/*tasks=*/20, /*agents=*/4, 23);
  SolverOptions options;
  options.search.threads = 2;
  options.search.deterministic = true;
  options.cuts.enable = false;
  options.branching.rule = BranchingOptions::Rule::kMostFractional;
  const BranchAndBoundSolver solver(options);

  SolveContext ctx;
  std::atomic<long long> nodes_seen{0};
  ctx.events.on_node = [&ctx, &nodes_seen](const NodeEvent&) {
    if (++nodes_seen == 16) ctx.request_cancel();
  };
  const MilpSolution s = solver.solve(model, ctx);
  EXPECT_EQ(s.status, MilpStatus::kCancelled);
}

}  // namespace
}  // namespace etransform::milp
