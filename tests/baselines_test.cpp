// Tests for the manual and greedy baselines and the as-is+DR reference.
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "common/error.h"
#include "common/random.h"
#include "datagen/generators.h"

namespace etransform {
namespace {

ConsolidationInstance small_instance(std::uint64_t seed = 3) {
  Rng rng(seed);
  return make_random_instance(rng, 12, 4, 3);
}

TEST(GreedyBaseline, ProducesFeasiblePricedPlan) {
  const auto instance = small_instance();
  const CostModel model(instance);
  const Plan plan = plan_greedy(model, /*with_dr=*/false);
  EXPECT_TRUE(check_plan(instance, plan).empty());
  EXPECT_GT(plan.cost.total(), 0.0);
  EXPECT_EQ(plan.algorithm, "greedy");
  EXPECT_FALSE(plan.has_dr());
}

TEST(GreedyBaseline, DrVariantProducesFeasiblePlan) {
  const auto instance = small_instance();
  const CostModel model(instance);
  const Plan plan = plan_greedy(model, /*with_dr=*/true);
  EXPECT_TRUE(check_plan(instance, plan).empty());
  EXPECT_TRUE(plan.has_dr());
  EXPECT_GT(plan.total_backup_servers(), 0);
  EXPECT_GT(plan.cost.backup_capex, 0.0);
  for (int i = 0; i < instance.num_groups(); ++i) {
    EXPECT_NE(plan.primary[static_cast<std::size_t>(i)],
              plan.secondary[static_cast<std::size_t>(i)]);
  }
}

TEST(GreedyBaseline, PrefersTheCheaperOfTwoSites) {
  // Two identical sites except space price: everything lands on the cheap one.
  ConsolidationInstance instance;
  instance.locations = {UserLocation{"l", {0, 0}}};
  for (int i = 0; i < 3; ++i) {
    ApplicationGroup group;
    group.name = "g" + std::to_string(i);
    group.servers = 2;
    group.users_per_location = {1.0};
    instance.groups.push_back(group);
  }
  for (int j = 0; j < 2; ++j) {
    DataCenterSite site;
    site.name = "dc" + std::to_string(j);
    site.capacity_servers = 50;
    site.space_cost_per_server = StepSchedule::flat(j == 0 ? 50.0 : 100.0);
    instance.sites.push_back(site);
    instance.latency_ms.push_back({5.0});
  }
  const CostModel model(instance);
  const Plan plan = plan_greedy(model, false);
  for (const int site : plan.primary) EXPECT_EQ(site, 0);
}

TEST(GreedyBaseline, RespectsCapacityAndAllowedSites) {
  ConsolidationInstance instance;
  instance.locations = {UserLocation{"l", {0, 0}}};
  for (int i = 0; i < 2; ++i) {
    ApplicationGroup group;
    group.name = "g" + std::to_string(i);
    group.servers = 3;
    group.users_per_location = {1.0};
    instance.groups.push_back(group);
  }
  instance.groups[1].allowed_sites = {1};
  for (int j = 0; j < 2; ++j) {
    DataCenterSite site;
    site.name = "dc" + std::to_string(j);
    site.capacity_servers = 4;  // only one group fits per site
    site.space_cost_per_server = StepSchedule::flat(j == 0 ? 50.0 : 100.0);
    instance.sites.push_back(site);
    instance.latency_ms.push_back({5.0});
  }
  const CostModel model(instance);
  const Plan plan = plan_greedy(model, false);
  EXPECT_EQ(plan.primary[1], 1);  // forced by allowed_sites
  EXPECT_EQ(plan.primary[0], 0);  // capacity blocks doubling up
  EXPECT_TRUE(check_plan(instance, plan).empty());
}

TEST(ManualBaseline, ProducesFeasiblePlanAndIgnoresLatency) {
  const auto instance = small_instance(7);
  const CostModel model(instance);
  const Plan plan = plan_manual(model, /*with_dr=*/false);
  EXPECT_TRUE(check_plan(instance, plan).empty());
  EXPECT_EQ(plan.algorithm, "manual");
  // Manual consolidates into few sites (the a-priori picked set).
  EXPECT_LE(plan.sites_used(), instance.num_sites());
}

TEST(ManualBaseline, DrVariantMirrorsIntoPairedSites) {
  const auto instance = small_instance(11);
  const CostModel model(instance);
  const Plan plan = plan_manual(model, /*with_dr=*/true);
  EXPECT_TRUE(check_plan(instance, plan).empty());
  EXPECT_TRUE(plan.has_dr());
  // Every group placed at the same primary shares the same backup site.
  std::map<int, int> pair;
  for (int i = 0; i < instance.num_groups(); ++i) {
    const int a = plan.primary[static_cast<std::size_t>(i)];
    const int b = plan.secondary[static_cast<std::size_t>(i)];
    const auto [it, inserted] = pair.emplace(a, b);
    EXPECT_EQ(it->second, b);
    EXPECT_NE(a, b);
  }
}

TEST(ManualBaseline, RejectsBadOptions) {
  const auto instance = small_instance();
  const CostModel model(instance);
  ManualOptions options;
  options.site_count = 0;
  EXPECT_THROW((void)plan_manual(model, false, options), InvalidInputError);
}

TEST(GreedyVsManual, GreedyNeverCostsMoreOnLatencyHeavyInstances) {
  // The paper's qualitative claim: greedy accounts for latency, manual does
  // not. Across random instances greedy's total should win (or tie).
  int greedy_wins = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    const auto instance = make_random_instance(rng, 15, 4, 3);
    const CostModel model(instance);
    const Plan greedy = plan_greedy(model, false);
    const Plan manual = plan_manual(model, false);
    if (greedy.cost.total() <= manual.cost.total() + 1e-6) ++greedy_wins;
  }
  EXPECT_GE(greedy_wins, 6);
}

TEST(AsIsPlusDr, ExceedsAsIsCost) {
  const auto instance = small_instance(13);
  const CostModel model(instance);
  int violations = -1;
  const CostBreakdown with_dr = as_is_plus_dr_cost(model, &violations);
  const CostBreakdown without = model.as_is_cost();
  EXPECT_GT(with_dr.total(), without.total());
  EXPECT_GT(with_dr.backup_capex, 0.0);
  EXPECT_EQ(violations, model.as_is_latency_violations());
}

TEST(AsIsPlusDr, RequiresAsIsState) {
  ConsolidationInstance instance;
  instance.locations = {UserLocation{"l", {0, 0}}};
  ApplicationGroup group;
  group.name = "g";
  group.servers = 1;
  group.users_per_location = {1.0};
  instance.groups.push_back(group);
  DataCenterSite site;
  site.name = "dc";
  site.capacity_servers = 10;
  instance.sites.push_back(site);
  instance.latency_ms.push_back({5.0});
  const CostModel model(instance);
  EXPECT_THROW((void)as_is_plus_dr_cost(model), InvalidInputError);
}

}  // namespace
}  // namespace etransform
