// Tests for branch-and-bound: knapsacks, assignment problems, infeasible /
// unbounded models, gap/limit handling, and a randomized sweep where B&B must
// match the brute-force reference solver exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/random.h"
#include "milp/branch_and_bound.h"
#include "milp/brute_force.h"
#include "milp/cuts.h"

namespace etransform::milp {
namespace {

using lp::Model;
using lp::Relation;
using lp::Sense;
using lp::Term;

MilpSolution solve(const Model& m) {
  const BranchAndBoundSolver solver;
  SolveContext ctx;
  return solver.solve(m, ctx);
}

MilpSolution brute(const Model& m) {
  SolveContext ctx;
  return solve_brute_force(m, ctx);
}

TEST(BranchAndBound, BinaryKnapsack) {
  // values {60,100,120}, weights {10,20,30}, capacity 50 -> take items 2,3.
  Model m;
  std::vector<int> pick;
  const double value[3] = {60, 100, 120};
  const double weight[3] = {10, 20, 30};
  std::vector<Term> objective;
  std::vector<Term> cap;
  for (int i = 0; i < 3; ++i) {
    pick.push_back(m.add_binary("item" + std::to_string(i)));
    objective.push_back({pick.back(), value[i]});
    cap.push_back({pick.back(), weight[i]});
  }
  m.set_objective(Sense::kMaximize, objective);
  m.add_constraint("cap", cap, Relation::kLessEqual, 50.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 220.0, 1e-6);
  EXPECT_NEAR(s.values[0], 0.0, 1e-6);
  EXPECT_NEAR(s.values[1], 1.0, 1e-6);
  EXPECT_NEAR(s.values[2], 1.0, 1e-6);
}

TEST(BranchAndBound, IntegerRoundingMatters) {
  // max x + y st 2x + 2y <= 5, integer -> LP gives 2.5, MILP gives 2.
  Model m;
  const int x = m.add_variable("x", 0.0, 10.0, true);
  const int y = m.add_variable("y", 0.0, 10.0, true);
  m.set_objective(Sense::kMaximize, {{x, 1.0}, {y, 1.0}});
  m.add_constraint("c", {{x, 2.0}, {y, 2.0}}, Relation::kLessEqual, 5.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
}

TEST(BranchAndBound, GeneralIntegersWithWideDomain) {
  // min 3x + 4y st 2x + y >= 11, x + 3y >= 9, integers.
  Model m;
  const int x = m.add_variable("x", 0.0, 100.0, true);
  const int y = m.add_variable("y", 0.0, 100.0, true);
  m.set_objective(Sense::kMinimize, {{x, 3.0}, {y, 4.0}});
  m.add_constraint("c1", {{x, 2.0}, {y, 1.0}}, Relation::kGreaterEqual, 11.0);
  m.add_constraint("c2", {{x, 1.0}, {y, 3.0}}, Relation::kGreaterEqual, 9.0);
  const auto bb = solve(m);
  const auto reference = brute(m);
  ASSERT_EQ(bb.status, MilpStatus::kOptimal);
  ASSERT_EQ(reference.status, MilpStatus::kOptimal);
  EXPECT_NEAR(bb.objective, reference.objective, 1e-6);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // Facility-style: open binary gates capacity for a continuous flow.
  Model m;
  const int open1 = m.add_binary("open1");
  const int open2 = m.add_binary("open2");
  const int f1 = m.add_continuous("f1");
  const int f2 = m.add_continuous("f2");
  m.set_objective(Sense::kMinimize,
                  {{open1, 10.0}, {open2, 14.0}, {f1, 1.0}, {f2, 0.5}});
  m.add_constraint("demand", {{f1, 1.0}, {f2, 1.0}}, Relation::kGreaterEqual,
                   8.0);
  m.add_constraint("cap1", {{f1, 1.0}, {open1, -6.0}}, Relation::kLessEqual,
                   0.0);
  m.add_constraint("cap2", {{f2, 1.0}, {open2, -6.0}}, Relation::kLessEqual,
                   0.0);
  const auto bb = solve(m);
  const auto reference = brute(m);
  ASSERT_EQ(bb.status, MilpStatus::kOptimal);
  EXPECT_NEAR(bb.objective, reference.objective, 1e-6);
  // Cheapest: open both, f2 = 6 (cheap flow), f1 = 2 -> 10+14+2+3 = 29.
  EXPECT_NEAR(bb.objective, 29.0, 1e-6);
}

TEST(BranchAndBound, DetectsInfeasible) {
  Model m;
  const int x = m.add_binary("x");
  const int y = m.add_binary("y");
  m.set_objective(Sense::kMinimize, {{x, 1.0}, {y, 1.0}});
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 3.0);
  EXPECT_EQ(solve(m).status, MilpStatus::kInfeasible);
}

TEST(BranchAndBound, IntegralityCanMakeLpFeasibleModelInfeasible) {
  // 2x = 1 has LP solution x=0.5 but no integer solution.
  Model m;
  const int x = m.add_variable("x", 0.0, 10.0, true);
  m.set_objective(Sense::kMinimize, {{x, 1.0}});
  m.add_constraint("c", {{x, 2.0}}, Relation::kEqual, 1.0);
  EXPECT_EQ(solve(m).status, MilpStatus::kInfeasible);
}

TEST(BranchAndBound, DetectsUnbounded) {
  Model m;
  const int x = m.add_variable("x", 0.0, lp::kInfinity, true);
  m.set_objective(Sense::kMaximize, {{x, 1.0}});
  EXPECT_EQ(solve(m).status, MilpStatus::kUnbounded);
}

TEST(BranchAndBound, PureLpPassesThrough) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 3.0);
  m.set_objective(Sense::kMaximize, {{x, 2.0}});
  const auto s = solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 6.0, 1e-9);
  EXPECT_EQ(s.nodes, 1);
}

TEST(BranchAndBound, BestBoundBracketsOptimum) {
  Model m;
  std::vector<Term> objective;
  std::vector<Term> cap;
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    const int b = m.add_binary("b" + std::to_string(i));
    objective.push_back({b, rng.uniform(1.0, 20.0)});
    cap.push_back({b, rng.uniform(1.0, 10.0)});
  }
  m.set_objective(Sense::kMaximize, objective);
  m.add_constraint("cap", cap, Relation::kLessEqual, 25.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_GE(s.best_bound, s.objective - 1e-6);  // maximization: bound above
}

TEST(BranchAndBound, NodeLimitYieldsFeasibleOrNoSolution) {
  SolverOptions options;
  options.search.max_nodes = 1;
  options.search.root_dive = false;
  options.cuts.enable = false;
  const BranchAndBoundSolver limited(options);
  Model m;
  std::vector<Term> objective;
  std::vector<Term> cap;
  Rng rng(77);
  for (int i = 0; i < 16; ++i) {
    const int b = m.add_binary("b" + std::to_string(i));
    objective.push_back({b, rng.uniform(1.0, 20.0)});
    cap.push_back({b, rng.uniform(1.0, 10.0)});
  }
  m.set_objective(Sense::kMaximize, objective);
  m.add_constraint("cap", cap, Relation::kLessEqual, 20.0);
  SolveContext ctx;
  const auto s = limited.solve(m, ctx);
  EXPECT_TRUE(s.status == MilpStatus::kFeasible ||
              s.status == MilpStatus::kNoSolutionFound);
}

TEST(BranchAndBound, RootDiveFindsIncumbentUnderNodeLimit) {
  SolverOptions options;
  options.search.max_nodes = 1;
  options.search.root_dive = true;
  options.cuts.enable = false;
  const BranchAndBoundSolver limited(options);
  Model m;
  std::vector<Term> objective;
  std::vector<Term> cap;
  Rng rng(78);
  for (int i = 0; i < 16; ++i) {
    const int b = m.add_binary("b" + std::to_string(i));
    objective.push_back({b, rng.uniform(1.0, 20.0)});
    cap.push_back({b, rng.uniform(1.0, 10.0)});
  }
  m.set_objective(Sense::kMaximize, objective);
  m.add_constraint("cap", cap, Relation::kLessEqual, 20.0);
  SolveContext ctx;
  const auto s = limited.solve(m, ctx);
  EXPECT_EQ(s.status, MilpStatus::kFeasible);
  EXPECT_TRUE(m.is_feasible(s.values, 1e-6));
}

TEST(BruteForce, RejectsUnboundedIntegerDomains) {
  Model m;
  m.add_variable("x", 0.0, lp::kInfinity, true);
  m.set_objective(Sense::kMinimize, {{0, 1.0}});
  EXPECT_THROW((void)brute(m), InvalidInputError);
}

TEST(BruteForce, RejectsTooManyCombinations) {
  Model m;
  std::vector<Term> objective;
  for (int i = 0; i < 40; ++i) {
    objective.push_back({m.add_binary("b" + std::to_string(i)), 1.0});
  }
  m.set_objective(Sense::kMinimize, objective);
  SolveContext ctx;
  EXPECT_THROW((void)solve_brute_force(m, ctx, 1000), InvalidInputError);
}

// ---- randomized equivalence sweep ----------------------------------------

class MilpRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MilpRandomTest, MatchesBruteForceOnRandomAssignmentProblems) {
  Rng rng(GetParam());
  // Mini consolidation instance: groups pick one of few sites, capacity rows.
  const int groups = static_cast<int>(rng.uniform_int(2, 4));
  const int sites = static_cast<int>(rng.uniform_int(2, 3));
  Model m;
  std::vector<std::vector<int>> x(static_cast<std::size_t>(groups));
  std::vector<Term> objective;
  std::vector<int> servers(static_cast<std::size_t>(groups));
  for (int i = 0; i < groups; ++i) {
    servers[static_cast<std::size_t>(i)] =
        static_cast<int>(rng.uniform_int(1, 5));
    std::vector<Term> assign;
    for (int j = 0; j < sites; ++j) {
      const int var = m.add_binary("x_" + std::to_string(i) + "_" +
                                   std::to_string(j));
      x[static_cast<std::size_t>(i)].push_back(var);
      objective.push_back({var, rng.uniform(1.0, 50.0)});
      assign.push_back({var, 1.0});
    }
    m.add_constraint("assign" + std::to_string(i), assign, Relation::kEqual,
                     1.0);
  }
  for (int j = 0; j < sites; ++j) {
    std::vector<Term> cap;
    for (int i = 0; i < groups; ++i) {
      cap.push_back({x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                     static_cast<double>(servers[static_cast<std::size_t>(i)])});
    }
    // Capacity large enough that at least the balanced split fits.
    m.add_constraint("cap" + std::to_string(j), cap, Relation::kLessEqual,
                     rng.uniform(6.0, 20.0));
  }
  m.set_objective(Sense::kMinimize, objective);

  const auto bb = solve(m);
  const auto reference = brute(m);
  ASSERT_EQ(bb.status == MilpStatus::kOptimal,
            reference.status == MilpStatus::kOptimal);
  if (bb.status == MilpStatus::kOptimal) {
    EXPECT_NEAR(bb.objective, reference.objective, 1e-6);
    EXPECT_TRUE(m.is_feasible(bb.values, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpRandomTest,
                         ::testing::Range<std::uint64_t>(0, 30));

class KnapsackRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackRandomTest, MatchesBruteForceOnRandomKnapsacks) {
  Rng rng(GetParam() + 1000);
  const int items = static_cast<int>(rng.uniform_int(4, 10));
  Model m;
  std::vector<Term> objective;
  std::vector<Term> cap;
  double total_weight = 0.0;
  for (int i = 0; i < items; ++i) {
    const int b = m.add_binary("b" + std::to_string(i));
    objective.push_back({b, rng.uniform(1.0, 30.0)});
    const double w = rng.uniform(1.0, 10.0);
    total_weight += w;
    cap.push_back({b, w});
  }
  m.set_objective(Sense::kMaximize, objective);
  m.add_constraint("cap", cap, Relation::kLessEqual,
                   total_weight * rng.uniform(0.3, 0.7));
  const auto bb = solve(m);
  const auto reference = brute(m);
  ASSERT_EQ(bb.status, MilpStatus::kOptimal);
  ASSERT_EQ(reference.status, MilpStatus::kOptimal);
  EXPECT_NEAR(bb.objective, reference.objective, 1e-6);
  EXPECT_TRUE(m.is_feasible(bb.values, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackRandomTest,
                         ::testing::Range<std::uint64_t>(0, 30));

// ---------------------------------------------------------------------------
// Cut pipeline
// ---------------------------------------------------------------------------

MilpSolution solve_with(const Model& m, const SolverOptions& options) {
  const BranchAndBoundSolver solver(options);
  SolveContext ctx;
  return solver.solve(m, ctx);
}

/// The production configuration: cuts on, pseudocost branching.
SolverOptions production_options() { return SolverOptions{}; }

/// The pre-cut solver: no cuts, most-fractional branching.
SolverOptions legacy_options() {
  SolverOptions options;
  options.cuts.enable = false;
  options.branching.rule = BranchingOptions::Rule::kMostFractional;
  return options;
}

/// The classic 3-item knapsack whose LP relaxation is fractional: the LP
/// takes items 1 and 2 plus 2/3 of item 3, so both separators fire (the
/// minimal cover {0,1,2} gives x0+x1+x2 <= 2, violated by 2/3).
Model fractional_knapsack() {
  Model m;
  const double value[3] = {60, 100, 120};
  const double weight[3] = {10, 20, 30};
  std::vector<Term> objective;
  std::vector<Term> cap;
  for (int i = 0; i < 3; ++i) {
    const int b = m.add_binary("item" + std::to_string(i));
    objective.push_back({b, value[i]});
    cap.push_back({b, weight[i]});
  }
  m.set_objective(Sense::kMaximize, objective);
  m.add_constraint("cap", cap, Relation::kLessEqual, 50.0);
  return m;
}

TEST(CutPipeline, CutStatsAreConsistentAndVisible) {
  const Model m = fractional_knapsack();
  const auto s = solve_with(m, production_options());
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 220.0, 1e-6);

  // The fractional root guarantees at least one separation round found work.
  EXPECT_GE(s.cuts.rounds, 1);
  EXPECT_GE(s.cuts.generated, 1);
  EXPECT_LE(s.cuts.applied + s.cuts.purged, s.cuts.generated);
  EXPECT_GE(s.cuts.applied, 0);

  // The accessor and the field are the same object.
  EXPECT_EQ(s.cut_stats().generated, s.cuts.generated);
  EXPECT_EQ(s.cut_stats().applied, s.cuts.applied);

  // The same tallies are published in the stats tree for --stats-json.
  const SolveStats* cuts = s.stats.find("cuts");
  ASSERT_NE(cuts, nullptr);
  EXPECT_NEAR(cuts->metric("generated"),
              static_cast<double>(s.cuts.generated), 1e-9);
  EXPECT_NEAR(cuts->metric("applied"), static_cast<double>(s.cuts.applied),
              1e-9);
}

TEST(CutPipeline, CutsOffMatchesLegacySolverExactly) {
  const Model m = fractional_knapsack();
  const auto off = solve_with(m, legacy_options());
  ASSERT_EQ(off.status, MilpStatus::kOptimal);
  EXPECT_NEAR(off.objective, 220.0, 1e-6);
  EXPECT_EQ(off.cuts.rounds, 0);
  EXPECT_EQ(off.cuts.generated, 0);
  EXPECT_EQ(off.cuts.applied, 0);
}

/// Differential: cuts+pseudocosts must change the search, never the answer.
class CutDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CutDifferentialTest, CutsPreserveOptimaOnRandomInstances) {
  Rng rng(GetParam() + 7000);
  // Small assignment MILP with knapsack-style capacity rows: every group
  // goes to exactly one site, sites have weight budgets. Both separators
  // have material to work with and brute force stays cheap.
  const int groups = static_cast<int>(rng.uniform_int(4, 7));
  const int sites = static_cast<int>(rng.uniform_int(2, 3));
  Model m;
  std::vector<std::vector<int>> x(static_cast<std::size_t>(groups));
  std::vector<Term> objective;
  for (int i = 0; i < groups; ++i) {
    for (int j = 0; j < sites; ++j) {
      const int v = m.add_binary("x" + std::to_string(i) + "_" +
                                 std::to_string(j));
      x[static_cast<std::size_t>(i)].push_back(v);
      objective.push_back({v, rng.uniform(1.0, 12.0)});
    }
  }
  m.set_objective(Sense::kMinimize, objective);
  for (int i = 0; i < groups; ++i) {
    std::vector<Term> assign;
    for (int j = 0; j < sites; ++j) {
      assign.push_back({x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
    }
    m.add_constraint("assign" + std::to_string(i), assign, Relation::kEqual,
                     1.0);
  }
  for (int j = 0; j < sites; ++j) {
    std::vector<Term> cap;
    for (int i = 0; i < groups; ++i) {
      cap.push_back({x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                     rng.uniform(1.0, 6.0)});
    }
    m.add_constraint("cap" + std::to_string(j), cap, Relation::kLessEqual,
                     rng.uniform(2.0, 5.0) * groups / sites);
  }

  const auto with_cuts = solve_with(m, production_options());
  const auto without = solve_with(m, legacy_options());
  const auto reference = brute(m);
  ASSERT_EQ(with_cuts.status, without.status);
  ASSERT_EQ(with_cuts.status == MilpStatus::kOptimal,
            reference.status == MilpStatus::kOptimal);
  if (with_cuts.status == MilpStatus::kOptimal) {
    EXPECT_NEAR(with_cuts.objective, reference.objective, 1e-6);
    EXPECT_NEAR(without.objective, reference.objective, 1e-6);
    EXPECT_TRUE(m.is_feasible(with_cuts.values, 1e-6));
    EXPECT_TRUE(m.is_feasible(without.values, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 25));

/// A user-written separator per the DESIGN.md extension recipe: emits the
/// (valid) cover inequality x0+x1+x2 <= 2 for fractional_knapsack() once.
class HandRolledCoverGenerator : public CutGenerator {
 public:
  [[nodiscard]] const char* name() const override { return "hand_cover"; }
  int separate(const SeparationContext& /*ctx*/, const lp::LpSolution& lp,
               CutPool& pool) const override {
    ++calls;
    const double activity = lp.values[0] + lp.values[1] + lp.values[2];
    if (activity <= 2.0 + 1e-6) return 0;  // not violated (later rounds)
    Cut cut;
    cut.name = "hand_cover";
    cut.terms = {{0, 1.0}, {1, 1.0}, {2, 1.0}};
    cut.relation = lp::Relation::kLessEqual;
    cut.rhs = 2.0;
    cut.violation = activity - 2.0;
    return pool.add(std::move(cut)) ? 1 : 0;
  }
  // separate() is const (generators may be shared across concurrent
  // solves); this single-solve test tally is the documented exception.
  mutable int calls = 0;
};

TEST(CutPipeline, RegisteredGeneratorReplacesBuiltinsAndIsApplied) {
  const Model m = fractional_knapsack();
  BranchAndBoundSolver solver(production_options());
  auto generator = std::make_shared<HandRolledCoverGenerator>();
  solver.add_cut_generator(generator);
  SolveContext ctx;
  const auto s = solver.solve(m, ctx);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 220.0, 1e-6);
  EXPECT_GE(generator->calls, 1);
  EXPECT_GE(s.cuts.generated, 1);
  // The per-generator tally uses the registered name, not the built-ins'.
  const SolveStats* cuts = s.stats.find("cuts");
  ASSERT_NE(cuts, nullptr);
  EXPECT_GE(cuts->metric("hand_cover_cuts"), 1.0);
  EXPECT_NEAR(cuts->metric("gomory_cuts"), 0.0, 1e-9);
}

}  // namespace
}  // namespace etransform::milp
