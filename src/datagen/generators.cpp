#include "datagen/generators.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace etransform {

namespace {

/// The four §VI-B user regions, placed on a square so geographic distance
/// (used by the manual baseline and VPN pricing) matches latency classes.
std::vector<UserLocation> four_regions() {
  return {
      UserLocation{"region-0", {0.0, 0.0}},
      UserLocation{"region-1", {100.0, 0.0}},
      UserLocation{"region-2", {0.0, 100.0}},
      UserLocation{"region-3", {100.0, 100.0}},
  };
}

}  // namespace

EnterpriseSpec enterprise1_spec(std::uint64_t seed) {
  EnterpriseSpec spec;
  spec.name = "enterprise1";
  spec.num_groups = 190;
  spec.total_servers = 1070;
  spec.num_as_is_centers = 67;
  spec.num_target_sites = 10;
  spec.total_users = 18913.0;
  spec.seed = seed;
  return spec;
}

EnterpriseSpec florida_spec(std::uint64_t seed) {
  EnterpriseSpec spec;
  spec.name = "florida";
  spec.num_groups = 190;
  spec.total_servers = 3907;
  spec.num_as_is_centers = 43;
  spec.num_target_sites = 10;
  // Users scale with the estate (paper reuses enterprise1 distributions).
  spec.total_users = 18913.0 * 3907.0 / 1070.0;
  spec.seed = seed;
  return spec;
}

EnterpriseSpec federal_spec(std::uint64_t seed) {
  EnterpriseSpec spec;
  spec.name = "federal";
  spec.num_groups = 1900;  // 10x enterprise1 (paper §VI-A)
  spec.total_servers = 42800;
  spec.num_as_is_centers = 2094;
  spec.num_target_sites = 100;
  spec.total_users = 18913.0 * 42800.0 / 1070.0;
  spec.seed = seed;
  return spec;
}

ConsolidationInstance make_enterprise(const EnterpriseSpec& spec) {
  if (spec.num_groups <= 0 || spec.total_servers < spec.num_groups ||
      spec.num_as_is_centers <= 0 || spec.num_target_sites <= 0) {
    throw InvalidInputError("make_enterprise: inconsistent spec");
  }
  Rng rng(spec.seed);
  ConsolidationInstance instance;
  instance.name = spec.name;
  instance.locations = four_regions();
  const int num_locations = instance.num_locations();

  // ---- application groups --------------------------------------------------
  // Server counts are heavy-tailed (Fig. 1 shows a complex multi-server
  // group; most groups are small).
  const auto servers = split_total_lognormal(rng, spec.total_servers,
                                             static_cast<std::size_t>(
                                                 spec.num_groups),
                                             0.0, 1.0, 1);
  std::vector<double> user_weights(static_cast<std::size_t>(spec.num_groups));
  for (auto& w : user_weights) w = rng.lognormal(0.0, 0.8);
  double weight_sum = 0.0;
  for (const double w : user_weights) weight_sum += w;

  instance.groups.reserve(static_cast<std::size_t>(spec.num_groups));
  for (int i = 0; i < spec.num_groups; ++i) {
    ApplicationGroup group;
    group.name = spec.name + "-ag" + std::to_string(i);
    group.servers = servers[static_cast<std::size_t>(i)];
    // 100 GB - 1 TB per server per month, in megabits (1 GB = 8000 Mb).
    group.monthly_data_megabits =
        group.servers * rng.uniform(100.0, 1000.0) * 8000.0;
    const double users = spec.total_users *
                         user_weights[static_cast<std::size_t>(i)] /
                         weight_sum;
    group.users_per_location.assign(static_cast<std::size_t>(num_locations),
                                    0.0);
    // §VI-B: half latency-sensitive; sensitive groups fall into 5 classes:
    // all users in one of the 4 regions, or spread evenly over all 4.
    const bool sensitive = (i % 2 == 0);
    const int user_class = static_cast<int>(rng.uniform_int(0, 4));
    if (user_class < 4) {
      group.users_per_location[static_cast<std::size_t>(user_class)] = users;
    } else {
      for (auto& u : group.users_per_location) u = users / num_locations;
    }
    if (sensitive) {
      group.latency_penalty =
          LatencyPenaltyFunction::single_step(10.0, 100.0);
    }
    instance.groups.push_back(std::move(group));
  }

  // ---- target sites --------------------------------------------------------
  // 5 latency classes (§VI-B): close to one region (5 ms there, 20 ms
  // elsewhere) or central (10 ms from everywhere). Costs follow the cited
  // public reports; space/WAN get volume-discount tiers (economies of scale).
  std::vector<int> capacities;
  {
    std::vector<double> raw(static_cast<std::size_t>(spec.num_target_sites));
    double raw_sum = 0.0;
    for (auto& c : raw) {
      c = rng.uniform(100.0, 1000.0);
      raw_sum += c;
    }
    const double scale =
        std::max(1.0, spec.capacity_headroom * spec.total_servers / raw_sum);
    int largest = 0;
    for (const double c : raw) {
      capacities.push_back(static_cast<int>(std::ceil(c * scale)));
      largest = std::max(largest, capacities.back());
    }
    // Every group must fit somewhere: grow the largest site if some group
    // outsizes it.
    int biggest_group = 0;
    for (const auto& g : instance.groups) {
      biggest_group = std::max(biggest_group, g.servers);
    }
    if (largest < biggest_group) {
      capacities[0] = biggest_group;
    }
  }
  for (int j = 0; j < spec.num_target_sites; ++j) {
    DataCenterSite site;
    site.name = spec.name + "-dc" + std::to_string(j);
    site.capacity_servers = capacities[static_cast<std::size_t>(j)];
    const int latency_class = static_cast<int>(rng.uniform_int(0, 4));
    std::vector<double> latency(static_cast<std::size_t>(num_locations));
    if (latency_class < 4) {
      for (int r = 0; r < num_locations; ++r) {
        latency[static_cast<std::size_t>(r)] =
            (r == latency_class) ? 5.0 : 20.0;
      }
      site.position =
          instance.locations[static_cast<std::size_t>(latency_class)].position;
      site.position.x += rng.uniform(-8.0, 8.0);
      site.position.y += rng.uniform(-8.0, 8.0);
    } else {
      for (auto& l : latency) l = 10.0;
      site.position = GeoPoint{50.0 + rng.uniform(-8.0, 8.0),
                               50.0 + rng.uniform(-8.0, 8.0)};
    }
    instance.latency_ms.push_back(std::move(latency));

    // Space: $60-150 /server/month with ~12%-per-tier volume discounts
    // (deep bulk pricing is what makes consolidation order matter).
    const Money space_base = rng.uniform(60.0, 150.0);
    site.space_cost_per_server = StepSchedule::volume_discount(
        space_base, std::max(1.0, site.capacity_servers / 4.0),
        0.12 * space_base, 4);
    // Power: $0.06-0.17 /kWh (EIA state range).
    site.power_cost_per_kwh = StepSchedule::flat(rng.uniform(0.06, 0.17));
    // Labor: $5.5k-8.3k /admin/month (salary survey).
    site.labor_cost_per_admin =
        StepSchedule::flat(rng.uniform(5500.0, 8300.0));
    // WAN: EC2-style $0.08-0.16 /GB => 1e-5..2e-5 $/Mb, with discounts.
    const Money wan_base = rng.uniform(1.0e-5, 2.0e-5);
    site.wan_cost_per_megabit = StepSchedule::volume_discount(
        wan_base, 2.0e8, 0.1 * wan_base, 3);
    instance.sites.push_back(std::move(site));
  }

  // ---- as-is estate ---------------------------------------------------------
  // Small dispersed centers at retail rates (no volume discounts), each near
  // one region (so the as-is state has few latency violations but high
  // cost). Groups are spread over centers with a heavy tail.
  instance.as_is_centers.reserve(
      static_cast<std::size_t>(spec.num_as_is_centers));
  std::vector<int> center_region(static_cast<std::size_t>(
      spec.num_as_is_centers));
  for (int d = 0; d < spec.num_as_is_centers; ++d) {
    AsIsDataCenter center;
    center.name = spec.name + "-asis" + std::to_string(d);
    const int region = static_cast<int>(rng.uniform_int(0, 3));
    center_region[static_cast<std::size_t>(d)] = region;
    center.position =
        instance.locations[static_cast<std::size_t>(region)].position;
    center.position.x += rng.uniform(-15.0, 15.0);
    center.position.y += rng.uniform(-15.0, 15.0);
    // Small server rooms pay steep retail rates (no bulk pricing, dedicated
    // facilities staff) — the cost gap that motivates the transformation.
    center.space_cost_per_server = rng.uniform(190.0, 360.0);
    center.power_cost_per_kwh = rng.uniform(0.11, 0.22);
    center.labor_cost_per_admin = rng.uniform(7500.0, 11000.0);
    center.wan_cost_per_megabit = rng.uniform(2.2e-5, 4.0e-5);
    std::vector<double> latency(static_cast<std::size_t>(num_locations));
    for (int r = 0; r < num_locations; ++r) {
      latency[static_cast<std::size_t>(r)] = (r == region) ? 5.0 : 20.0;
    }
    instance.as_is_latency_ms.push_back(std::move(latency));
    instance.as_is_centers.push_back(std::move(center));
  }
  // Enterprises grew their server rooms next to their users: groups whose
  // users sit in one region live in a center of that region (so the as-is
  // state has few latency violations — its problem is cost, not latency).
  std::vector<double> center_weights(
      static_cast<std::size_t>(spec.num_as_is_centers));
  for (auto& w : center_weights) w = rng.lognormal(0.0, 0.7);
  instance.as_is_placement.reserve(static_cast<std::size_t>(spec.num_groups));
  for (int i = 0; i < spec.num_groups; ++i) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    // Dominant user region, or -1 when users are spread evenly.
    int dominant = -1;
    for (int r = 0; r < num_locations; ++r) {
      if (group.users_per_location[static_cast<std::size_t>(r)] >
          0.5 * group.total_users()) {
        dominant = r;
      }
    }
    std::vector<double> weights = center_weights;
    if (dominant >= 0) {
      for (int d = 0; d < spec.num_as_is_centers; ++d) {
        if (center_region[static_cast<std::size_t>(d)] != dominant) {
          weights[static_cast<std::size_t>(d)] = 0.0;
        }
      }
      double mass = 0.0;
      for (const double w : weights) mass += w;
      if (mass <= 0.0) weights = center_weights;  // no center in region
    }
    const auto d = rng.weighted_index(weights);
    instance.as_is_placement.push_back(static_cast<int>(d));
    instance.as_is_centers[d].servers +=
        instance.groups[static_cast<std::size_t>(i)].servers;
  }

  validate_instance(instance);
  return instance;
}

ConsolidationInstance make_enterprise1(std::uint64_t seed) {
  return make_enterprise(enterprise1_spec(seed));
}
ConsolidationInstance make_florida(std::uint64_t seed) {
  return make_enterprise(florida_spec(seed));
}
ConsolidationInstance make_federal(std::uint64_t seed) {
  return make_enterprise(federal_spec(seed));
}

ConsolidationInstance make_latency_line(const LatencyLineSpec& spec) {
  if (spec.num_sites < 2 || spec.num_groups <= 0 ||
      spec.total_servers < spec.num_groups) {
    throw InvalidInputError("make_latency_line: inconsistent spec");
  }
  Rng rng(spec.seed);
  ConsolidationInstance instance;
  instance.name = "latency-line";
  const double span = spec.latency_step_ms * (spec.num_sites - 1);
  instance.locations = {
      UserLocation{"near", {0.0, 0.0}},
      UserLocation{"far", {span, 0.0}},
  };

  const auto servers = split_total_lognormal(
      rng, spec.total_servers, static_cast<std::size_t>(spec.num_groups), 0.0,
      1.0, 1);
  for (int i = 0; i < spec.num_groups; ++i) {
    ApplicationGroup group;
    group.name = "ag" + std::to_string(i);
    group.servers = servers[static_cast<std::size_t>(i)];
    group.monthly_data_megabits = 0.0;  // isolates space vs latency
    group.users_per_location = {
        spec.users_per_group * spec.fraction_users_near,
        spec.users_per_group * (1.0 - spec.fraction_users_near)};
    if (spec.penalty_per_user > 0.0) {
      group.latency_penalty = LatencyPenaltyFunction::single_step(
          spec.threshold_ms, spec.penalty_per_user);
    }
    instance.groups.push_back(std::move(group));
  }

  const int capacity = spec.site_capacity > 0
                           ? spec.site_capacity
                           : 2 * spec.total_servers + 1;
  for (int k = 0; k < spec.num_sites; ++k) {
    DataCenterSite site;
    site.name = "location-" + std::to_string(k);
    site.position = GeoPoint{spec.latency_step_ms * k, 0.0};
    site.capacity_servers = capacity;
    site.space_cost_per_server =
        StepSchedule::flat(spec.space_base + spec.space_step * k);
    site.power_cost_per_kwh = StepSchedule::flat(0.0);
    site.labor_cost_per_admin = StepSchedule::flat(0.0);
    site.wan_cost_per_megabit = StepSchedule::flat(0.0);
    instance.sites.push_back(std::move(site));
    instance.latency_ms.push_back(
        {spec.base_latency_ms + spec.latency_step_ms * k,
         spec.base_latency_ms +
             spec.latency_step_ms * (spec.num_sites - 1 - k)});
  }
  instance.params.dr_server_cost = spec.dr_server_cost;

  // A minimal as-is state (one mid-line center) so the instance is complete.
  AsIsDataCenter center;
  center.name = "asis-0";
  center.position = GeoPoint{span / 2.0, 0.0};
  center.servers = spec.total_servers;
  center.space_cost_per_server = spec.space_base * 2.0;
  instance.as_is_centers.push_back(center);
  instance.as_is_placement.assign(static_cast<std::size_t>(spec.num_groups),
                                  0);
  instance.as_is_latency_ms.push_back({span / 2.0, span / 2.0});

  validate_instance(instance);
  return instance;
}

ConsolidationInstance make_vpn_tradeoff(const VpnTradeoffSpec& spec) {
  if (spec.num_sites < 2 || spec.num_groups < 0 ||
      spec.servers_per_group <= 0 || spec.site_capacity <= 0) {
    throw InvalidInputError("make_vpn_tradeoff: inconsistent spec");
  }
  ConsolidationInstance instance;
  instance.name = "vpn-tradeoff";
  const double span = 10.0 * (spec.num_sites - 1);
  instance.locations = {UserLocation{"users", {span, 0.0}}};
  instance.use_vpn_links = true;
  instance.params.vpn_link_capacity_megabits =
      spec.vpn_link_capacity_megabits;

  for (int i = 0; i < spec.num_groups; ++i) {
    ApplicationGroup group;
    group.name = "ag" + std::to_string(i);
    group.servers = spec.servers_per_group;
    group.monthly_data_megabits = spec.data_per_group_megabits;
    group.users_per_location = {1.0};
    instance.groups.push_back(std::move(group));
  }

  for (int k = 0; k < spec.num_sites; ++k) {
    DataCenterSite site;
    site.name = "location-" + std::to_string(k);
    site.position = GeoPoint{10.0 * k, 0.0};
    site.capacity_servers = spec.site_capacity;
    site.space_cost_per_server =
        StepSchedule::flat(spec.space_base * std::pow(spec.space_ratio, k));
    site.power_cost_per_kwh = StepSchedule::flat(0.0);
    site.labor_cost_per_admin = StepSchedule::flat(0.0);
    site.wan_cost_per_megabit = StepSchedule::flat(0.0);
    instance.sites.push_back(std::move(site));
    instance.latency_ms.push_back({1.0 + (spec.num_sites - 1 - k)});
    instance.vpn_link_monthly_cost.push_back(
        {spec.vpn_base *
         std::pow(spec.vpn_ratio, spec.num_sites - 1 - k)});
  }

  if (spec.num_groups > 0) {
    AsIsDataCenter center;
    center.name = "asis-0";
    center.position = GeoPoint{span, 0.0};
    center.servers = spec.num_groups * spec.servers_per_group;
    center.space_cost_per_server = spec.space_base * 4.0;
    instance.as_is_centers.push_back(center);
    instance.as_is_placement.assign(static_cast<std::size_t>(spec.num_groups),
                                    0);
    instance.as_is_latency_ms.push_back({1.0});
    validate_instance(instance);
  }
  return instance;
}

ConsolidationInstance make_random_instance(Rng& rng, int groups, int sites,
                                           int locations) {
  if (groups <= 0 || sites < 2 || locations <= 0) {
    throw InvalidInputError("make_random_instance: inconsistent shape");
  }
  ConsolidationInstance instance;
  instance.name = "random";
  for (int r = 0; r < locations; ++r) {
    instance.locations.push_back(UserLocation{
        "loc" + std::to_string(r),
        {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)}});
  }
  long long total_servers = 0;
  for (int i = 0; i < groups; ++i) {
    ApplicationGroup group;
    group.name = "ag" + std::to_string(i);
    group.servers = static_cast<int>(rng.uniform_int(1, 8));
    total_servers += group.servers;
    group.monthly_data_megabits = rng.uniform(0.0, 1.0e6);
    group.users_per_location.assign(static_cast<std::size_t>(locations), 0.0);
    for (auto& u : group.users_per_location) u = rng.uniform(0.0, 50.0);
    if (rng.uniform() < 0.5) {
      group.latency_penalty = LatencyPenaltyFunction::single_step(
          rng.uniform(5.0, 15.0), rng.uniform(10.0, 200.0));
    }
    instance.groups.push_back(std::move(group));
  }
  // Capacity: dedicated-DR headroom so every baseline stays feasible.
  const long long per_site =
      (3 * total_servers + sites - 1) / sites + 8;
  for (int j = 0; j < sites; ++j) {
    DataCenterSite site;
    site.name = "dc" + std::to_string(j);
    site.position = GeoPoint{rng.uniform(0.0, 100.0),
                             rng.uniform(0.0, 100.0)};
    site.capacity_servers = static_cast<int>(per_site);
    const Money space = rng.uniform(40.0, 200.0);
    site.space_cost_per_server = rng.uniform() < 0.5
                                     ? StepSchedule::flat(space)
                                     : StepSchedule::volume_discount(
                                           space, per_site / 3.0,
                                           0.1 * space, 3);
    site.power_cost_per_kwh = StepSchedule::flat(rng.uniform(0.05, 0.2));
    site.labor_cost_per_admin =
        StepSchedule::flat(rng.uniform(5000.0, 9000.0));
    site.wan_cost_per_megabit = StepSchedule::flat(rng.uniform(0.0, 3e-5));
    instance.sites.push_back(std::move(site));
    std::vector<double> latency(static_cast<std::size_t>(locations));
    for (auto& l : latency) l = rng.uniform(2.0, 30.0);
    instance.latency_ms.push_back(std::move(latency));
  }
  // As-is: a couple of expensive centers.
  const int centers = 2 + static_cast<int>(rng.uniform_int(0, 2));
  for (int d = 0; d < centers; ++d) {
    AsIsDataCenter center;
    center.name = "asis" + std::to_string(d);
    center.position = GeoPoint{rng.uniform(0.0, 100.0),
                               rng.uniform(0.0, 100.0)};
    center.space_cost_per_server = rng.uniform(150.0, 300.0);
    center.power_cost_per_kwh = rng.uniform(0.08, 0.2);
    center.labor_cost_per_admin = rng.uniform(6000.0, 10000.0);
    center.wan_cost_per_megabit = rng.uniform(1e-5, 4e-5);
    instance.as_is_centers.push_back(center);
    std::vector<double> latency(static_cast<std::size_t>(locations));
    for (auto& l : latency) l = rng.uniform(2.0, 30.0);
    instance.as_is_latency_ms.push_back(std::move(latency));
  }
  for (int i = 0; i < groups; ++i) {
    const int d = static_cast<int>(rng.uniform_int(0, centers - 1));
    instance.as_is_placement.push_back(d);
    instance.as_is_centers[static_cast<std::size_t>(d)].servers +=
        instance.groups[static_cast<std::size_t>(i)].servers;
  }
  validate_instance(instance);
  return instance;
}

PlanningHorizon make_traffic_curve(const TrafficCurveSpec& spec) {
  if (spec.num_periods <= 0 || spec.num_periods > kMaxHorizonPeriods) {
    throw InvalidInputError("make_traffic_curve: num_periods out of range");
  }
  if (!(spec.peak_multiplier > 0.0) || !(spec.trough_multiplier > 0.0) ||
      spec.trough_multiplier > spec.peak_multiplier) {
    throw InvalidInputError(
        "make_traffic_curve: need 0 < trough_multiplier <= peak_multiplier");
  }
  if (spec.antiphase_fraction < 0.0 || spec.antiphase_fraction > 1.0 ||
      (spec.antiphase_fraction > 0.0 && spec.num_groups <= 0)) {
    throw InvalidInputError(
        "make_traffic_curve: antiphase_fraction needs [0,1] and num_groups");
  }
  const int T = spec.num_periods;
  const double amplitude = spec.peak_multiplier - spec.trough_multiplier;
  // Cycle position in [0, 1]: 0 at the trough, 1 at the peak.
  const auto cycle = [&](int t) {
    const double phase = static_cast<double>(t % T) / static_cast<double>(T);
    if (spec.shape == TrafficCurveSpec::Shape::kSeasonal) {
      return 1.0 - std::abs(2.0 * phase - 1.0);
    }
    return 0.5 * (1.0 - std::cos(2.0 * 3.14159265358979323846 * phase));
  };
  const auto multiplier_at = [&](int t) {
    return spec.trough_multiplier + amplitude * cycle(t);
  };

  std::vector<bool> antiphase(static_cast<std::size_t>(
                                  spec.num_groups > 0 ? spec.num_groups : 0),
                              false);
  if (spec.antiphase_fraction > 0.0) {
    Rng rng(spec.seed);
    for (std::size_t i = 0; i < antiphase.size(); ++i) {
      antiphase[i] = rng.uniform() < spec.antiphase_fraction;
    }
  }

  PlanningHorizon horizon;
  horizon.migration_cost_per_server = spec.migration_cost_per_server;
  horizon.periods.reserve(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    DemandPeriod period;
    period.name = "t" + std::to_string(t);
    period.weight = spec.period_weight;
    period.multiplier = multiplier_at(t);
    if (spec.antiphase_fraction > 0.0) {
      period.group_multipliers.resize(
          static_cast<std::size_t>(spec.num_groups));
      const double shifted = multiplier_at(t + T / 2);
      for (std::size_t i = 0; i < period.group_multipliers.size(); ++i) {
        period.group_multipliers[i] =
            antiphase[i] ? shifted : period.multiplier;
      }
    }
    horizon.periods.push_back(std::move(period));
  }
  return horizon;
}

void add_failure_period(PlanningHorizon& horizon,
                        std::vector<int> failed_sites, double multiplier,
                        double weight) {
  DemandPeriod period;
  period.name = "fail" + std::to_string(horizon.periods.size());
  const bool all_zero_weights =
      std::all_of(horizon.periods.begin(), horizon.periods.end(),
                  [](const DemandPeriod& p) { return p.weight == 0.0; });
  period.weight =
      (!horizon.periods.empty() && all_zero_weights) ? 0.0 : weight;
  period.multiplier = multiplier;
  period.failed_sites = std::move(failed_sites);
  horizon.periods.push_back(std::move(period));
}

ConsolidationInstance make_rightsizing_estate(
    const RightsizingEstateSpec& spec) {
  if (spec.num_groups <= 0 || spec.servers_per_group <= 0 ||
      spec.site_capacities.empty() ||
      spec.site_capacities.size() != spec.site_space_costs.size()) {
    throw InvalidInputError("make_rightsizing_estate: inconsistent spec");
  }
  ConsolidationInstance instance;
  instance.name = "rightsizing-estate";
  instance.locations = {UserLocation{"users", {0.0, 0.0}}};

  for (int i = 0; i < spec.num_groups; ++i) {
    ApplicationGroup group;
    group.name = "ag" + std::to_string(i);
    group.servers = spec.servers_per_group;
    group.monthly_data_megabits = 0.0;  // isolates the space-cost tradeoff
    group.users_per_location = {1.0};
    instance.groups.push_back(std::move(group));
  }

  for (std::size_t k = 0; k < spec.site_capacities.size(); ++k) {
    DataCenterSite site;
    site.name = "site-" + std::to_string(k);
    site.position = GeoPoint{10.0 * static_cast<double>(k), 0.0};
    site.capacity_servers = spec.site_capacities[k];
    site.space_cost_per_server = StepSchedule::flat(spec.site_space_costs[k]);
    site.power_cost_per_kwh = StepSchedule::flat(0.0);
    site.labor_cost_per_admin = StepSchedule::flat(0.0);
    site.wan_cost_per_megabit = StepSchedule::flat(0.0);
    instance.sites.push_back(std::move(site));
    instance.latency_ms.push_back({5.0});
  }

  AsIsDataCenter center;
  center.name = "asis-0";
  center.position = GeoPoint{0.0, 0.0};
  center.servers = spec.num_groups * spec.servers_per_group;
  center.space_cost_per_server = 10.0;
  instance.as_is_centers.push_back(center);
  instance.as_is_placement.assign(static_cast<std::size_t>(spec.num_groups),
                                  0);
  instance.as_is_latency_ms.push_back({5.0});

  validate_instance(instance);
  return instance;
}

}  // namespace etransform
