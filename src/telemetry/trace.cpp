#include "telemetry/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace etransform::telemetry {

namespace {

std::atomic<std::uint64_t> g_next_recorder_id{1};

/// Per-thread cache of "which recorder did I last record into, and where is
/// my buffer". Keyed by a globally unique recorder id (never an address, so
/// a recorder allocated where a destroyed one lived cannot alias a stale
/// cache entry).
struct TlsSlot {
  std::uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local TlsSlot tls_slot;

/// Bounded NUL-terminated copy into a fixed record field.
template <std::size_t N>
void copy_field(char (&dst)[N], std::string_view src) {
  const std::size_t n = std::min(src.size(), N - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

void append_json_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Emits one trace event object. `ph` is the Chrome phase character.
void append_event(std::string& out, bool& first, char ph, int tid,
                  std::uint64_t ts_us, std::string_view cat,
                  std::string_view name, const std::int64_t* id,
                  const std::int64_t* arg) {
  if (!first) out += ',';
  first = false;
  out += "{\"ph\":\"";
  out += ph;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  out += std::to_string(ts_us);
  out += ",\"cat\":";
  append_json_escaped(out, cat);
  out += ",\"name\":";
  append_json_escaped(out, name);
  if (ph == 'i') out += ",\"s\":\"t\"";  // instant scope: thread
  if (id != nullptr) {
    out += ",\"id\":";
    out += std::to_string(*id);
  }
  if (arg != nullptr && *arg != 0) {
    out += ",\"args\":{\"value\":";
    out += std::to_string(*arg);
    out += '}';
  }
  out += '}';
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity_per_thread)
    : recorder_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(std::max<std::size_t>(capacity_per_thread, 16)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

std::uint64_t TraceRecorder::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::ThreadBuffer* TraceRecorder::current_buffer() {
  if (tls_slot.recorder_id == recorder_id_) {
    return static_cast<ThreadBuffer*>(tls_slot.buffer);
  }
  // Slow path: first record from this thread (or the thread last recorded
  // into a different recorder). Find or create this thread's buffer.
  const std::lock_guard<std::mutex> lock(mu_);
  const std::thread::id me = std::this_thread::get_id();
  for (const auto& buffer : buffers_) {
    if (buffer->owner == me) {
      tls_slot = {recorder_id_, buffer.get()};
      return buffer.get();
    }
  }
  auto fresh = std::make_unique<ThreadBuffer>();
  fresh->records.resize(capacity_);
  fresh->owner = me;
  fresh->tid = static_cast<int>(buffers_.size()) + 1;
  fresh->name = "thread-" + std::to_string(fresh->tid);
  ThreadBuffer* raw = fresh.get();
  buffers_.push_back(std::move(fresh));
  tls_slot = {recorder_id_, raw};
  return raw;
}

void TraceRecorder::set_current_thread_name(std::string_view name) {
  ThreadBuffer* buffer = current_buffer();
  const std::lock_guard<std::mutex> lock(mu_);
  buffer->name.assign(name);
}

void TraceRecorder::record(TraceRecord::Type type, std::string_view cat,
                           std::string_view name, std::int64_t id) {
  ThreadBuffer* buffer = current_buffer();
  const std::size_t n = buffer->count.load(std::memory_order_relaxed);
  if (n >= capacity_) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceRecord& r = buffer->records[n];
  r.ts_us = now_us();
  r.id = id;
  r.type = type;
  copy_field(r.cat, cat);
  copy_field(r.name, name);
  // Publish: a drain that acquire-loads count sees the record fully written.
  buffer->count.store(n + 1, std::memory_order_release);
}

std::size_t TraceRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->count.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t TraceRecorder::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

int TraceRecorder::thread_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(buffers_.size());
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    buffer->count.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

std::string TraceRecorder::to_chrome_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : buffers_) {
    // Track metadata so Perfetto labels the track.
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(buffer->tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_escaped(out, buffer->name);
    out += "}}";

    const std::size_t n = buffer->count.load(std::memory_order_acquire);
    // Open-span stack for balance: a begin whose end was not published yet
    // (drain mid-run) is closed synthetically; an end whose begin was
    // cleared away is skipped. The exported stream is always balanced.
    std::vector<const TraceRecord*> open;
    std::uint64_t last_ts = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const TraceRecord& r = buffer->records[k];
      last_ts = std::max(last_ts, r.ts_us);
      switch (r.type) {
        case TraceRecord::Type::kBegin:
          append_event(out, first, 'B', buffer->tid, r.ts_us, r.cat, r.name,
                       nullptr, &r.id);
          open.push_back(&r);
          break;
        case TraceRecord::Type::kEnd:
          if (open.empty()) break;  // begin lost to clear(); keep balance
          open.pop_back();
          append_event(out, first, 'E', buffer->tid, r.ts_us, r.cat, r.name,
                       nullptr, nullptr);
          break;
        case TraceRecord::Type::kInstant:
          append_event(out, first, 'i', buffer->tid, r.ts_us, r.cat, r.name,
                       nullptr, &r.id);
          break;
        case TraceRecord::Type::kAsyncBegin:
          append_event(out, first, 'b', buffer->tid, r.ts_us, r.cat, r.name,
                       &r.id, nullptr);
          break;
        case TraceRecord::Type::kAsyncInstant:
          append_event(out, first, 'n', buffer->tid, r.ts_us, r.cat, r.name,
                       &r.id, nullptr);
          break;
        case TraceRecord::Type::kAsyncEnd:
          append_event(out, first, 'e', buffer->tid, r.ts_us, r.cat, r.name,
                       &r.id, nullptr);
          break;
      }
    }
    // Close spans still open at drain time, innermost first.
    for (auto it = open.rbegin(); it != open.rend(); ++it) {
      append_event(out, first, 'E', buffer->tid, last_ts, (*it)->cat,
                   (*it)->name, nullptr, nullptr);
    }
  }
  out += "]}";
  return out;
}

}  // namespace etransform::telemetry
