#include "telemetry/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace etransform::telemetry {

namespace {

std::atomic<std::uint64_t> g_next_recorder_id{1};

/// Per-thread cache of "which recorder did I last record into, and where is
/// my buffer". Keyed by a globally unique recorder id (never an address, so
/// a recorder allocated where a destroyed one lived cannot alias a stale
/// cache entry).
struct TlsSlot {
  std::uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local TlsSlot tls_slot;

/// Bounded NUL-terminated copy into a fixed record field.
template <std::size_t N>
void copy_field(char (&dst)[N], std::string_view src) {
  const std::size_t n = std::min(src.size(), N - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

void append_json_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// One event staged for emission. cat/name view into the (drain-stable)
/// record fields; synthetic closes view into the open record they close.
struct StagedEvent {
  std::uint64_t ts_us = 0;
  std::uint64_t trace_id = 0;
  std::int64_t id = 0;
  int tid = 0;
  char ph = 'i';
  bool has_id = false;
  bool has_arg = false;
  std::string_view cat;
  std::string_view name;
};

/// Emits one trace event object. `ph` is the Chrome phase character.
void append_event(std::string& out, bool& first, const StagedEvent& e) {
  if (!first) out += ',';
  first = false;
  out += "{\"ph\":\"";
  out += e.ph;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(e.tid);
  out += ",\"ts\":";
  out += std::to_string(e.ts_us);
  out += ",\"cat\":";
  append_json_escaped(out, e.cat);
  out += ",\"name\":";
  append_json_escaped(out, e.name);
  if (e.ph == 'i') out += ",\"s\":\"t\"";  // instant scope: thread
  if (e.has_id) {
    out += ",\"id\":";
    out += std::to_string(e.id);
  }
  const bool value_arg = e.has_arg && e.id != 0;
  if (value_arg || e.trace_id != 0) {
    out += ",\"args\":{";
    if (value_arg) {
      out += "\"value\":";
      out += std::to_string(e.id);
      if (e.trace_id != 0) out += ',';
    }
    if (e.trace_id != 0) {
      out += "\"trace_id\":";
      out += std::to_string(e.trace_id);
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity_per_thread)
    : recorder_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(std::max<std::size_t>(capacity_per_thread, 16)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

std::uint64_t TraceRecorder::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::ThreadBuffer* TraceRecorder::current_buffer() {
  if (tls_slot.recorder_id == recorder_id_) {
    return static_cast<ThreadBuffer*>(tls_slot.buffer);
  }
  // Slow path: first record from this thread (or the thread last recorded
  // into a different recorder). Find or create this thread's buffer.
  const std::lock_guard<std::mutex> lock(mu_);
  const std::thread::id me = std::this_thread::get_id();
  for (const auto& buffer : buffers_) {
    if (buffer->owner == me) {
      tls_slot = {recorder_id_, buffer.get()};
      return buffer.get();
    }
  }
  // Adopt a released ring before growing a new one, so churning short-lived
  // threads (one per daemon connection) recycle a bounded set of buffers.
  for (const auto& buffer : buffers_) {
    if (buffer->owner == std::thread::id{}) {
      buffer->owner = me;
      buffer->bound_trace_id = 0;
      tls_slot = {recorder_id_, buffer.get()};
      return buffer.get();
    }
  }
  auto fresh = std::make_unique<ThreadBuffer>();
  fresh->records.resize(capacity_);
  fresh->owner = me;
  fresh->tid = static_cast<int>(buffers_.size()) + 1;
  fresh->name = "thread-" + std::to_string(fresh->tid);
  ThreadBuffer* raw = fresh.get();
  buffers_.push_back(std::move(fresh));
  tls_slot = {recorder_id_, raw};
  return raw;
}

void TraceRecorder::set_current_thread_name(std::string_view name) {
  ThreadBuffer* buffer = current_buffer();
  const std::lock_guard<std::mutex> lock(mu_);
  buffer->name.assign(name);
}

void TraceRecorder::bind_current_thread_trace(std::uint64_t trace_id) {
  current_buffer()->bound_trace_id = trace_id;
}

std::uint64_t TraceRecorder::current_thread_trace() {
  return current_buffer()->bound_trace_id;
}

void TraceRecorder::release_current_thread() {
  // The TLS cache must be dropped first: a record after release would
  // otherwise keep writing into a ring another thread may adopt.
  if (tls_slot.recorder_id == recorder_id_) tls_slot = {};
  const std::lock_guard<std::mutex> lock(mu_);
  const std::thread::id me = std::this_thread::get_id();
  for (const auto& buffer : buffers_) {
    if (buffer->owner == me) {
      buffer->owner = std::thread::id{};
      buffer->bound_trace_id = 0;
      return;
    }
  }
}

void TraceRecorder::record(TraceRecord::Type type, std::string_view cat,
                           std::string_view name, std::int64_t id) {
  ThreadBuffer* buffer = current_buffer();
  const std::size_t n = buffer->count.load(std::memory_order_relaxed);
  if (n >= capacity_) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceRecord& r = buffer->records[n];
  r.ts_us = now_us();
  r.id = id;
  r.trace_id = buffer->bound_trace_id;
  r.type = type;
  copy_field(r.cat, cat);
  copy_field(r.name, name);
  // Publish: a drain that acquire-loads count sees the record fully written.
  buffer->count.store(n + 1, std::memory_order_release);
}

std::size_t TraceRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->count.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t TraceRecorder::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

int TraceRecorder::thread_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(buffers_.size());
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    buffer->count.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

std::string TraceRecorder::to_chrome_json() const {
  return drain_json(/*filtered=*/false, 0, static_cast<std::size_t>(-1));
}

std::string TraceRecorder::to_chrome_json_for_trace(
    std::uint64_t trace_id, std::size_t max_events_per_thread) const {
  return drain_json(/*filtered=*/true, trace_id, max_events_per_thread);
}

std::string TraceRecorder::drain_json(bool filtered, std::uint64_t trace_id,
                                      std::size_t max_events_per_thread) const {
  const std::lock_guard<std::mutex> lock(mu_);
  // Stage per buffer, then merge. Staging (rather than emitting buffer by
  // buffer) exists for the merge step: concurrent jobs drain into *one*
  // file, and a per-buffer emission order interleaves their timestamps
  // arbitrarily — including synthetic closes landing before events that
  // precede them in wall time. The merge sorts by timestamp with a stable
  // sort, so each thread's own record order (its B/E nesting) is untouched:
  // a thread's records are staged in publication order and carry
  // non-decreasing timestamps.
  std::vector<StagedEvent> staged;
  std::vector<std::size_t> kept;  // scratch: indices of records to export
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : buffers_) {
    const std::size_t n = buffer->count.load(std::memory_order_acquire);
    kept.clear();
    for (std::size_t k = 0; k < n; ++k) {
      if (!filtered || buffer->records[k].trace_id == trace_id) {
        kept.push_back(k);
      }
    }
    if (filtered && kept.empty()) continue;  // thread never touched this job
    if (kept.size() > max_events_per_thread) {
      // Flight-recorder tail: most recent records win. The balance walk
      // below skips ends whose begins fell off the front, exactly as it
      // skips begins lost to clear().
      kept.erase(kept.begin(),
                 kept.end() - static_cast<std::ptrdiff_t>(max_events_per_thread));
    }

    // Track metadata so Perfetto labels the track.
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(buffer->tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_escaped(out, buffer->name);
    out += "}}";

    // Open-span stack for balance: a begin whose end was not published yet
    // (drain mid-run) is closed synthetically; an end whose begin was
    // cleared or truncated away is skipped. The export is always balanced.
    std::vector<const TraceRecord*> open;
    std::uint64_t last_ts = 0;
    for (const std::size_t k : kept) {
      const TraceRecord& r = buffer->records[k];
      last_ts = std::max(last_ts, r.ts_us);
      StagedEvent e;
      e.ts_us = r.ts_us;
      e.trace_id = r.trace_id;
      e.id = r.id;
      e.tid = buffer->tid;
      e.cat = r.cat;
      e.name = r.name;
      switch (r.type) {
        case TraceRecord::Type::kBegin:
          e.ph = 'B';
          e.has_arg = true;
          open.push_back(&r);
          break;
        case TraceRecord::Type::kEnd:
          if (open.empty()) continue;  // begin lost; keep balance
          open.pop_back();
          e.ph = 'E';
          break;
        case TraceRecord::Type::kInstant:
          e.ph = 'i';
          e.has_arg = true;
          break;
        case TraceRecord::Type::kAsyncBegin:
          e.ph = 'b';
          e.has_id = true;
          break;
        case TraceRecord::Type::kAsyncInstant:
          e.ph = 'n';
          e.has_id = true;
          break;
        case TraceRecord::Type::kAsyncEnd:
          e.ph = 'e';
          e.has_id = true;
          break;
      }
      staged.push_back(e);
    }
    // Close spans still open at drain time, innermost first, at the
    // buffer's last timestamp (== the max staged ts for this tid, so the
    // stable merge keeps them after every real event of the thread).
    for (auto it = open.rbegin(); it != open.rend(); ++it) {
      StagedEvent e;
      e.ts_us = last_ts;
      e.trace_id = (*it)->trace_id;
      e.tid = buffer->tid;
      e.ph = 'E';
      e.cat = (*it)->cat;
      e.name = (*it)->name;
      staged.push_back(e);
    }
  }
  std::stable_sort(staged.begin(), staged.end(),
                   [](const StagedEvent& a, const StagedEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  for (const StagedEvent& e : staged) append_event(out, first, e);
  out += "]}";
  return out;
}

}  // namespace etransform::telemetry
