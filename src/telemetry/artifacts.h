// Run-artifact writer: one directory per run holding the exported
// observability files —
//
//   trace.json    Chrome Trace Event Format (open in Perfetto)
//   metrics.prom  Prometheus text exposition (scrape or `promtool check`)
//   stats.json    the hierarchical SolveStats tree (caller-rendered JSON)
//
// Deliberately decoupled from the solver stack: the stats payload arrives as
// an opaque JSON string, so this layer depends only on the recorder and
// registry it drains.
#pragma once

#include <string>
#include <string_view>

namespace etransform::telemetry {

class TraceRecorder;
class MetricsRegistry;

/// Paths actually written (empty when the corresponding input was absent).
struct ArtifactPaths {
  std::string trace_json;
  std::string metrics_prom;
  std::string stats_json;
};

/// Writes `content` to `path`, creating parent directories. Returns false and
/// fills `*error` (if given) on failure.
bool write_text_file(const std::string& path, std::string_view content,
                     std::string* error = nullptr);

/// Creates `dir` and writes every artifact that has a source: trace.json
/// when `trace` is non-null, metrics.prom when `metrics` is non-null, and
/// stats.json when `stats_json` is non-empty. Returns false on the first
/// failure (earlier files may already be on disk).
bool write_run_artifacts(const std::string& dir, const TraceRecorder* trace,
                         const MetricsRegistry* metrics,
                         std::string_view stats_json,
                         ArtifactPaths* paths = nullptr,
                         std::string* error = nullptr);

}  // namespace etransform::telemetry
