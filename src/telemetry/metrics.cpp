#include "telemetry/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace etransform::telemetry {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  const auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name.front())) return false;
  for (const char c : name.substr(1)) {
    if (!tail(c)) return false;
  }
  return true;
}

void append_number(std::string& out, double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.10g", v);
  out += buffer;
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    case 2: return "histogram";
  }
  return "?";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

double Histogram::quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = counts_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    const double reached = static_cast<double>(cumulative + in_bucket);
    if (reached >= target) {
      if (i == bounds_.size()) {
        // +Inf bucket: no upper edge to interpolate toward.
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double hi = bounds_[i];
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double into =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, into));
    }
    cumulative += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> MetricsRegistry::log_buckets(double lo, double hi,
                                                 double factor) {
  std::vector<double> bounds;
  if (lo <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("log_buckets: need lo > 0 and factor > 1");
  }
  for (double b = lo; b < hi * factor; b *= factor) {
    bounds.push_back(b);
    if (bounds.size() >= 64) break;  // runaway-factor backstop
  }
  return bounds;
}

std::vector<double> MetricsRegistry::default_latency_ms_buckets() {
  // 0.25ms .. ~2min in x2 steps: 20 buckets covering sub-ms LP solves
  // through multi-second MILPs and minute-scale sweeps.
  return log_buckets(0.25, 120000.0, 2.0);
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, std::string_view help, Kind kind,
    std::vector<double>* bounds) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("invalid metric name '" + std::string(name) +
                                "'");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name == name) {
      if (entry->kind != kind) {
        throw std::invalid_argument(
            "metric '" + std::string(name) + "' already registered as " +
            kind_name(static_cast<int>(entry->kind)) + ", requested " +
            kind_name(static_cast<int>(kind)));
      }
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name.assign(name);
  entry->help.assign(help);
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram: {
      std::vector<double> b =
          bounds != nullptr && !bounds->empty() ? std::move(*bounds)
                                                : default_latency_ms_buckets();
      entry->histogram.reset(new Histogram(std::move(b)));
      break;
    }
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  return *find_or_create(name, help, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  return *find_or_create(name, help, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      std::vector<double> bounds) {
  return *find_or_create(name, help, Kind::kHistogram, &bounds).histogram;
}

std::string MetricsRegistry::render_prometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& entry : entries_) {
    if (!entry->help.empty()) {
      out += "# HELP " + entry->name + " " + entry->help + "\n";
    }
    out += "# TYPE " + entry->name + " " +
           kind_name(static_cast<int>(entry->kind)) + "\n";
    switch (entry->kind) {
      case Kind::kCounter:
        out += entry->name + " ";
        append_number(out, entry->counter->value());
        out += '\n';
        break;
      case Kind::kGauge:
        out += entry->name + " ";
        append_number(out, entry->gauge->value());
        out += '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_count(i);
          out += entry->name + "_bucket{le=\"";
          append_number(out, h.bounds()[i]);
          out += "\"} " + std::to_string(cumulative) + "\n";
        }
        cumulative += h.bucket_count(h.bounds().size());
        out += entry->name + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative) + "\n";
        out += entry->name + "_sum ";
        append_number(out, h.sum());
        out += '\n';
        out += entry->name + "_count " + std::to_string(cumulative) + "\n";
        // Pre-computed latency summaries: dashboards and smoke checks read
        // p50/p95/p99 directly instead of re-deriving histogram_quantile
        // from the bucket lines. Exposed as gauges (a quantile can fall).
        static constexpr struct {
          const char* suffix;
          double q;
        } kQuantiles[] = {{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}};
        for (const auto& [suffix, q] : kQuantiles) {
          out += "# TYPE " + entry->name + suffix + " gauge\n";
          out += entry->name + suffix + " ";
          append_number(out, h.quantile(q));
          out += '\n';
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace etransform::telemetry
