#include "telemetry/artifacts.h"

#include <filesystem>
#include <fstream>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace etransform::telemetry {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool write_text_file(const std::string& path, std::string_view content,
                     std::string* error) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      set_error(error, "cannot create '" + p.parent_path().string() +
                           "': " + ec.message());
      return false;
    }
  }
  std::ofstream out(p, std::ios::binary);
  if (!out) {
    set_error(error, "cannot write '" + path + "'");
    return false;
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.close();
  if (!out) {
    set_error(error, "short write to '" + path + "'");
    return false;
  }
  return true;
}

bool write_run_artifacts(const std::string& dir, const TraceRecorder* trace,
                         const MetricsRegistry* metrics,
                         std::string_view stats_json, ArtifactPaths* paths,
                         std::string* error) {
  const std::filesystem::path base(dir);
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  if (ec) {
    set_error(error, "cannot create '" + dir + "': " + ec.message());
    return false;
  }
  ArtifactPaths written;
  if (trace != nullptr) {
    written.trace_json = (base / "trace.json").string();
    if (!write_text_file(written.trace_json, trace->to_chrome_json(), error)) {
      return false;
    }
  }
  if (metrics != nullptr) {
    written.metrics_prom = (base / "metrics.prom").string();
    if (!write_text_file(written.metrics_prom, metrics->render_prometheus(),
                         error)) {
      return false;
    }
  }
  if (!stats_json.empty()) {
    written.stats_json = (base / "stats.json").string();
    std::string payload(stats_json);
    payload += '\n';
    if (!write_text_file(written.stats_json, payload, error)) return false;
  }
  if (paths != nullptr) *paths = written;
  return true;
}

}  // namespace etransform::telemetry
