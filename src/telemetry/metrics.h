// MetricsRegistry: named counters, gauges, and log-bucketed histograms with
// a Prometheus text-exposition dump.
//
// Instruments are registered once (mutex-guarded, by name) and then updated
// lock-free: counters and gauges are a single atomic double; a histogram
// observation is one atomic add per bucket counter plus one for the sum.
// Registration returns a stable reference — instrument storage never moves —
// so hot paths hold a pointer and pay no name lookup.
//
// The exposition format follows the Prometheus text format: `# HELP` and
// `# TYPE` comments, cumulative `_bucket{le="..."}` lines ending in
// `le="+Inf"`, and `_sum` / `_count` totals per histogram. Metric names are
// validated against [a-zA-Z_:][a-zA-Z0-9_:]* at registration.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace etransform::telemetry {

namespace detail {
/// Portable atomic += for doubles (CAS loop; fetch_add on atomic<double> is
/// C++20 but not universally lock-free yet).
inline void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonically increasing count. Negative deltas are ignored.
class Counter {
 public:
  void add(double delta) {
    if (delta > 0.0) detail::atomic_add(value_, delta);
  }
  void increment() { add(1.0); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// A value that can go up and down (queue depth, jobs in flight).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) { detail::atomic_add(value_, delta); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket bounds are upper bounds (inclusive), in
/// increasing order; an implicit +Inf bucket catches the tail.
class Histogram {
 public:
  void observe(double v) {
    detail::atomic_add(sum_, v);
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      total += counts_[i].load(std::memory_order_relaxed);
    }
    return total;
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  /// Count in bucket `i` (i == bounds().size() is the +Inf bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// Estimated `q`-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket holding the target rank — the standard Prometheus
  /// histogram_quantile estimate, so the log-spaced buckets bound the
  /// relative error by the bucket factor. Observations in the +Inf bucket
  /// clamp to the highest finite bound. 0 while the histogram is empty.
  [[nodiscard]] double quantile(double q) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds + Inf
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or registers the counter named `name`. Throws std::invalid_argument
  /// on an invalid name or if `name` is already registered as another kind.
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");

  /// Finds or registers a histogram. An empty `bounds` uses the default
  /// log-spaced latency buckets (milliseconds, 0.25ms .. ~2min).
  Histogram& histogram(std::string_view name, std::string_view help = "",
                       std::vector<double> bounds = {});

  /// Log-spaced bucket bounds: lo, lo*factor, ... up to >= hi.
  [[nodiscard]] static std::vector<double> log_buckets(double lo, double hi,
                                                       double factor = 2.0);

  /// The default latency buckets used when none are given.
  [[nodiscard]] static std::vector<double> default_latency_ms_buckets();

  /// Prometheus text exposition of every registered instrument, in
  /// registration order.
  [[nodiscard]] std::string render_prometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, std::string_view help,
                        Kind kind, std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace etransform::telemetry
