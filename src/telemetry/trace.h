// TraceRecorder: cross-thread span tracing drained into Chrome Trace Event
// Format JSON (viewable in Perfetto / chrome://tracing).
//
// Design constraints, in order:
//
//  * Disabled must be free. Every instrumentation point guards on a nullable
//    TraceRecorder*; with a null recorder a TraceSpan is a single branch and
//    three pointer stores — no allocation, no atomics (the same contract
//    SolveEvents established for callbacks).
//  * Enabled must be lock-free on the hot path. Each recording thread owns a
//    fixed-capacity ring of TraceRecords; a record is written in place and
//    then *published* with a release store of the count, so a concurrent
//    drain (acquire load) never reads a half-written record. The only mutex
//    is taken on a thread's first record (registration) and during drains.
//  * Full buffers drop, never block and never wrap. Overwriting old records
//    would tear begin/end pairing; dropping new ones keeps every published
//    record immutable (TSan-clean) and is counted in dropped().
//
// Record vocabulary (matching the Chrome trace "ph" field):
//  * begin/end        — duration events ("B"/"E"); strictly nested per
//                       thread because they are only emitted by RAII
//                       TraceSpan guards and SolveScope.
//  * instant          — point events ("i"), e.g. one presolve reduction.
//  * async begin/instant/end — cross-thread lifecycles ("b"/"n"/"e") keyed
//                       by an id, e.g. a SolveFarm job that is enqueued on
//                       the caller thread and solved on a worker.
//
// Names and categories are copied into fixed-width fields at record time
// (bounded memcpy, no allocation), so callers may pass transient strings.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace etransform::telemetry {

/// One published trace record. Fixed-size POD so a thread's ring is a flat
/// preallocated array and the hot path never allocates.
struct TraceRecord {
  enum class Type : std::uint8_t {
    kBegin,
    kEnd,
    kInstant,
    kAsyncBegin,
    kAsyncInstant,
    kAsyncEnd,
  };

  std::uint64_t ts_us = 0;  ///< Integer microseconds since the recorder epoch.
  std::int64_t id = 0;      ///< Async id, or a numeric arg for instants.
  Type type = Type::kInstant;
  char cat[15] = {};   ///< Category, NUL-terminated (truncated if longer).
  char name[40] = {};  ///< Event name, NUL-terminated (truncated if longer).
};

class TraceRecorder {
 public:
  /// `capacity_per_thread` bounds each thread's ring; records past it are
  /// dropped (and counted), never overwritten.
  explicit TraceRecorder(std::size_t capacity_per_thread = 1 << 15);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Names the calling thread's track in the exported trace ("worker-3").
  /// Registers the thread if it has not recorded yet.
  void set_current_thread_name(std::string_view name);

  // Hot-path recording (lock-free after the calling thread's first record).
  void begin(std::string_view cat, std::string_view name) {
    record(TraceRecord::Type::kBegin, cat, name, 0);
  }
  void end(std::string_view cat, std::string_view name) {
    record(TraceRecord::Type::kEnd, cat, name, 0);
  }
  void instant(std::string_view cat, std::string_view name,
               std::int64_t arg = 0) {
    record(TraceRecord::Type::kInstant, cat, name, arg);
  }
  void async_begin(std::string_view cat, std::string_view name,
                   std::int64_t id) {
    record(TraceRecord::Type::kAsyncBegin, cat, name, id);
  }
  void async_instant(std::string_view cat, std::string_view name,
                     std::int64_t id) {
    record(TraceRecord::Type::kAsyncInstant, cat, name, id);
  }
  void async_end(std::string_view cat, std::string_view name,
                 std::int64_t id) {
    record(TraceRecord::Type::kAsyncEnd, cat, name, id);
  }

  /// Microseconds since the recorder was constructed (the trace epoch).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Published records across all threads (safe while recording continues).
  [[nodiscard]] std::size_t recorded() const;

  /// Records dropped because a thread's ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Threads that have recorded at least once.
  [[nodiscard]] int thread_count() const;

  /// Resets every thread's ring to empty. NOT safe while any thread is
  /// recording — benchmark/test use only.
  void clear();

  /// Drains everything published so far into a Chrome Trace Event Format
  /// JSON document. Safe to call while other threads keep recording (their
  /// later records are simply not included). Spans still open at drain time
  /// are closed with a synthetic "E" at the thread's last timestamp, so the
  /// output always has balanced begin/end pairs.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  struct ThreadBuffer {
    std::vector<TraceRecord> records;  // preallocated to capacity
    std::atomic<std::size_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
    std::thread::id owner;
    std::string name;
    int tid = 0;
  };

  void record(TraceRecord::Type type, std::string_view cat,
              std::string_view name, std::int64_t id);
  ThreadBuffer* current_buffer();

  const std::uint64_t recorder_id_;  // globally unique, for TLS cache keying
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  // guards buffers_ growth and thread names
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII duration span. With a null recorder the constructor and destructor
/// are each a single predictable branch — safe to leave in hot loops.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* cat, const char* name)
      : recorder_(recorder), cat_(cat), name_(name) {
    if (recorder_ != nullptr) recorder_->begin(cat_, name_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (recorder_ != nullptr) recorder_->end(cat_, name_);
  }

 private:
  TraceRecorder* recorder_;
  const char* cat_;
  const char* name_;
};

}  // namespace etransform::telemetry
