// TraceRecorder: cross-thread span tracing drained into Chrome Trace Event
// Format JSON (viewable in Perfetto / chrome://tracing).
//
// Design constraints, in order:
//
//  * Disabled must be free. Every instrumentation point guards on a nullable
//    TraceRecorder*; with a null recorder a TraceSpan is a single branch and
//    three pointer stores — no allocation, no atomics (the same contract
//    SolveEvents established for callbacks).
//  * Enabled must be lock-free on the hot path. Each recording thread owns a
//    fixed-capacity ring of TraceRecords; a record is written in place and
//    then *published* with a release store of the count, so a concurrent
//    drain (acquire load) never reads a half-written record. The only mutex
//    is taken on a thread's first record (registration) and during drains.
//  * Full buffers drop, never block and never wrap. Overwriting old records
//    would tear begin/end pairing; dropping new ones keeps every published
//    record immutable (TSan-clean) and is counted in dropped().
//
// Record vocabulary (matching the Chrome trace "ph" field):
//  * begin/end        — duration events ("B"/"E"); strictly nested per
//                       thread because they are only emitted by RAII
//                       TraceSpan guards and SolveScope.
//  * instant          — point events ("i"), e.g. one presolve reduction.
//  * async begin/instant/end — cross-thread lifecycles ("b"/"n"/"e") keyed
//                       by an id, e.g. a SolveFarm job that is enqueued on
//                       the caller thread and solved on a worker.
//
// Names and categories are copied into fixed-width fields at record time
// (bounded memcpy, no allocation), so callers may pass transient strings.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace etransform::telemetry {

/// One published trace record. Fixed-size POD so a thread's ring is a flat
/// preallocated array and the hot path never allocates.
struct TraceRecord {
  enum class Type : std::uint8_t {
    kBegin,
    kEnd,
    kInstant,
    kAsyncBegin,
    kAsyncInstant,
    kAsyncEnd,
  };

  std::uint64_t ts_us = 0;  ///< Integer microseconds since the recorder epoch.
  std::int64_t id = 0;      ///< Async id, or a numeric arg for instants.
  /// Request attribution: the trace id bound to the recording thread at
  /// record time (0 = unattributed). Lets one shared recorder be drained
  /// per request (`to_chrome_json_for_trace`).
  std::uint64_t trace_id = 0;
  Type type = Type::kInstant;
  char cat[15] = {};   ///< Category, NUL-terminated (truncated if longer).
  char name[40] = {};  ///< Event name, NUL-terminated (truncated if longer).
};

class TraceRecorder {
 public:
  /// `capacity_per_thread` bounds each thread's ring; records past it are
  /// dropped (and counted), never overwritten.
  explicit TraceRecorder(std::size_t capacity_per_thread = 1 << 15);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Names the calling thread's track in the exported trace ("worker-3").
  /// Registers the thread if it has not recorded yet.
  void set_current_thread_name(std::string_view name);

  /// Binds the calling thread to `trace_id`: every subsequent record from
  /// this thread is stamped with it until rebound (0 clears). The stamp is
  /// what `to_chrome_json_for_trace` filters on, so a request that hops
  /// threads (HTTP handler -> farm worker -> B&B pool workers) stays
  /// reconstructible as one trace. Prefer the RAII TraceBindScope.
  void bind_current_thread_trace(std::uint64_t trace_id);

  /// The calling thread's current binding (0 when unbound).
  [[nodiscard]] std::uint64_t current_thread_trace();

  /// Detaches the calling thread from its ring so a future thread can adopt
  /// it (its published records stay in the drain). Short-lived threads —
  /// the daemon's per-connection handlers — must call this before exiting:
  /// without it every connection would pin a fresh capacity-sized ring for
  /// the recorder's lifetime. Clears the thread's trace binding.
  void release_current_thread();

  // Hot-path recording (lock-free after the calling thread's first record).
  void begin(std::string_view cat, std::string_view name) {
    record(TraceRecord::Type::kBegin, cat, name, 0);
  }
  void end(std::string_view cat, std::string_view name) {
    record(TraceRecord::Type::kEnd, cat, name, 0);
  }
  void instant(std::string_view cat, std::string_view name,
               std::int64_t arg = 0) {
    record(TraceRecord::Type::kInstant, cat, name, arg);
  }
  void async_begin(std::string_view cat, std::string_view name,
                   std::int64_t id) {
    record(TraceRecord::Type::kAsyncBegin, cat, name, id);
  }
  void async_instant(std::string_view cat, std::string_view name,
                     std::int64_t id) {
    record(TraceRecord::Type::kAsyncInstant, cat, name, id);
  }
  void async_end(std::string_view cat, std::string_view name,
                 std::int64_t id) {
    record(TraceRecord::Type::kAsyncEnd, cat, name, id);
  }

  /// Microseconds since the recorder was constructed (the trace epoch).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Published records across all threads (safe while recording continues).
  [[nodiscard]] std::size_t recorded() const;

  /// Records dropped because a thread's ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Threads that have recorded at least once.
  [[nodiscard]] int thread_count() const;

  /// Resets every thread's ring to empty. NOT safe while any thread is
  /// recording — benchmark/test use only.
  void clear();

  /// Drains everything published so far into a Chrome Trace Event Format
  /// JSON document. Safe to call while other threads keep recording (their
  /// later records are simply not included). Spans still open at drain time
  /// are closed with a synthetic "E" at the thread's last timestamp, so the
  /// output always has balanced begin/end pairs. Events are merged across
  /// threads in globally non-decreasing timestamp order (stable, so each
  /// thread's own record order — and thus its B/E nesting — is preserved).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Per-request drain: only records stamped with `trace_id` are exported,
  /// each carrying `"trace_id"` in its args. `max_events_per_thread` bounds
  /// the output by keeping each thread's *most recent* matching records (a
  /// flight-recorder tail; truncation-orphaned ends are skipped, exactly
  /// like records lost to clear()), so dumping one anomalous request stays
  /// cheap even against a large shared ring.
  [[nodiscard]] std::string to_chrome_json_for_trace(
      std::uint64_t trace_id,
      std::size_t max_events_per_thread = static_cast<std::size_t>(-1)) const;

 private:
  struct ThreadBuffer {
    std::vector<TraceRecord> records;  // preallocated to capacity
    std::atomic<std::size_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
    std::thread::id owner;
    std::string name;
    int tid = 0;
    /// Stamp applied to this thread's future records. Touched only by the
    /// owner thread (bind) or under mu_ during release/adoption handover.
    std::uint64_t bound_trace_id = 0;
  };

  void record(TraceRecord::Type type, std::string_view cat,
              std::string_view name, std::int64_t id);
  ThreadBuffer* current_buffer();
  [[nodiscard]] std::string drain_json(bool filtered, std::uint64_t trace_id,
                                       std::size_t max_events_per_thread) const;

  const std::uint64_t recorder_id_;  // globally unique, for TLS cache keying
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  // guards buffers_ growth and thread names
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII duration span. With a null recorder the constructor and destructor
/// are each a single predictable branch — safe to leave in hot loops.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* cat, const char* name)
      : recorder_(recorder), cat_(cat), name_(name) {
    if (recorder_ != nullptr) recorder_->begin(cat_, name_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (recorder_ != nullptr) recorder_->end(cat_, name_);
  }

 private:
  TraceRecorder* recorder_;
  const char* cat_;
  const char* name_;
};

/// RAII trace binding: stamps every record the calling thread makes inside
/// the scope with `trace_id`, restoring the previous binding on exit (so a
/// pool worker that interleaves jobs re-binds per task, and nested scopes —
/// a sub-solve inside a job — behave like a stack). Null recorder: free.
class TraceBindScope {
 public:
  TraceBindScope(TraceRecorder* recorder, std::uint64_t trace_id)
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      saved_ = recorder_->current_thread_trace();
      recorder_->bind_current_thread_trace(trace_id);
    }
  }

  TraceBindScope(const TraceBindScope&) = delete;
  TraceBindScope& operator=(const TraceBindScope&) = delete;

  ~TraceBindScope() {
    if (recorder_ != nullptr) recorder_->bind_current_thread_trace(saved_);
  }

 private:
  TraceRecorder* recorder_;
  std::uint64_t saved_ = 0;
};

}  // namespace etransform::telemetry
