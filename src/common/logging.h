// Leveled logging to stderr.
//
// Solvers emit progress at Debug level; planners note phase transitions at
// Info. The level is a process-wide setting so benches can silence solver
// chatter without plumbing a logger through every call.
#pragma once

#include <sstream>
#include <string>

namespace etransform {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that is actually emitted.
void set_log_level(LogLevel level);

/// Current minimum level.
[[nodiscard]] LogLevel log_level();

/// Emits one line to stderr if `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Builds the message lazily; destructor emits.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define ET_LOG(level_enum)                                       \
  if (::etransform::log_level() <= ::etransform::LogLevel::level_enum) \
  ::etransform::detail::LogLine(::etransform::LogLevel::level_enum)

}  // namespace etransform
