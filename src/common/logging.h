// Leveled logging to stderr, safe for concurrent solves.
//
// Solvers emit progress at Debug level; planners note phase transitions at
// Info. The level is a process-wide setting so benches can silence solver
// chatter without plumbing a logger through every call.
//
// Concurrency: emission is serialized by an internal mutex, so lines from
// concurrent SolveFarm jobs never interleave mid-line. Each thread may carry
// a tag (set_log_thread_tag, or scoped via LogTagScope) that is printed on
// every line it emits — SolveFarm tags worker threads with the running job
// id, so a multiplexed log remains attributable. A process-wide sink can
// replace stderr (tests capture lines through it).
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace etransform {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that is actually emitted.
void set_log_level(LogLevel level);

/// Current minimum level.
[[nodiscard]] LogLevel log_level();

/// Output shape: kText emits `[LEVEL] [tag] message`; kJson emits one JSON
/// object per line — {"ts_ms":…,"level":"…","tag":"…","msg":"…"} — so a
/// daemon's multiplexed log is machine-parseable and each line's `tag`
/// (request/job id) joins it back to its trace. Process-wide, like the
/// level; the sink receives the formatted line either way.
enum class LogFormat { kText = 0, kJson = 1 };
void set_log_format(LogFormat format);
[[nodiscard]] LogFormat log_format();

/// Tags every line emitted by the *calling thread* with `[tag]` (empty
/// clears). SolveFarm sets this to the job id for the duration of a job.
void set_log_thread_tag(std::string tag);

/// The calling thread's current tag (empty when untagged).
[[nodiscard]] const std::string& log_thread_tag();

/// RAII thread tag: sets on construction, restores the previous tag on
/// destruction (tags nest, e.g. a job that runs a sub-solve).
class LogTagScope {
 public:
  explicit LogTagScope(std::string tag);
  ~LogTagScope();
  LogTagScope(const LogTagScope&) = delete;
  LogTagScope& operator=(const LogTagScope&) = delete;

 private:
  std::string saved_;
};

/// Redirects emission away from stderr (nullptr restores stderr). The sink
/// is invoked under the logging mutex — one call at a time — with the fully
/// formatted line (level name and thread tag already applied). Swap sinks
/// only while no other thread is logging.
using LogSink = std::function<void(LogLevel, const std::string& line)>;
void set_log_sink(LogSink sink);

/// Emits one line if `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Builds the message lazily; destructor emits.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define ET_LOG(level_enum)                                       \
  if (::etransform::log_level() <= ::etransform::LogLevel::level_enum) \
  ::etransform::detail::LogLine(::etransform::LogLevel::level_enum)

}  // namespace etransform
