#include "common/solve_context.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "telemetry/trace.h"

namespace etransform {

namespace {

/// JSON has no NaN/inf; emit null for non-finite samples (absent incumbent).
void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", v);
  out += buffer;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_stats_json(std::string& out, const SolveStats& stats) {
  out += "{\"name\":";
  append_json_string(out, stats.name);
  out += ",\"wall_ms\":";
  append_json_number(out, stats.wall_ms);
  out += ",\"metrics\":{";
  for (std::size_t k = 0; k < stats.metrics.size(); ++k) {
    if (k > 0) out += ',';
    append_json_string(out, stats.metrics[k].first);
    out += ':';
    append_json_number(out, stats.metrics[k].second);
  }
  out += '}';
  if (!stats.trace.empty()) {
    out += ",\"trace\":[";
    for (std::size_t k = 0; k < stats.trace.size(); ++k) {
      if (k > 0) out += ',';
      const TracePoint& p = stats.trace[k];
      out += "{\"time_ms\":";
      append_json_number(out, p.time_ms);
      out += ",\"node\":";
      append_json_number(out, static_cast<double>(p.node));
      out += ",\"incumbent\":";
      append_json_number(out, p.incumbent);
      out += ",\"bound\":";
      append_json_number(out, p.bound);
      out += '}';
    }
    out += ']';
  }
  if (!stats.children.empty()) {
    out += ",\"children\":[";
    for (std::size_t k = 0; k < stats.children.size(); ++k) {
      if (k > 0) out += ',';
      append_stats_json(out, stats.children[k]);
    }
    out += ']';
  }
  out += '}';
}

void append_render(std::ostringstream& out, const SolveStats& stats,
                   int depth) {
  for (int k = 0; k < depth; ++k) out << "  ";
  out << stats.name << ": " << std::fixed;
  out.precision(1);
  out << stats.wall_ms << " ms";
  out.unsetf(std::ios_base::floatfield);
  out.precision(6);
  for (const auto& [key, value] : stats.metrics) {
    out << ", " << key << "=" << value;
  }
  if (!stats.trace.empty()) {
    out << ", trace=" << stats.trace.size() << " samples";
  }
  out << "\n";
  for (const SolveStats& c : stats.children) {
    append_render(out, c, depth + 1);
  }
}

}  // namespace

SolveStats& SolveStats::child(std::string_view child_name) {
  for (SolveStats& c : children) {
    if (c.name == child_name) return c;
  }
  SolveStats fresh;
  fresh.name = std::string(child_name);
  children.push_back(std::move(fresh));
  return children.back();
}

const SolveStats* SolveStats::find(std::string_view path) const {
  const SolveStats* node = this;
  while (node != nullptr && !path.empty()) {
    const std::size_t dot = path.find('.');
    const bool had_dot = dot != std::string_view::npos;
    const std::string_view segment = had_dot ? path.substr(0, dot) : path;
    path = had_dot ? path.substr(dot + 1) : std::string_view{};
    // Malformed paths ("", ".", "a..b", "a.", ".a") have an empty segment
    // somewhere; a child can never be addressed as "", so resolve to
    // not-found instead of matching by accident (a trailing dot used to
    // return the node before it).
    if (segment.empty() || (had_dot && path.empty())) return nullptr;
    const SolveStats* next = nullptr;
    for (const SolveStats& c : node->children) {
      if (c.name == segment) {
        next = &c;
        break;
      }
    }
    node = next;
  }
  return node == this ? nullptr : node;
}

void SolveStats::add(std::string_view key, double delta) {
  for (auto& [name_, value] : metrics) {
    if (name_ == key) {
      value += delta;
      return;
    }
  }
  metrics.emplace_back(std::string(key), delta);
}

double SolveStats::metric(std::string_view key) const {
  for (const auto& [name_, value] : metrics) {
    if (name_ == key) return value;
  }
  return 0.0;
}

double SolveStats::deep_metric(std::string_view key) const {
  double total = metric(key);
  for (const SolveStats& c : children) total += c.deep_metric(key);
  return total;
}

void SolveStats::merge_from(const SolveStats& other) {
  wall_ms += other.wall_ms;
  for (const auto& [key, value] : other.metrics) add(key, value);
  trace.insert(trace.end(), other.trace.begin(), other.trace.end());
  for (const SolveStats& c : other.children) child(c.name).merge_from(c);
}

std::string SolveStats::to_json() const {
  std::string out;
  append_stats_json(out, *this);
  return out;
}

std::string SolveStats::render() const {
  std::ostringstream out;
  append_render(out, *this, 0);
  return out.str();
}

SolveScope::SolveScope(SolveContext& ctx, std::string_view name)
    : ctx_(ctx),
      node_(&ctx.current_->child(name)),
      parent_(ctx.current_),
      prev_open_(ctx.open_scope_) {
  ctx_.current_ = node_;
  ctx_.open_scope_ = this;
  if (telemetry::TraceRecorder* rec = ctx_.trace_) {
    rec->begin("solve", node_->name);
  }
}

void SolveScope::close() {
  if (closed_) return;
  // Flush still-open child scopes innermost-out so their wall time lands in
  // the tree before this node records its own.
  while (ctx_.open_scope_ != nullptr && ctx_.open_scope_ != this) {
    ctx_.open_scope_->close();
  }
  closed_ = true;
  node_->wall_ms += stopwatch_.elapsed_ms();
  ctx_.current_ = parent_;
  ctx_.open_scope_ = prev_open_;
  if (telemetry::TraceRecorder* rec = ctx_.trace_) {
    rec->end("solve", node_->name);
  }
}

}  // namespace etransform
