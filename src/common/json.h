// Strict JSON parser and writer shared by the server protocol layer and the
// tests (started life as a test-only parser, promoted here when etransformd
// needed a real request parser).
//
// The parser builds one DOM (`Value`) per document with no error recovery
// and no streaming: it rejects trailing garbage, unterminated strings, bad
// escapes, raw control characters, malformed numbers, and nesting deeper
// than 256 levels (recursion is per bracket, so the depth cap is what keeps
// a hostile body from overflowing the stack) — exactly the strictness the
// daemon wants at its trust boundary and the escaping tests assert on. The writer (`Value::dump`, `escape`) emits the same dialect the
// rest of the library hand-writes (SolveStats::to_json,
// TraceRecorder::to_chrome_json): `\u00XX` for control characters, `%.17g`
// round-trippable numbers, `null` for non-finite doubles (JSON has no NaN).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace etransform::json {

/// One JSON value. Plain aggregate on purpose: cheap to build in tests, and
/// the server assembles responses by mutating these in place.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;  // insertion order kept

  // -- construction helpers (writer side) ----------------------------------
  [[nodiscard]] static Value null();
  [[nodiscard]] static Value boolean(bool v);
  [[nodiscard]] static Value number(double v);
  [[nodiscard]] static Value string(std::string v);
  [[nodiscard]] static Value array();
  [[nodiscard]] static Value object();

  /// Appends (or replaces, if `key` exists) an object member. The value must
  /// be an object. Returns *this for chaining.
  Value& set(std::string_view key, Value v);

  /// Appends to an array value. Returns *this for chaining.
  Value& push(Value v);

  // -- inspection helpers (parser side) -------------------------------------
  /// Object member by key, or nullptr (also nullptr on non-objects).
  [[nodiscard]] const Value* get(const std::string& key) const;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Serializes the value (compact, stable member order = insertion order).
  [[nodiscard]] std::string dump() const;
  void dump_to(std::string& out) const;
};

/// Parses `text` as one JSON document (no trailing garbage). On failure
/// returns false and describes the problem in `*error` (when given).
[[nodiscard]] bool parse(const std::string& text, Value& out,
                         std::string* error = nullptr);

/// Appends the quoted, escaped form of `text` ("..." included) to `out`.
void append_escaped(std::string& out, std::string_view text);

/// The quoted, escaped form of `text`.
[[nodiscard]] std::string escape(std::string_view text);

/// Appends a JSON number: `%.17g` (round-trippable) for finite values,
/// `null` for NaN/Inf.
void append_number(std::string& out, double v);

}  // namespace etransform::json
