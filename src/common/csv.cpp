#include "common/csv.h"

namespace etransform {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << csv_escape(cells[i]);
  }
  *out_ << '\n';
}

}  // namespace etransform
