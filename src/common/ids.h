// Strongly typed index wrappers.
//
// The domain model indexes application groups, data-center sites, and user
// locations by position in their owning vectors. Raw size_t indices are easy
// to transpose, so each entity gets its own StrongId instantiation; mixing
// them is a compile error.
#pragma once

#include <compare>
#include <cstddef>
#include <functional>

namespace etransform {

/// A type-safe wrapper around a vector index. `Tag` is an empty struct that
/// distinguishes otherwise-identical id types.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::size_t value) : value_(value) {}

  /// The underlying index.
  [[nodiscard]] constexpr std::size_t value() const { return value_; }

  constexpr auto operator<=>(const StrongId&) const = default;

 private:
  std::size_t value_ = 0;
};

struct GroupTag {};
struct SiteTag {};
struct LocationTag {};

/// Index of an application group within an estate.
using GroupId = StrongId<GroupTag>;
/// Index of a target data-center site within a topology.
using SiteId = StrongId<SiteTag>;
/// Index of a user location within a topology.
using LocationId = StrongId<LocationTag>;

}  // namespace etransform

namespace std {
template <typename Tag>
struct hash<etransform::StrongId<Tag>> {
  size_t operator()(const etransform::StrongId<Tag>& id) const noexcept {
    return std::hash<std::size_t>{}(id.value());
  }
};
}  // namespace std
