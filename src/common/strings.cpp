#include "common/strings.h"

#include <cctype>

namespace etransform {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) fields.emplace_back(text.substr(start, i - start));
  }
  return fields;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (auto& c : out) c = lower(c);
  return out;
}

bool starts_with_icase(std::string_view text, std::string_view prefix) {
  if (text.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (lower(text[i]) != lower(prefix[i])) return false;
  }
  return true;
}

bool equals_icase(std::string_view a, std::string_view b) {
  return a.size() == b.size() && starts_with_icase(a, b);
}

}  // namespace etransform
