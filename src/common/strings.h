// Small string utilities shared by the LP-format parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace etransform {

/// Removes leading and trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Splits on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Splits on runs of whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view text);

/// ASCII lower-casing.
[[nodiscard]] std::string to_lower(std::string_view text);

/// True if `text` begins with `prefix` ignoring ASCII case.
[[nodiscard]] bool starts_with_icase(std::string_view text,
                                     std::string_view prefix);

/// True if the two strings are equal ignoring ASCII case.
[[nodiscard]] bool equals_icase(std::string_view a, std::string_view b);

}  // namespace etransform
