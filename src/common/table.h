// Fixed-width ASCII table rendering.
//
// Every bench binary reproduces a paper table or figure as text; this class
// keeps the output aligned and uniform. Columns are sized to fit the widest
// cell; numeric-looking cells are right-aligned.
#pragma once

#include <string>
#include <vector>

namespace etransform {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  /// Sets the header row. Column count is fixed by the header.
  explicit TextTable(std::vector<std::string> header);

  /// Appends one data row. Throws InvalidInputError if the cell count does
  /// not match the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with a separator line under the header.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (default 2 decimal places).
[[nodiscard]] std::string format_double(double value, int precision = 2);

/// Formats a percentage with sign, e.g. -43.2 -> "-43.2%".
[[nodiscard]] std::string format_percent(double value, int precision = 1);

}  // namespace etransform
