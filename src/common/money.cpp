#include "common/money.h"

#include <cmath>
#include <cstdio>

namespace etransform {

std::string format_money(Money amount) {
  const bool negative = amount < 0;
  const double magnitude = std::abs(amount);
  char raw[64];
  std::snprintf(raw, sizeof(raw), "%.2f", magnitude);
  const std::string digits(raw);
  const auto dot = digits.find('.');
  const std::string whole = digits.substr(0, dot);
  const std::string frac = digits.substr(dot);  // includes '.'
  std::string grouped;
  const std::size_t n = whole.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) grouped.push_back(',');
    grouped.push_back(whole[i]);
  }
  return (negative ? "-$" : "$") + grouped + frac;
}

std::string format_money_compact(Money amount) {
  const bool negative = amount < 0;
  double magnitude = std::abs(amount);
  const char* suffix = "";
  if (magnitude >= 1e9) {
    magnitude /= 1e9;
    suffix = "B";
  } else if (magnitude >= 1e6) {
    magnitude /= 1e6;
    suffix = "M";
  } else if (magnitude >= 1e3) {
    magnitude /= 1e3;
    suffix = "K";
  }
  char raw[64];
  std::snprintf(raw, sizeof(raw), "%s$%.2f%s", negative ? "-" : "", magnitude,
                suffix);
  return raw;
}

}  // namespace etransform
