// Typed exception hierarchy used across the eTransform libraries.
//
// Errors are reported with exceptions (per the C++ Core Guidelines): invalid
// input data, infeasible models, and parser failures are exceptional relative
// to the planner's contract, and every public entry point documents what it
// throws.
#pragma once

#include <stdexcept>
#include <string>

namespace etransform {

/// Base class of all eTransform errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Input data is malformed or internally inconsistent (e.g. an application
/// group references an unknown user location).
class InvalidInputError : public Error {
 public:
  explicit InvalidInputError(const std::string& what) : Error(what) {}
};

/// An optimization model has no feasible solution (e.g. total server demand
/// exceeds total target capacity).
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

/// An optimization model is unbounded below (indicates a modelling bug).
class UnboundedError : public Error {
 public:
  explicit UnboundedError(const std::string& what) : Error(what) {}
};

/// A solver exhausted its iteration/node/time budget before reaching the
/// requested status.
class SolverLimitError : public Error {
 public:
  explicit SolverLimitError(const std::string& what) : Error(what) {}
};

/// Failure while parsing an external file (LP format, solution file, CSV).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

}  // namespace etransform
