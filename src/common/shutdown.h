// Cooperative SIGINT/SIGTERM handling for long-running processes.
//
// The solver stack already unwinds cleanly through SolveContext cancellation
// (PR 1), so the only thing a signal needs to do is *request* that unwind.
// A raw signal handler cannot: it may only touch async-signal-safe state.
// ShutdownSignal therefore splits the work:
//
//  * the handler does one atomic increment of a process-global counter;
//  * a watcher thread polls that counter (25 ms period) and invokes the
//    registered callbacks in ordinary thread context, where mutexes,
//    condition variables, and SolveService::cancel_all() are all legal.
//
// The *second* signal restores the default disposition and re-raises, so a
// user who has lost patience with a graceful drain can still kill the
// process with a second Ctrl-C.
//
// One instance may be active at a time (enforced); construction installs the
// handlers, destruction restores the previous ones and joins the watcher.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

namespace etransform {

class ShutdownSignal {
 public:
  /// Installs SIGINT and SIGTERM handlers and starts the watcher thread.
  /// Throws InvalidInputError if another instance is already active.
  ShutdownSignal();

  /// Restores the previous handlers and joins the watcher.
  ~ShutdownSignal();

  ShutdownSignal(const ShutdownSignal&) = delete;
  ShutdownSignal& operator=(const ShutdownSignal&) = delete;

  /// Registers a callback run on the watcher thread each time a signal
  /// arrives (at most once per arrived signal, in registration order).
  /// Callbacks must be registered before the signal fires to be guaranteed
  /// delivery for it; late registrations fire on the next signal.
  void on_signal(std::function<void()> callback);

  /// True once at least one signal has arrived.
  [[nodiscard]] bool triggered() const;

  /// Number of signals observed so far.
  [[nodiscard]] int count() const;

  /// Blocks until at least `n` signals have arrived.
  void wait(int n = 1) const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace etransform
