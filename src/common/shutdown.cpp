#include "common/shutdown.h"

#include <csignal>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/error.h"

namespace etransform {

namespace {

// Async-signal-safe state: the handler touches nothing else.
std::atomic<int> g_signal_count{0};
std::atomic<bool> g_instance_active{false};

extern "C" void shutdown_signal_handler(int sig) {
  const int seen = g_signal_count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seen >= 2) {
    // Second signal: the graceful path is already draining (or stuck) —
    // restore the default disposition and re-raise so the process dies the
    // way the user asked. signal() and raise() are async-signal-safe.
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }
}

}  // namespace

struct ShutdownSignal::Impl {
  mutable std::mutex mu;
  mutable std::condition_variable cv;
  std::vector<std::function<void()>> callbacks;
  int delivered = 0;  // signals whose callbacks have run
  bool stopping = false;
  std::thread watcher;

#if defined(_POSIX_VERSION) || defined(__unix__) || defined(__APPLE__)
  struct sigaction previous_int {};
  struct sigaction previous_term {};
#endif

  void watch() {
    std::unique_lock<std::mutex> lock(mu);
    while (!stopping) {
      cv.wait_for(lock, std::chrono::milliseconds(25));
      const int seen = g_signal_count.load(std::memory_order_relaxed);
      while (delivered < seen) {
        ++delivered;
        // Copy so a callback may register further callbacks without
        // invalidating the iteration.
        const std::vector<std::function<void()>> snapshot = callbacks;
        lock.unlock();
        for (const auto& callback : snapshot) {
          if (callback) callback();
        }
        lock.lock();
        cv.notify_all();  // release wait()ers
      }
    }
  }
};

ShutdownSignal::ShutdownSignal() : impl_(new Impl) {
  bool expected = false;
  if (!g_instance_active.compare_exchange_strong(expected, true)) {
    delete impl_;
    throw InvalidInputError("ShutdownSignal: another instance is active");
  }
  g_signal_count.store(0, std::memory_order_relaxed);
  struct sigaction action {};
  action.sa_handler = shutdown_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: let blocking syscalls see EINTR
  sigaction(SIGINT, &action, &impl_->previous_int);
  sigaction(SIGTERM, &action, &impl_->previous_term);
  impl_->watcher = std::thread([this] { impl_->watch(); });
}

ShutdownSignal::~ShutdownSignal() {
  sigaction(SIGINT, &impl_->previous_int, nullptr);
  sigaction(SIGTERM, &impl_->previous_term, nullptr);
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  impl_->watcher.join();
  delete impl_;
  g_instance_active.store(false);
}

void ShutdownSignal::on_signal(std::function<void()> callback) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->callbacks.push_back(std::move(callback));
}

bool ShutdownSignal::triggered() const { return count() > 0; }

int ShutdownSignal::count() const {
  return g_signal_count.load(std::memory_order_relaxed);
}

void ShutdownSignal::wait(int n) const {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv.wait(lock, [this, n] { return impl_->delivered >= n; });
}

}  // namespace etransform
