#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace etransform {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace etransform
