#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace etransform {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

// Serializes emission (and sink swaps) so concurrent jobs never interleave
// characters of a line. The level check stays lock-free on the fast path.
std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_slot() {
  static LogSink sink;
  return sink;
}

thread_local std::string t_tag;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_thread_tag(std::string tag) { t_tag = std::move(tag); }

const std::string& log_thread_tag() { return t_tag; }

LogTagScope::LogTagScope(std::string tag) : saved_(std::move(t_tag)) {
  t_tag = std::move(tag);
}

LogTagScope::~LogTagScope() { t_tag = std::move(saved_); }

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(log_mutex());
  sink_slot() = std::move(sink);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::string line = "[";
  line += level_name(level);
  line += "]";
  if (!t_tag.empty()) {
    line += " [";
    line += t_tag;
    line += "]";
  }
  line += " ";
  line += message;
  const std::lock_guard<std::mutex> lock(log_mutex());
  if (sink_slot()) {
    sink_slot()(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace etransform
