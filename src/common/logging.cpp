#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

namespace etransform {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::atomic<LogFormat> g_format{LogFormat::kText};

// Serializes emission (and sink swaps) so concurrent jobs never interleave
// characters of a line. The level check stays lock-free on the fast path.
std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_slot() {
  static LogSink sink;
  return sink;
}

thread_local std::string t_tag;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
/// Local on purpose: logging sits below common/json in the layering.
void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_format(LogFormat format) { g_format.store(format); }

LogFormat log_format() { return g_format.load(); }

void set_log_thread_tag(std::string tag) { t_tag = std::move(tag); }

const std::string& log_thread_tag() { return t_tag; }

LogTagScope::LogTagScope(std::string tag) : saved_(std::move(t_tag)) {
  t_tag = std::move(tag);
}

LogTagScope::~LogTagScope() { t_tag = std::move(saved_); }

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(log_mutex());
  sink_slot() = std::move(sink);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::string line;
  if (g_format.load() == LogFormat::kJson) {
    const auto ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
    line = "{\"ts_ms\":";
    line += std::to_string(ts_ms);
    line += ",\"level\":\"";
    line += level_name(level);
    line += "\"";
    if (!t_tag.empty()) {
      line += ",\"tag\":";
      append_escaped(line, t_tag);
    }
    line += ",\"msg\":";
    append_escaped(line, message);
    line += "}";
  } else {
    line = "[";
    line += level_name(level);
    line += "]";
    if (!t_tag.empty()) {
      line += " [";
      line += t_tag;
      line += "]";
    }
    line += " ";
    line += message;
  }
  const std::lock_guard<std::mutex> lock(log_mutex());
  if (sink_slot()) {
    sink_slot()(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace etransform
