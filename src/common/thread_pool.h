// Work-stealing thread pool shared by the concurrent layers (SolveFarm,
// parallel sensitivity analysis).
//
// Each worker owns a deque of tasks guarded by its own mutex. submit() from
// an external thread distributes round-robin; submit() from inside a worker
// pushes to that worker's own deque (LIFO, for locality). An idle worker
// first drains its own deque from the back, then steals from the other
// workers' fronts, then sleeps on a shared condition variable. This keeps
// the common case (N independent planner solves) contention-free while
// letting uneven scenario sweeps rebalance themselves.
//
// Tasks must not throw: they run user work that is expected to capture its
// own errors (SolveFarm jobs store exceptions in the job result). A task
// that does throw terminates the process, which is preferable to silently
// losing work.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace etransform::telemetry {
class TraceRecorder;
}  // namespace etransform::telemetry

namespace etransform {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; <= 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(int num_threads = 0);

  /// Waits for every submitted task to finish, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from any thread, including from inside a
  /// running task. Throws std::logic_error after shutdown began.
  void submit(std::function<void()> task);

  /// Blocks until no task is queued or running. New submissions made while
  /// waiting extend the wait.
  void wait_idle();

  /// Number of worker threads.
  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Tasks queued but not yet started plus tasks currently running.
  [[nodiscard]] int outstanding() const;

  /// Attaches (or detaches, with nullptr) a trace recorder. While attached,
  /// every task runs inside a "pool.task" span and workers name their trace
  /// track "worker-N" on first use. `trace_id` (optional) is bound onto the
  /// worker thread for each task's duration, stamping everything the task
  /// records — per-solve pools (parallel B&B) pass their solve's id so
  /// worker-side node LPs stay attributable to the request; long-lived
  /// shared pools leave it 0 and bind per task instead (SolveFarm's
  /// run_job). The recorder must outlive the pool or be detached first.
  /// Safe to call from any thread.
  void set_trace_recorder(telemetry::TraceRecorder* recorder,
                          std::uint64_t trace_id = 0) {
    trace_id_.store(trace_id, std::memory_order_relaxed);
    trace_recorder_.store(recorder, std::memory_order_release);
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(int index);
  bool try_pop(int index, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Guards sleep/wake and the outstanding count; per-queue mutexes guard the
  // deques themselves.
  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int outstanding_ = 0;
  bool stopping_ = false;
  std::size_t next_queue_ = 0;

  std::atomic<telemetry::TraceRecorder*> trace_recorder_{nullptr};
  std::atomic<std::uint64_t> trace_id_{0};
};

/// Runs `fn(i)` for every i in [0, count) on the pool, blocking until all
/// iterations finish. Iterations are chunked to bound scheduling overhead.
/// Must not be called from inside a pool task (the caller blocks a slot).
/// With count <= 1 or a single-threaded pool the loop runs inline.
void parallel_for(ThreadPool& pool, int count,
                  const std::function<void(int)>& fn);

}  // namespace etransform
