// Monotonic timing primitives shared by the solver stack.
//
// Stopwatch measures elapsed wall time on the steady clock; Deadline is a
// point on that clock that solvers poll cooperatively (never a hard signal).
// Both are trivially copyable value types so they can be embedded in options
// structs and passed across layers without ownership questions.
#pragma once

#include <chrono>
#include <limits>

namespace etransform {

/// Elapsed wall time on the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement from now.
  void reset() { start_ = Clock::now(); }

  /// Milliseconds since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A monotonic-clock deadline. Default-constructed deadlines never expire;
/// finite ones are fixed points in time, so nesting solver layers can share
/// one deadline without re-arming bugs (unlike relative "time budget" ints).
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// Never expires (explicit spelling of the default).
  [[nodiscard]] static Deadline unlimited() { return Deadline(); }

  /// Expires `ms` milliseconds from now. Non-positive budgets expire
  /// immediately.
  [[nodiscard]] static Deadline after_ms(double ms) {
    Deadline d;
    d.finite_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  /// True when this deadline can never expire.
  [[nodiscard]] bool is_unlimited() const { return !finite_; }

  /// True once the deadline has passed.
  [[nodiscard]] bool expired() const {
    return finite_ && Clock::now() >= at_;
  }

  /// Milliseconds until expiry (negative once expired; +inf when unlimited).
  [[nodiscard]] double remaining_ms() const {
    if (!finite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

  /// Whichever of the two deadlines falls first.
  [[nodiscard]] static Deadline earliest(Deadline a, Deadline b) {
    if (a.is_unlimited()) return b;
    if (b.is_unlimited()) return a;
    return a.at_ <= b.at_ ? a : b;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool finite_ = false;
  Clock::time_point at_{};
};

}  // namespace etransform
