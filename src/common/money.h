// Money formatting helpers.
//
// Costs are modelled as double dollars-per-month throughout (the paper's
// objective is a monthly operational cost). These helpers keep human-facing
// output consistent: thousands separators and compact scientific-style
// suffixes for the 1e8..1e10 magnitudes the case studies produce.
#pragma once

#include <string>

namespace etransform {

/// Monthly cost in US dollars.
using Money = double;

/// Formats `amount` as e.g. "$1,234,567.89".
[[nodiscard]] std::string format_money(Money amount);

/// Formats `amount` compactly, e.g. "$1.23M", "$4.5B". Used in bench tables
/// where the paper's figures use 1e8/1e9/1e10 axis scales.
[[nodiscard]] std::string format_money_compact(Money amount);

}  // namespace etransform
