// Deterministic random number generation for dataset synthesis.
//
// All dataset generators take an explicit seed so that every test, bench, and
// example is reproducible run-to-run and machine-to-machine (we avoid
// std::default_random_engine, whose distribution results are not portable
// across standard libraries — distributions here are implemented by hand).
#pragma once

#include <cstdint>
#include <vector>

namespace etransform {

/// xoshiro256++ PRNG with splitmix64 seeding. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu_log, sigma_log)). Heavy-tailed sizes (server
  /// counts per application group) follow this shape in enterprise estates.
  double lognormal(double mu_log, double sigma_log);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

/// Splits `total` into `parts` positive integer shares whose relative sizes
/// follow a lognormal(mu_log, sigma_log) draw; every share is >= min_share and
/// the shares sum exactly to `total`. Used to distribute servers over
/// application groups and data centers. Throws InvalidInputError if
/// total < parts * min_share.
std::vector<int> split_total_lognormal(Rng& rng, int total, std::size_t parts,
                                       double mu_log, double sigma_log,
                                       int min_share = 1);

}  // namespace etransform
