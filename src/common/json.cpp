#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace etransform::json {

// ---------------------------------------------------------------------------
// Construction helpers

Value Value::null() { return Value{}; }

Value Value::boolean(bool v) {
  Value out;
  out.kind = Kind::kBool;
  out.b = v;
  return out;
}

Value Value::number(double v) {
  Value out;
  out.kind = Kind::kNumber;
  out.num = v;
  return out;
}

Value Value::string(std::string v) {
  Value out;
  out.kind = Kind::kString;
  out.str = std::move(v);
  return out;
}

Value Value::array() {
  Value out;
  out.kind = Kind::kArray;
  return out;
}

Value Value::object() {
  Value out;
  out.kind = Kind::kObject;
  return out;
}

Value& Value::set(std::string_view key, Value v) {
  for (auto& [k, existing] : obj) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj.emplace_back(std::string(key), std::move(v));
  return *this;
}

Value& Value::push(Value v) {
  arr.push_back(std::move(v));
  return *this;
}

const Value* Value::get(const std::string& key) const {
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Writer

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  append_escaped(out, text);
  return out;
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void Value::dump_to(std::string& out) const {
  switch (kind) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += b ? "true" : "false";
      return;
    case Kind::kNumber:
      append_number(out, num);
      return;
    case Kind::kString:
      append_escaped(out, str);
      return;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out += ',';
        arr[i].dump_to(out);
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < obj.size(); ++i) {
        if (i > 0) out += ',';
        append_escaped(out, obj[i].first);
        out += ':';
        obj[i].second.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser (same strictness as the original test-only parser it replaced)

namespace {

struct Parser {
  // parse_value recurses once per '[' or '{'; unbounded nesting would let a
  // small hostile document overflow the stack. 256 levels is far beyond any
  // document the library emits or the protocol accepts.
  static constexpr int kMaxDepth = 256;

  const char* p;
  const char* end;
  std::string* error;
  int depth = 0;

  bool fail(const std::string& message) {
    if (error != nullptr && error->empty()) *error = message;
    return false;
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool literal(const char* word, std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) return false;
    for (std::size_t i = 0; i < n; ++i) {
      if (p[i] != word[i]) return false;
    }
    p += n;
    return true;
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c < 0x20) return fail("raw control char in string");
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("truncated escape");
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end - p < 5) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = p[i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad \\u escape");
              }
            }
            // The library only emits \u00xx; decode BMP codepoints as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            p += 4;
            break;
          }
          default:
            return fail("bad escape");
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    switch (*p) {
      case 'n':
        if (!literal("null", 4)) return fail("bad literal");
        out.kind = Value::Kind::kNull;
        return true;
      case 't':
        if (!literal("true", 4)) return fail("bad literal");
        out.kind = Value::Kind::kBool;
        out.b = true;
        return true;
      case 'f':
        if (!literal("false", 5)) return fail("bad literal");
        out.kind = Value::Kind::kBool;
        out.b = false;
        return true;
      case '"':
        out.kind = Value::Kind::kString;
        return parse_string(out.str);
      case '[': {
        if (++depth > kMaxDepth) return fail("nesting too deep");
        ++p;
        out.kind = Value::Kind::kArray;
        skip_ws();
        if (p < end && *p == ']') {
          ++p;
          --depth;
          return true;
        }
        while (true) {
          Value item;
          if (!parse_value(item)) return false;
          out.arr.push_back(std::move(item));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            --depth;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        if (++depth > kMaxDepth) return fail("nesting too deep");
        ++p;
        out.kind = Value::Kind::kObject;
        skip_ws();
        if (p < end && *p == '}') {
          ++p;
          --depth;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (p >= end || *p != ':') return fail("expected ':'");
          ++p;
          Value item;
          if (!parse_value(item)) return false;
          out.obj.emplace_back(std::move(key), std::move(item));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            --depth;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default: {
        // Number.
        char* num_end = nullptr;
        const double v = std::strtod(p, &num_end);
        if (num_end == p || num_end > end) return fail("bad number");
        out.kind = Value::Kind::kNumber;
        out.num = v;
        p = num_end;
        return true;
      }
    }
  }
};

}  // namespace

bool parse(const std::string& text, Value& out, std::string* error) {
  Parser parser{text.data(), text.data() + text.size(), error};
  out = Value{};
  if (!parser.parse_value(out)) return false;
  parser.skip_ws();
  if (parser.p != parser.end) return parser.fail("trailing garbage");
  return true;
}

}  // namespace etransform::json
