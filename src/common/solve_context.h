// SolveContext: the unified observability & control layer for the solver
// stack (simplex -> presolve -> branch-and-bound -> planner).
//
// One SolveContext is threaded by reference through every solver entry
// point. It carries three concerns:
//
//  * control  — a monotonic Deadline plus a cooperative cancellation token.
//    Solvers poll should_stop() at bounded intervals (the simplex checks
//    every refactor_interval pivots, branch-and-bound before every node) and
//    unwind with kTimeLimit / kCancelled statuses, returning whatever
//    partial result they hold.
//  * events   — optional callbacks fired at structural moments of a solve
//    (simplex phase completion, presolve reductions, B&B nodes, incumbent
//    and bound updates). Unset callbacks cost one branch per event site.
//    Callbacks may call request_cancel() to stop the solve from inside.
//  * stats    — a hierarchical SolveStats tree (per-phase wall time plus
//    named counters and an incumbent/bound trace) built via SolveScope
//    RAII nodes. Layers aggregate into shared children ("simplex" under
//    "branch_and_bound"), so a 10k-node MILP produces a handful of tree
//    nodes, not 10k.
//
// A default-constructed SolveContext has no deadline, no cancellation, and
// no callbacks: the legacy signatures forward through one, so the overhead
// of the redesign on the hot path is a few predictable branches.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"

namespace etransform::telemetry {
class TraceRecorder;
class MetricsRegistry;
}  // namespace etransform::telemetry

namespace etransform {

class SolveProgress;

// ---------------------------------------------------------------------------
// Event payloads. Plain value types on purpose: common/ must not depend on
// lp/ or milp/, and payloads must stay cheap to build even when unused.

/// Fired when a simplex phase (1 = feasibility, 2 = optimality) finishes.
struct SimplexPhaseEvent {
  int phase = 0;            ///< 1 or 2.
  int pivots = 0;           ///< Pivots spent in this phase.
  double objective = 0.0;   ///< Internal phase objective at completion.
};

/// Fired for each presolve reduction as it is applied.
struct PresolveReductionEvent {
  /// Reduction rule: "fix_variable", "empty_row", or "singleton_row".
  const char* rule = "";
  int rows_removed = 0;  ///< Rows removed by this reduction.
  int vars_removed = 0;  ///< Variables substituted out by this reduction.
};

/// Fired after each branch-and-bound node is processed.
struct NodeEvent {
  long long node = 0;        ///< 1-based node counter.
  int depth = 0;             ///< Depth in the B&B tree (root = 0).
  double relaxation = 0.0;   ///< Node LP bound (model sense); NaN if LP failed.
  double best_bound = 0.0;   ///< Global dual bound (model sense).
  double incumbent = 0.0;    ///< Incumbent objective; NaN when none yet.
  int open_nodes = 0;        ///< Nodes still open after this one.
};

/// Fired when branch-and-bound finds a new incumbent.
struct IncumbentEvent {
  long long node = 0;       ///< Node at which the incumbent was found.
  double objective = 0.0;   ///< Incumbent objective (model sense).
  double time_ms = 0.0;     ///< Context wall time at the improvement.
};

/// Fired when the global dual bound improves.
struct BoundEvent {
  long long node = 0;      ///< Node count when the bound moved.
  double bound = 0.0;      ///< New global bound (model sense).
  double incumbent = 0.0;  ///< Current incumbent; NaN when none yet.
};

/// The optional callback set. Check before firing:
/// `if (ctx.events.on_node) ctx.events.on_node(e);`
struct SolveEvents {
  std::function<void(const SimplexPhaseEvent&)> on_simplex_phase;
  std::function<void(const PresolveReductionEvent&)> on_presolve_reduction;
  std::function<void(const NodeEvent&)> on_node;
  std::function<void(const IncumbentEvent&)> on_incumbent;
  std::function<void(const BoundEvent&)> on_bound_improvement;
};

// ---------------------------------------------------------------------------
// Stats tree.

/// One sample of the incumbent/bound trace kept by branch-and-bound.
struct TracePoint {
  double time_ms = 0.0;   ///< Context wall time of the sample.
  long long node = 0;     ///< Node count at the sample.
  double incumbent = 0.0; ///< Incumbent objective; NaN when none yet.
  double bound = 0.0;     ///< Global dual bound.
};

/// A node of the hierarchical solve-statistics tree: wall time, ordered
/// named counters, an optional incumbent/bound trace, and children.
/// Metrics accumulate (add() sums), so repeated scopes with the same name
/// aggregate instead of growing the tree.
struct SolveStats {
  std::string name = "solve";
  double wall_ms = 0.0;
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<TracePoint> trace;
  std::vector<SolveStats> children;

  /// Finds or creates the child named `child_name`.
  SolveStats& child(std::string_view child_name);

  /// The descendant at `path`, or nullptr. A plain name searches this node's
  /// direct children; a dotted path ("branch_and_bound.simplex") walks one
  /// level per segment.
  [[nodiscard]] const SolveStats* find(std::string_view path) const;

  /// Adds `delta` to the metric named `key` (creating it at 0 first).
  void add(std::string_view key, double delta);

  /// Current value of the metric named `key` (0 when absent).
  [[nodiscard]] double metric(std::string_view key) const;

  /// Sum of `key` over this node and all descendants.
  [[nodiscard]] double deep_metric(std::string_view key) const;

  /// Folds `other` into this node: wall time and metrics add, trace points
  /// append (capped by the caller's policy, not here), and children merge
  /// recursively by name. Used by the parallel tree search to fold each
  /// worker's private stats tree back into the solve's "branch_and_bound"
  /// subtree once the workers have joined.
  void merge_from(const SolveStats& other);

  /// Machine-readable JSON object for the subtree (stable key order).
  [[nodiscard]] std::string to_json() const;

  /// Human-readable indented tree for report output.
  [[nodiscard]] std::string render() const;
};

// ---------------------------------------------------------------------------
// The context.

class SolveScope;

class SolveContext {
 public:
  SolveContext() = default;
  explicit SolveContext(Deadline deadline) : deadline_(deadline) {}

  // The cancellation token is an atomic; the context is identity, not value.
  SolveContext(const SolveContext&) = delete;
  SolveContext& operator=(const SolveContext&) = delete;

  /// The active deadline (unlimited by default).
  [[nodiscard]] const Deadline& deadline() const { return deadline_; }
  void set_deadline(Deadline deadline) { deadline_ = deadline; }
  /// Convenience: expire `ms` milliseconds from now.
  void set_time_limit_ms(double ms) { deadline_ = Deadline::after_ms(ms); }

  /// Requests cooperative cancellation. Safe to call from any thread or
  /// from inside an event callback; solvers notice at their next poll.
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::atomic<bool>* parent =
        parent_cancel_.load(std::memory_order_relaxed);
    return parent != nullptr && parent->load(std::memory_order_relaxed);
  }

  /// Links this context's cancellation to `parent`: cancelled() also returns
  /// true once the parent context was cancelled. The parallel tree search
  /// gives each worker its own context (stats scopes are stack-like and not
  /// thread-safe) while a single request_cancel() on the solve's context
  /// still stops every worker cooperatively. `parent` must outlive this
  /// context. Safe to call concurrently with cancelled().
  void link_cancel_to(const SolveContext& parent) {
    parent_cancel_.store(&parent.cancelled_, std::memory_order_relaxed);
  }

  /// True when a solver should unwind: cancellation beats the deadline
  /// (callers asked for it explicitly).
  [[nodiscard]] bool should_stop() const {
    return cancelled() || deadline_.expired();
  }

  /// Milliseconds since the context was created.
  [[nodiscard]] double elapsed_ms() const { return stopwatch_.elapsed_ms(); }

  /// Event callbacks (all optional).
  SolveEvents events;

  /// Root of the stats tree.
  [[nodiscard]] SolveStats& stats() { return root_; }
  [[nodiscard]] const SolveStats& stats() const { return root_; }

  /// The stats node scopes currently write into (the root outside any
  /// SolveScope).
  [[nodiscard]] SolveStats& current_stats() { return *current_; }

  /// Optional trace recorder: when set, every SolveScope emits a trace span
  /// and solver instrumentation points record phase/factorization spans.
  /// The recorder must outlive the context. Null by default (one branch per
  /// instrumentation site, mirroring the unset-callback cost of events).
  [[nodiscard]] telemetry::TraceRecorder* trace() const { return trace_; }
  void set_trace(telemetry::TraceRecorder* trace) { trace_ = trace; }

  /// Optional metrics registry: when set, solvers bump process-wide counters
  /// (pivots, refactorizations) alongside the per-solve stats tree. The
  /// registry must outlive the context. Null by default.
  [[nodiscard]] telemetry::MetricsRegistry* metrics() const { return metrics_; }
  void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Request attribution: the trace id this solve runs under (0 = none).
  /// Propagated with trace()/metrics() into per-worker contexts (the
  /// link_cancel_to pattern) and bound onto worker threads so every span,
  /// event, and log line of a multiplexed daemon is per-request filterable.
  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(std::uint64_t trace_id) { trace_id_ = trace_id; }

  /// Optional live progress ring: when set, branch-and-bound publishes
  /// incumbent/bound/gap/node samples into it as the search runs (the
  /// daemon's /v1/jobs/<id>/progress endpoint snapshots it concurrently).
  /// Must outlive the context. Null by default — one branch per site.
  [[nodiscard]] SolveProgress* progress() const { return progress_; }
  void set_progress(SolveProgress* progress) { progress_ = progress; }

 private:
  friend class SolveScope;

  Deadline deadline_;
  std::atomic<bool> cancelled_{false};
  std::atomic<const std::atomic<bool>*> parent_cancel_{nullptr};
  Stopwatch stopwatch_;
  SolveStats root_;
  SolveStats* current_ = &root_;
  SolveScope* open_scope_ = nullptr;
  telemetry::TraceRecorder* trace_ = nullptr;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  std::uint64_t trace_id_ = 0;
  SolveProgress* progress_ = nullptr;
};

/// RAII stats scope: on construction finds-or-creates `name` under the
/// context's current node and makes it current; on destruction (or an
/// explicit close()) adds the elapsed wall time and restores the parent.
/// When the context has a trace recorder attached, the scope also emits a
/// matching begin/end trace span (category "solve").
///
/// Scopes must nest like stack frames. Only the innermost (current) node's
/// children may grow, so SolveStats pointers held by enclosing scopes stay
/// valid. Closing a scope while children are still open closes the children
/// first (innermost-out), so their wall time lands in the tree before the
/// parent's does.
class SolveScope {
 public:
  SolveScope(SolveContext& ctx, std::string_view name);

  SolveScope(const SolveScope&) = delete;
  SolveScope& operator=(const SolveScope&) = delete;

  ~SolveScope() { close(); }

  /// Ends the scope early (idempotent): flushes any still-open child scopes,
  /// records wall time, restores the parent.
  void close();

  /// The stats node this scope writes into.
  [[nodiscard]] SolveStats& stats() { return *node_; }

 private:
  SolveContext& ctx_;
  SolveStats* node_;
  SolveStats* parent_;
  SolveScope* prev_open_;
  Stopwatch stopwatch_;
  bool closed_ = false;
};

/// RAII deadline tightener: within the guard's lifetime the context deadline
/// is the earlier of its current deadline and `limit`; the original deadline
/// is restored on destruction. Used by branch-and-bound to honor
/// SearchOptions::time_limit_ms without the caller losing its own deadline.
class DeadlineGuard {
 public:
  DeadlineGuard(SolveContext& ctx, Deadline limit)
      : ctx_(ctx), saved_(ctx.deadline()) {
    ctx_.set_deadline(Deadline::earliest(saved_, limit));
  }

  DeadlineGuard(const DeadlineGuard&) = delete;
  DeadlineGuard& operator=(const DeadlineGuard&) = delete;

  ~DeadlineGuard() { ctx_.set_deadline(saved_); }

 private:
  SolveContext& ctx_;
  Deadline saved_;
};

}  // namespace etransform
