// Minimal CSV writer for exporting bench series (figure data) to files.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace etransform {

/// Streams rows of cells as RFC-4180-style CSV (quotes fields containing
/// commas, quotes, or newlines).
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row.
  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream* out_;
};

/// Escapes a single CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace etransform
