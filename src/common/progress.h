// SolveProgress: the live progress channel of one solve — a lock-light
// incumbent/bound/gap/node-count timeline ring that HTTP handler threads can
// snapshot while the solve is running.
//
// Concurrency contract, chosen to keep the B&B hot loop unburdened:
//
//  * One writer at a time. Branch-and-bound's publication sites are already
//    serialized (main thread in sequential/deterministic mode, the frontier
//    mutex in the asynchronous parallel mode), so publish() does no CAS and
//    takes no lock — a handful of relaxed atomic stores fenced by a per-slot
//    sequence counter.
//  * Any number of concurrent readers. snapshot() is wait-free for readers:
//    each slot is a seqlock whose sequence doubles as a write generation
//    (sample k's slot reads exactly 2 * (k / capacity + 1)), so a torn slot
//    and a slot the writer lapped after the head was read are both detected
//    and simply skipped — the timeline is a monitoring signal, not a ledger.
//  * The ring wraps. Unlike TraceRecorder's rings (where overwriting would
//    tear begin/end pairing), a progress sample is self-contained, so the
//    newest `capacity` samples are always retained and a long solve never
//    goes dark.
//
// The gap reported is the *best proven* relative gap so far — derived from
// the monotone best-incumbent/best-bound pair and clamped to be
// non-increasing — so an operator polling /progress sees a timeline that
// only tightens, never bounces.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace etransform {

/// One published progress sample. incumbent/bound are NaN while unknown;
/// gap is +infinity until both exist.
struct ProgressSample {
  double time_ms = 0.0;    ///< Solve wall time at the sample.
  long long nodes = 0;     ///< B&B nodes expanded so far.
  double incumbent = 0.0;  ///< Best objective (model sense); NaN when none.
  double bound = 0.0;      ///< Best proven bound (model sense); NaN when none.
  double gap = 0.0;        ///< Relative gap, non-increasing; +inf when open.
};

class SolveProgress {
 public:
  /// `capacity` bounds the retained timeline; older samples are overwritten.
  explicit SolveProgress(std::size_t capacity = 256);

  SolveProgress(const SolveProgress&) = delete;
  SolveProgress& operator=(const SolveProgress&) = delete;

  /// Publishes one sample. Single-writer: concurrent publish() calls are the
  /// caller's bug (B&B serializes its emission sites). `incumbent`/`bound`
  /// must be the best-so-far values in model sense; pass has_* = false while
  /// unknown.
  void publish(double time_ms, long long nodes, double incumbent,
               bool has_incumbent, double bound, bool has_bound);

  /// Samples ever published (>= retained timeline length).
  [[nodiscard]] std::uint64_t published() const {
    return head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  struct Snapshot {
    std::uint64_t published = 0;          ///< Total ever published.
    std::vector<ProgressSample> timeline; ///< Oldest to newest, torn slots skipped.
  };

  /// Consistent view of the retained timeline. Safe from any thread while
  /// the writer keeps publishing; samples overwritten mid-read are dropped.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct Slot {
    std::atomic<std::uint32_t> seq{0};  // odd while a write is in flight
    std::atomic<double> time_ms{0.0};
    std::atomic<long long> nodes{0};
    std::atomic<double> incumbent{0.0};
    std::atomic<double> bound{0.0};
    std::atomic<double> gap{0.0};
  };

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};  // total published; next slot is head % capacity
  double last_gap_;  // writer-only: enforces the non-increasing clamp
};

}  // namespace etransform
