#include "common/progress.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace etransform {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

SolveProgress::SolveProgress(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 4)),
      slots_(new Slot[capacity_]),
      last_gap_(kInf) {}

void SolveProgress::publish(double time_ms, long long nodes, double incumbent,
                            bool has_incumbent, double bound, bool has_bound) {
  double gap = kInf;
  if (has_incumbent && has_bound) {
    gap = std::abs(incumbent - bound) /
          std::max(std::abs(incumbent), 1e-9);
  }
  // Best *proven* gap so far: the inputs are monotone best-so-far values,
  // but the relative form can wiggle when the denominator moves (e.g. a
  // maximization incumbent crossing magnitudes), and the operator-facing
  // timeline must only tighten.
  gap = std::min(gap, last_gap_);
  last_gap_ = gap;

  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[h % capacity_];
  const std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);  // odd: in flight
  slot.time_ms.store(time_ms, std::memory_order_relaxed);
  slot.nodes.store(nodes, std::memory_order_relaxed);
  slot.incumbent.store(has_incumbent ? incumbent : kNaN,
                       std::memory_order_relaxed);
  slot.bound.store(has_bound ? bound : kNaN, std::memory_order_relaxed);
  slot.gap.store(gap, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);  // even: published
  head_.store(h + 1, std::memory_order_release);
}

SolveProgress::Snapshot SolveProgress::snapshot() const {
  Snapshot snap;
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  snap.published = h;
  const std::uint64_t n = std::min<std::uint64_t>(h, capacity_);
  snap.timeline.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t k = h - n; k < h; ++k) {
    const Slot& slot = slots_[k % capacity_];
    // The slot's sequence is exactly 2 * (writes so far), so while it holds
    // sample k it reads 2 * (k / capacity + 1). Matching against that exact
    // value (not just "unchanged across the field reads") also rejects slots
    // the writer already lapped *between* the head load and this read —
    // a same-seq check would accept them and splice a newer sample into the
    // middle of the timeline.
    const auto expected =
        static_cast<std::uint32_t>(2 * (k / capacity_ + 1));
    if (slot.seq.load(std::memory_order_acquire) != expected) continue;
    ProgressSample sample;
    sample.time_ms = slot.time_ms.load(std::memory_order_relaxed);
    sample.nodes = slot.nodes.load(std::memory_order_relaxed);
    sample.incumbent = slot.incumbent.load(std::memory_order_relaxed);
    sample.bound = slot.bound.load(std::memory_order_relaxed);
    sample.gap = slot.gap.load(std::memory_order_relaxed);
    // Order the field reads before the validating sequence re-read.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) == expected) {
      snap.timeline.push_back(sample);
    }
  }
  return snap;
}

}  // namespace etransform
