#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "common/error.h"

namespace etransform {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw InvalidInputError("uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  // Box-Muller; uniform() can return 0, so nudge away from log(0).
  const double u1 = std::max(uniform(), 0x1.0p-60);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu_log, double sigma_log) {
  return std::exp(normal(mu_log, sigma_log));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw InvalidInputError("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw InvalidInputError("weighted_index: weights sum to zero");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slack lands on the last bucket
}

std::vector<int> split_total_lognormal(Rng& rng, int total, std::size_t parts,
                                       double mu_log, double sigma_log,
                                       int min_share) {
  if (parts == 0) throw InvalidInputError("split_total_lognormal: zero parts");
  const std::int64_t reserved =
      static_cast<std::int64_t>(parts) * static_cast<std::int64_t>(min_share);
  if (reserved > total) {
    throw InvalidInputError(
        "split_total_lognormal: total too small for min_share");
  }
  std::vector<double> draws(parts);
  double sum = 0.0;
  for (auto& d : draws) {
    d = rng.lognormal(mu_log, sigma_log);
    sum += d;
  }
  const int distributable = total - static_cast<int>(reserved);
  std::vector<int> shares(parts, min_share);
  // Largest-remainder apportionment of the distributable units.
  std::vector<double> exact(parts);
  std::vector<std::pair<double, std::size_t>> remainders(parts);
  int assigned = 0;
  for (std::size_t i = 0; i < parts; ++i) {
    exact[i] = distributable * draws[i] / sum;
    const int whole = static_cast<int>(std::floor(exact[i]));
    shares[i] += whole;
    assigned += whole;
    remainders[i] = {exact[i] - whole, i};
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (int k = 0; k < distributable - assigned; ++k) {
    shares[remainders[static_cast<std::size_t>(k)].second] += 1;
  }
  return shares;
}

}  // namespace etransform
