#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <utility>

#include "telemetry/trace.h"

namespace etransform {

namespace {
// Which pool (if any) the current thread is a worker of, and its index.
// Lets submit() route a worker's own submissions to its own deque.
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // Publish the task and notify while holding mu_. A worker scans the queues
  // inside its wait predicate with mu_ held, so a push made outside mu_ can
  // land just after the scan but fire its notify before the worker blocks —
  // a lost wakeup that strands the task. Under mu_ the push/notify pair
  // cannot interleave with a predicate pass (lock order mu_ -> queue.mu
  // matches the predicate's try_pop).
  const std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    throw std::logic_error("ThreadPool::submit after shutdown");
  }
  const std::size_t target = tls_pool == this
                                 ? static_cast<std::size_t>(tls_worker_index)
                                 : next_queue_++ % queues_.size();
  ++outstanding_;
  {
    const std::lock_guard<std::mutex> queue_lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return outstanding_ == 0; });
}

int ThreadPool::outstanding() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

bool ThreadPool::try_pop(int index, std::function<void()>& task) {
  // Own queue first (back: newest, cache-warm) ...
  {
    auto& own = *queues_[static_cast<std::size_t>(index)];
    const std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // ... then steal from the front of the others (oldest: likely the largest
  // remaining chunk of work).
  const auto n = queues_.size();
  for (std::size_t step = 1; step < n; ++step) {
    auto& victim = *queues_[(static_cast<std::size_t>(index) + step) % n];
    const std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(int index) {
  tls_pool = this;
  tls_worker_index = index;
  telemetry::TraceRecorder* named_for = nullptr;
  for (;;) {
    std::function<void()> task;
    if (!try_pop(index, task)) {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this, index, &task] {
        if (stopping_) return true;
        // Re-check under the wake lock: a submit may have landed between the
        // failed pop and the wait.
        return try_pop(index, task);
      });
      if (!task) return;  // stopping and nothing left to run
    }
    telemetry::TraceRecorder* recorder =
        trace_recorder_.load(std::memory_order_acquire);
    if (recorder != nullptr && recorder != named_for) {
      recorder->set_current_thread_name("worker-" + std::to_string(index));
      named_for = recorder;
    }
    {
      const telemetry::TraceBindScope bind(
          recorder, trace_id_.load(std::memory_order_relaxed));
      const telemetry::TraceSpan span(recorder, "pool", "pool.task");
      task();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, int count,
                  const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (count == 1 || pool.num_threads() == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  // ~4 chunks per worker bounds both scheduling overhead and tail latency.
  const int chunks = std::min(count, pool.num_threads() * 4);
  const int chunk_size = (count + chunks - 1) / chunks;
  std::mutex mu;
  std::condition_variable done;
  int remaining = 0;
  for (int begin = 0; begin < count; begin += chunk_size) {
    const int end = std::min(count, begin + chunk_size);
    {
      const std::lock_guard<std::mutex> lock(mu);
      ++remaining;
    }
    pool.submit([&, begin, end] {
      for (int i = begin; i < end; ++i) fn(i);
      // Notify while holding the lock: the waiter owns mu/done, so the last
      // task must not touch them after the waiter can possibly return.
      const std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
}

}  // namespace etransform
