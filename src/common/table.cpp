#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace etransform {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
        c != '-' && c != '+' && c != '$' && c != ',' && c != '%' && c != 'e' &&
        c != 'E' && c != 'K' && c != 'M' && c != 'B' && c != 'x') {
      return false;
    }
  }
  return true;
}

void append_cell(std::string& out, const std::string& cell, std::size_t width) {
  const std::size_t pad = width > cell.size() ? width - cell.size() : 0;
  if (looks_numeric(cell)) {
    out.append(pad, ' ');
    out += cell;
  } else {
    out += cell;
    out.append(pad, ' ');
  }
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw InvalidInputError("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw InvalidInputError("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out += "  ";
    // Headers are left-aligned regardless of content.
    out += header_[c];
    out.append(widths[c] - header_[c].size(), ' ');
  }
  out += '\n';
  std::size_t total = 0;
  for (const auto w : widths) total += w;
  total += 2 * (widths.size() - 1);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      append_cell(out, row[c], widths[c]);
    }
    out += '\n';
  }
  return out;
}

std::string format_double(double value, int precision) {
  char raw[64];
  std::snprintf(raw, sizeof(raw), "%.*f", precision, value);
  return raw;
}

std::string format_percent(double value, int precision) {
  char raw[64];
  std::snprintf(raw, sizeof(raw), "%+.*f%%", precision, value);
  return raw;
}

}  // namespace etransform
