#include "cost/cost_model.h"

#include <cmath>

#include "common/error.h"

namespace etransform {

CostModel::CostModel(const ConsolidationInstance& instance)
    : instance_(&instance) {
  validate_instance(instance);
  const int num_groups = instance.num_groups();
  const int num_sites = instance.num_sites();
  avg_latency_.resize(static_cast<std::size_t>(num_groups) *
                      static_cast<std::size_t>(num_sites));
  wan_cost_.resize(avg_latency_.size());
  for (int i = 0; i < num_groups; ++i) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    const double total_users = group.total_users();
    for (int j = 0; j < num_sites; ++j) {
      const auto& latency_row =
          instance.latency_ms[static_cast<std::size_t>(j)];
      avg_latency_[index(i, j)] =
          weighted_average_latency(latency_row, group.users_per_location);
      if (instance.use_vpn_links) {
        // Dedicated links: links to location r carry the user-proportional
        // share of the group's traffic, each link has capacity gamma.
        Money total = 0.0;
        if (total_users > 0.0 && group.monthly_data_megabits > 0.0) {
          for (int r = 0; r < instance.num_locations(); ++r) {
            const double share =
                group.users_per_location[static_cast<std::size_t>(r)] /
                total_users;
            const double links_needed =
                share * group.monthly_data_megabits /
                instance.params.vpn_link_capacity_megabits;
            total += links_needed *
                     instance.vpn_link_monthly_cost[static_cast<std::size_t>(
                         j)][static_cast<std::size_t>(r)];
          }
        }
        wan_cost_[index(i, j)] = total;
      } else {
        const auto& site = instance.sites[static_cast<std::size_t>(j)];
        wan_cost_[index(i, j)] =
            site.wan_cost_per_megabit.unit_price(0.0) *
            group.monthly_data_megabits;
      }
    }
  }
}

std::size_t CostModel::index(int group, int site) const {
  if (group < 0 || group >= instance_->num_groups() || site < 0 ||
      site >= instance_->num_sites()) {
    throw InvalidInputError("CostModel: group/site index out of range");
  }
  return static_cast<std::size_t>(group) *
             static_cast<std::size_t>(instance_->num_sites()) +
         static_cast<std::size_t>(site);
}

double CostModel::average_latency(int group, int site) const {
  return avg_latency_[index(group, site)];
}

Money CostModel::latency_penalty(int group, int site) const {
  const auto& g = instance_->groups[static_cast<std::size_t>(group)];
  return g.total_users() *
         g.latency_penalty.penalty_per_user(avg_latency_[index(group, site)]);
}

bool CostModel::latency_violated(int group, int site) const {
  const auto& g = instance_->groups[static_cast<std::size_t>(group)];
  return g.latency_penalty.violated_at(avg_latency_[index(group, site)]);
}

Money CostModel::wan_cost(int group, int site) const {
  return wan_cost_[index(group, site)];
}

Money CostModel::assignment_cost(int group, int site) const {
  const auto& g = instance_->groups[static_cast<std::size_t>(group)];
  const auto& s = instance_->sites[static_cast<std::size_t>(site)];
  const auto& p = instance_->params;
  const Money space = s.space_cost_per_server.unit_price(0.0);
  const Money power = s.power_cost_per_kwh.unit_price(0.0) *
                      p.server_power_kw * p.hours_per_month;
  const Money labor =
      s.labor_cost_per_admin.unit_price(0.0) / p.servers_per_admin;
  return g.servers * (space + power + labor) + wan_cost(group, site) +
         latency_penalty(group, site);
}

CostBreakdown CostModel::site_cost(int site, long long servers,
                                   double data_megabits) const {
  if (site < 0 || site >= instance_->num_sites()) {
    throw InvalidInputError("site_cost: site index out of range");
  }
  // Incremental callers (local search) accumulate floating-point drift on
  // the data aggregate; tolerate epsilon-negative values.
  if (data_megabits < 0.0 && data_megabits > -1e-3) data_megabits = 0.0;
  if (servers < 0 || data_megabits < 0.0) {
    throw InvalidInputError("site_cost: negative aggregate");
  }
  const auto& s = instance_->sites[static_cast<std::size_t>(site)];
  const auto& p = instance_->params;
  CostBreakdown cost;
  const auto n = static_cast<double>(servers);
  cost.space = s.space_cost_per_server.total_cost(n);
  const double kwh = n * p.server_power_kw * p.hours_per_month;
  cost.power = s.power_cost_per_kwh.total_cost(kwh);
  const double admins = n / p.servers_per_admin;
  cost.labor = s.labor_cost_per_admin.total_cost(admins);
  if (!instance_->use_vpn_links) {
    cost.wan = s.wan_cost_per_megabit.total_cost(data_megabits);
  }
  return cost;
}

Money CostModel::marginal_cost(int group, int site, long long site_servers,
                               double site_data_megabits) const {
  const auto& g = instance_->groups[static_cast<std::size_t>(group)];
  const CostBreakdown before =
      site_cost(site, site_servers, site_data_megabits);
  const double extra_data =
      instance_->use_vpn_links ? 0.0 : g.monthly_data_megabits;
  const CostBreakdown after = site_cost(site, site_servers + g.servers,
                                        site_data_megabits + extra_data);
  Money delta = after.total() - before.total();
  if (instance_->use_vpn_links) delta += wan_cost(group, site);
  return delta + latency_penalty(group, site);
}

void CostModel::price_plan(Plan& plan) const {
  const int num_groups = instance_->num_groups();
  const int num_sites = instance_->num_sites();
  if (static_cast<int>(plan.primary.size()) != num_groups) {
    throw InvalidInputError("price_plan: primary assignment size mismatch");
  }
  const bool dr = plan.has_dr();
  if (dr && static_cast<int>(plan.secondary.size()) != num_groups) {
    throw InvalidInputError("price_plan: secondary assignment size mismatch");
  }
  if (dr && static_cast<int>(plan.backup_servers.size()) != num_sites) {
    throw InvalidInputError("price_plan: backup vector size mismatch");
  }

  std::vector<long long> servers(static_cast<std::size_t>(num_sites), 0);
  std::vector<double> data(static_cast<std::size_t>(num_sites), 0.0);
  CostBreakdown cost;
  int violations = 0;

  for (int i = 0; i < num_groups; ++i) {
    const auto& group = instance_->groups[static_cast<std::size_t>(i)];
    const int j = plan.primary[static_cast<std::size_t>(i)];
    if (j < 0 || j >= num_sites) {
      throw InvalidInputError("price_plan: primary site out of range");
    }
    servers[static_cast<std::size_t>(j)] += group.servers;
    data[static_cast<std::size_t>(j)] += group.monthly_data_megabits;
    if (instance_->use_vpn_links) cost.wan += wan_cost(i, j);
    cost.latency_penalty += latency_penalty(i, j);
    if (latency_violated(i, j)) ++violations;
    if (dr) {
      const int b = plan.secondary[static_cast<std::size_t>(i)];
      if (b < 0 || b >= num_sites) {
        throw InvalidInputError("price_plan: secondary site out of range");
      }
      // Replication traffic reaches the secondary site.
      data[static_cast<std::size_t>(b)] += group.monthly_data_megabits;
      if (instance_->use_vpn_links) cost.wan += wan_cost(i, b);
      cost.latency_penalty += latency_penalty(i, b);
      if (latency_violated(i, b)) ++violations;
    }
  }
  if (dr) {
    for (int j = 0; j < num_sites; ++j) {
      servers[static_cast<std::size_t>(j)] +=
          plan.backup_servers[static_cast<std::size_t>(j)];
      cost.backup_capex += instance_->params.dr_server_cost *
                           plan.backup_servers[static_cast<std::size_t>(j)];
    }
  }
  for (int j = 0; j < num_sites; ++j) {
    const CostBreakdown site = site_cost(j, servers[static_cast<std::size_t>(j)],
                                         data[static_cast<std::size_t>(j)]);
    cost.space += site.space;
    cost.power += site.power;
    cost.labor += site.labor;
    cost.wan += site.wan;
  }
  plan.cost = cost;
  plan.latency_violations = violations;
}

CostBreakdown CostModel::as_is_cost() const {
  const auto& instance = *instance_;
  if (instance.as_is_placement.empty()) {
    throw InvalidInputError("as_is_cost: instance has no as-is placement");
  }
  CostBreakdown cost;
  const auto& p = instance.params;
  const int num_centers = static_cast<int>(instance.as_is_centers.size());
  std::vector<long long> servers(static_cast<std::size_t>(num_centers), 0);
  for (int i = 0; i < instance.num_groups(); ++i) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    const int d = instance.as_is_placement[static_cast<std::size_t>(i)];
    const auto& center = instance.as_is_centers[static_cast<std::size_t>(d)];
    servers[static_cast<std::size_t>(d)] += group.servers;
    cost.wan += center.wan_cost_per_megabit * group.monthly_data_megabits;
    if (!instance.as_is_latency_ms.empty()) {
      const double latency = weighted_average_latency(
          instance.as_is_latency_ms[static_cast<std::size_t>(d)],
          group.users_per_location);
      cost.latency_penalty +=
          group.total_users() *
          group.latency_penalty.penalty_per_user(latency);
    }
  }
  for (int d = 0; d < num_centers; ++d) {
    const auto& center = instance.as_is_centers[static_cast<std::size_t>(d)];
    const auto n = static_cast<double>(servers[static_cast<std::size_t>(d)]);
    cost.space += center.space_cost_per_server * n;
    cost.power +=
        center.power_cost_per_kwh * n * p.server_power_kw * p.hours_per_month;
    cost.labor += center.labor_cost_per_admin * n / p.servers_per_admin;
  }
  return cost;
}

int CostModel::as_is_latency_violations() const {
  const auto& instance = *instance_;
  if (instance.as_is_placement.empty() || instance.as_is_latency_ms.empty()) {
    return 0;
  }
  int violations = 0;
  for (int i = 0; i < instance.num_groups(); ++i) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    const int d = instance.as_is_placement[static_cast<std::size_t>(i)];
    const double latency = weighted_average_latency(
        instance.as_is_latency_ms[static_cast<std::size_t>(d)],
        group.users_per_location);
    if (group.latency_penalty.violated_at(latency)) ++violations;
  }
  return violations;
}

}  // namespace etransform
