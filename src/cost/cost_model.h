// The cost model: exact monthly pricing of plans and of the as-is state.
//
// This is the single source of truth for costs. Every algorithm (LP planner,
// greedy, manual, local search) is priced by the same evaluator, so the
// Fig. 4 / Fig. 6 comparisons are apples-to-apples:
//
//   site cost(j)   = space_j(n) * n + E_j(kWh) * kWh + T_j(admins) * admins
//                    [+ W_j(data) * data in flat-WAN mode]
//   placement cost = WAN (VPN-link formula in VPN mode) + latency penalty
//   DR             = backup servers join the site server aggregate, the
//                    group's data joins the secondary site's WAN aggregate
//                    (replication traffic), and backup purchase is
//                    zeta * sum_j G_j.
//
// where n, kWh, admins, data are *site aggregates*, so volume discounts
// (StepSchedule) apply across all groups consolidated at the site — the
// economies of scale the paper optimizes for.
#pragma once

#include <vector>

#include "model/entities.h"
#include "model/plan.h"

namespace etransform {

/// Precomputes per-(group,site) latency and WAN figures for an instance and
/// prices plans exactly. The instance must outlive the model.
class CostModel {
 public:
  /// Validates the instance (throws InvalidInputError/InfeasibleError) and
  /// precomputes the M x N latency and WAN matrices.
  explicit CostModel(const ConsolidationInstance& instance);

  /// User-weighted average latency of group i served from site j (ms).
  [[nodiscard]] double average_latency(int group, int site) const;

  /// Monthly latency penalty of the placement: users * per-user step penalty
  /// (the L_ij term of the objective).
  [[nodiscard]] Money latency_penalty(int group, int site) const;

  /// True if the placement pays a nonzero latency penalty.
  [[nodiscard]] bool latency_violated(int group, int site) const;

  /// Monthly WAN cost of the placement in VPN mode (dedicated-link formula,
  /// paper §III-B):  sum_r (C_ir * D_i) / (gamma * sum_r C_ir) * F_jr.
  /// In flat mode returns D_i priced at the site's *base* WAN unit price
  /// (aggregate discounts are applied in price_plan).
  [[nodiscard]] Money wan_cost(int group, int site) const;

  /// Placement coefficient at base (first-tier) prices:
  /// S_i*(Q_j + alpha*E_j*hours + T_j/beta) + WAN + latency penalty.
  /// This is the c_ij the greedy baseline and heuristics price against.
  [[nodiscard]] Money assignment_cost(int group, int site) const;

  /// Exact cost of running `servers` servers and `data_megabits` of monthly
  /// flat-WAN traffic at site j, with volume discounts applied (space,
  /// power, labor, and flat-mode WAN; no latency/VPN terms).
  [[nodiscard]] CostBreakdown site_cost(int site, long long servers,
                                        double data_megabits) const;

  /// Marginal cost of adding a group to a site that currently hosts the
  /// given aggregates (exact, including tier-boundary effects).
  [[nodiscard]] Money marginal_cost(int group, int site,
                                    long long site_servers,
                                    double site_data_megabits) const;

  /// Prices `plan` exactly: fills plan.cost and plan.latency_violations.
  /// Throws InvalidInputError if the plan's shape does not match the
  /// instance. Does not check feasibility (see check_plan).
  void price_plan(Plan& plan) const;

  /// Cost of the current estate: every group at its as-is center, priced at
  /// the centers' own flat rates.
  [[nodiscard]] CostBreakdown as_is_cost() const;

  /// Latency violations in the as-is state (0 if no as-is latency matrix).
  [[nodiscard]] int as_is_latency_violations() const;

  [[nodiscard]] const ConsolidationInstance& instance() const {
    return *instance_;
  }

 private:
  const ConsolidationInstance* instance_;
  /// avg_latency_[i * num_sites + j]
  std::vector<double> avg_latency_;
  /// wan_cost_[i * num_sites + j] (VPN mode) or base-price WAN (flat mode)
  std::vector<Money> wan_cost_;

  [[nodiscard]] std::size_t index(int group, int site) const;
};

}  // namespace etransform
