// The comparison algorithms of paper §VI-B/C.
//
// * Manual — the state-of-the-art practice the paper argues against: pick a
//   small fixed set of target sites a priori (largest capacity first, at
//   least `manual_site_count`, extended until the estate fits), then place
//   each application group at the picked site nearest its current as-is
//   data center. Latency-blind, which is why it pays the big penalties in
//   Fig. 4(e). The DR variant pairs each picked site with a dedicated backup
//   site and mirrors every group into its primary's pair.
//
// * Greedy — orders groups by decreasing server count and sends each to the
//   feasible site with the lowest exact marginal cost (space/power/labor/WAN
//   at current site volume, plus latency penalty). The DR variant then
//   places each group's backup the same way, charging the backup-server
//   purchase (dedicated sizing: greedy does not plan for sharing).
//
// * As-Is + DR — the do-nothing-but-add-DR reference: the current estate
//   plus one backup data center mirroring every server (enterprises that
//   bolt DR onto an unconsolidated estate replicate each data center
//   wholesale), priced at the estate's average rates.
#pragma once

#include "cost/cost_model.h"
#include "model/plan.h"

namespace etransform {

/// Tuning for the manual baseline.
struct ManualOptions {
  /// Number of sites the administrator picks a priori (paper: "say only
  /// two"); automatically extended if the estate does not fit.
  int site_count = 2;
};

/// Runs the manual consolidation heuristic. Throws InfeasibleError if even
/// all sites together cannot host the estate (plus backups when with_dr).
[[nodiscard]] Plan plan_manual(const CostModel& model, bool with_dr,
                               const ManualOptions& options = {});

/// Tuning for the greedy baseline.
struct GreedyOptions {
  /// false (default) reproduces the paper's greedy exactly: each group is
  /// priced at every site using *static* base-tier prices plus its latency
  /// penalty — blind to volume discounts and to what is already placed.
  /// true prices the true marginal cost at current site volumes (the
  /// stronger variant the planner uses as its heuristic seed).
  bool volume_aware = false;
  /// Business-impact cap on primaries per site (0 = unlimited); set by the
  /// planner when seeding under an omega constraint.
  int max_groups_per_site = 0;
};

/// Runs the greedy consolidation heuristic.
/// Throws InfeasibleError when fragmentation leaves some group unplaceable.
[[nodiscard]] Plan plan_greedy(const CostModel& model, bool with_dr,
                               const GreedyOptions& options = {});

/// Cost of keeping the estate as-is but adding a single backup data center
/// that duplicates every server, priced at the estate's average as-is rates
/// (the "AS-IS +DR" bar of Fig. 6). `violations` (optional) receives the
/// as-is latency violation count.
[[nodiscard]] CostBreakdown as_is_plus_dr_cost(const CostModel& model,
                                               int* violations = nullptr);

}  // namespace etransform
