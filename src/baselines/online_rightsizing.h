// Online right-sizing baselines for multi-period planning.
//
// The time-expanded MILP (planner/formulation.h) sees the whole demand
// horizon up front. Real operators do not: they watch demand arrive one
// period at a time and must decide *now* whether a reshuffle is worth the
// migration cost. These baselines play that online game over a
// PlanningHorizon, following "Optimal Algorithms for Right-Sizing Data
// Centers" (Albers & Quedenfeld):
//
// * Lazy capacity (deterministic) — ski-rental hysteresis. Each group
//   accumulates regret: the weighted monthly gap between its current
//   placement and the best placement under the period it just observed. The
//   group moves only once the accumulated regret reaches its own migration
//   cost (threshold_scale * migration rate * scaled servers), which bounds
//   the competitive ratio at 2 in the classic analysis.
//
// * Probabilistic — the randomized variant: each epoch the group draws its
//   move threshold from the density e^x / (e - 1) on [0, 1] (scaled by the
//   migration cost), i.e. threshold = cost * ln(1 + u * (e - 1)). In
//   expectation this improves the competitive ratio to e / (e - 1).
//
// Both start from the greedy placement of the first period, never look
// ahead, and perform forced moves when a period's demand overflows a site
// or fails it outright. Non-DR only — these are right-sizing competitors
// for the bench races, not DR planners.
#pragma once

#include <cstdint>

#include "cost/cost_model.h"
#include "model/horizon.h"

namespace etransform {

/// Tuning for the online right-sizing baselines.
struct OnlineRightSizingOptions {
  enum class Variant {
    kLazy,           // deterministic ski-rental hysteresis (2-competitive)
    kProbabilistic,  // randomized thresholds (e/(e-1)-competitive)
  };
  Variant variant = Variant::kLazy;
  /// Seed for the probabilistic variant's threshold draws (ignored by kLazy).
  std::uint64_t seed = 1;
  /// Scales the lazy variant's move threshold: 1.0 is the classic "move when
  /// regret equals the move cost" rule; higher values move later.
  double threshold_scale = 1.0;
};

/// Plays the online right-sizing game over `horizon` against `base` (the
/// base-snapshot cost model) and returns the per-period plans plus the
/// horizon totals assembled by the same rule as every other competitor
/// (assemble_multi_period). A static horizon degenerates to the greedy
/// baseline on the single snapshot. Throws InvalidInputError on an
/// inconsistent horizon and InfeasibleError when a period's demand cannot be
/// packed (e.g. a pinned group's site fails).
[[nodiscard]] MultiPeriodPlan plan_online_rightsizing(
    const CostModel& base, const PlanningHorizon& horizon,
    const OnlineRightSizingOptions& options = {});

/// Short competitor label: "online-lazy" or "online-prob".
[[nodiscard]] const char* to_string(OnlineRightSizingOptions::Variant variant);

}  // namespace etransform
