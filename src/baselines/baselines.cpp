#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.h"

namespace etransform {

namespace {

/// True if the group may be placed at site j (pin + allowed-sites rules).
bool allowed_at(const ApplicationGroup& group, int j) {
  if (group.pinned_site >= 0) return j == group.pinned_site;
  if (group.allowed_sites.empty()) return true;
  return std::find(group.allowed_sites.begin(), group.allowed_sites.end(),
                   j) != group.allowed_sites.end();
}

/// Groups in decreasing server order (the greedy ordering; also used by
/// manual so large groups grab scarce capacity first).
std::vector<int> groups_by_size(const ConsolidationInstance& instance) {
  std::vector<int> order(static_cast<std::size_t>(instance.num_groups()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return instance.groups[static_cast<std::size_t>(a)].servers >
           instance.groups[static_cast<std::size_t>(b)].servers;
  });
  return order;
}

}  // namespace

Plan plan_manual(const CostModel& model, bool with_dr,
                 const ManualOptions& options) {
  const auto& instance = model.instance();
  const int num_sites = instance.num_sites();
  const int num_groups = instance.num_groups();
  if (options.site_count < 1) {
    throw InvalidInputError("manual baseline: site_count must be >= 1");
  }

  // Pick sites a priori: largest capacity first. DR reserves half the picks
  // for backups, so start from twice the footprint.
  std::vector<int> by_capacity(static_cast<std::size_t>(num_sites));
  std::iota(by_capacity.begin(), by_capacity.end(), 0);
  std::stable_sort(by_capacity.begin(), by_capacity.end(), [&](int a, int b) {
    return instance.sites[static_cast<std::size_t>(a)].capacity_servers >
           instance.sites[static_cast<std::size_t>(b)].capacity_servers;
  });
  const long long total_servers = instance.total_servers();
  std::vector<int> picked;
  long long picked_capacity = 0;
  for (const int j : by_capacity) {
    if (static_cast<int>(picked.size()) >= options.site_count &&
        picked_capacity >= total_servers) {
      break;
    }
    picked.push_back(j);
    picked_capacity +=
        instance.sites[static_cast<std::size_t>(j)].capacity_servers;
  }
  if (picked_capacity < total_servers) {
    throw InfeasibleError("manual baseline: estate does not fit target sites");
  }

  // Place every group at the nearest picked site (by distance from its
  // current as-is center) that still has room and is allowed.
  std::vector<long long> free_capacity(static_cast<std::size_t>(num_sites));
  for (int j = 0; j < num_sites; ++j) {
    free_capacity[static_cast<std::size_t>(j)] =
        instance.sites[static_cast<std::size_t>(j)].capacity_servers;
  }
  Plan plan;
  plan.algorithm = with_dr ? "manual+dr" : "manual";
  plan.primary.assign(static_cast<std::size_t>(num_groups), -1);

  const auto group_position = [&](int i) -> GeoPoint {
    if (!instance.as_is_placement.empty()) {
      const int d = instance.as_is_placement[static_cast<std::size_t>(i)];
      return instance.as_is_centers[static_cast<std::size_t>(d)].position;
    }
    return GeoPoint{};
  };

  for (const int i : groups_by_size(instance)) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    const GeoPoint from = group_position(i);
    int best = -1;
    double best_distance = std::numeric_limits<double>::infinity();
    for (const int j : picked) {
      if (!allowed_at(group, j)) continue;
      if (free_capacity[static_cast<std::size_t>(j)] < group.servers) continue;
      const double d =
          distance(from, instance.sites[static_cast<std::size_t>(j)].position);
      if (d < best_distance) {
        best_distance = d;
        best = j;
      }
    }
    if (best < 0) {
      // The picked set is full or disallowed; spill to the nearest
      // feasible unpicked site (manual practice: ad-hoc intervention).
      for (const int j : by_capacity) {
        if (!allowed_at(group, j)) continue;
        if (free_capacity[static_cast<std::size_t>(j)] < group.servers) {
          continue;
        }
        const double d = distance(
            from, instance.sites[static_cast<std::size_t>(j)].position);
        if (d < best_distance) {
          best_distance = d;
          best = j;
        }
      }
    }
    if (best < 0) {
      throw InfeasibleError("manual baseline: group '" + group.name +
                            "' does not fit anywhere");
    }
    plan.primary[static_cast<std::size_t>(i)] = best;
    free_capacity[static_cast<std::size_t>(best)] -= group.servers;
  }

  if (with_dr) {
    // Pair each used primary site with a dedicated backup site: the largest
    // unused site with room for the primary's full load; every group mirrors
    // into its primary's pair.
    std::vector<long long> primary_load(static_cast<std::size_t>(num_sites),
                                        0);
    for (int i = 0; i < num_groups; ++i) {
      primary_load[static_cast<std::size_t>(
          plan.primary[static_cast<std::size_t>(i)])] +=
          instance.groups[static_cast<std::size_t>(i)].servers;
    }
    std::vector<int> used;
    for (int j = 0; j < num_sites; ++j) {
      if (primary_load[static_cast<std::size_t>(j)] > 0) used.push_back(j);
    }
    std::stable_sort(used.begin(), used.end(), [&](int a, int b) {
      return primary_load[static_cast<std::size_t>(a)] >
             primary_load[static_cast<std::size_t>(b)];
    });
    std::vector<int> pair_of(static_cast<std::size_t>(num_sites), -1);
    for (const int a : used) {
      int best = -1;
      for (const int j : by_capacity) {
        if (j == a) continue;
        if (free_capacity[static_cast<std::size_t>(j)] <
            primary_load[static_cast<std::size_t>(a)]) {
          continue;
        }
        best = j;
        break;
      }
      // best < 0: no single site mirrors this whole data center; its groups
      // fall back to per-group spill below (manual practice: ad-hoc fixes).
      pair_of[static_cast<std::size_t>(a)] = best;
      if (best >= 0) {
        free_capacity[static_cast<std::size_t>(best)] -=
            primary_load[static_cast<std::size_t>(a)];
      }
    }
    plan.secondary.assign(static_cast<std::size_t>(num_groups), -1);
    for (const int i : groups_by_size(instance)) {
      const int a = plan.primary[static_cast<std::size_t>(i)];
      int target = pair_of[static_cast<std::size_t>(a)];
      if (target < 0) {
        // Spill: the roomiest site that is not the primary.
        const auto servers =
            instance.groups[static_cast<std::size_t>(i)].servers;
        for (const int j : by_capacity) {
          if (j == a) continue;
          if (free_capacity[static_cast<std::size_t>(j)] < servers) continue;
          if (target < 0 || free_capacity[static_cast<std::size_t>(j)] >
                                free_capacity[static_cast<std::size_t>(
                                    target)]) {
            target = j;
          }
        }
        if (target < 0) {
          throw InfeasibleError(
              "manual baseline: no site can host the backup of '" +
              instance.groups[static_cast<std::size_t>(i)].name + "'");
        }
        free_capacity[static_cast<std::size_t>(target)] -=
            instance.groups[static_cast<std::size_t>(i)].servers;
      }
      plan.secondary[static_cast<std::size_t>(i)] = target;
    }
    plan.backup_servers =
        required_backup_servers(instance, plan.primary, plan.secondary);
  }

  model.price_plan(plan);
  return plan;
}

Plan plan_greedy(const CostModel& model, bool with_dr,
                 const GreedyOptions& options) {
  const auto& instance = model.instance();
  const int num_sites = instance.num_sites();
  const int num_groups = instance.num_groups();

  Plan plan;
  plan.algorithm = with_dr ? "greedy+dr" : "greedy";
  plan.primary.assign(static_cast<std::size_t>(num_groups), -1);

  std::vector<long long> servers(static_cast<std::size_t>(num_sites), 0);
  std::vector<double> data(static_cast<std::size_t>(num_sites), 0.0);
  std::vector<int> group_count(static_cast<std::size_t>(num_sites), 0);
  std::vector<long long> free_capacity(static_cast<std::size_t>(num_sites));
  for (int j = 0; j < num_sites; ++j) {
    free_capacity[static_cast<std::size_t>(j)] =
        instance.sites[static_cast<std::size_t>(j)].capacity_servers;
  }

  for (const int i : groups_by_size(instance)) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    int best = -1;
    Money best_cost = std::numeric_limits<double>::infinity();
    for (int j = 0; j < num_sites; ++j) {
      if (!allowed_at(group, j)) continue;
      if (free_capacity[static_cast<std::size_t>(j)] < group.servers) continue;
      if (options.max_groups_per_site > 0 &&
          group_count[static_cast<std::size_t>(j)] >=
              options.max_groups_per_site) {
        continue;
      }
      const Money cost =
          options.volume_aware
              ? model.marginal_cost(i, j, servers[static_cast<std::size_t>(j)],
                                    data[static_cast<std::size_t>(j)])
              : model.assignment_cost(i, j);
      if (cost < best_cost) {
        best_cost = cost;
        best = j;
      }
    }
    if (best < 0) {
      throw InfeasibleError("greedy baseline: group '" + group.name +
                            "' does not fit anywhere");
    }
    plan.primary[static_cast<std::size_t>(i)] = best;
    servers[static_cast<std::size_t>(best)] += group.servers;
    group_count[static_cast<std::size_t>(best)] += 1;
    if (!instance.use_vpn_links) {
      data[static_cast<std::size_t>(best)] += group.monthly_data_megabits;
    }
    free_capacity[static_cast<std::size_t>(best)] -= group.servers;
  }

  if (with_dr) {
    // Dedicated backups, placed greedily with the purchase cost included
    // (paper: "adds the cost to buy new servers into the total cost").
    plan.secondary.assign(static_cast<std::size_t>(num_groups), -1);
    std::vector<long long> backups(static_cast<std::size_t>(num_sites), 0);
    for (const int i : groups_by_size(instance)) {
      const auto& group = instance.groups[static_cast<std::size_t>(i)];
      const int primary = plan.primary[static_cast<std::size_t>(i)];
      int best = -1;
      Money best_cost = std::numeric_limits<double>::infinity();
      for (int j = 0; j < num_sites; ++j) {
        if (j == primary) continue;
        if (!allowed_at(group, j)) continue;
        if (free_capacity[static_cast<std::size_t>(j)] < group.servers) {
          continue;
        }
        const Money cost =
            (options.volume_aware
                 ? model.marginal_cost(i, j,
                                       servers[static_cast<std::size_t>(j)],
                                       data[static_cast<std::size_t>(j)])
                 : model.assignment_cost(i, j)) +
            instance.params.dr_server_cost * group.servers;
        if (cost < best_cost) {
          best_cost = cost;
          best = j;
        }
      }
      if (best < 0) {
        throw InfeasibleError("greedy baseline: no DR site fits group '" +
                              group.name + "'");
      }
      plan.secondary[static_cast<std::size_t>(i)] = best;
      servers[static_cast<std::size_t>(best)] += group.servers;
      backups[static_cast<std::size_t>(best)] += group.servers;
      if (!instance.use_vpn_links) {
        data[static_cast<std::size_t>(best)] += group.monthly_data_megabits;
      }
      free_capacity[static_cast<std::size_t>(best)] -= group.servers;
    }
    plan.backup_servers.assign(backups.begin(), backups.end());
  }

  model.price_plan(plan);
  return plan;
}

CostBreakdown as_is_plus_dr_cost(const CostModel& model, int* violations) {
  const auto& instance = model.instance();
  if (instance.as_is_placement.empty()) {
    throw InvalidInputError("as_is_plus_dr_cost: instance has no as-is state");
  }
  CostBreakdown cost = model.as_is_cost();
  if (violations != nullptr) {
    *violations = model.as_is_latency_violations();
  }

  // One backup center duplicating every server, priced at the estate's
  // average rates; replication doubles the WAN traffic.
  const auto& p = instance.params;
  Money avg_space = 0.0;
  Money avg_power = 0.0;
  Money avg_labor = 0.0;
  Money avg_wan = 0.0;
  for (const auto& center : instance.as_is_centers) {
    avg_space += center.space_cost_per_server;
    avg_power += center.power_cost_per_kwh;
    avg_labor += center.labor_cost_per_admin;
    avg_wan += center.wan_cost_per_megabit;
  }
  const auto centers = static_cast<double>(instance.as_is_centers.size());
  avg_space /= centers;
  avg_power /= centers;
  avg_labor /= centers;
  avg_wan /= centers;

  const auto backup_servers = static_cast<double>(instance.total_servers());
  double replicated_data = 0.0;
  for (const auto& group : instance.groups) {
    replicated_data += group.monthly_data_megabits;
  }
  cost.space += avg_space * backup_servers;
  cost.power +=
      avg_power * backup_servers * p.server_power_kw * p.hours_per_month;
  cost.labor += avg_labor * backup_servers / p.servers_per_admin;
  cost.wan += avg_wan * replicated_data;
  cost.backup_capex += p.dr_server_cost * backup_servers;
  return cost;
}

}  // namespace etransform
