#include "baselines/online_rightsizing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "baselines/baselines.h"
#include "common/error.h"
#include "common/random.h"

namespace etransform {
namespace {

/// A period's materialized instance plus its pricer. Heap-allocated so the
/// CostModel's instance pointer stays stable.
struct PeriodModel {
  ConsolidationInstance instance;
  std::optional<CostModel> cost;
};

}  // namespace

const char* to_string(OnlineRightSizingOptions::Variant variant) {
  switch (variant) {
    case OnlineRightSizingOptions::Variant::kLazy:
      return "online-lazy";
    case OnlineRightSizingOptions::Variant::kProbabilistic:
      return "online-prob";
  }
  return "online";
}

MultiPeriodPlan plan_online_rightsizing(
    const CostModel& base, const PlanningHorizon& horizon,
    const OnlineRightSizingOptions& options) {
  const ConsolidationInstance& root = base.instance();
  validate_horizon(root, horizon);
  if (!(options.threshold_scale >= 0.0) ||
      !std::isfinite(options.threshold_scale)) {
    throw InvalidInputError(
        "online right-sizing: threshold_scale must be finite and >= 0");
  }
  const int num_periods = horizon.num_periods();
  const int num_groups = root.num_groups();
  const int num_sites = root.num_sites();
  const char* label = to_string(options.variant);

  std::vector<std::unique_ptr<PeriodModel>> periods;
  periods.reserve(static_cast<std::size_t>(num_periods));
  for (int t = 0; t < num_periods; ++t) {
    auto period = std::make_unique<PeriodModel>();
    period->instance = apply_period(root, horizon, t);
    period->cost.emplace(period->instance);
    periods.push_back(std::move(period));
  }

  // Separation partners per group (a move may not land next to one).
  std::vector<std::vector<int>> separated(
      static_cast<std::size_t>(num_groups));
  for (const SeparationConstraint& sep : root.separations) {
    separated[static_cast<std::size_t>(sep.group_a)].push_back(sep.group_b);
    separated[static_cast<std::size_t>(sep.group_b)].push_back(sep.group_a);
  }

  Rng rng(options.seed);
  const double kEMinusOne = std::exp(1.0) - 1.0;
  // Per-epoch uniform draw behind the probabilistic threshold; resampled
  // after every move so each hysteresis epoch gets a fresh threshold.
  std::vector<double> draw(static_cast<std::size_t>(num_groups));
  for (double& u : draw) u = rng.uniform();

  // The online player's state: current placement and accumulated regret.
  GreedyOptions greedy;
  greedy.volume_aware = true;
  Plan first = plan_greedy(*periods[0]->cost, /*with_dr=*/false, greedy);
  first.algorithm = label;
  std::vector<int> assignment = first.primary;
  std::vector<double> regret(static_cast<std::size_t>(num_groups), 0.0);

  std::vector<Plan> plans;
  plans.reserve(static_cast<std::size_t>(num_periods));
  plans.push_back(std::move(first));

  for (int t = 1; t < num_periods; ++t) {
    const ConsolidationInstance& inst = periods[static_cast<std::size_t>(t)]
                                            ->instance;  // demand pre-scaled
    const CostModel& cost = *periods[static_cast<std::size_t>(t)]->cost;
    const double weight = horizon.period_weight(t);

    auto servers_of = [&](int i) {
      return static_cast<long long>(
          inst.groups[static_cast<std::size_t>(i)].servers);
    };
    std::vector<long long> load(static_cast<std::size_t>(num_sites), 0);
    for (int i = 0; i < num_groups; ++i) {
      load[static_cast<std::size_t>(assignment[static_cast<std::size_t>(i)])] +=
          servers_of(i);
    }

    auto allowed = [&](int i, int j) {
      const ApplicationGroup& g = inst.groups[static_cast<std::size_t>(i)];
      if (g.pinned_site >= 0 && g.pinned_site != j) return false;
      if (!g.allowed_sites.empty() &&
          std::find(g.allowed_sites.begin(), g.allowed_sites.end(), j) ==
              g.allowed_sites.end()) {
        return false;
      }
      for (int other : separated[static_cast<std::size_t>(i)]) {
        if (assignment[static_cast<std::size_t>(other)] == j) return false;
      }
      return true;
    };
    auto fits = [&](int i, int j) {
      const long long occupied =
          load[static_cast<std::size_t>(j)] -
          (assignment[static_cast<std::size_t>(i)] == j ? servers_of(i) : 0);
      return occupied + servers_of(i) <=
             inst.sites[static_cast<std::size_t>(j)].capacity_servers;
    };
    // Cheapest feasible site for group i under this period's demand, or -1.
    auto best_site = [&](int i) {
      int best = -1;
      Money best_cost = std::numeric_limits<Money>::infinity();
      for (int j = 0; j < num_sites; ++j) {
        if (!allowed(i, j) || !fits(i, j)) continue;
        const Money c = cost.assignment_cost(i, j);
        if (c < best_cost) {
          best_cost = c;
          best = j;
        }
      }
      return best;
    };
    auto move_group = [&](int i, int j) {
      load[static_cast<std::size_t>(
          assignment[static_cast<std::size_t>(i)])] -= servers_of(i);
      assignment[static_cast<std::size_t>(i)] = j;
      load[static_cast<std::size_t>(j)] += servers_of(i);
      regret[static_cast<std::size_t>(i)] = 0.0;
      draw[static_cast<std::size_t>(i)] = rng.uniform();
    };

    // Forced moves first: demand growth or a site failure can overflow the
    // carried-forward placement. Each eviction lands within capacity, so
    // overflow strictly shrinks and the loop needs at most one move per
    // group.
    for (int round = 0; round <= num_groups; ++round) {
      int bad = -1;
      for (int j = 0; j < num_sites; ++j) {
        if (load[static_cast<std::size_t>(j)] >
            inst.sites[static_cast<std::size_t>(j)].capacity_servers) {
          bad = j;
          break;
        }
      }
      if (bad < 0) break;
      int pick = -1;
      int target = -1;
      Money pick_cost = std::numeric_limits<Money>::infinity();
      for (int i = 0; i < num_groups; ++i) {
        if (assignment[static_cast<std::size_t>(i)] != bad) continue;
        if (inst.groups[static_cast<std::size_t>(i)].pinned_site >= 0) {
          continue;
        }
        const int alt = best_site(i);  // never `bad`: it does not fit
        if (alt < 0 || alt == bad) continue;
        const Money c = cost.assignment_cost(i, alt);
        if (c < pick_cost) {
          pick = i;
          target = alt;
          pick_cost = c;
        }
      }
      if (pick < 0) {
        throw InfeasibleError(
            "online right-sizing: period " + horizon.period_name(t) +
            " overflows site '" +
            inst.sites[static_cast<std::size_t>(bad)].name +
            "' and no hosted group can relocate");
      }
      move_group(pick, target);
    }

    // Hysteresis moves: accumulate the weighted monthly gap to the best
    // placement; move once it exceeds the (deterministic or sampled)
    // threshold against the one-time migration charge.
    for (int i = 0; i < num_groups; ++i) {
      if (inst.groups[static_cast<std::size_t>(i)].pinned_site >= 0) continue;
      const int current = assignment[static_cast<std::size_t>(i)];
      const int best = best_site(i);
      if (best < 0 || best == current) continue;
      const Money gap =
          cost.assignment_cost(i, current) - cost.assignment_cost(i, best);
      if (gap <= 1e-9) continue;
      regret[static_cast<std::size_t>(i)] += weight * gap;
      const double move_cost =
          horizon.migration_cost_per_server * static_cast<double>(servers_of(i));
      const double threshold =
          options.variant == OnlineRightSizingOptions::Variant::kLazy
              ? options.threshold_scale * move_cost
              : move_cost *
                    std::log1p(draw[static_cast<std::size_t>(i)] * kEMinusOne);
      if (regret[static_cast<std::size_t>(i)] >= threshold) {
        move_group(i, best);
      }
    }

    Plan plan;
    plan.primary = assignment;
    plan.algorithm = label;
    cost.price_plan(plan);
    const std::vector<std::string> violations = check_plan(inst, plan);
    if (!violations.empty()) {
      throw InfeasibleError("online right-sizing: period " +
                            horizon.period_name(t) +
                            " produced an infeasible plan: " +
                            violations.front());
    }
    plans.push_back(std::move(plan));
  }

  return assemble_multi_period(root, horizon, std::move(plans), label);
}

}  // namespace etransform
