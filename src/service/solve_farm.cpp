#include "service/solve_farm.h"

#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "cost/cost_model.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace etransform {

// Instruments are resolved once at attach_telemetry() so the per-job path
// pays pointer bumps, not name lookups. Null members mean "not attached" or
// "no registry" — every use is guarded.
struct FarmTelemetry {
  telemetry::TraceRecorder* trace = nullptr;
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::Gauge* queue_depth = nullptr;
  telemetry::Gauge* jobs_inflight = nullptr;
  telemetry::Counter* submitted = nullptr;
  telemetry::Counter* done = nullptr;
  telemetry::Counter* cancelled = nullptr;
  telemetry::Counter* failed = nullptr;
  telemetry::Counter* deadline_hits = nullptr;
  telemetry::Histogram* wait_ms = nullptr;
  telemetry::Histogram* solve_ms = nullptr;
};

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// SolveJob

SolveJob::SolveJob(long long id, SolveRequest request)
    : id_(id), name_(request.name), request_(std::move(request)) {
  // Resolve the attribution id once: explicit request id, else the farm job
  // id. Every span recorded on the job's threads carries it (the worker
  // binds it in run_job; in-solve pools inherit it from the context).
  ctx_.set_trace_id(request_.trace_id != 0
                        ? request_.trace_id
                        : static_cast<std::uint64_t>(id));
  ctx_.set_progress(&progress_);
}

JobState SolveJob::state() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

bool SolveJob::cancel_requested() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cancel_requested_;
}

bool SolveJob::has_report() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return has_report_;
}

std::string SolveJob::error() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

double SolveJob::solve_ms() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return solve_ms_;
}

void SolveJob::cancel() {
  std::function<void()> hook;
  bool cancelled_while_queued = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    cancel_requested_ = true;
    if (state_ == JobState::kQueued) {
      // kQueued -> kCancelled must happen inside this critical section:
      // dropping the lock first would let JobQueue::pop() claim the job
      // (kQueued -> kRunning) in the gap, after which a bare terminal write
      // would release waiters while the solve still runs.
      state_ = JobState::kCancelled;
      cancelled_while_queued = true;
      hook = std::move(request_.on_complete);
      terminal_cv_.notify_all();
    } else if (state_ == JobState::kRunning) {
      ctx_.request_cancel();
    }
    // Terminal states: nothing to do beyond recording the request.
  }
  // A job cancelled while queued never reaches run_job, so its lifecycle
  // telemetry terminates here (running jobs record theirs in run_job).
  if (cancelled_while_queued && telemetry_ != nullptr) {
    if (telemetry_->cancelled != nullptr) telemetry_->cancelled->increment();
    if (telemetry_->trace != nullptr) {
      // Bind so the lifecycle close lands in the job's filtered trace even
      // though it is recorded on the caller's thread.
      const telemetry::TraceBindScope bind(telemetry_->trace, ctx_.trace_id());
      telemetry_->trace->async_end("job", "job", id_);
    }
  }
  // Outside the lock, matching finish(): the hook may cancel() other jobs
  // or inspect this one.
  if (hook) hook();
}

JobState SolveJob::wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  terminal_cv_.wait(lock, [this] {
    return state_ == JobState::kDone || state_ == JobState::kCancelled ||
           state_ == JobState::kFailed;
  });
  return state_;
}

bool SolveJob::finish(JobState terminal) {
  std::function<void()> hook;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (state_ == JobState::kDone || state_ == JobState::kCancelled ||
        state_ == JobState::kFailed) {
      return false;
    }
    state_ = terminal;
    hook = std::move(request_.on_complete);
    terminal_cv_.notify_all();
  }
  // Outside the lock: the hook may cancel() other jobs or inspect this one.
  if (hook) hook();
  return true;
}

// ---------------------------------------------------------------------------
// JobQueue

void JobQueue::push(JobHandle job) {
  const std::lock_guard<std::mutex> lock(mu_);
  queue_.push(Entry{static_cast<int>(job->request_.priority), next_sequence_++,
                    std::move(job)});
}

JobHandle JobQueue::pop() {
  const std::lock_guard<std::mutex> lock(mu_);
  while (!queue_.empty()) {
    JobHandle job = queue_.top().job;
    queue_.pop();
    // Claim: kQueued -> kRunning. Jobs cancelled while queued are already
    // terminal and simply fall out of the queue here.
    {
      const std::lock_guard<std::mutex> job_lock(job->mu_);
      if (job->state_ != JobState::kQueued) continue;
      job->state_ = JobState::kRunning;
    }
    return job;
  }
  return nullptr;
}

std::size_t JobQueue::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

// ---------------------------------------------------------------------------
// SolveService

SolveService::SolveService(int num_threads) : pool_(num_threads) {}

SolveService::~SolveService() {
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    shutting_down_ = true;
  }
  cancel_all();
  wait_all();
  // ~ThreadPool drains the (now trivial) remaining pool tasks and joins.
}

JobHandle SolveService::submit(SolveRequest request) {
  JobHandle job;
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    if (shutting_down_) {
      throw InvalidInputError("SolveService: submit after shutdown");
    }
    job = JobHandle(new SolveJob(next_id_++, std::move(request)));
    job->telemetry_ = telemetry_;
    live_jobs_.emplace(job->id(), job);
  }
  if (const auto& telem = job->telemetry_) {
    job->ctx_.set_trace(telem->trace);
    job->ctx_.set_metrics(telem->metrics);
  }
  queue_.push(job);
  if (const auto& telem = job->telemetry_) {
    if (telem->submitted != nullptr) telem->submitted->increment();
    if (telem->queue_depth != nullptr) {
      telem->queue_depth->set(static_cast<double>(queue_.size()));
    }
    if (telem->trace != nullptr) {
      const telemetry::TraceBindScope bind(telem->trace, job->trace_id());
      telem->trace->async_begin("job", "job", job->id());
    }
  }
  // One pool task per admitted job; the task serves the *highest-priority*
  // queued job, which is not necessarily the one admitted here.
  pool_.submit([this] {
    const JobHandle next = queue_.pop();
    if (next) run_job(next);
  });
  return job;
}

void SolveService::run_job(const JobHandle& job) {
  const LogTagScope tag("job-" + std::to_string(job->id()) +
                        (job->name().empty() ? "" : ":" + job->name()));
  // Everything this worker records while the job runs — the claim instant,
  // the solve span, the terminal async_end, plus all spans from the solver
  // stack on this thread — is attributed to the job's trace id. In-solve
  // pools bind their own workers via SolveContext::trace_id().
  const telemetry::TraceBindScope bind(
      job->telemetry_ != nullptr ? job->telemetry_->trace : nullptr,
      job->trace_id());
  ET_LOG(kInfo) << "solve_farm: start (" << job->request_.instance.num_groups()
                << " groups, " << job->request_.instance.num_sites()
                << " sites)";
  const Stopwatch watch;
  const std::shared_ptr<FarmTelemetry> telem = job->telemetry_;
  if (telem != nullptr) {
    if (telem->wait_ms != nullptr) {
      telem->wait_ms->observe(job->wait_watch_.elapsed_ms());
    }
    if (telem->queue_depth != nullptr) {
      telem->queue_depth->set(static_cast<double>(queue_.size()));
    }
    if (telem->jobs_inflight != nullptr) telem->jobs_inflight->add(1.0);
    if (telem->trace != nullptr) {
      telem->trace->async_instant("job", "claim", job->id());
    }
  }
  JobState terminal = JobState::kDone;
  // The budget starts when the solve starts: queueing delay under load must
  // not eat a job's solve time.
  if (job->request_.time_limit_ms > 0.0) {
    job->ctx_.set_deadline(Deadline::after_ms(job->request_.time_limit_ms));
  }
  job->ctx_.events = job->request_.events;
  {
    const telemetry::TraceSpan solve_span(
        telem != nullptr ? telem->trace : nullptr, "job", "job.solve");
    try {
      const CostModel model(job->request_.instance);
      const EtransformPlanner planner(job->request_.options);
      PlanInput input;
      input.model = &model;
      input.horizon = job->request_.horizon;
      input.root_warm = job->request_.root_warm.get();
      input.lock_placement = job->request_.lock_placement;
      PlannerReport report = planner.plan(input, job->ctx_);
      {
        // Result writes under mu_: clients may poll has_report()/solve_ms()
        // while the job is still running.
        const std::lock_guard<std::mutex> lock(job->mu_);
        job->report_ = std::move(report);
        job->has_report_ = true;
      }
      terminal =
          job->ctx_.cancelled() ? JobState::kCancelled : JobState::kDone;
    } catch (const std::exception& e) {
      {
        const std::lock_guard<std::mutex> lock(job->mu_);
        job->error_ = e.what();
      }
      // A planner unwound by our own cancellation is cancelled, not failed.
      terminal =
          job->ctx_.cancelled() ? JobState::kCancelled : JobState::kFailed;
    }
  }
  const double solve_ms = watch.elapsed_ms();
  {
    const std::lock_guard<std::mutex> lock(job->mu_);
    job->solve_ms_ = solve_ms;
  }
  ET_LOG(kInfo) << "solve_farm: " << to_string(terminal) << " in " << solve_ms
                << " ms";
  if (telem != nullptr) {
    if (telem->jobs_inflight != nullptr) telem->jobs_inflight->add(-1.0);
    if (telem->solve_ms != nullptr) telem->solve_ms->observe(solve_ms);
    telemetry::Counter* outcome =
        terminal == JobState::kDone
            ? telem->done
            : terminal == JobState::kCancelled ? telem->cancelled
                                               : telem->failed;
    if (outcome != nullptr) outcome->increment();
    if (telem->deadline_hits != nullptr && job->request_.time_limit_ms > 0.0 &&
        job->ctx_.deadline().expired()) {
      telem->deadline_hits->increment();
    }
    if (telem->trace != nullptr) {
      telem->trace->async_end("job", "job", job->id());
    }
  }
  job->finish(terminal);
  const std::lock_guard<std::mutex> lock(jobs_mu_);
  live_jobs_.erase(job->id());
}

void SolveService::attach_telemetry(telemetry::TraceRecorder* trace,
                                    telemetry::MetricsRegistry* metrics) {
  auto telem = std::make_shared<FarmTelemetry>();
  telem->trace = trace;
  telem->metrics = metrics;
  if (metrics != nullptr) {
    telem->queue_depth =
        &metrics->gauge("etransform_farm_queue_depth",
                        "Jobs admitted but not yet claimed by a worker");
    telem->jobs_inflight = &metrics->gauge("etransform_farm_jobs_inflight",
                                           "Jobs currently solving");
    telem->submitted = &metrics->counter("etransform_farm_jobs_submitted_total",
                                         "Jobs admitted to the farm");
    telem->done = &metrics->counter("etransform_farm_jobs_done_total",
                                    "Jobs that completed their solve");
    telem->cancelled =
        &metrics->counter("etransform_farm_jobs_cancelled_total",
                          "Jobs cancelled while queued or mid-solve");
    telem->failed = &metrics->counter("etransform_farm_jobs_failed_total",
                                      "Jobs whose planner threw");
    telem->deadline_hits =
        &metrics->counter("etransform_farm_deadline_hits_total",
                          "Jobs whose per-job time limit expired");
    telem->wait_ms = &metrics->histogram("etransform_farm_job_wait_ms",
                                         "Queue wait per job in milliseconds");
    telem->solve_ms = &metrics->histogram(
        "etransform_farm_job_solve_ms", "Solve wall time per job in ms");
  }
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    telemetry_ = std::move(telem);
  }
  pool_.set_trace_recorder(trace);
}

void SolveService::cancel_all() {
  std::vector<JobHandle> snapshot;
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    snapshot.reserve(live_jobs_.size());
    for (const auto& [id, job] : live_jobs_) snapshot.push_back(job);
  }
  for (const auto& job : snapshot) job->cancel();
}

void SolveService::wait_all() {
  std::vector<JobHandle> snapshot;
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    snapshot.reserve(live_jobs_.size());
    for (const auto& [id, job] : live_jobs_) snapshot.push_back(job);
  }
  for (const auto& job : snapshot) job->wait();
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    for (const auto& job : snapshot) live_jobs_.erase(job->id());
  }
  // Let the paired pool tasks retire so outstanding() settles to zero.
  pool_.wait_idle();
}

// ---------------------------------------------------------------------------
// Portfolio racing

RaceOutcome race_portfolio(SolveService& service,
                           const ConsolidationInstance& instance,
                           const PlannerOptions& base, double time_limit_ms) {
  struct Shared {
    std::mutex mu;
    JobHandle exact;
    JobHandle heuristic;
    std::string first_finisher;
  };
  const auto shared = std::make_shared<Shared>();

  const auto make_request = [&](const char* leg,
                                PlannerOptions::Engine engine) {
    SolveRequest request;
    request.name = std::string("race-") + leg;
    request.instance = instance;
    request.options = base;
    request.options.engine = engine;
    request.time_limit_ms = time_limit_ms;
    request.priority = JobPriority::kHigh;
    request.on_complete = [shared, leg] {
      JobHandle loser;
      {
        const std::lock_guard<std::mutex> lock(shared->mu);
        if (!shared->first_finisher.empty()) return;  // we are the loser
        shared->first_finisher = leg;
        loser = std::string(leg) == "exact" ? shared->heuristic
                                            : shared->exact;
      }
      if (loser) loser->cancel();
    };
    return request;
  };

  {
    // Hold the lock across both submits: a leg that finishes instantly must
    // not look up the other handle before it exists.
    const std::lock_guard<std::mutex> lock(shared->mu);
    shared->exact =
        service.submit(make_request("exact", PlannerOptions::Engine::kExact));
    shared->heuristic = service.submit(
        make_request("heuristic", PlannerOptions::Engine::kHeuristic));
  }

  RaceOutcome outcome;
  outcome.exact_state = shared->exact->wait();
  outcome.heuristic_state = shared->heuristic->wait();
  outcome.exact_ms = shared->exact->solve_ms();
  outcome.heuristic_ms = shared->heuristic->solve_ms();
  {
    const std::lock_guard<std::mutex> lock(shared->mu);
    outcome.first_finisher = shared->first_finisher;
  }

  const bool exact_usable = shared->exact->has_report();
  const bool heuristic_usable = shared->heuristic->has_report();
  if (!exact_usable && !heuristic_usable) {
    throw InfeasibleError("race_portfolio: both engines failed (exact: " +
                          shared->exact->error() + "; heuristic: " +
                          shared->heuristic->error() + ")");
  }
  // Best incumbent wins — normally the first finisher's plan, but at a
  // shared deadline both legs return truncated incumbents and the cheaper
  // one is the answer.
  if (exact_usable &&
      (!heuristic_usable ||
       shared->exact->report().plan.cost.total() <=
           shared->heuristic->report().plan.cost.total())) {
    outcome.best = shared->exact->report();
    outcome.winner_engine = "exact";
  } else {
    outcome.best = shared->heuristic->report();
    outcome.winner_engine = "heuristic";
  }
  const JobState loser_state = outcome.winner_engine == "exact"
                                   ? outcome.heuristic_state
                                   : outcome.exact_state;
  outcome.loser_cancelled = loser_state == JobState::kCancelled;
  return outcome;
}

}  // namespace etransform
