// SolveFarm: the concurrent solve service.
//
// Turns the single-shot planner into a serving-shaped subsystem:
//
//  * JobQueue     — a priority queue of planner requests (kHigh before
//                   kNormal before kLow, FIFO within a class), decoupling
//                   admission order from execution order.
//  * SolveService — runs many EtransformPlanner instances concurrently on a
//                   work-stealing ThreadPool. Every job owns its instance
//                   copy, CostModel, and SolveContext, so jobs share no
//                   mutable state; job-level cancellation and per-job
//                   deadlines ride on SolveContext::request_cancel() and the
//                   context deadline. Worker threads are log-tagged with the
//                   job id for attributable multiplexed logs.
//  * race_portfolio — launches the exact (presolve -> branch-and-bound) and
//                   heuristic engines on the *same* instance in parallel;
//                   the first finisher cancels the other, which unwinds
//                   cooperatively (observable as JobState::kCancelled).
//                   Under a deadline the best incumbent of either engine is
//                   returned.
//
// Lifecycle of a job: kQueued -> kRunning -> {kDone, kCancelled, kFailed}.
// A job cancelled before it starts never runs; a job cancelled mid-solve
// finishes early with its best-effort plan attached (has_report() true).
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "common/progress.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "model/entities.h"
#include "planner/etransform_planner.h"

namespace etransform::telemetry {
class TraceRecorder;
class MetricsRegistry;
}  // namespace etransform::telemetry

namespace etransform {

/// Pre-resolved telemetry instruments shared by the service and its jobs
/// (defined in solve_farm.cpp; null pointer members mean "not attached").
struct FarmTelemetry;

/// Scheduling class of a job. Lower value = served first.
enum class JobPriority { kHigh = 0, kNormal = 1, kLow = 2 };

/// Lifecycle state of a job.
enum class JobState {
  kQueued,     // admitted, not yet picked up by a worker
  kRunning,    // a worker is solving it
  kDone,       // solved to completion (possibly deadline-truncated plan)
  kCancelled,  // cancel observed: either never ran, or unwound mid-solve
  kFailed,     // the planner threw (e.g. InfeasibleError); see error()
};

/// Human-readable state name.
[[nodiscard]] const char* to_string(JobState state);

/// One planner request. The instance is copied into the job so concurrent
/// jobs never share model data.
struct SolveRequest {
  std::string name;
  ConsolidationInstance instance;
  PlannerOptions options;
  /// Demand horizon the job plans over. A static (empty) horizon solves
  /// the single snapshot; a non-static one runs the time-expanded
  /// multi-period planner and the report carries PlannerReport::multi.
  PlanningHorizon horizon;
  /// Multi-period only: share one placement across all periods (the "best
  /// static plan over the horizon" competitor; see PlanInput).
  bool lock_placement = false;
  /// Per-job wall-clock budget in milliseconds; 0 = unlimited.
  double time_limit_ms = 0.0;
  JobPriority priority = JobPriority::kNormal;
  /// Request attribution id stamped into every trace span the job's threads
  /// record (SolveContext::trace_id). 0 picks the farm-assigned job id; the
  /// server overrides it with the server-side job id so a drained trace can
  /// be filtered back to the HTTP request that caused it.
  std::uint64_t trace_id = 0;
  /// Progress callbacks installed on the job's SolveContext before the solve
  /// starts (incumbents, bound improvements, nodes, ...). Invoked on the
  /// worker thread; must be cheap and must not touch the job handle.
  SolveEvents events;
  /// Optional warm-start basis handed to EtransformPlanner::plan(): the dual
  /// simplex restarts from it instead of folding a fresh basis (PR 6). Used
  /// by the server's replan path to chain a delta solve off the base job's
  /// root basis. Shared ownership because the snapshot typically lives in a
  /// cached PlannerReport that may be evicted mid-solve.
  std::shared_ptr<const lp::NamedBasis> root_warm;
  /// Optional completion hook, invoked on the worker thread right after the
  /// job reaches a terminal state (used by race_portfolio to cancel the
  /// loser). Must not block or throw.
  std::function<void()> on_complete;
};

/// Handle to a submitted job. All methods are thread-safe.
class SolveJob {
 public:
  [[nodiscard]] long long id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] JobState state() const;

  /// Requests cooperative cancellation: a queued job is discarded, a running
  /// job's SolveContext is cancelled and the solver stack unwinds at its
  /// next poll. Idempotent; no-op on terminal jobs.
  void cancel();

  /// True once cancel() was called (even if the job completed first).
  [[nodiscard]] bool cancel_requested() const;

  /// Blocks until the job reaches a terminal state and returns it.
  JobState wait() const;

  /// True when a PlannerReport is attached (kDone, or kCancelled mid-solve
  /// with a best-effort plan).
  [[nodiscard]] bool has_report() const;

  /// The job's report. Call only after wait() returned and has_report() is
  /// true (wait() orders the worker's result writes before the return).
  [[nodiscard]] const PlannerReport& report() const { return report_; }

  /// The planner error message for kFailed jobs ("" otherwise).
  [[nodiscard]] std::string error() const;

  /// Wall-clock milliseconds the solve ran (0 until it ran).
  [[nodiscard]] double solve_ms() const;

  /// The job's live progress timeline (incumbent / bound / gap / node-count
  /// samples published by the solver). Safe to read concurrently while the
  /// job runs — SolveProgress::snapshot() is wait-free — and stays readable
  /// after the job is terminal for as long as the handle is held.
  [[nodiscard]] const SolveProgress& progress() const { return progress_; }

  /// The request-attribution id this job runs under (stamped on trace
  /// spans). Fixed at submit: request.trace_id, or the job id when 0.
  [[nodiscard]] std::uint64_t trace_id() const { return ctx_.trace_id(); }

 private:
  friend class SolveService;
  friend class JobQueue;
  SolveJob(long long id, SolveRequest request);

  /// Transitions to a terminal state and fires on_complete. Returns false
  /// if the job was already terminal.
  bool finish(JobState terminal);

  const long long id_;
  const std::string name_;
  SolveRequest request_;

  mutable std::mutex mu_;
  mutable std::condition_variable terminal_cv_;
  JobState state_ = JobState::kQueued;
  bool cancel_requested_ = false;
  bool has_report_ = false;

  SolveContext ctx_;
  /// Owned here (not on the context) so readers holding the handle outlive
  /// the solve; ctx_ carries a pointer to it for the solver's publishes.
  SolveProgress progress_;
  PlannerReport report_;
  std::string error_;
  double solve_ms_ = 0.0;

  /// Started at admission; read by the worker to observe queue wait.
  Stopwatch wait_watch_;
  /// Shared with the service so cancel-path telemetry outlives detached
  /// handles. Set once at submit, immutable afterwards.
  std::shared_ptr<FarmTelemetry> telemetry_;
};

using JobHandle = std::shared_ptr<SolveJob>;

/// Thread-safe priority queue of jobs: kHigh before kNormal before kLow,
/// FIFO within a class. pop() skips jobs cancelled while queued.
class JobQueue {
 public:
  void push(JobHandle job);

  /// Highest-priority admitted job that is not cancelled, or nullptr when
  /// the queue is empty. Non-blocking: SolveService pairs every push with a
  /// pool task, so a pop always has a job to find unless cancellation
  /// emptied the queue.
  [[nodiscard]] JobHandle pop();

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    int priority;
    long long sequence;
    JobHandle job;
    bool operator>(const Entry& other) const {
      if (priority != other.priority) return priority > other.priority;
      return sequence > other.sequence;
    }
  };

  mutable std::mutex mu_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  long long next_sequence_ = 0;
};

/// The concurrent solve service.
class SolveService {
 public:
  /// Starts a farm with `num_threads` workers (<= 0: hardware concurrency).
  explicit SolveService(int num_threads = 0);

  /// Graceful shutdown: cancels everything still queued or running and
  /// waits for the workers to drain.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admits a request. Returns immediately with the job handle.
  JobHandle submit(SolveRequest request);

  /// Requests cancellation of every queued and running job.
  void cancel_all();

  /// Blocks until every admitted job is terminal.
  void wait_all();

  /// Jobs admitted but not yet claimed by a worker. Snapshot only — the
  /// depth may change before the caller acts on it; the server uses it as a
  /// backpressure signal, not an invariant.
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  [[nodiscard]] int num_threads() const { return pool_.num_threads(); }
  [[nodiscard]] ThreadPool& pool() { return pool_; }

  /// Attaches observability: every subsequent job records its lifecycle as
  /// async trace events keyed by job id (enqueue -> claim -> solve ->
  /// terminal), runs with `trace`/`metrics` on its SolveContext, and the
  /// farm maintains queue-depth/in-flight gauges, terminal-state counters,
  /// and wait/solve latency histograms in `metrics`. Either argument may be
  /// null; both must outlive the service. Jobs already admitted are
  /// unaffected.
  void attach_telemetry(telemetry::TraceRecorder* trace,
                        telemetry::MetricsRegistry* metrics);

 private:
  void run_job(const JobHandle& job);

  JobQueue queue_;
  mutable std::mutex jobs_mu_;
  std::map<long long, JobHandle> live_jobs_;  // admitted, not yet terminal
  long long next_id_ = 1;
  bool shutting_down_ = false;
  std::shared_ptr<FarmTelemetry> telemetry_;
  ThreadPool pool_;  // last member: workers stop before queues are destroyed
};

/// Outcome of a portfolio race (exact vs. heuristic on one instance).
struct RaceOutcome {
  /// The best plan either engine produced (the winner's, or — at a shared
  /// deadline — the cheaper of the two incumbents).
  PlannerReport best;
  /// Engine that produced `best`: "exact" or "heuristic".
  std::string winner_engine;
  /// Engine that crossed the finish line first (may differ from
  /// winner_engine only when both ran to the deadline).
  std::string first_finisher;
  /// Terminal states of the two legs.
  JobState exact_state = JobState::kQueued;
  JobState heuristic_state = JobState::kQueued;
  /// True when the losing leg observably unwound via cancellation.
  bool loser_cancelled = false;
  /// Per-leg solve wall times.
  double exact_ms = 0.0;
  double heuristic_ms = 0.0;
};

/// Races the exact and heuristic engines on `instance` under `base` options
/// (engine is overridden per leg). The first leg to finish cancels the
/// other. `time_limit_ms` bounds both legs (0 = unlimited). Throws only if
/// *both* legs fail; a single failed leg forfeits the race.
[[nodiscard]] RaceOutcome race_portfolio(SolveService& service,
                                         const ConsolidationInstance& instance,
                                         const PlannerOptions& base,
                                         double time_limit_ms = 0.0);

}  // namespace etransform
