#include "service/scenario_set.h"

#include <cstdio>
#include <utility>

#include "common/table.h"
#include "model/latency.h"
#include "report/report.h"

namespace etransform {

namespace {

/// Shortest %g rendering, for stable scenario names ("omega=0.25").
std::string number_name(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

}  // namespace

ScenarioSet::ScenarioSet(ConsolidationInstance base)
    : base_(std::move(base)) {}

void ScenarioSet::add(Scenario scenario) {
  scenarios_.push_back(std::move(scenario));
}

void ScenarioSet::add_spec(const ScenarioSpec& spec) {
  for (const double omega : spec.omegas) {
    Scenario scenario;
    scenario.name = "omega=" + number_name(omega);
    scenario.options = spec.base;
    scenario.options.business_impact_omega = omega;
    scenarios_.push_back(std::move(scenario));
  }
  for (const Money cost : spec.dr_costs) {
    Scenario scenario;
    scenario.name = "dr_cost=" + number_name(cost);
    scenario.options = spec.base;
    scenario.options.enable_dr = true;
    scenario.mutate = [cost](ConsolidationInstance& instance) {
      instance.params.dr_server_cost = cost;
    };
    scenarios_.push_back(std::move(scenario));
  }
  for (const Money penalty : spec.latency_penalties) {
    Scenario scenario;
    scenario.name = "penalty=" + number_name(penalty);
    scenario.options = spec.base;
    scenario.mutate = [penalty](ConsolidationInstance& instance) {
      for (auto& group : instance.groups) {
        if (group.latency_penalty.is_insensitive()) continue;
        std::vector<LatencyPenaltyStep> steps = group.latency_penalty.steps();
        for (auto& step : steps) step.penalty_per_user = penalty;
        group.latency_penalty = LatencyPenaltyFunction(std::move(steps));
      }
    };
    scenarios_.push_back(std::move(scenario));
  }
  if (spec.cut_configs) {
    struct Config {
      const char* name;
      bool gomory;
      bool cover;
    };
    static constexpr Config kConfigs[] = {
        {"cuts=off", false, false},
        {"cuts=gomory", true, false},
        {"cuts=cover", false, true},
        {"cuts=all", true, true},
    };
    for (const Config& config : kConfigs) {
      Scenario scenario;
      scenario.name = config.name;
      scenario.options = spec.base;
      scenario.options.milp.cuts.enable = config.gomory || config.cover;
      scenario.options.milp.cuts.gomory = config.gomory;
      scenario.options.milp.cuts.cover = config.cover;
      scenarios_.push_back(std::move(scenario));
    }
  }
  for (const ScenarioSpec::HorizonCase& horizon_case : spec.horizons) {
    validate_horizon(base_, horizon_case.horizon);
    const std::string label =
        !horizon_case.name.empty()
            ? horizon_case.name
            : (horizon_case.horizon.is_static()
                   ? std::string("static")
                   : horizon_fingerprint(horizon_case.horizon));
    Scenario scenario;
    scenario.name = "horizon=" + label;
    scenario.options = spec.base;
    scenario.horizon = horizon_case.horizon;
    scenarios_.push_back(std::move(scenario));
    if (spec.locked_horizon_variants && !horizon_case.horizon.is_static()) {
      Scenario locked;
      locked.name = "horizon=" + label + "/locked";
      locked.options = spec.base;
      locked.horizon = horizon_case.horizon;
      locked.lock_placement = true;
      scenarios_.push_back(std::move(locked));
    }
  }
}

void ScenarioSet::add_omega_sweep(const std::vector<double>& omegas,
                                  const PlannerOptions& base) {
  ScenarioSpec spec;
  spec.base = base;
  spec.omegas = omegas;
  add_spec(spec);
}

void ScenarioSet::add_dr_cost_sweep(const std::vector<Money>& costs,
                                    const PlannerOptions& base) {
  ScenarioSpec spec;
  spec.base = base;
  spec.dr_costs = costs;
  add_spec(spec);
}

void ScenarioSet::add_latency_penalty_sweep(
    const std::vector<Money>& penalties, const PlannerOptions& base) {
  ScenarioSpec spec;
  spec.base = base;
  spec.latency_penalties = penalties;
  add_spec(spec);
}

void ScenarioSet::add_cut_config_sweep(const PlannerOptions& base) {
  ScenarioSpec spec;
  spec.base = base;
  spec.cut_configs = true;
  add_spec(spec);
}

std::vector<ScenarioResult> run_scenarios(const ScenarioSet& set,
                                          SolveService& service,
                                          double time_limit_ms) {
  std::vector<JobHandle> jobs;
  jobs.reserve(set.size());
  for (const Scenario& scenario : set.scenarios()) {
    SolveRequest request;
    request.name = scenario.name;
    request.instance = set.base();
    if (scenario.mutate) scenario.mutate(request.instance);
    request.options = scenario.options;
    request.horizon = scenario.horizon;
    request.lock_placement = scenario.lock_placement;
    request.time_limit_ms = time_limit_ms;
    jobs.push_back(service.submit(std::move(request)));
  }

  std::vector<ScenarioResult> results;
  results.reserve(jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const JobState state = jobs[k]->wait();
    ScenarioResult result;
    result.name = set.scenarios()[k].name;
    if (jobs[k]->has_report()) {
      result.report = jobs[k]->report();
    } else {
      result.failed = true;
      result.error = jobs[k]->error().empty() ? to_string(state)
                                              : jobs[k]->error();
    }
    results.push_back(std::move(result));
  }
  return results;
}

std::string render_scenario_results(
    const std::vector<ScenarioResult>& results) {
  TextTable table({"scenario", "total ($/mo)", "ops ($/mo)",
                   "latency ($/mo)", "violations", "solver", "note"});
  for (const ScenarioResult& result : results) {
    if (result.failed) {
      table.add_row({result.name, "-", "-", "-", "-", "-", result.error});
      continue;
    }
    std::string note;
    if (result.report.proven_optimal) note = "optimal";
    if (result.report.interrupted) {
      note += note.empty() ? "interrupted" : " interrupted";
    }
    if (result.report.is_multi_period()) {
      // Horizon scenarios report the weighted horizon totals, so a sweep
      // row is comparable to its static siblings' monthly figures.
      const CostBreakdown& cost = result.report.multi.cost;
      int violations = 0;
      for (const Plan& plan : result.report.multi.periods) {
        violations += plan.latency_violations;
      }
      table.add_row({result.name, format_money(cost.total()),
                     format_money(cost.operational()),
                     format_money(cost.latency_penalty),
                     std::to_string(violations),
                     result.report.used_exact_solver ? "exact" : "heuristic",
                     note});
      continue;
    }
    const AlgorithmResult row = summarize(result.name, result.report.plan);
    table.add_row({result.name, format_money(row.total()),
                   format_money(row.operational_cost),
                   format_money(row.latency_penalty),
                   std::to_string(row.latency_violations),
                   result.report.used_exact_solver ? "exact" : "heuristic",
                   note});
  }
  return table.render();
}

}  // namespace etransform
