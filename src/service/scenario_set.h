// ScenarioSet: batch what-if sweeps over one base instance.
//
// The paper's consultants explore families of scenarios around a single
// estate: the business-impact sweep (omega, Fig. 10), the DR server price
// sweep (Fig. 8), latency-penalty sweeps (Fig. 7), and engine/economies
// ablations. A ScenarioSet names each variant as a (PlannerOptions, instance
// mutation) pair over a shared base instance; run_scenarios() fans the set
// out across a SolveService and returns results in *scenario order*, so a
// sweep's report is byte-identical whether it ran on 1 thread or 8.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/money.h"
#include "model/entities.h"
#include "planner/etransform_planner.h"
#include "service/solve_farm.h"

namespace etransform {

/// One what-if variant: planner options plus an optional instance mutation
/// applied to a private copy of the base instance.
struct Scenario {
  std::string name;
  PlannerOptions options;
  /// Applied to this scenario's copy of the base instance (may be null).
  std::function<void(ConsolidationInstance&)> mutate;
  /// Demand horizon the scenario is planned over (static by default).
  PlanningHorizon horizon;
  /// Multi-period only: solve the one-placement-fits-all-periods variant
  /// (the "best static plan over the horizon" competitor).
  bool lock_placement = false;
};

/// Declarative sweep description: every populated dimension appends one
/// named scenario per value, all sharing `base` options. Dimensions are
/// independent axes (one parameter varies per scenario), matching how the
/// paper's figures sweep a single knob at a time. This is the single
/// builder behind the legacy add_*_sweep helpers.
struct ScenarioSpec {
  PlannerOptions base;
  /// "omega=<v>": business-impact cap sweep (Fig. 10).
  std::vector<double> omegas;
  /// "dr_cost=<v>": backup server price sweep, DR forced on (Fig. 8).
  std::vector<Money> dr_costs;
  /// "penalty=<v>": per-user latency penalty sweep (Fig. 7).
  std::vector<Money> latency_penalties;
  /// The four "cuts=*" cutting-plane configurations.
  bool cut_configs = false;

  /// A named demand timeline (e.g. from make_traffic_curve); the scenario
  /// solves the multi-period problem over it.
  struct HorizonCase {
    std::string name;
    PlanningHorizon horizon;
  };
  /// "horizon=<name>": multi-period scenarios, one per timeline.
  std::vector<HorizonCase> horizons;
  /// Also append "horizon=<name>/locked" for each timeline — the same
  /// horizon solved with one shared placement, so a sweep directly reports
  /// the right-sizing payoff (time-expanded vs. best static).
  bool locked_horizon_variants = false;
};

/// An ordered collection of scenarios over one base instance.
class ScenarioSet {
 public:
  explicit ScenarioSet(ConsolidationInstance base);

  /// Appends one scenario.
  void add(Scenario scenario);

  /// Expands every populated dimension of `spec` into named scenarios (in
  /// declaration order: omegas, dr_costs, latency_penalties, cut configs,
  /// horizons). Horizons are validated against the base instance here, so a
  /// bad sweep fails at build time rather than as N failed rows.
  void add_spec(const ScenarioSpec& spec);

  /// Appends "omega=<v>" scenarios sweeping the business-impact cap
  /// (Fig. 10) with otherwise-`base` options. Delegates to add_spec.
  void add_omega_sweep(const std::vector<double>& omegas,
                       const PlannerOptions& base = {});

  /// Appends "dr_cost=<v>" DR scenarios sweeping the backup server price
  /// zeta (Fig. 8). DR is forced on.
  void add_dr_cost_sweep(const std::vector<Money>& costs,
                         const PlannerOptions& base = {});

  /// Appends "penalty=<v>" scenarios replacing every latency-sensitive
  /// group's per-user step penalties with `v` (Fig. 7's x-axis).
  void add_latency_penalty_sweep(const std::vector<Money>& penalties,
                                 const PlannerOptions& base = {});

  /// Appends one scenario per cut configuration ("cuts=off", "cuts=gomory",
  /// "cuts=cover", "cuts=all") with otherwise-`base` options, so a SolveFarm
  /// sweep — or race_first_result — can race the cutting-plane setups
  /// against each other on the same instance.
  void add_cut_config_sweep(const PlannerOptions& base = {});

  [[nodiscard]] const ConsolidationInstance& base() const { return base_; }
  [[nodiscard]] const std::vector<Scenario>& scenarios() const {
    return scenarios_;
  }
  [[nodiscard]] std::size_t size() const { return scenarios_.size(); }

 private:
  ConsolidationInstance base_;
  std::vector<Scenario> scenarios_;
};

/// Result of one scenario solve.
struct ScenarioResult {
  std::string name;
  /// Valid when !failed.
  PlannerReport report;
  bool failed = false;
  std::string error;
};

/// Fans the set out across the service and blocks until every scenario is
/// terminal. Results are returned in scenario order regardless of completion
/// order. `time_limit_ms` bounds each scenario independently (0 =
/// unlimited). Scenario failures (e.g. an infeasible omega) are reported in
/// the result row, not thrown — one bad variant must not sink the sweep.
[[nodiscard]] std::vector<ScenarioResult> run_scenarios(
    const ScenarioSet& set, SolveService& service, double time_limit_ms = 0.0);

/// Renders the sweep as a text table (one row per scenario, in scenario
/// order). Deliberately timing-free so the report is deterministic across
/// thread counts.
[[nodiscard]] std::string render_scenario_results(
    const std::vector<ScenarioResult>& results);

}  // namespace etransform
