// Local-search improvement of consolidation plans.
//
// Used as the large-instance path (the Federal dataset's 190k-binary MILP is
// beyond a from-scratch exact solver — documented substitution in DESIGN.md)
// and as a polish step after greedy seeding. Moves:
//   * primary relocation  (group i: site a -> a')
//   * primary swap        (groups i, k exchange sites; escapes capacity locks)
//   * secondary relocation (DR: group i's backup b -> b')
// Every move is evaluated exactly — site aggregates with volume-discount
// schedules, per-placement latency/VPN terms, and the single-failure shared
// backup sizing law G_b = max_a load(a, b) — and applied first-improvement
// until a full pass finds nothing (or the pass budget runs out).
#pragma once

#include <cstdint>

#include "cost/cost_model.h"
#include "model/plan.h"

namespace etransform {

/// Tuning for improve_plan.
struct LocalSearchOptions {
  /// Maximum full passes over all groups.
  int max_passes = 30;
  /// Enables primary-swap moves (quadratic in groups per pass; disable for
  /// very large instances).
  bool enable_swaps = true;
  /// Shuffle seed for the scan order (first-improvement search benefits
  /// from order diversity between passes).
  std::uint64_t seed = 1;
  /// DR plans only: size backup pools dedicated (sum per site) instead of
  /// shared (single-failure max). Use for multi-failure planning.
  bool dedicated_backups = false;
  /// Business-impact cap: no site may host more than this many primaries
  /// (0 = unlimited). The planner derives it from omega * M.
  int max_groups_per_site = 0;
};

/// Improves `plan` in place. The plan must be structurally feasible
/// (check_plan empty) before the call; feasibility is preserved. Repricing
/// (price_plan) runs on exit. Returns true if the total cost improved.
bool improve_plan(const CostModel& model, Plan& plan,
                  const LocalSearchOptions& options = {});

}  // namespace etransform
