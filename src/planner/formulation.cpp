#include "planner/formulation.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "common/error.h"

namespace etransform {

namespace {

using lp::Model;
using lp::Relation;
using lp::RowStructure;
using lp::Sense;
using lp::Term;

/// Appends the (possibly tier-linearized) cost of applying `schedule` to the
/// quantity expressed by `quantity` (a linear form with non-negative range,
/// bounded above by `max_quantity`) to the objective, scaled by `weight`
/// (the period duration in the time-expanded formulation; 1 statically).
/// `use_tiers` false prices everything at the base tier.
///
/// Tier semantics note: at an exact tier boundary the LP may price at the
/// next (cheaper) tier while the evaluator stays on the earlier one; plans
/// are re-priced exactly after decoding, so this only perturbs the solver's
/// view by a boundary epsilon.
void add_schedule_cost(Model& model, std::vector<Term>& objective,
                       const StepSchedule& schedule,
                       const std::vector<Term>& quantity, double max_quantity,
                       bool use_tiers, double weight,
                       const std::string& prefix) {
  if (quantity.empty() || max_quantity <= 0.0 || weight == 0.0) return;
  if (!use_tiers || schedule.is_flat()) {
    const Money price = schedule.unit_price(0.0) * weight;
    if (price == 0.0) return;
    for (const Term& t : quantity) {
      objective.push_back(Term{t.var, t.coef * price});
    }
    return;
  }
  // Normalize the tier variables to [0, 1] (quantities span megabits to
  // servers — nine orders of magnitude — and an unscaled mix wrecks the
  // simplex's pivot tolerances). q'_k = q_k / max_quantity.
  const double scale = max_quantity;
  const auto& tiers = schedule.tiers();
  double lower_edge = 0.0;
  std::vector<Term> q_sum;
  std::vector<Term> z_sum;
  for (std::size_t k = 0; k < tiers.size(); ++k) {
    if (lower_edge > max_quantity) break;  // tier unreachable
    const double upper_edge = std::min(tiers[k].upto, max_quantity) / scale;
    const double floor_edge = lower_edge / scale;
    const std::string suffix = prefix + "_t" + std::to_string(k);
    const int q = model.add_continuous("q_" + suffix, 0.0, upper_edge);
    const int z = model.add_binary("z_" + suffix);
    // q'_k <= upper_edge * z_k ; q'_k >= floor_edge * z_k.
    model.add_constraint("cap_" + suffix, {{q, 1.0}, {z, -upper_edge}},
                         Relation::kLessEqual, 0.0);
    if (floor_edge > 0.0) {
      model.add_constraint("floor_" + suffix, {{q, 1.0}, {z, -floor_edge}},
                           Relation::kGreaterEqual, 0.0);
    }
    if (tiers[k].unit_price != 0.0) {
      objective.push_back(Term{q, tiers[k].unit_price * scale * weight});
    }
    q_sum.push_back(Term{q, 1.0});
    z_sum.push_back(Term{z, 1.0});
    lower_edge = tiers[k].upto;
  }
  // Exactly one active tier; the active tier's q carries the quantity.
  model.add_constraint("one_tier_" + prefix, z_sum, Relation::kEqual, 1.0);
  std::vector<Term> balance = q_sum;
  for (const Term& t : quantity) {
    balance.push_back(Term{t.var, -t.coef / scale});
  }
  model.add_constraint("qty_" + prefix, std::move(balance), Relation::kEqual,
                       0.0);
}

}  // namespace

bool group_allowed_at(const ApplicationGroup& group, int site) {
  if (group.pinned_site >= 0) return site == group.pinned_site;
  if (group.allowed_sites.empty()) return true;
  return std::find(group.allowed_sites.begin(), group.allowed_sites.end(),
                   site) != group.allowed_sites.end();
}

namespace {

/// The classic single-snapshot formulation (paper §III-B / §IV).
Formulation build_static(const CostModel& cost,
                         const FormulationOptions& options) {
  const auto& instance = cost.instance();
  const int num_groups = instance.num_groups();
  const int num_sites = instance.num_sites();
  const bool fixed_primary =
      options.backup_sizing == BackupSizing::kSharedFixedPrimary;
  if (fixed_primary) {
    if (!options.enable_dr) {
      throw InvalidInputError(
          "formulation: fixed-primary sizing requires DR mode");
    }
    if (options.fixed_primary == nullptr ||
        static_cast<int>(options.fixed_primary->size()) != num_groups) {
      throw InvalidInputError(
          "formulation: fixed-primary sizing needs a primary per group");
    }
  }
  if (options.business_impact_omega <= 0.0 ||
      options.business_impact_omega > 1.0) {
    throw InvalidInputError("formulation: omega must be in (0, 1]");
  }

  Formulation f;
  Model& model = f.model;
  std::vector<Term> objective;
  double objective_constant = 0.0;

  // ---- X variables (primary placement) -----------------------------------
  f.x.assign(static_cast<std::size_t>(num_groups),
             std::vector<int>(static_cast<std::size_t>(num_sites), -1));
  if (!fixed_primary) {
    for (int i = 0; i < num_groups; ++i) {
      const auto& group = instance.groups[static_cast<std::size_t>(i)];
      std::vector<Term> assign;
      for (int j = 0; j < num_sites; ++j) {
        if (!group_allowed_at(group, j)) continue;
        if (instance.sites[static_cast<std::size_t>(j)].capacity_servers <
            group.servers) {
          continue;
        }
        const int var = model.add_binary("x_" + std::to_string(i) + "_" +
                                         std::to_string(j));
        f.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = var;
        assign.push_back(Term{var, 1.0});
        // Per-placement objective: latency penalty + VPN WAN.
        Money c = cost.latency_penalty(i, j);
        if (instance.use_vpn_links) c += cost.wan_cost(i, j);
        if (c != 0.0) objective.push_back(Term{var, c});
      }
      if (assign.empty()) {
        throw InfeasibleError("formulation: group '" + group.name +
                              "' has no feasible site");
      }
      model.add_constraint("assign_" + std::to_string(i), std::move(assign),
                           Relation::kEqual, 1.0);
    }
  } else {
    // X fixed: contribute constants to the objective.
    for (int i = 0; i < num_groups; ++i) {
      const int j = (*options.fixed_primary)[static_cast<std::size_t>(i)];
      if (j < 0 || j >= num_sites) {
        throw InvalidInputError("formulation: fixed primary out of range");
      }
      objective_constant += cost.latency_penalty(i, j);
      if (instance.use_vpn_links) objective_constant += cost.wan_cost(i, j);
    }
  }

  // ---- Y and G variables (DR) ---------------------------------------------
  if (options.enable_dr) {
    f.y.assign(static_cast<std::size_t>(num_groups),
               std::vector<int>(static_cast<std::size_t>(num_sites), -1));
    f.g.assign(static_cast<std::size_t>(num_sites), -1);
    for (int j = 0; j < num_sites; ++j) {
      f.g[static_cast<std::size_t>(j)] =
          model.add_continuous("g_" + std::to_string(j), 0.0,
                               instance.sites[static_cast<std::size_t>(j)]
                                   .capacity_servers);
      objective.push_back(Term{f.g[static_cast<std::size_t>(j)],
                               instance.params.dr_server_cost});
    }
    for (int i = 0; i < num_groups; ++i) {
      const auto& group = instance.groups[static_cast<std::size_t>(i)];
      // Legal/allowed-site constraints bind the secondary too; pins bind
      // only the primary.
      const auto secondary_allowed = [&](int j) {
        if (instance.sites[static_cast<std::size_t>(j)].capacity_servers <
            group.servers) {
          return false;
        }
        if (group.allowed_sites.empty()) return true;
        return std::find(group.allowed_sites.begin(),
                         group.allowed_sites.end(),
                         j) != group.allowed_sites.end();
      };
      std::vector<Term> assign;
      for (int j = 0; j < num_sites; ++j) {
        if (!secondary_allowed(j)) continue;
        if (fixed_primary &&
            (*options.fixed_primary)[static_cast<std::size_t>(i)] == j) {
          continue;  // primary and secondary must differ
        }
        const int var = model.add_binary("y_" + std::to_string(i) + "_" +
                                         std::to_string(j));
        f.y[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = var;
        assign.push_back(Term{var, 1.0});
        Money c = cost.latency_penalty(i, j);
        if (instance.use_vpn_links) c += cost.wan_cost(i, j);
        if (c != 0.0) objective.push_back(Term{var, c});
        // Primary and secondary must differ: X_ij + Y_ij <= 1.
        const int x_var =
            f.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        if (x_var >= 0) {
          model.add_constraint("distinct_" + std::to_string(i) + "_" +
                                   std::to_string(j),
                               {{x_var, 1.0}, {var, 1.0}},
                               Relation::kLessEqual, 1.0);
        }
      }
      if (assign.empty()) {
        throw InfeasibleError("formulation: group '" + group.name +
                              "' has no feasible DR site");
      }
      model.add_constraint("dr_assign_" + std::to_string(i),
                           std::move(assign), Relation::kEqual, 1.0);
    }

    // Backup sizing rows.
    switch (options.backup_sizing) {
      case BackupSizing::kDedicated: {
        for (int b = 0; b < num_sites; ++b) {
          std::vector<Term> row{{f.g[static_cast<std::size_t>(b)], 1.0}};
          bool any = false;
          for (int i = 0; i < num_groups; ++i) {
            const int y_var =
                f.y[static_cast<std::size_t>(i)][static_cast<std::size_t>(b)];
            if (y_var < 0) continue;
            row.push_back(Term{
                y_var,
                -static_cast<double>(
                    instance.groups[static_cast<std::size_t>(i)].servers)});
            any = true;
          }
          if (any) {
            model.add_constraint("size_" + std::to_string(b), std::move(row),
                                 Relation::kGreaterEqual, 0.0);
          }
        }
        break;
      }
      case BackupSizing::kSharedFixedPrimary: {
        // G_b >= sum_{i: primary_i = a} S_i Y_ib for every (a, b).
        for (int a = 0; a < num_sites; ++a) {
          for (int b = 0; b < num_sites; ++b) {
            if (a == b) continue;
            std::vector<Term> row{{f.g[static_cast<std::size_t>(b)], 1.0}};
            bool any = false;
            for (int i = 0; i < num_groups; ++i) {
              if ((*options.fixed_primary)[static_cast<std::size_t>(i)] != a) {
                continue;
              }
              const int y_var = f.y[static_cast<std::size_t>(i)][
                  static_cast<std::size_t>(b)];
              if (y_var < 0) continue;
              row.push_back(Term{
                  y_var,
                  -static_cast<double>(
                      instance.groups[static_cast<std::size_t>(i)].servers)});
              any = true;
            }
            if (any) {
              model.add_constraint(
                  "size_" + std::to_string(a) + "_" + std::to_string(b),
                  std::move(row), Relation::kGreaterEqual, 0.0);
            }
          }
        }
        break;
      }
      case BackupSizing::kSharedJoint: {
        // J_abc >= X_ca + Y_cb - 1 (continuous); G_b >= sum_c J_abc S_c.
        std::vector<std::vector<std::vector<Term>>> sizing_rows(
            static_cast<std::size_t>(num_sites));
        for (auto& per_b : sizing_rows) {
          per_b.resize(static_cast<std::size_t>(num_sites));
        }
        for (int i = 0; i < num_groups; ++i) {
          const auto servers = static_cast<double>(
              instance.groups[static_cast<std::size_t>(i)].servers);
          for (int a = 0; a < num_sites; ++a) {
            const int x_var =
                f.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(a)];
            if (x_var < 0) continue;
            for (int b = 0; b < num_sites; ++b) {
              if (a == b) continue;
              const int y_var = f.y[static_cast<std::size_t>(i)][
                  static_cast<std::size_t>(b)];
              if (y_var < 0) continue;
              const int j_var = model.add_continuous(
                  "j_" + std::to_string(a) + "_" + std::to_string(b) + "_" +
                      std::to_string(i),
                  0.0, 1.0);
              model.add_constraint(
                  "and_" + std::to_string(a) + "_" + std::to_string(b) + "_" +
                      std::to_string(i),
                  {{j_var, 1.0}, {x_var, -1.0}, {y_var, -1.0}},
                  Relation::kGreaterEqual, -1.0);
              sizing_rows[static_cast<std::size_t>(a)][
                  static_cast<std::size_t>(b)]
                  .push_back(Term{j_var, -servers});
            }
          }
        }
        for (int a = 0; a < num_sites; ++a) {
          for (int b = 0; b < num_sites; ++b) {
            auto& row = sizing_rows[static_cast<std::size_t>(a)][
                static_cast<std::size_t>(b)];
            if (row.empty()) continue;
            row.push_back(Term{f.g[static_cast<std::size_t>(b)], 1.0});
            model.add_constraint(
                "size_" + std::to_string(a) + "_" + std::to_string(b),
                std::move(row), Relation::kGreaterEqual, 0.0);
          }
        }
        break;
      }
    }
  }

  // ---- capacity and business-impact rows ----------------------------------
  for (int j = 0; j < num_sites; ++j) {
    const auto& site = instance.sites[static_cast<std::size_t>(j)];
    std::vector<Term> capacity;
    double fixed_servers = 0.0;
    for (int i = 0; i < num_groups; ++i) {
      const auto servers = static_cast<double>(
          instance.groups[static_cast<std::size_t>(i)].servers);
      const int x_var =
          f.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (x_var >= 0) {
        capacity.push_back(Term{x_var, servers});
      } else if (fixed_primary &&
                 (*options.fixed_primary)[static_cast<std::size_t>(i)] == j) {
        fixed_servers += servers;
      }
    }
    if (options.enable_dr) {
      capacity.push_back(Term{f.g[static_cast<std::size_t>(j)], 1.0});
    }
    if (!capacity.empty()) {
      model.add_constraint("capacity_" + std::to_string(j), capacity,
                           Relation::kLessEqual,
                           site.capacity_servers - fixed_servers);
      // Structure tag for the cover-cut separator: a pure-binary capacity
      // row is a knapsack (with DR enabled the continuous G_j term makes the
      // separator skip it, which is correct — the tag stays advisory).
      model.set_row_structure(model.num_constraints() - 1,
                              RowStructure::kKnapsack);
    }

    if (!fixed_primary && options.business_impact_omega < 1.0) {
      std::vector<Term> impact;
      for (int i = 0; i < num_groups; ++i) {
        const int x_var =
            f.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        if (x_var >= 0) impact.push_back(Term{x_var, 1.0});
      }
      if (!impact.empty()) {
        model.add_constraint("impact_" + std::to_string(j), std::move(impact),
                             Relation::kLessEqual,
                             options.business_impact_omega * num_groups);
        // Omega rows are unit-coefficient knapsacks over the site's x
        // binaries; the business-impact tag lets separators prioritize them.
        model.set_row_structure(model.num_constraints() - 1,
                                RowStructure::kBusinessImpact);
      }
    }

    // ---- per-site aggregate costs (economies of scale) --------------------
    // Server aggregate: primaries (+ fixed primaries as constants) + backups.
    std::vector<Term> server_terms;
    for (int i = 0; i < num_groups; ++i) {
      const int x_var =
          f.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (x_var >= 0) {
        server_terms.push_back(Term{
            x_var, static_cast<double>(
                       instance.groups[static_cast<std::size_t>(i)].servers)});
      }
    }
    if (options.enable_dr) {
      server_terms.push_back(Term{f.g[static_cast<std::size_t>(j)], 1.0});
    }
    // Fixed-primary server constants are priced into the objective constant
    // at base rates (stage 2 never changes the primaries' tier anyway).
    if (fixed_primary && fixed_servers > 0.0) {
      const auto& p = instance.params;
      objective_constant +=
          site.space_cost_per_server.unit_price(fixed_servers) * fixed_servers;
      objective_constant += site.power_cost_per_kwh.unit_price(0.0) *
                            fixed_servers * p.server_power_kw *
                            p.hours_per_month;
      objective_constant += site.labor_cost_per_admin.unit_price(0.0) *
                            fixed_servers / p.servers_per_admin;
    }
    const double max_servers = site.capacity_servers;
    add_schedule_cost(model, objective, site.space_cost_per_server,
                      server_terms, max_servers, options.economies_of_scale,
                      1.0, "space_" + std::to_string(j));
    // Power: kWh = servers * alpha * hours.
    const auto& p = instance.params;
    const double kwh_per_server = p.server_power_kw * p.hours_per_month;
    std::vector<Term> kwh_terms;
    kwh_terms.reserve(server_terms.size());
    for (const Term& t : server_terms) {
      kwh_terms.push_back(Term{t.var, t.coef * kwh_per_server});
    }
    add_schedule_cost(model, objective, site.power_cost_per_kwh, kwh_terms,
                      max_servers * kwh_per_server,
                      options.economies_of_scale, 1.0,
                      "power_" + std::to_string(j));
    // Labor: admins = servers / beta.
    std::vector<Term> admin_terms;
    admin_terms.reserve(server_terms.size());
    for (const Term& t : server_terms) {
      admin_terms.push_back(Term{t.var, t.coef / p.servers_per_admin});
    }
    add_schedule_cost(model, objective, site.labor_cost_per_admin, admin_terms,
                      max_servers / p.servers_per_admin,
                      options.economies_of_scale, 1.0,
                      "labor_" + std::to_string(j));
    // Flat-mode WAN: data aggregate (primary + DR replication).
    if (!instance.use_vpn_links) {
      std::vector<Term> data_terms;
      double max_data = 0.0;
      double fixed_data = 0.0;
      for (int i = 0; i < num_groups; ++i) {
        const double data =
            instance.groups[static_cast<std::size_t>(i)].monthly_data_megabits;
        max_data += data * (options.enable_dr ? 2.0 : 1.0);
        const int x_var =
            f.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        if (x_var >= 0 && data > 0.0) {
          data_terms.push_back(Term{x_var, data});
        } else if (fixed_primary &&
                   (*options.fixed_primary)[static_cast<std::size_t>(i)] ==
                       j) {
          fixed_data += data;
        }
        if (options.enable_dr && data > 0.0) {
          const int y_var =
              f.y[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
          if (y_var >= 0) data_terms.push_back(Term{y_var, data});
        }
      }
      if (fixed_data > 0.0) {
        objective_constant +=
            site.wan_cost_per_megabit.unit_price(fixed_data) * fixed_data;
      }
      add_schedule_cost(model, objective, site.wan_cost_per_megabit,
                        data_terms, max_data, options.economies_of_scale,
                        1.0, "wan_" + std::to_string(j));
    }
  }

  // ---- separation (shared-risk) rows --------------------------------------
  if (!fixed_primary) {
    for (std::size_t s = 0; s < instance.separations.size(); ++s) {
      const auto& sep = instance.separations[s];
      for (int j = 0; j < num_sites; ++j) {
        const int xa = f.x[static_cast<std::size_t>(sep.group_a)][
            static_cast<std::size_t>(j)];
        const int xb = f.x[static_cast<std::size_t>(sep.group_b)][
            static_cast<std::size_t>(j)];
        if (xa >= 0 && xb >= 0) {
          model.add_constraint(
              "separate_" + std::to_string(s) + "_" + std::to_string(j),
              {{xa, 1.0}, {xb, 1.0}}, Relation::kLessEqual, 1.0);
        }
      }
    }
  }

  model.set_objective(Sense::kMinimize, std::move(objective),
                      objective_constant);
  model.normalize();
  return f;
}

/// One period of the time-expanded model: the demand-scaled instance and
/// its exact cost model (the instance member outlives the model; unique_ptr
/// keeps both addresses stable while the vector grows).
struct PeriodModel {
  ConsolidationInstance instance;
  std::optional<CostModel> cost;
};

/// The time-expanded multi-period formulation: the static blocks replicated
/// per demand period ("@p<t>" name suffixes) with period-weighted
/// coefficients, plus the MV migration coupling — or, with lock_placement,
/// one shared placement block evaluated against every period (the best
/// static plan over the horizon).
Formulation build_time_expanded(const CostModel& base_cost,
                                const FormulationOptions& options) {
  const auto& base = base_cost.instance();
  const PlanningHorizon& horizon = *options.horizon;
  validate_horizon(base, horizon);
  if (options.backup_sizing == BackupSizing::kSharedFixedPrimary) {
    throw InvalidInputError(
        "formulation: fixed-primary sizing is single-snapshot only");
  }
  if (options.business_impact_omega <= 0.0 ||
      options.business_impact_omega > 1.0) {
    throw InvalidInputError("formulation: omega must be in (0, 1]");
  }
  const int num_periods = horizon.num_periods();
  const int num_groups = base.num_groups();
  const int num_sites = base.num_sites();
  const bool locked = options.lock_placement;
  const Money migration_rate = horizon.migration_cost_per_server;

  // Period-scaled instances and exact per-period cost models. CostModel
  // construction re-validates each scaled snapshot, so a pin onto a failed
  // site or a peak that outgrows every allowed site surfaces here.
  std::vector<std::unique_ptr<PeriodModel>> periods;
  periods.reserve(static_cast<std::size_t>(num_periods));
  for (int t = 0; t < num_periods; ++t) {
    auto period = std::make_unique<PeriodModel>();
    period->instance = apply_period(base, horizon, t);
    period->cost.emplace(period->instance);
    periods.push_back(std::move(period));
  }
  const auto suffix = [](int t) {
    std::string s = "@p";
    s += std::to_string(t);
    return s;
  };
  const auto servers_at = [&](int t, int i) {
    return periods[static_cast<std::size_t>(t)]
        ->instance.groups[static_cast<std::size_t>(i)]
        .servers;
  };
  // Per-placement objective coefficient of (i, j) in period t at the
  // period's demand: latency penalty plus VPN WAN.
  const auto placement_cost = [&](int t, int i, int j) {
    const CostModel& cost = *periods[static_cast<std::size_t>(t)]->cost;
    Money c = cost.latency_penalty(i, j);
    if (base.use_vpn_links) c += cost.wan_cost(i, j);
    return c;
  };

  Formulation f;
  Model& model = f.model;
  std::vector<Term> objective;
  f.xt.assign(static_cast<std::size_t>(num_periods),
              std::vector<std::vector<int>>(
                  static_cast<std::size_t>(num_groups),
                  std::vector<int>(static_cast<std::size_t>(num_sites), -1)));

  // ---- X variables --------------------------------------------------------
  if (locked) {
    // One shared placement block: (i, j) is usable only if it fits in every
    // period, and its objective coefficient is the weighted sum over the
    // horizon.
    for (int i = 0; i < num_groups; ++i) {
      const auto& group = base.groups[static_cast<std::size_t>(i)];
      std::vector<Term> assign;
      for (int j = 0; j < num_sites; ++j) {
        if (!group_allowed_at(group, j)) continue;
        bool fits = true;
        for (int t = 0; t < num_periods && fits; ++t) {
          fits = periods[static_cast<std::size_t>(t)]
                     ->instance.sites[static_cast<std::size_t>(j)]
                     .capacity_servers >= servers_at(t, i);
        }
        if (!fits) continue;
        const int var = model.add_binary("x_" + std::to_string(i) + "_" +
                                         std::to_string(j));
        for (int t = 0; t < num_periods; ++t) {
          f.xt[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]
              [static_cast<std::size_t>(j)] = var;
        }
        assign.push_back(Term{var, 1.0});
        Money c = 0.0;
        for (int t = 0; t < num_periods; ++t) {
          c += horizon.period_weight(t) * placement_cost(t, i, j);
        }
        if (c != 0.0) objective.push_back(Term{var, c});
      }
      if (assign.empty()) {
        throw InfeasibleError("formulation: group '" + group.name +
                              "' has no site feasible across all periods");
      }
      model.add_constraint("assign_" + std::to_string(i), std::move(assign),
                           Relation::kEqual, 1.0);
    }
  } else {
    for (int t = 0; t < num_periods; ++t) {
      const auto& instance_t = periods[static_cast<std::size_t>(t)]->instance;
      const double w = horizon.period_weight(t);
      for (int i = 0; i < num_groups; ++i) {
        const auto& group = instance_t.groups[static_cast<std::size_t>(i)];
        std::vector<Term> assign;
        for (int j = 0; j < num_sites; ++j) {
          if (!group_allowed_at(group, j)) continue;
          if (instance_t.sites[static_cast<std::size_t>(j)].capacity_servers <
              group.servers) {
            continue;
          }
          const int var = model.add_binary("x_" + std::to_string(i) + "_" +
                                           std::to_string(j) + suffix(t));
          f.xt[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]
              [static_cast<std::size_t>(j)] = var;
          assign.push_back(Term{var, 1.0});
          const Money c = w * placement_cost(t, i, j);
          if (c != 0.0) objective.push_back(Term{var, c});
        }
        if (assign.empty()) {
          throw InfeasibleError("formulation: group '" + group.name +
                                "' has no feasible site in period " +
                                horizon.period_name(t));
        }
        model.add_constraint("assign_" + std::to_string(i) + suffix(t),
                             std::move(assign), Relation::kEqual, 1.0);
      }
    }
  }

  // ---- migration coupling: MV_it >= X_ijt - X_ij(t-1) ---------------------
  // Continuous suffices: minimization drives MV to the move indicator. The
  // charge is rate * period-t servers, unweighted (a one-time switching
  // cost, not a monthly rate).
  if (!locked && migration_rate != 0.0 && num_periods > 1) {
    f.move.assign(static_cast<std::size_t>(num_periods - 1),
                  std::vector<int>(static_cast<std::size_t>(num_groups), -1));
    for (int t = 1; t < num_periods; ++t) {
      for (int i = 0; i < num_groups; ++i) {
        const int mv = model.add_continuous(
            "mv_" + std::to_string(i) + suffix(t), 0.0, 1.0);
        f.move[static_cast<std::size_t>(t - 1)][static_cast<std::size_t>(i)] =
            mv;
        objective.push_back(Term{
            mv, migration_rate * static_cast<double>(servers_at(t, i))});
        for (int j = 0; j < num_sites; ++j) {
          const int x_now = f.xt[static_cast<std::size_t>(t)]
              [static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
          if (x_now < 0) continue;
          std::vector<Term> row{{mv, 1.0}, {x_now, -1.0}};
          const int x_prev = f.xt[static_cast<std::size_t>(t - 1)]
              [static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
          // Absent X_ij(t-1) is an implicit 0: staying is impossible, any
          // arrival at j is a move.
          if (x_prev >= 0) row.push_back(Term{x_prev, 1.0});
          model.add_constraint("mvrow_" + std::to_string(i) + "_" +
                                   std::to_string(j) + suffix(t),
                               std::move(row), Relation::kGreaterEqual, 0.0);
        }
      }
    }
  }

  // ---- Y and G variables (DR), replicated per period ----------------------
  if (options.enable_dr) {
    f.yt.assign(static_cast<std::size_t>(num_periods),
                std::vector<std::vector<int>>(
                    static_cast<std::size_t>(num_groups),
                    std::vector<int>(static_cast<std::size_t>(num_sites),
                                     -1)));
    f.gt.assign(static_cast<std::size_t>(num_periods),
                std::vector<int>(static_cast<std::size_t>(num_sites), -1));
    for (int t = 0; t < num_periods; ++t) {
      const auto& instance_t = periods[static_cast<std::size_t>(t)]->instance;
      const double w = horizon.period_weight(t);
      for (int j = 0; j < num_sites; ++j) {
        const int g = model.add_continuous(
            "g_" + std::to_string(j) + suffix(t), 0.0,
            instance_t.sites[static_cast<std::size_t>(j)].capacity_servers);
        f.gt[static_cast<std::size_t>(t)][static_cast<std::size_t>(j)] = g;
        objective.push_back(Term{g, w * base.params.dr_server_cost});
      }
    }
    const auto secondary_allowed = [&](const ConsolidationInstance& inst,
                                       int i, int j) {
      const auto& group = inst.groups[static_cast<std::size_t>(i)];
      if (inst.sites[static_cast<std::size_t>(j)].capacity_servers <
          group.servers) {
        return false;
      }
      if (group.allowed_sites.empty()) return true;
      return std::find(group.allowed_sites.begin(),
                       group.allowed_sites.end(),
                       j) != group.allowed_sites.end();
    };
    if (locked) {
      for (int i = 0; i < num_groups; ++i) {
        std::vector<Term> assign;
        for (int j = 0; j < num_sites; ++j) {
          bool fits = true;
          for (int t = 0; t < num_periods && fits; ++t) {
            fits = secondary_allowed(
                periods[static_cast<std::size_t>(t)]->instance, i, j);
          }
          if (!fits) continue;
          const int var = model.add_binary("y_" + std::to_string(i) + "_" +
                                           std::to_string(j));
          for (int t = 0; t < num_periods; ++t) {
            f.yt[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]
                [static_cast<std::size_t>(j)] = var;
          }
          assign.push_back(Term{var, 1.0});
          Money c = 0.0;
          for (int t = 0; t < num_periods; ++t) {
            c += horizon.period_weight(t) * placement_cost(t, i, j);
          }
          if (c != 0.0) objective.push_back(Term{var, c});
          const int x_var = f.xt[0][static_cast<std::size_t>(i)]
              [static_cast<std::size_t>(j)];
          if (x_var >= 0) {
            model.add_constraint("distinct_" + std::to_string(i) + "_" +
                                     std::to_string(j),
                                 {{x_var, 1.0}, {var, 1.0}},
                                 Relation::kLessEqual, 1.0);
          }
        }
        if (assign.empty()) {
          throw InfeasibleError(
              "formulation: group '" +
              base.groups[static_cast<std::size_t>(i)].name +
              "' has no DR site feasible across all periods");
        }
        model.add_constraint("dr_assign_" + std::to_string(i),
                             std::move(assign), Relation::kEqual, 1.0);
      }
    } else {
      for (int t = 0; t < num_periods; ++t) {
        const auto& instance_t =
            periods[static_cast<std::size_t>(t)]->instance;
        const double w = horizon.period_weight(t);
        for (int i = 0; i < num_groups; ++i) {
          std::vector<Term> assign;
          for (int j = 0; j < num_sites; ++j) {
            if (!secondary_allowed(instance_t, i, j)) continue;
            const int var = model.add_binary("y_" + std::to_string(i) + "_" +
                                             std::to_string(j) + suffix(t));
            f.yt[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]
                [static_cast<std::size_t>(j)] = var;
            assign.push_back(Term{var, 1.0});
            const Money c = w * placement_cost(t, i, j);
            if (c != 0.0) objective.push_back(Term{var, c});
            const int x_var = f.xt[static_cast<std::size_t>(t)]
                [static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
            if (x_var >= 0) {
              model.add_constraint("distinct_" + std::to_string(i) + "_" +
                                       std::to_string(j) + suffix(t),
                                   {{x_var, 1.0}, {var, 1.0}},
                                   Relation::kLessEqual, 1.0);
            }
          }
          if (assign.empty()) {
            throw InfeasibleError(
                "formulation: group '" +
                base.groups[static_cast<std::size_t>(i)].name +
                "' has no feasible DR site in period " +
                horizon.period_name(t));
          }
          model.add_constraint("dr_assign_" + std::to_string(i) + suffix(t),
                               std::move(assign), Relation::kEqual, 1.0);
        }
      }
    }

    // Backup sizing rows, per period.
    for (int t = 0; t < num_periods; ++t) {
      const auto& yt = f.yt[static_cast<std::size_t>(t)];
      const auto& gt = f.gt[static_cast<std::size_t>(t)];
      if (options.backup_sizing == BackupSizing::kDedicated) {
        for (int b = 0; b < num_sites; ++b) {
          std::vector<Term> row{{gt[static_cast<std::size_t>(b)], 1.0}};
          bool any = false;
          for (int i = 0; i < num_groups; ++i) {
            const int y_var =
                yt[static_cast<std::size_t>(i)][static_cast<std::size_t>(b)];
            if (y_var < 0) continue;
            row.push_back(
                Term{y_var, -static_cast<double>(servers_at(t, i))});
            any = true;
          }
          if (any) {
            model.add_constraint("size_" + std::to_string(b) + suffix(t),
                                 std::move(row), Relation::kGreaterEqual,
                                 0.0);
          }
        }
      } else {
        // kSharedJoint: J_abc per period (the planner gates total J count).
        std::vector<std::vector<std::vector<Term>>> sizing_rows(
            static_cast<std::size_t>(num_sites));
        for (auto& per_b : sizing_rows) {
          per_b.resize(static_cast<std::size_t>(num_sites));
        }
        for (int i = 0; i < num_groups; ++i) {
          const auto servers = static_cast<double>(servers_at(t, i));
          for (int a = 0; a < num_sites; ++a) {
            const int x_var = f.xt[static_cast<std::size_t>(t)]
                [static_cast<std::size_t>(i)][static_cast<std::size_t>(a)];
            if (x_var < 0) continue;
            for (int b = 0; b < num_sites; ++b) {
              if (a == b) continue;
              const int y_var =
                  yt[static_cast<std::size_t>(i)][static_cast<std::size_t>(
                      b)];
              if (y_var < 0) continue;
              const int j_var = model.add_continuous(
                  "j_" + std::to_string(a) + "_" + std::to_string(b) + "_" +
                      std::to_string(i) + suffix(t),
                  0.0, 1.0);
              model.add_constraint(
                  "and_" + std::to_string(a) + "_" + std::to_string(b) +
                      "_" + std::to_string(i) + suffix(t),
                  {{j_var, 1.0}, {x_var, -1.0}, {y_var, -1.0}},
                  Relation::kGreaterEqual, -1.0);
              sizing_rows[static_cast<std::size_t>(a)]
                  [static_cast<std::size_t>(b)]
                      .push_back(Term{j_var, -servers});
            }
          }
        }
        for (int a = 0; a < num_sites; ++a) {
          for (int b = 0; b < num_sites; ++b) {
            auto& row = sizing_rows[static_cast<std::size_t>(a)]
                [static_cast<std::size_t>(b)];
            if (row.empty()) continue;
            row.push_back(Term{gt[static_cast<std::size_t>(b)], 1.0});
            model.add_constraint(
                "size_" + std::to_string(a) + "_" + std::to_string(b) +
                    suffix(t),
                std::move(row), Relation::kGreaterEqual, 0.0);
          }
        }
      }
    }
  }

  // ---- per-period capacity, business-impact, and aggregate-cost rows ------
  for (int t = 0; t < num_periods; ++t) {
    const auto& instance_t = periods[static_cast<std::size_t>(t)]->instance;
    const double w = horizon.period_weight(t);
    const auto& xt = f.xt[static_cast<std::size_t>(t)];
    for (int j = 0; j < num_sites; ++j) {
      const auto& site = instance_t.sites[static_cast<std::size_t>(j)];
      std::vector<Term> capacity;
      for (int i = 0; i < num_groups; ++i) {
        const int x_var =
            xt[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        if (x_var >= 0) {
          capacity.push_back(
              Term{x_var, static_cast<double>(servers_at(t, i))});
        }
      }
      if (options.enable_dr) {
        capacity.push_back(Term{
            f.gt[static_cast<std::size_t>(t)][static_cast<std::size_t>(j)],
            1.0});
      }
      if (!capacity.empty()) {
        model.add_constraint("capacity_" + std::to_string(j) + suffix(t),
                             capacity, Relation::kLessEqual,
                             site.capacity_servers);
        model.set_row_structure(model.num_constraints() - 1,
                                RowStructure::kKnapsack);
      }

      // Group-count caps don't scale with demand: one row per period block,
      // or a single row for the shared locked block.
      if (options.business_impact_omega < 1.0 && (!locked || t == 0)) {
        std::vector<Term> impact;
        for (int i = 0; i < num_groups; ++i) {
          const int x_var =
              xt[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
          if (x_var >= 0) impact.push_back(Term{x_var, 1.0});
        }
        if (!impact.empty()) {
          model.add_constraint(
              "impact_" + std::to_string(j) + (locked ? "" : suffix(t)),
              std::move(impact), Relation::kLessEqual,
              options.business_impact_omega * num_groups);
          model.set_row_structure(model.num_constraints() - 1,
                                  RowStructure::kBusinessImpact);
        }
      }

      std::vector<Term> server_terms;
      for (int i = 0; i < num_groups; ++i) {
        const int x_var =
            xt[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        if (x_var >= 0) {
          server_terms.push_back(
              Term{x_var, static_cast<double>(servers_at(t, i))});
        }
      }
      if (options.enable_dr) {
        server_terms.push_back(Term{
            f.gt[static_cast<std::size_t>(t)][static_cast<std::size_t>(j)],
            1.0});
      }
      const double max_servers = site.capacity_servers;
      add_schedule_cost(model, objective, site.space_cost_per_server,
                        server_terms, max_servers,
                        options.economies_of_scale, w,
                        "space_" + std::to_string(j) + suffix(t));
      const auto& p = instance_t.params;
      const double kwh_per_server = p.server_power_kw * p.hours_per_month;
      std::vector<Term> kwh_terms;
      kwh_terms.reserve(server_terms.size());
      for (const Term& term : server_terms) {
        kwh_terms.push_back(Term{term.var, term.coef * kwh_per_server});
      }
      add_schedule_cost(model, objective, site.power_cost_per_kwh, kwh_terms,
                        max_servers * kwh_per_server,
                        options.economies_of_scale, w,
                        "power_" + std::to_string(j) + suffix(t));
      std::vector<Term> admin_terms;
      admin_terms.reserve(server_terms.size());
      for (const Term& term : server_terms) {
        admin_terms.push_back(Term{term.var, term.coef / p.servers_per_admin});
      }
      add_schedule_cost(model, objective, site.labor_cost_per_admin,
                        admin_terms, max_servers / p.servers_per_admin,
                        options.economies_of_scale, w,
                        "labor_" + std::to_string(j) + suffix(t));
      if (!instance_t.use_vpn_links) {
        std::vector<Term> data_terms;
        double max_data = 0.0;
        for (int i = 0; i < num_groups; ++i) {
          const double data = instance_t.groups[static_cast<std::size_t>(i)]
                                  .monthly_data_megabits;
          max_data += data * (options.enable_dr ? 2.0 : 1.0);
          const int x_var =
              xt[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
          if (x_var >= 0 && data > 0.0) {
            data_terms.push_back(Term{x_var, data});
          }
          if (options.enable_dr && data > 0.0) {
            const int y_var = f.yt[static_cast<std::size_t>(t)]
                [static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
            if (y_var >= 0) data_terms.push_back(Term{y_var, data});
          }
        }
        add_schedule_cost(model, objective, site.wan_cost_per_megabit,
                          data_terms, max_data, options.economies_of_scale,
                          w, "wan_" + std::to_string(j) + suffix(t));
      }
    }
  }

  // ---- separation (shared-risk) rows, per period block --------------------
  for (std::size_t s = 0; s < base.separations.size(); ++s) {
    const auto& sep = base.separations[s];
    for (int t = 0; t < num_periods; ++t) {
      if (locked && t > 0) break;  // shared block: one row suffices
      for (int j = 0; j < num_sites; ++j) {
        const int xa = f.xt[static_cast<std::size_t>(t)]
            [static_cast<std::size_t>(sep.group_a)]
            [static_cast<std::size_t>(j)];
        const int xb = f.xt[static_cast<std::size_t>(t)]
            [static_cast<std::size_t>(sep.group_b)]
            [static_cast<std::size_t>(j)];
        if (xa >= 0 && xb >= 0) {
          model.add_constraint(
              "separate_" + std::to_string(s) + "_" + std::to_string(j) +
                  (locked ? std::string() : suffix(t)),
              {{xa, 1.0}, {xb, 1.0}}, Relation::kLessEqual, 1.0);
        }
      }
    }
  }

  model.set_objective(Sense::kMinimize, std::move(objective), 0.0);
  model.normalize();
  return f;
}

}  // namespace

Formulation build_formulation(const CostModel& cost,
                              const FormulationOptions& options) {
  if (options.horizon != nullptr && !options.horizon->is_static()) {
    return build_time_expanded(cost, options);
  }
  return build_static(cost, options);
}

Plan decode_plan(const CostModel& cost, const Formulation& formulation,
                 const FormulationOptions& options,
                 const std::vector<double>& values,
                 const std::string& algorithm) {
  const auto& instance = cost.instance();
  const int num_groups = instance.num_groups();
  const int num_sites = instance.num_sites();
  if (values.size() !=
      static_cast<std::size_t>(formulation.model.num_variables())) {
    throw InvalidInputError("decode_plan: value vector size mismatch");
  }
  Plan plan;
  plan.algorithm = algorithm;
  plan.primary.assign(static_cast<std::size_t>(num_groups), -1);

  const bool fixed_primary =
      options.backup_sizing == BackupSizing::kSharedFixedPrimary;
  for (int i = 0; i < num_groups; ++i) {
    if (fixed_primary) {
      plan.primary[static_cast<std::size_t>(i)] =
          (*options.fixed_primary)[static_cast<std::size_t>(i)];
      continue;
    }
    for (int j = 0; j < num_sites; ++j) {
      const int var = formulation.x[static_cast<std::size_t>(i)][
          static_cast<std::size_t>(j)];
      if (var >= 0 && values[static_cast<std::size_t>(var)] > 0.5) {
        plan.primary[static_cast<std::size_t>(i)] = j;
        break;
      }
    }
    if (plan.primary[static_cast<std::size_t>(i)] < 0) {
      throw InvalidInputError("decode_plan: group " + std::to_string(i) +
                              " has no selected site");
    }
  }
  if (options.enable_dr) {
    plan.secondary.assign(static_cast<std::size_t>(num_groups), -1);
    for (int i = 0; i < num_groups; ++i) {
      for (int j = 0; j < num_sites; ++j) {
        const int var = formulation.y[static_cast<std::size_t>(i)][
            static_cast<std::size_t>(j)];
        if (var >= 0 && values[static_cast<std::size_t>(var)] > 0.5) {
          plan.secondary[static_cast<std::size_t>(i)] = j;
          break;
        }
      }
      if (plan.secondary[static_cast<std::size_t>(i)] < 0) {
        throw InvalidInputError("decode_plan: group " + std::to_string(i) +
                                " has no selected DR site");
      }
    }
    // Recompute exact sizing from the assignment: the sharing law (tighter
    // than the LP's G under a dedicated surrogate, identical under shared
    // sizing) or dedicated sums for multi-failure plans.
    plan.backup_servers =
        options.decode_dedicated_counts
            ? dedicated_backup_servers(instance, plan.primary, plan.secondary)
            : required_backup_servers(instance, plan.primary, plan.secondary);
  }
  cost.price_plan(plan);
  return plan;
}

MultiPeriodPlan decode_multi_period_plan(const CostModel& cost,
                                         const Formulation& formulation,
                                         const FormulationOptions& options,
                                         const std::vector<double>& values,
                                         const std::string& algorithm) {
  if (options.horizon == nullptr || options.horizon->is_static() ||
      !formulation.is_time_expanded()) {
    throw InvalidInputError(
        "decode_multi_period_plan: not a time-expanded formulation");
  }
  if (values.size() !=
      static_cast<std::size_t>(formulation.model.num_variables())) {
    throw InvalidInputError(
        "decode_multi_period_plan: value vector size mismatch");
  }
  const auto& base = cost.instance();
  const PlanningHorizon& horizon = *options.horizon;
  const int num_groups = base.num_groups();
  const int num_sites = base.num_sites();
  std::vector<Plan> plans;
  plans.reserve(static_cast<std::size_t>(horizon.num_periods()));
  for (int t = 0; t < horizon.num_periods(); ++t) {
    const ConsolidationInstance instance_t = apply_period(base, horizon, t);
    const CostModel cost_t(instance_t);
    Plan plan;
    plan.algorithm = algorithm;
    plan.primary.assign(static_cast<std::size_t>(num_groups), -1);
    const auto& xt = formulation.xt[static_cast<std::size_t>(t)];
    for (int i = 0; i < num_groups; ++i) {
      for (int j = 0; j < num_sites; ++j) {
        const int var =
            xt[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        if (var >= 0 && values[static_cast<std::size_t>(var)] > 0.5) {
          plan.primary[static_cast<std::size_t>(i)] = j;
          break;
        }
      }
      if (plan.primary[static_cast<std::size_t>(i)] < 0) {
        throw InvalidInputError("decode_multi_period_plan: group " +
                                std::to_string(i) +
                                " has no selected site in period " +
                                horizon.period_name(t));
      }
    }
    if (options.enable_dr) {
      plan.secondary.assign(static_cast<std::size_t>(num_groups), -1);
      const auto& yt = formulation.yt[static_cast<std::size_t>(t)];
      for (int i = 0; i < num_groups; ++i) {
        for (int j = 0; j < num_sites; ++j) {
          const int var =
              yt[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
          if (var >= 0 && values[static_cast<std::size_t>(var)] > 0.5) {
            plan.secondary[static_cast<std::size_t>(i)] = j;
            break;
          }
        }
        if (plan.secondary[static_cast<std::size_t>(i)] < 0) {
          throw InvalidInputError("decode_multi_period_plan: group " +
                                  std::to_string(i) +
                                  " has no selected DR site in period " +
                                  horizon.period_name(t));
        }
      }
      plan.backup_servers =
          options.decode_dedicated_counts
              ? dedicated_backup_servers(instance_t, plan.primary,
                                         plan.secondary)
              : required_backup_servers(instance_t, plan.primary,
                                        plan.secondary);
    }
    cost_t.price_plan(plan);
    plans.push_back(std::move(plan));
  }
  return assemble_multi_period(base, horizon, std::move(plans), algorithm);
}

}  // namespace etransform
