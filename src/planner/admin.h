// The admin interface for iterative modification (paper Fig. 5).
//
// eTransform "allows the user to iteratively interact and change the initial
// solution by adding more constraints". A ScenarioSession owns a working
// copy of the instance; the admin pins groups, forbids sites, or demands
// shared-risk separation, then calls replan() to get the updated "to-be"
// state. Every modification is logged for the session report.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/entities.h"
#include "planner/etransform_planner.h"

namespace etransform {

/// An interactive planning session over a mutable copy of an instance.
class ScenarioSession {
 public:
  /// Takes a working copy of the instance. Throws InvalidInputError if the
  /// instance fails validation.
  ScenarioSession(ConsolidationInstance instance, PlannerOptions options = {});

  /// Pins `group` to `site` (clears any previous pin). Throws
  /// InvalidInputError on bad indices.
  void pin_group(int group, int site);

  /// Removes a pin.
  void unpin_group(int group);

  /// Removes `site` from the group's allowed set (initializing the set to
  /// "all sites" first if it was unconstrained). Throws InvalidInputError on
  /// bad indices or when this would leave the group with no sites.
  void forbid_site(int group, int site);

  /// Adds a shared-risk separation constraint between two groups.
  void require_separation(int group_a, int group_b);

  /// Replaces the group's latency penalty function.
  void set_latency_penalty(int group, LatencyPenaltyFunction penalty);

  /// Replaces the demand horizon the session plans over (static by
  /// default). Throws InvalidInputError when the horizon is inconsistent
  /// with the instance.
  void set_horizon(PlanningHorizon horizon);

  [[nodiscard]] const PlanningHorizon& horizon() const { return horizon_; }

  /// Re-plans under the current constraints. Throws InfeasibleError if the
  /// accumulated constraints are unsatisfiable. Successive replans hand the
  /// previous exact solve's root basis back to the planner
  /// (PlannerReport::root_basis), so each modification re-solve restarts
  /// the root relaxation instead of solving the LP from scratch.
  const PlannerReport& replan();

  /// The most recent plan, if replan() has been called.
  [[nodiscard]] const std::optional<PlannerReport>& last_report() const {
    return report_;
  }

  /// Human-readable log of every modification made this session.
  [[nodiscard]] const std::vector<std::string>& modification_log() const {
    return log_;
  }

  [[nodiscard]] const ConsolidationInstance& instance() const {
    return instance_;
  }

 private:
  void check_group(int group) const;
  void check_site(int site) const;

  ConsolidationInstance instance_;
  PlannerOptions options_;
  PlanningHorizon horizon_;
  std::optional<PlannerReport> report_;
  /// Root basis of the last exact replan, kept across the report_.reset()
  /// that every modification performs so the next replan can warm-start.
  std::shared_ptr<const lp::NamedBasis> root_basis_;
  std::vector<std::string> log_;
};

}  // namespace etransform
