// Phased migration scheduling: turning a "to-be" plan into executable waves.
//
// A transformation program does not move a thousand applications over one
// weekend. This module batches the moves into waves subject to the
// operational limits migration teams actually face:
//   * per-wave WAN budget — the bytes that can be copied in one window
//     (each group's move transfers its monthly data volume once),
//   * per-wave move count — how many cutovers the teams can run at once,
//   * shared-risk separation — two groups under a separation constraint
//     never move in the same wave (one stays up while the other cuts over),
//   * DR ordering — a group's backup site must have its pool provisioned in
//     an earlier or equal wave, so failover exists from day one.
// Scheduling is first-fit-decreasing by data volume, which keeps the wave
// count near the bin-packing lower bound; the result is validated and the
// lower bound reported.
#pragma once

#include <vector>

#include "model/entities.h"
#include "model/plan.h"

namespace etransform {

/// Operational limits for one migration wave.
struct MigrationLimits {
  /// Max megabits copied per wave; 0 = unlimited.
  double wan_budget_megabits = 0.0;
  /// Max group moves per wave; 0 = unlimited.
  int max_moves = 0;
};

/// One wave: groups cut over together; backup pools provisioned first.
struct MigrationWave {
  /// Group indices moving in this wave.
  std::vector<int> groups;
  /// Sites whose DR pools are provisioned at the start of this wave.
  std::vector<int> provisioned_sites;
  /// Megabits copied in this wave.
  double data_megabits = 0.0;
};

/// The full schedule.
struct MigrationSchedule {
  std::vector<MigrationWave> waves;
  /// Simple bin-packing lower bound on the wave count (data / budget and
  /// moves / max_moves, rounded up).
  int lower_bound_waves = 0;

  [[nodiscard]] int wave_count() const {
    return static_cast<int>(waves.size());
  }
};

/// Builds a schedule moving every group exactly once from its as-is center
/// to its planned site. Throws InvalidInputError if the plan does not match
/// the instance or a limit makes some single move impossible (a group's
/// data exceeding the WAN budget).
[[nodiscard]] MigrationSchedule schedule_migration(
    const ConsolidationInstance& instance, const Plan& plan,
    const MigrationLimits& limits = {});

/// Validation: every group scheduled exactly once, limits respected in
/// every wave, separated pairs in different waves, and each DR group's
/// backup site provisioned no later than its move. Returns human-readable
/// violations (empty = valid).
[[nodiscard]] std::vector<std::string> check_schedule(
    const ConsolidationInstance& instance, const Plan& plan,
    const MigrationLimits& limits, const MigrationSchedule& schedule);

}  // namespace etransform
