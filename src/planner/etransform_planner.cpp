#include "planner/etransform_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>

#include "baselines/baselines.h"
#include "common/error.h"
#include "common/logging.h"
#include "lp/presolve.h"
#include "planner/formulation.h"
#include "planner/lagrangian.h"

namespace etransform {

namespace {

/// Number of feasible (group, site) assignment pairs.
long long count_assignment_vars(const ConsolidationInstance& instance) {
  long long count = 0;
  for (const auto& group : instance.groups) {
    for (int j = 0; j < instance.num_sites(); ++j) {
      if (group_allowed_at(group, j) &&
          instance.sites[static_cast<std::size_t>(j)].capacity_servers >=
              group.servers) {
        ++count;
      }
    }
  }
  return count;
}

}  // namespace

EtransformPlanner::EtransformPlanner(PlannerOptions options)
    : options_(options) {}

PlannerReport EtransformPlanner::plan(const PlanInput& input,
                                      SolveContext& ctx) const {
  if (input.model == nullptr) {
    throw InvalidInputError("planner: PlanInput.model is required");
  }
  if (input.horizon.is_static() && input.lock_placement) {
    throw InvalidInputError(
        "planner: lock_placement needs a non-static horizon");
  }
  SolveScope scope(ctx, "planner");
  PlannerReport report =
      input.horizon.is_static()
          ? plan_dispatch(*input.model, ctx, input.root_warm)
          : plan_multi_period(input, ctx);
  scope.close();
  report.stats = scope.stats();
  report.interrupted = ctx.should_stop();
  return report;
}

#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
PlannerReport EtransformPlanner::plan(const CostModel& model,
                                      SolveContext& ctx,
                                      const lp::NamedBasis* root_warm)
    const {
  PlanInput input;
  input.model = &model;
  input.root_warm = root_warm;
  return plan(input, ctx);
}
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

PlannerReport EtransformPlanner::plan_dispatch(
    const CostModel& model, SolveContext& ctx,
    const lp::NamedBasis* root_warm) const {
  const auto& instance = model.instance();
  const long long x_vars = count_assignment_vars(instance);
  const long long joint_j_vars =
      x_vars * static_cast<long long>(instance.num_sites());

  using Engine = PlannerOptions::Engine;
  Engine engine = options_.engine;
  if (engine == Engine::kAuto) {
    engine = x_vars <= options_.exact_var_limit ? Engine::kExact
                                                : Engine::kHeuristic;
  }

  if (engine == Engine::kHeuristic) {
    return plan_heuristic(model, ctx);
  }

  // Exact path.
  if (!options_.enable_dr) {
    return plan_exact(model, /*joint_dr=*/false, ctx, root_warm);
  }
  if (options_.dr_sizing == PlannerOptions::DrSizing::kDedicated) {
    // Dedicated sizing is a plain linear term: the "surrogate" formulation
    // is exact here, no sharing variables needed.
    return plan_exact(model, /*joint_dr=*/false, ctx, root_warm);
  }
  if (joint_j_vars <= options_.joint_dr_var_limit) {
    return plan_exact(model, /*joint_dr=*/true, ctx, root_warm);
  }
  return plan_two_stage_dr(model, /*exact_stage1=*/true, ctx);
}

namespace {

/// Solves a formulation MILP through the presolve -> branch-and-bound
/// pipeline: presolve shrinks the model (the formulations carry plenty of
/// singleton tier rows), B&B solves the reduction, and the incumbent is
/// postsolved back to formulation variable indices. Returns kInfeasible
/// directly when presolve proves it. options.presolve.enable skips the
/// reduction entirely (useful for A/B runs and for keeping the
/// formulation's row-structure tags visible to the cover separator).
milp::MilpSolution solve_formulation_milp(
    const lp::Model& model, const milp::SolverOptions& options,
    SolveContext& ctx, const lp::NamedBasis* root_warm,
    std::shared_ptr<const lp::NamedBasis>* named_root_out) {
  const milp::BranchAndBoundSolver solver(options);
  // `root_warm` comes from a solve of a *variant* of this model (the
  // iterative replan loop): remap it by name onto the standard form this
  // solve is actually going to run — the delta may have added or removed
  // columns/rows, and presolve may reduce the two models differently.
  const auto warm_for = [&](const lp::Model& solved) {
    std::optional<lp::BasisSnapshot> mapped;
    if (root_warm != nullptr) mapped = lp::remap_basis(*root_warm, solved);
    return mapped;
  };
  // Names the solved model's root basis for the report, so a future replan
  // can remap it in turn.
  const auto name_root = [&](const milp::MilpSolution& solution,
                             const lp::Model& solved) {
    if (named_root_out == nullptr || solution.root_basis == nullptr) return;
    *named_root_out = std::make_shared<const lp::NamedBasis>(
        lp::name_basis(solved, *solution.root_basis));
  };
  if (!options.presolve.enable) {
    const std::optional<lp::BasisSnapshot> warm = warm_for(model);
    milp::MilpSolution solution =
        solver.solve(model, ctx, warm ? &*warm : nullptr);
    name_root(solution, model);
    return solution;
  }
  const lp::PresolveResult presolved = lp::presolve(model, ctx);
  if (presolved.status == lp::PresolveStatus::kInfeasible) {
    milp::MilpSolution solution;
    solution.status = milp::MilpStatus::kInfeasible;
    return solution;
  }
  ET_LOG(kInfo) << "planner: presolve removed " << presolved.vars_removed
                << " vars, " << presolved.rows_removed << " rows";
  const std::optional<lp::BasisSnapshot> warm = warm_for(presolved.reduced);
  milp::MilpSolution solution =
      solver.solve(presolved.reduced, ctx, warm ? &*warm : nullptr);
  name_root(solution, presolved.reduced);
  if (solution.has_incumbent()) {
    solution.values = lp::postsolve(presolved, solution.values);
  }
  return solution;
}

/// True when a MILP solve delivered an incumbent that can be decoded into a
/// plan (optimal, budget-limited, or interrupted with a solution in hand).
bool usable_incumbent(const milp::MilpSolution& solution) {
  switch (solution.status) {
    case milp::MilpStatus::kOptimal:
    case milp::MilpStatus::kFeasible:
      return true;
    case milp::MilpStatus::kTimeLimit:
    case milp::MilpStatus::kCancelled:
      return solution.has_incumbent();
    case milp::MilpStatus::kInfeasible:
    case milp::MilpStatus::kUnbounded:
    case milp::MilpStatus::kNoSolutionFound:
      return false;
  }
  return false;
}

}  // namespace

PlannerReport EtransformPlanner::plan_exact(
    const CostModel& model, bool joint_dr, SolveContext& ctx,
    const lp::NamedBasis* root_warm) const {
  const bool dedicated =
      options_.dr_sizing == PlannerOptions::DrSizing::kDedicated;
  FormulationOptions formulation_options;
  formulation_options.enable_dr = options_.enable_dr;
  formulation_options.business_impact_omega = options_.business_impact_omega;
  formulation_options.economies_of_scale = options_.economies_of_scale;
  formulation_options.backup_sizing = joint_dr ? BackupSizing::kSharedJoint
                                               : BackupSizing::kDedicated;
  formulation_options.decode_dedicated_counts = dedicated;
  Formulation formulation;
  {
    SolveScope formulation_scope(ctx, "formulation");
    formulation = build_formulation(model, formulation_options);
    formulation_scope.stats().add("variables",
                                  formulation.model.num_variables());
    formulation_scope.stats().add("rows",
                                  formulation.model.num_constraints());
  }
  ET_LOG(kInfo) << "planner: exact MILP with "
                << formulation.model.num_variables() << " vars, "
                << formulation.model.num_constraints() << " rows";

  std::shared_ptr<const lp::NamedBasis> named_root;
  const milp::MilpSolution solution = solve_formulation_milp(
      formulation.model, options_.milp, ctx, root_warm, &named_root);
  switch (solution.status) {
    case milp::MilpStatus::kInfeasible:
      throw InfeasibleError("planner: instance admits no feasible plan");
    case milp::MilpStatus::kUnbounded:
      throw UnboundedError("planner: formulation unbounded (modelling bug)");
    default:
      break;
  }
  if (!usable_incumbent(solution)) {
    ET_LOG(kWarning) << "planner: exact solve ended ("
                     << milp::to_string(solution.status)
                     << ") with no incumbent; falling back to heuristic";
    return plan_heuristic(model, ctx);
  }

  PlannerReport report;
  report.plan = decode_plan(model, formulation, formulation_options,
                            solution.values, "etransform");
  report.used_exact_solver = true;
  report.proven_optimal = solution.status == milp::MilpStatus::kOptimal;
  report.lower_bound = solution.best_bound;
  report.milp_nodes = solution.nodes;
  report.root_basis = named_root;
  // Polish: a proven optimum cannot improve, but budget-limited incumbents
  // and shared-mode plans decoded from the dedicated surrogate often do.
  // Budget-limited incumbents also race the heuristic plan (solution-pool
  // style) so a starved branch-and-bound never returns something greedy
  // would beat. A context-level interruption (deadline/cancel still in
  // force out here, unlike the MILP's own time_limit_ms) skips both: the
  // caller asked us to stop.
  const bool stopped = ctx.should_stop();
  if (!stopped && (!report.proven_optimal ||
                   (options_.enable_dr && !joint_dr && !dedicated))) {
    SolveScope polish_scope(ctx, "local_search");
    LocalSearchOptions polish = options_.local_search;
    polish.dedicated_backups = dedicated;
    if (options_.business_impact_omega < 1.0) {
      polish.max_groups_per_site = static_cast<int>(
          options_.business_impact_omega * model.instance().num_groups());
    }
    improve_plan(model, report.plan, polish);
  }
  if (!stopped && !report.proven_optimal) {
    const PlannerReport heuristic = plan_heuristic(model, ctx);
    if (heuristic.plan.cost.total() < report.plan.cost.total()) {
      report.plan = heuristic.plan;
      report.used_exact_solver = false;
    }
  }
  return report;
}

PlannerReport EtransformPlanner::plan_two_stage_dr(const CostModel& model,
                                                   bool exact_stage1,
                                                   SolveContext& ctx) const {
  // Stage 1: joint placement with the dedicated-sizing surrogate.
  PlannerReport stage1;
  {
    SolveScope stage1_scope(ctx, "stage1");
    if (exact_stage1) {
      stage1 = plan_exact(model, /*joint_dr=*/false, ctx, nullptr);
    } else {
      stage1 = plan_heuristic(model, ctx);
    }
  }
  if (ctx.should_stop()) {
    return stage1;  // deadline/cancel hit inside stage 1: best effort out
  }

  // Stage 2: primaries fixed, exact shared sizing of the secondaries.
  SolveScope stage2_scope(ctx, "stage2");
  FormulationOptions formulation_options;
  formulation_options.enable_dr = true;
  formulation_options.business_impact_omega = options_.business_impact_omega;
  formulation_options.economies_of_scale = options_.economies_of_scale;
  formulation_options.backup_sizing = BackupSizing::kSharedFixedPrimary;
  formulation_options.fixed_primary = &stage1.plan.primary;
  const Formulation formulation = build_formulation(model,
                                                    formulation_options);
  ET_LOG(kInfo) << "planner: stage-2 DR MILP with "
                << formulation.model.num_variables() << " vars";
  const milp::MilpSolution solution = solve_formulation_milp(
      formulation.model, options_.milp, ctx, nullptr, nullptr);

  PlannerReport report;
  if (usable_incumbent(solution)) {
    report.plan = decode_plan(model, formulation, formulation_options,
                              solution.values, "etransform");
    report.used_exact_solver = true;
    report.milp_nodes = solution.nodes;
  } else {
    // Keep the stage-1 secondaries.
    report = stage1;
  }
  // Final polish may relocate primaries now that sharing is in effect.
  if (!ctx.should_stop()) {
    SolveScope polish_scope(ctx, "local_search");
    improve_plan(model, report.plan, options_.local_search);
  }
  if (report.plan.cost.total() > stage1.plan.cost.total()) {
    report.plan = stage1.plan;  // never return worse than stage 1
  }
  report.plan.algorithm = "etransform";
  return report;
}

namespace {

/// Builds a seed that concentrates primaries on the `piles` cheapest sites
/// (balanced, largest group first, latency-aware) and — in DR mode — places
/// secondaries share-aware. Returns std::nullopt when no feasible seed with
/// that pile count exists.
std::optional<Plan> spread_seed_plan(const CostModel& model, int piles,
                                     bool with_dr, bool dedicated,
                                     int max_groups_per_site) {
  const auto& instance = model.instance();
  const int num_sites = instance.num_sites();
  const int num_groups = instance.num_groups();
  if (piles < 1 || piles > num_sites) return std::nullopt;

  // Rank sites by base per-server cost.
  const auto& params = instance.params;
  std::vector<int> ranked(static_cast<std::size_t>(num_sites));
  std::iota(ranked.begin(), ranked.end(), 0);
  std::vector<double> per_server(static_cast<std::size_t>(num_sites));
  for (int j = 0; j < num_sites; ++j) {
    const auto& site = instance.sites[static_cast<std::size_t>(j)];
    per_server[static_cast<std::size_t>(j)] =
        site.space_cost_per_server.unit_price(0.0) +
        site.power_cost_per_kwh.unit_price(0.0) * params.server_power_kw *
            params.hours_per_month +
        site.labor_cost_per_admin.unit_price(0.0) / params.servers_per_admin;
  }
  std::stable_sort(ranked.begin(), ranked.end(), [&](int a, int b) {
    return per_server[static_cast<std::size_t>(a)] <
           per_server[static_cast<std::size_t>(b)];
  });
  const std::vector<int> pile_sites(ranked.begin(), ranked.begin() + piles);

  // Balanced primary assignment (largest groups first, least-loaded pile).
  std::vector<int> order(static_cast<std::size_t>(num_groups));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return instance.groups[static_cast<std::size_t>(a)].servers >
           instance.groups[static_cast<std::size_t>(b)].servers;
  });
  std::vector<long long> used(static_cast<std::size_t>(num_sites), 0);
  std::vector<int> pile_count(static_cast<std::size_t>(num_sites), 0);
  Plan plan;
  plan.algorithm = "etransform";
  plan.primary.assign(static_cast<std::size_t>(num_groups), -1);
  const auto placement_cost = [&](int i, int j) {
    Money c = model.latency_penalty(i, j);
    if (instance.use_vpn_links) c += model.wan_cost(i, j);
    return c;
  };
  for (const int i : order) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    int best = -1;
    Money best_penalty = 0.0;
    long long best_load = 0;
    const auto consider = [&](int j) {
      if (!group_allowed_at(group, j)) return;
      // In DR mode leave backup headroom: fill to at most ~60% of capacity.
      const auto cap = static_cast<long long>(
          instance.sites[static_cast<std::size_t>(j)].capacity_servers);
      const long long fill_limit =
          with_dr ? std::max<long long>(group.servers, (cap * 3) / 5) : cap;
      if (used[static_cast<std::size_t>(j)] + group.servers > fill_limit) {
        return;
      }
      if (max_groups_per_site > 0 &&
          pile_count[static_cast<std::size_t>(j)] >= max_groups_per_site) {
        return;
      }
      // Latency-sensitive groups pick the pile near their users;
      // insensitive ones balance the piles.
      const Money penalty = placement_cost(i, j);
      const long long load = used[static_cast<std::size_t>(j)];
      if (best < 0 || penalty < best_penalty - 1e-9 ||
          (penalty < best_penalty + 1e-9 && load < best_load)) {
        best = j;
        best_penalty = penalty;
        best_load = load;
      }
    };
    for (const int j : pile_sites) consider(j);
    if (best < 0) {
      for (int j = 0; j < num_sites; ++j) consider(j);  // spill anywhere
    }
    if (best < 0) return std::nullopt;
    plan.primary[static_cast<std::size_t>(i)] = best;
    used[static_cast<std::size_t>(best)] += group.servers;
    pile_count[static_cast<std::size_t>(best)] += 1;
  }

  if (!with_dr) {
    if (!check_plan(instance, plan).empty()) return std::nullopt;
    model.price_plan(plan);
    return plan;
  }

  // Share-aware secondary assignment: pick the site whose backup pool grows
  // the least (weighted by backup capex + base space).
  std::vector<std::vector<long long>> load(
      static_cast<std::size_t>(num_sites),
      std::vector<long long>(static_cast<std::size_t>(num_sites), 0));
  std::vector<long long> pool(static_cast<std::size_t>(num_sites), 0);
  plan.secondary.assign(static_cast<std::size_t>(num_groups), -1);
  for (const int i : order) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    const int a = plan.primary[static_cast<std::size_t>(i)];
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int b = 0; b < num_sites; ++b) {
      if (b == a) continue;
      if (!group.allowed_sites.empty() &&
          std::find(group.allowed_sites.begin(), group.allowed_sites.end(),
                    b) == group.allowed_sites.end()) {
        continue;
      }
      const long long grown =
          dedicated ? pool[static_cast<std::size_t>(b)] + group.servers
                    : std::max(pool[static_cast<std::size_t>(b)],
                               load[static_cast<std::size_t>(a)][
                                   static_cast<std::size_t>(b)] +
                                   group.servers);
      const long long increase = grown - pool[static_cast<std::size_t>(b)];
      const auto cap = static_cast<long long>(
          instance.sites[static_cast<std::size_t>(b)].capacity_servers);
      if (used[static_cast<std::size_t>(b)] + grown > cap) continue;
      const double cost =
          static_cast<double>(increase) *
              (params.dr_server_cost +
               per_server[static_cast<std::size_t>(b)]) +
          placement_cost(i, b);
      if (cost < best_cost) {
        best_cost = cost;
        best = b;
      }
    }
    if (best < 0) return std::nullopt;
    plan.secondary[static_cast<std::size_t>(i)] = best;
    load[static_cast<std::size_t>(a)][static_cast<std::size_t>(best)] +=
        group.servers;
    pool[static_cast<std::size_t>(best)] =
        dedicated ? pool[static_cast<std::size_t>(best)] + group.servers
                  : std::max(pool[static_cast<std::size_t>(best)],
                             load[static_cast<std::size_t>(a)][
                                 static_cast<std::size_t>(best)]);
  }
  plan.backup_servers =
      dedicated
          ? dedicated_backup_servers(instance, plan.primary, plan.secondary)
          : required_backup_servers(instance, plan.primary, plan.secondary);
  if (!check_plan(instance, plan).empty()) return std::nullopt;
  model.price_plan(plan);
  return plan;
}

}  // namespace

PlannerReport EtransformPlanner::plan_heuristic(const CostModel& model,
                                                SolveContext& ctx) const {
  SolveScope scope(ctx, "heuristic");
  PlannerReport report;
  bool have_plan = false;
  const bool dedicated =
      options_.dr_sizing == PlannerOptions::DrSizing::kDedicated;
  // Business-impact cap (omega) carried into every seed and polish.
  const int num_groups = model.instance().num_groups();
  const int group_limit =
      options_.business_impact_omega < 1.0
          ? static_cast<int>(options_.business_impact_omega * num_groups)
          : 0;
  if (group_limit > 0 &&
      static_cast<long long>(group_limit) * model.instance().num_sites() <
          num_groups) {
    throw InfeasibleError(
        "planner: omega too tight — even spreading over every site exceeds "
        "the per-site group cap");
  }
  // Race several seeds through a light polish (first-improvement search is
  // basin-sensitive; the winner gets the full polish at the end).
  LocalSearchOptions light = options_.local_search;
  light.enable_swaps = false;
  light.max_passes = std::min(light.max_passes, 8);
  light.dedicated_backups = dedicated;
  light.max_groups_per_site = group_limit;
  const auto race = [&](Plan candidate) {
    candidate.algorithm = "etransform";
    improve_plan(model, candidate, light);
    scope.stats().add("seeds_raced", 1.0);
    if (!have_plan || candidate.cost.total() < report.plan.cost.total()) {
      report.plan = std::move(candidate);
      have_plan = true;
    }
  };

  for (const bool volume_aware : {true, false}) {
    if (have_plan && ctx.should_stop()) break;
    GreedyOptions seed_options;
    seed_options.volume_aware = volume_aware;
    seed_options.max_groups_per_site = group_limit;
    Plan candidate = plan_greedy(model, options_.enable_dr, seed_options);
    if (options_.enable_dr && !dedicated) {
      // Greedy DR over-provisions (dedicated counts); normalize to the
      // single-failure sharing law before polishing.
      candidate.backup_servers = required_backup_servers(
          model.instance(), candidate.primary, candidate.secondary);
      model.price_plan(candidate);
    }
    race(std::move(candidate));
  }
  // The manual plan covers the "few big sites" basin local moves cannot
  // always reach (tier thresholds are lumpy). It ignores omega, so it only
  // qualifies as a seed when no cap is active.
  if (!options_.enable_dr && group_limit == 0) {
    try {
      race(plan_manual(model, false));
    } catch (const InfeasibleError&) {
      // Manual's a-priori site picking can dead-end; other seeds stand.
    }
  }
  // K-pile seeds: consolidation shapes for non-DR (deep volume tiers), and
  // in DR mode the spread shapes single moves cannot reach (lowering
  // max_a load(a,b) needs coordinated moves) — what Fig. 8 selects among.
  {
    const int num_sites = model.instance().num_sites();
    for (int piles = 1; piles <= num_sites; piles = piles < 8 ? piles + 1
                                                              : piles * 2) {
      if (have_plan && ctx.should_stop()) break;
      auto seed = spread_seed_plan(model, piles, options_.enable_dr,
                                   dedicated, group_limit);
      if (!seed.has_value()) continue;
      race(std::move(*seed));
    }
  }
  // Full polish (swaps included) on the winning basin.
  if (!ctx.should_stop()) {
    SolveScope polish_scope(ctx, "local_search");
    LocalSearchOptions full = options_.local_search;
    full.dedicated_backups = dedicated;
    full.max_groups_per_site = group_limit;
    improve_plan(model, report.plan, full);
  }
  if (options_.compute_lower_bound && !options_.enable_dr &&
      !ctx.should_stop()) {
    SolveScope bound_scope(ctx, "lagrangian");
    report.lower_bound = lagrangian_lower_bound(model).lower_bound;
  }
  return report;
}

PlannerReport EtransformPlanner::plan_multi_period(const PlanInput& input,
                                                   SolveContext& ctx) const {
  const CostModel& model = *input.model;
  const auto& base = model.instance();
  const PlanningHorizon& horizon = input.horizon;
  validate_horizon(base, horizon);

  // Size gate on the total placement binaries across all periods.
  long long x_vars = 0;
  for (int t = 0; t < horizon.num_periods(); ++t) {
    x_vars += count_assignment_vars(apply_period(base, horizon, t));
  }
  using Engine = PlannerOptions::Engine;
  Engine engine = options_.engine;
  if (engine == Engine::kAuto) {
    engine = x_vars <= options_.exact_var_limit ? Engine::kExact
                                                : Engine::kHeuristic;
  }
  // The locked "best static plan over the horizon" competitor has a single
  // shared placement block only the MILP can express.
  if (input.lock_placement) engine = Engine::kExact;
  if (engine == Engine::kHeuristic) {
    return plan_multi_heuristic(input, ctx);
  }
  if (!options_.enable_dr ||
      options_.dr_sizing == PlannerOptions::DrSizing::kDedicated) {
    return plan_multi_exact(input, /*joint_dr=*/false, ctx);
  }
  // Joint shared sizing replicates the J block per period; gate on the
  // total. Over the limit, the dedicated surrogate stands in and decode
  // recomputes the sharing law per period (there is no two-stage method in
  // multi-period mode — fixing primaries would also fix the migrations).
  const long long joint_j_vars =
      x_vars * static_cast<long long>(base.num_sites());
  return plan_multi_exact(input,
                          joint_j_vars <= options_.joint_dr_var_limit, ctx);
}

PlannerReport EtransformPlanner::plan_multi_exact(const PlanInput& input,
                                                  bool joint_dr,
                                                  SolveContext& ctx) const {
  const CostModel& model = *input.model;
  const bool dedicated =
      options_.dr_sizing == PlannerOptions::DrSizing::kDedicated;
  FormulationOptions formulation_options;
  formulation_options.enable_dr = options_.enable_dr;
  formulation_options.business_impact_omega = options_.business_impact_omega;
  formulation_options.economies_of_scale = options_.economies_of_scale;
  formulation_options.backup_sizing = joint_dr ? BackupSizing::kSharedJoint
                                               : BackupSizing::kDedicated;
  formulation_options.decode_dedicated_counts = dedicated;
  formulation_options.horizon = &input.horizon;
  formulation_options.lock_placement = input.lock_placement;
  Formulation formulation;
  {
    SolveScope formulation_scope(ctx, "formulation");
    formulation = build_formulation(model, formulation_options);
    formulation_scope.stats().add("variables",
                                  formulation.model.num_variables());
    formulation_scope.stats().add("rows",
                                  formulation.model.num_constraints());
    formulation_scope.stats().add("periods", input.horizon.num_periods());
  }
  ET_LOG(kInfo) << "planner: time-expanded MILP over "
                << input.horizon.num_periods() << " periods with "
                << formulation.model.num_variables() << " vars, "
                << formulation.model.num_constraints() << " rows";

  std::shared_ptr<const lp::NamedBasis> named_root;
  const milp::MilpSolution solution = solve_formulation_milp(
      formulation.model, options_.milp, ctx, input.root_warm, &named_root);
  switch (solution.status) {
    case milp::MilpStatus::kInfeasible:
      throw InfeasibleError(
          "planner: horizon admits no feasible multi-period plan");
    case milp::MilpStatus::kUnbounded:
      throw UnboundedError("planner: formulation unbounded (modelling bug)");
    default:
      break;
  }
  if (!usable_incumbent(solution)) {
    if (input.lock_placement) {
      throw InfeasibleError(
          "planner: locked multi-period solve ended (" +
          std::string(milp::to_string(solution.status)) +
          ") with no incumbent");
    }
    ET_LOG(kWarning) << "planner: time-expanded solve ended ("
                     << milp::to_string(solution.status)
                     << ") with no incumbent; falling back to heuristic";
    return plan_multi_heuristic(input, ctx);
  }

  PlannerReport report;
  report.multi = decode_multi_period_plan(
      model, formulation, formulation_options, solution.values, "etransform");
  report.plan = report.multi.periods.front();
  report.used_exact_solver = true;
  report.proven_optimal = solution.status == milp::MilpStatus::kOptimal;
  report.lower_bound = solution.best_bound;
  report.milp_nodes = solution.nodes;
  report.root_basis = named_root;
  // Budget-limited incumbents race the per-period heuristic (solution-pool
  // style), exactly like the static path. Locked solves have no heuristic
  // counterpart.
  if (!ctx.should_stop() && !report.proven_optimal &&
      !input.lock_placement) {
    const PlannerReport heuristic = plan_multi_heuristic(input, ctx);
    if (heuristic.multi.cost.total() < report.multi.cost.total()) {
      report.multi = heuristic.multi;
      report.plan = report.multi.periods.front();
      report.used_exact_solver = false;
    }
  }
  return report;
}

PlannerReport EtransformPlanner::plan_multi_heuristic(const PlanInput& input,
                                                      SolveContext& ctx)
    const {
  SolveScope scope(ctx, "multi_heuristic");
  const CostModel& model = *input.model;
  const auto& base = model.instance();
  const PlanningHorizon& horizon = input.horizon;
  const int num_periods = horizon.num_periods();
  const bool dedicated =
      options_.dr_sizing == PlannerOptions::DrSizing::kDedicated;

  // Per-period static heuristic solves against the period-scaled cost
  // models (instances must outlive the models and the smoothing pass).
  struct Period {
    ConsolidationInstance instance;
    std::optional<CostModel> cost;
  };
  std::vector<std::unique_ptr<Period>> periods;
  periods.reserve(static_cast<std::size_t>(num_periods));
  std::vector<Plan> plans;
  plans.reserve(static_cast<std::size_t>(num_periods));
  for (int t = 0; t < num_periods; ++t) {
    auto period = std::make_unique<Period>();
    period->instance = apply_period(base, horizon, t);
    period->cost.emplace(period->instance);
    PlannerReport solved = plan_heuristic(*period->cost, ctx);
    plans.push_back(std::move(solved.plan));
    periods.push_back(std::move(period));
  }

  PlannerReport report;
  report.multi =
      assemble_multi_period(base, horizon, std::move(plans), "etransform");
  // Migration-aware smoothing: independently-optimal period plans churn
  // placements whose savings are below the switching cost; greedily revert
  // a move to the previous period's site whenever that lowers the horizon
  // total. Repeat until a pass finds nothing (reverting period t can make
  // period t+1's move a no-op or a new revert candidate).
  if (horizon.migration_cost_per_server > 0.0 && num_periods > 1) {
    SolveScope smooth_scope(ctx, "migration_smoothing");
    bool improved = true;
    int passes = 0;
    while (improved && passes++ < 8 && !ctx.should_stop()) {
      improved = false;
      for (int t = 1; t < num_periods; ++t) {
        for (int i = 0; i < base.num_groups(); ++i) {
          const int prev = report.multi.periods[static_cast<std::size_t>(
              t - 1)].primary[static_cast<std::size_t>(i)];
          Plan candidate = report.multi.periods[static_cast<std::size_t>(t)];
          if (candidate.primary[static_cast<std::size_t>(i)] == prev) {
            continue;
          }
          if (candidate.has_dr() &&
              candidate.secondary[static_cast<std::size_t>(i)] == prev) {
            continue;  // primary and secondary must stay distinct
          }
          candidate.primary[static_cast<std::size_t>(i)] = prev;
          const auto& instance_t =
              periods[static_cast<std::size_t>(t)]->instance;
          if (candidate.has_dr()) {
            candidate.backup_servers =
                dedicated ? dedicated_backup_servers(instance_t,
                                                     candidate.primary,
                                                     candidate.secondary)
                          : required_backup_servers(instance_t,
                                                    candidate.primary,
                                                    candidate.secondary);
          }
          if (!check_plan(instance_t, candidate).empty()) continue;
          periods[static_cast<std::size_t>(t)]->cost->price_plan(candidate);
          std::vector<Plan> candidate_plans = report.multi.periods;
          candidate_plans[static_cast<std::size_t>(t)] = std::move(candidate);
          MultiPeriodPlan smoothed = assemble_multi_period(
              base, horizon, std::move(candidate_plans), "etransform");
          if (smoothed.cost.total() <
              report.multi.cost.total() - 1e-9) {
            report.multi = std::move(smoothed);
            improved = true;
          }
        }
      }
      smooth_scope.stats().add("passes", 1.0);
    }
  }
  report.plan = report.multi.periods.front();
  return report;
}

}  // namespace etransform
