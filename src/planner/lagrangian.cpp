#include "planner/lagrangian.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "planner/formulation.h"

namespace etransform {

namespace {

/// Cheapest possible unit price of a schedule (its deepest-discount tier).
Money floor_price(const StepSchedule& schedule) {
  Money lowest = std::numeric_limits<double>::infinity();
  for (const auto& tier : schedule.tiers()) {
    lowest = std::min(lowest, tier.unit_price);
  }
  return lowest;
}

}  // namespace

LagrangianBound lagrangian_lower_bound(const CostModel& model,
                                       const LagrangianOptions& options) {
  const auto& instance = model.instance();
  const int num_groups = instance.num_groups();
  const int num_sites = instance.num_sites();

  // cLB_ij: floor-tier site costs + exact per-placement terms. Any feasible
  // plan's total cost is >= sum_i cLB_{i,site(i)} because every schedule's
  // total cost is >= floor_price * quantity and quantities add per site.
  std::vector<double> clb(static_cast<std::size_t>(num_groups) *
                          static_cast<std::size_t>(num_sites));
  std::vector<bool> feasible(clb.size(), false);
  const auto& p = instance.params;
  for (int j = 0; j < num_sites; ++j) {
    const auto& site = instance.sites[static_cast<std::size_t>(j)];
    const Money per_server =
        floor_price(site.space_cost_per_server) +
        floor_price(site.power_cost_per_kwh) * p.server_power_kw *
            p.hours_per_month +
        floor_price(site.labor_cost_per_admin) / p.servers_per_admin;
    const Money per_megabit =
        instance.use_vpn_links ? 0.0 : floor_price(site.wan_cost_per_megabit);
    for (int i = 0; i < num_groups; ++i) {
      const auto& group = instance.groups[static_cast<std::size_t>(i)];
      const auto idx = static_cast<std::size_t>(i) *
                           static_cast<std::size_t>(num_sites) +
                       static_cast<std::size_t>(j);
      if (!group_allowed_at(group, j) ||
          site.capacity_servers < group.servers) {
        clb[idx] = std::numeric_limits<double>::infinity();
        continue;
      }
      feasible[idx] = true;
      double c = group.servers * per_server +
                 group.monthly_data_megabits * per_megabit +
                 model.latency_penalty(i, j);
      if (instance.use_vpn_links) c += model.wan_cost(i, j);
      clb[idx] = c;
    }
  }

  // Internal upper bound for Polyak steps: each group at its cheapest site
  // (capacity ignored) is a *lower* bound; scale up for a crude UB target.
  double ub = options.upper_bound;
  if (ub <= 0.0) {
    double relaxed = 0.0;
    for (int i = 0; i < num_groups; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (int j = 0; j < num_sites; ++j) {
        best = std::min(best, clb[static_cast<std::size_t>(i) *
                                      static_cast<std::size_t>(num_sites) +
                                  static_cast<std::size_t>(j)]);
      }
      relaxed += best;
    }
    ub = relaxed * 1.5 + 1.0;
  }

  std::vector<double> lambda(static_cast<std::size_t>(num_sites), 0.0);
  std::vector<double> usage(static_cast<std::size_t>(num_sites), 0.0);
  double best_bound = -std::numeric_limits<double>::infinity();
  double step_scale = options.step_scale;
  int since_improvement = 0;
  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    // Solve the relaxed subproblem: each group picks argmin cLB + lambda*S.
    std::fill(usage.begin(), usage.end(), 0.0);
    double value = 0.0;
    for (int j = 0; j < num_sites; ++j) {
      value -= lambda[static_cast<std::size_t>(j)] *
               instance.sites[static_cast<std::size_t>(j)].capacity_servers;
    }
    for (int i = 0; i < num_groups; ++i) {
      const auto servers = static_cast<double>(
          instance.groups[static_cast<std::size_t>(i)].servers);
      double best = std::numeric_limits<double>::infinity();
      int best_site = -1;
      for (int j = 0; j < num_sites; ++j) {
        const auto idx = static_cast<std::size_t>(i) *
                             static_cast<std::size_t>(num_sites) +
                         static_cast<std::size_t>(j);
        if (!feasible[idx]) continue;
        const double score =
            clb[idx] + lambda[static_cast<std::size_t>(j)] * servers;
        if (score < best) {
          best = score;
          best_site = j;
        }
      }
      value += best;
      usage[static_cast<std::size_t>(best_site)] += servers;
    }
    if (value > best_bound + 1e-9) {
      best_bound = value;
      since_improvement = 0;
    } else if (++since_improvement >= options.patience) {
      step_scale *= 0.5;
      since_improvement = 0;
      if (step_scale < 1e-6) break;
    }

    // Subgradient: capacity violation per site.
    double norm_sq = 0.0;
    for (int j = 0; j < num_sites; ++j) {
      const double g =
          usage[static_cast<std::size_t>(j)] -
          instance.sites[static_cast<std::size_t>(j)].capacity_servers;
      norm_sq += g * g;
    }
    if (norm_sq < 1e-12) break;  // capacity satisfied: bound is exact here
    const double step = step_scale * std::max(ub - value, 1e-6) / norm_sq;
    for (int j = 0; j < num_sites; ++j) {
      const double g =
          usage[static_cast<std::size_t>(j)] -
          instance.sites[static_cast<std::size_t>(j)].capacity_servers;
      lambda[static_cast<std::size_t>(j)] =
          std::max(0.0, lambda[static_cast<std::size_t>(j)] + step * g);
    }
  }
  ET_LOG(kDebug) << "lagrangian: bound " << best_bound << " after "
                 << iteration << " iterations";
  return LagrangianBound{best_bound, iteration};
}

}  // namespace etransform
