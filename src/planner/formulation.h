// MILP formulation of the transformation & consolidation problem
// (paper §III-B) and its disaster-recovery extension (§IV).
//
// Decision variables:
//   X_ij in {0,1}   group i's primary site is j      (only allowed pairs)
//   Y_ij in {0,1}   group i's secondary (DR) site is j
//   G_j  >= 0       backup servers provisioned at site j
//   J_abc >= 0      linearization of X_ca AND Y_cb for shared backup sizing
//                   (continuous suffices: the minimization drives J to
//                   max(0, X+Y-1), which is all the sizing rows need)
//   q/z tier vars   Schoomer step-function linearization of every volume-
//                   discount schedule (z_k picks the tier, q_k carries the
//                   quantity, q_k in [tier lower edge, tier upper edge])
//
// Constraints: one site per group; site capacity over primaries + backups;
// X_ij + Y_ij <= 1; business impact sum_i X_ij <= omega*M; pairwise
// separation rows; shared backup sizing G_b >= sum_c J_abc * S_c for all a
// (or the fixed-primary collapse / dedicated over-sizing variants).
//
// The objective carries per-placement latency penalties and VPN WAN costs on
// X/Y, tier-priced site aggregates (space on servers, power on kWh, labor on
// admins, flat-mode WAN on megabits), and backup capex zeta * sum G_j.
//
// Time-expanded extension (FormulationOptions::horizon): every block above
// is replicated per demand period t with "@p<t>"-suffixed variable and row
// names, coefficients priced by the period-scaled cost model and weighted by
// the period's duration, plus inter-period migration coupling
//
//   MV_it >= X_ijt - X_ij(t-1)   for every site j       (MV_it in [0, 1])
//
// whose objective coefficient is migration_cost_per_server * period-t
// servers — the switching cost of "Optimal Algorithms for Right-Sizing Data
// Centers". `lock_placement` instead shares one X (and Y) block across all
// periods: the best *static* plan evaluated against the whole horizon, the
// competitor the time-expanded plan must beat.
#pragma once

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "lp/model.h"
#include "model/horizon.h"
#include "model/plan.h"

namespace etransform {

/// Which DR backup-sizing rows to emit.
enum class BackupSizing {
  /// Exact shared sizing via J_abc variables (M*N^2 of them): G_b >=
  /// sum_c J_abc S_c for every potential failing site a. Only viable for
  /// small/medium instances.
  kSharedJoint,
  /// Exact shared sizing with the primary assignment fixed (stage 2 of the
  /// two-stage method): G_b >= sum_{i: primary_i = a} S_i Y_ib, N^2 rows,
  /// no J variables.
  kSharedFixedPrimary,
  /// Dedicated over-sizing G_b >= sum_i S_i Y_ib (upper bound; used as the
  /// stage-1 surrogate where J would be too large).
  kDedicated,
};

/// Options controlling what gets emitted.
struct FormulationOptions {
  bool enable_dr = false;
  /// Business impact parameter omega (§IV-B): no site may host more than
  /// omega * M application groups. 1.0 disables the row.
  double business_impact_omega = 1.0;
  /// false replaces every schedule with its base (first-tier) price,
  /// dropping all tier binaries — the "no economies of scale" ablation.
  bool economies_of_scale = true;
  BackupSizing backup_sizing = BackupSizing::kSharedJoint;
  /// Required when backup_sizing == kSharedFixedPrimary: primary_i per group.
  const std::vector<int>* fixed_primary = nullptr;
  /// decode_plan: provision dedicated per-site sums instead of recomputing
  /// the single-failure sharing law (multi-failure planning).
  bool decode_dedicated_counts = false;
  /// Non-null with a non-static horizon: build the time-expanded
  /// multi-period MILP instead of the single-snapshot one. Incompatible
  /// with kSharedFixedPrimary. The horizon must outlive the formulation.
  const PlanningHorizon* horizon = nullptr;
  /// Time-expanded only: share one placement block across all periods (the
  /// "best static plan over the horizon" competitor). No migration
  /// variables are emitted.
  bool lock_placement = false;
};

/// The built model plus the variable maps needed to decode a solution.
struct Formulation {
  lp::Model model;
  /// x[i][j] = variable index of X_ij, or -1 when the pair is disallowed /
  /// fixed. With kSharedFixedPrimary no X variables exist. Static mode
  /// only (time-expanded solutions decode through xt).
  std::vector<std::vector<int>> x;
  /// y[i][j] = variable index of Y_ij, or -1. Empty without DR.
  std::vector<std::vector<int>> y;
  /// g[j] = variable index of G_j. Empty without DR.
  std::vector<int> g;
  /// Time-expanded mode: xt[t][i][j] = X_ijt (with lock_placement every
  /// period aliases the shared block). Empty in static mode; same shape
  /// for yt / gt under DR.
  std::vector<std::vector<std::vector<int>>> xt;
  std::vector<std::vector<std::vector<int>>> yt;
  std::vector<std::vector<int>> gt;
  /// move[t-1][i] = MV_it migration indicator for t >= 1, or -1 when the
  /// horizon charges no migration. Empty in static / locked mode.
  std::vector<std::vector<int>> move;

  [[nodiscard]] bool is_time_expanded() const { return !xt.empty(); }
};

/// Builds the MILP. Throws InvalidInputError on inconsistent options (e.g.
/// kSharedFixedPrimary without fixed_primary).
[[nodiscard]] Formulation build_formulation(const CostModel& cost,
                                            const FormulationOptions& options);

/// Decodes solver values back into a Plan: reads X/Y, recomputes the backup
/// counts exactly via the sharing law, and prices the plan with the cost
/// model. Throws InvalidInputError if some group has no selected site.
[[nodiscard]] Plan decode_plan(const CostModel& cost,
                               const Formulation& formulation,
                               const FormulationOptions& options,
                               const std::vector<double>& values,
                               const std::string& algorithm);

/// Decodes a time-expanded solve into per-period plans, each re-priced
/// exactly against its period-scaled cost model, and totals them with
/// assemble_multi_period (weighted sums + the migration charge). Requires
/// options.horizon; throws InvalidInputError otherwise.
[[nodiscard]] MultiPeriodPlan decode_multi_period_plan(
    const CostModel& cost, const Formulation& formulation,
    const FormulationOptions& options, const std::vector<double>& values,
    const std::string& algorithm);

/// True if the group may be placed at site j under its pin / allowed-sites
/// constraints (shared by the planner and the heuristics).
[[nodiscard]] bool group_allowed_at(const ApplicationGroup& group, int site);

}  // namespace etransform
