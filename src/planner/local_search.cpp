#include "planner/local_search.h"

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <limits>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "common/random.h"
#include "planner/formulation.h"

namespace etransform {

namespace {

/// Incremental exact evaluation of a plan under move mutations.
class PlanState {
 public:
  PlanState(const CostModel& model, const Plan& plan, bool dedicated_backups,
            int max_groups_per_site)
      : model_(&model),
        instance_(&model.instance()),
        primary_(plan.primary),
        secondary_(plan.secondary),
        dr_(plan.has_dr()),
        dedicated_(dedicated_backups),
        group_limit_(max_groups_per_site) {
    const int num_sites = instance_->num_sites();
    const int num_groups = instance_->num_groups();
    servers_.assign(static_cast<std::size_t>(num_sites), 0);
    data_.assign(static_cast<std::size_t>(num_sites), 0.0);
    if (dr_) {
      load_.assign(static_cast<std::size_t>(num_sites),
                   std::vector<long long>(static_cast<std::size_t>(num_sites),
                                          0));
      backups_.assign(static_cast<std::size_t>(num_sites), 0);
    }
    group_count_.assign(static_cast<std::size_t>(num_sites), 0);
    for (int i = 0; i < num_groups; ++i) {
      const auto& group = instance_->groups[static_cast<std::size_t>(i)];
      const int a = primary_[static_cast<std::size_t>(i)];
      servers_[static_cast<std::size_t>(a)] += group.servers;
      group_count_[static_cast<std::size_t>(a)] += 1;
      if (!instance_->use_vpn_links) {
        data_[static_cast<std::size_t>(a)] += group.monthly_data_megabits;
      }
      if (dr_) {
        const int b = secondary_[static_cast<std::size_t>(i)];
        load_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] +=
            group.servers;
        if (!instance_->use_vpn_links) {
          data_[static_cast<std::size_t>(b)] += group.monthly_data_megabits;
        }
      }
    }
    if (dr_) {
      for (int b = 0; b < num_sites; ++b) {
        backups_[static_cast<std::size_t>(b)] = pool_requirement(b);
        servers_[static_cast<std::size_t>(b)] +=
            backups_[static_cast<std::size_t>(b)];
      }
    }
    // Per-group separation partner lists.
    partners_.assign(static_cast<std::size_t>(num_groups), {});
    for (const auto& sep : instance_->separations) {
      partners_[static_cast<std::size_t>(sep.group_a)].push_back(sep.group_b);
      partners_[static_cast<std::size_t>(sep.group_b)].push_back(sep.group_a);
    }
    site_cost_.assign(static_cast<std::size_t>(num_sites), 0.0);
    total_site_cost_ = 0.0;
    for (int j = 0; j < num_sites; ++j) {
      site_cost_[static_cast<std::size_t>(j)] = exact_site_cost(j);
      total_site_cost_ += site_cost_[static_cast<std::size_t>(j)];
    }
  }

  [[nodiscard]] Money placement_cost(int i, int j) const {
    Money c = model_->latency_penalty(i, j);
    if (instance_->use_vpn_links) c += model_->wan_cost(i, j);
    return c;
  }

  /// Exact cost of site j at current aggregates (incl. backup capex share).
  [[nodiscard]] Money exact_site_cost(int j) const {
    Money c = model_
                  ->site_cost(j, servers_[static_cast<std::size_t>(j)],
                              data_[static_cast<std::size_t>(j)])
                  .total();
    if (dr_) {
      c += instance_->params.dr_server_cost *
           backups_[static_cast<std::size_t>(j)];
    }
    return c;
  }

  [[nodiscard]] Money site_cost_if(int j, long long servers,
                                   double data, long long backups) const {
    Money c = model_->site_cost(j, servers, data).total();
    if (dr_) c += instance_->params.dr_server_cost * backups;
    return c;
  }

  /// Largest per-primary load backed up at site b.
  [[nodiscard]] long long column_max(int b) const {
    long long worst = 0;
    for (int a = 0; a < instance_->num_sites(); ++a) {
      worst = std::max(
          worst,
          load_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]);
    }
    return worst;
  }

  /// Total load backed up at site b (dedicated sizing).
  [[nodiscard]] long long column_sum(int b) const {
    long long total = 0;
    for (int a = 0; a < instance_->num_sites(); ++a) {
      total += load_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
    }
    return total;
  }

  /// Backup servers site b must provision under the active sizing law.
  [[nodiscard]] long long pool_requirement(int b) const {
    return dedicated_ ? column_sum(b) : column_max(b);
  }

  [[nodiscard]] long long column_max_with(int b, int override_a,
                                          long long override_value) const {
    long long worst = 0;
    for (int a = 0; a < instance_->num_sites(); ++a) {
      const long long v =
          a == override_a
              ? override_value
              : load_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
      worst = std::max(worst, v);
    }
    return worst;
  }

  [[nodiscard]] bool separation_blocks(int i, int target_site) const {
    for (const int partner : partners_[static_cast<std::size_t>(i)]) {
      if (primary_[static_cast<std::size_t>(partner)] == target_site) {
        return true;
      }
    }
    return false;
  }

  /// Delta of moving group i's primary to a2; +inf if infeasible.
  [[nodiscard]] Money primary_move_delta(int i, int a2) const {
    const auto& group = instance_->groups[static_cast<std::size_t>(i)];
    const int a = primary_[static_cast<std::size_t>(i)];
    if (a2 == a) return 0.0;
    if (group.pinned_site >= 0) return kInfeasible;
    if (!group_allowed_at(group, a2)) return kInfeasible;
    if (separation_blocks(i, a2)) return kInfeasible;
    if (group_limit_ > 0 &&
        group_count_[static_cast<std::size_t>(a2)] + 1 > group_limit_) {
      return kInfeasible;
    }
    const long long s = group.servers;
    const double d = instance_->use_vpn_links ? 0.0
                                              : group.monthly_data_megabits;
    const int b = dr_ ? secondary_[static_cast<std::size_t>(i)] : -1;
    if (dr_ && a2 == b) return kInfeasible;  // primary == secondary

    long long backup_delta_b = 0;
    if (dr_ && !dedicated_) {
      // Dedicated pools are invariant under primary moves (the column sum
      // does not change); shared pools track the column max.
      const long long new_load_a =
          load_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] - s;
      const long long new_load_a2 =
          load_[static_cast<std::size_t>(a2)][static_cast<std::size_t>(b)] + s;
      long long new_g = 0;
      for (int site = 0; site < instance_->num_sites(); ++site) {
        long long v =
            load_[static_cast<std::size_t>(site)][static_cast<std::size_t>(b)];
        if (site == a) v = new_load_a;
        if (site == a2) v = new_load_a2;
        new_g = std::max(new_g, v);
      }
      backup_delta_b = new_g - backups_[static_cast<std::size_t>(b)];
    }

    // Capacity checks (b may gain backup servers).
    const auto cap = [&](int j) {
      return static_cast<long long>(
          instance_->sites[static_cast<std::size_t>(j)].capacity_servers);
    };
    if (servers_[static_cast<std::size_t>(a2)] + s > cap(a2)) {
      return kInfeasible;
    }
    if (dr_ && backup_delta_b > 0 &&
        servers_[static_cast<std::size_t>(b)] + backup_delta_b > cap(b)) {
      return kInfeasible;
    }

    Money delta = placement_cost(i, a2) - placement_cost(i, a);
    delta += site_cost_if(a, servers_[static_cast<std::size_t>(a)] - s,
                          data_[static_cast<std::size_t>(a)] - d,
                          dr_ ? backups_[static_cast<std::size_t>(a)] : 0) -
             site_cost_[static_cast<std::size_t>(a)];
    delta += site_cost_if(a2, servers_[static_cast<std::size_t>(a2)] + s,
                          data_[static_cast<std::size_t>(a2)] + d,
                          dr_ ? backups_[static_cast<std::size_t>(a2)] : 0) -
             site_cost_[static_cast<std::size_t>(a2)];
    if (dr_ && backup_delta_b != 0) {
      delta += site_cost_if(
                   b, servers_[static_cast<std::size_t>(b)] + backup_delta_b,
                   data_[static_cast<std::size_t>(b)],
                   backups_[static_cast<std::size_t>(b)] + backup_delta_b) -
               site_cost_[static_cast<std::size_t>(b)];
    }
    return delta;
  }

  void commit_primary_move(int i, int a2) {
    const auto& group = instance_->groups[static_cast<std::size_t>(i)];
    const int a = primary_[static_cast<std::size_t>(i)];
    const long long s = group.servers;
    const double d = instance_->use_vpn_links ? 0.0
                                              : group.monthly_data_megabits;
    servers_[static_cast<std::size_t>(a)] -= s;
    data_[static_cast<std::size_t>(a)] -= d;
    servers_[static_cast<std::size_t>(a2)] += s;
    data_[static_cast<std::size_t>(a2)] += d;
    group_count_[static_cast<std::size_t>(a)] -= 1;
    group_count_[static_cast<std::size_t>(a2)] += 1;
    if (dr_) {
      const int b = secondary_[static_cast<std::size_t>(i)];
      load_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] -= s;
      load_[static_cast<std::size_t>(a2)][static_cast<std::size_t>(b)] += s;
      const long long new_g = pool_requirement(b);
      const long long delta_g = new_g - backups_[static_cast<std::size_t>(b)];
      backups_[static_cast<std::size_t>(b)] = new_g;
      servers_[static_cast<std::size_t>(b)] += delta_g;
    }
    primary_[static_cast<std::size_t>(i)] = a2;
    refresh_sites({a, a2, dr_ ? secondary_[static_cast<std::size_t>(i)] : -1});
  }

  /// Delta of moving group i's secondary to b2; +inf if infeasible.
  [[nodiscard]] Money secondary_move_delta(int i, int b2) const {
    const auto& group = instance_->groups[static_cast<std::size_t>(i)];
    const int a = primary_[static_cast<std::size_t>(i)];
    const int b = secondary_[static_cast<std::size_t>(i)];
    if (b2 == b || b2 == a) return kInfeasible;
    // Allowed-sites rules bind the secondary (not pins).
    if (!group.allowed_sites.empty() &&
        std::find(group.allowed_sites.begin(), group.allowed_sites.end(),
                  b2) == group.allowed_sites.end()) {
      return kInfeasible;
    }
    const long long s = group.servers;
    const double d = instance_->use_vpn_links ? 0.0
                                              : group.monthly_data_megabits;
    const long long new_g_b =
        dedicated_ ? backups_[static_cast<std::size_t>(b)] - s
                   : column_max_with(
                         b, a,
                         load_[static_cast<std::size_t>(a)][
                             static_cast<std::size_t>(b)] -
                             s);
    const long long new_g_b2 =
        dedicated_ ? backups_[static_cast<std::size_t>(b2)] + s
                   : column_max_with(
                         b2, a,
                         load_[static_cast<std::size_t>(a)][
                             static_cast<std::size_t>(b2)] +
                             s);
    const long long delta_b = new_g_b - backups_[static_cast<std::size_t>(b)];
    const long long delta_b2 =
        new_g_b2 - backups_[static_cast<std::size_t>(b2)];
    const auto cap = static_cast<long long>(
        instance_->sites[static_cast<std::size_t>(b2)].capacity_servers);
    if (servers_[static_cast<std::size_t>(b2)] + delta_b2 > cap) {
      return kInfeasible;
    }

    Money delta = placement_cost(i, b2) - placement_cost(i, b);
    delta += site_cost_if(b, servers_[static_cast<std::size_t>(b)] + delta_b,
                          data_[static_cast<std::size_t>(b)] - d,
                          backups_[static_cast<std::size_t>(b)] + delta_b) -
             site_cost_[static_cast<std::size_t>(b)];
    delta +=
        site_cost_if(b2, servers_[static_cast<std::size_t>(b2)] + delta_b2,
                     data_[static_cast<std::size_t>(b2)] + d,
                     backups_[static_cast<std::size_t>(b2)] + delta_b2) -
        site_cost_[static_cast<std::size_t>(b2)];
    return delta;
  }

  void commit_secondary_move(int i, int b2) {
    const auto& group = instance_->groups[static_cast<std::size_t>(i)];
    const int a = primary_[static_cast<std::size_t>(i)];
    const int b = secondary_[static_cast<std::size_t>(i)];
    const long long s = group.servers;
    const double d = instance_->use_vpn_links ? 0.0
                                              : group.monthly_data_megabits;
    load_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] -= s;
    load_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b2)] += s;
    for (const int site : {b, b2}) {
      const long long new_g = pool_requirement(site);
      const long long delta_g =
          new_g - backups_[static_cast<std::size_t>(site)];
      backups_[static_cast<std::size_t>(site)] = new_g;
      servers_[static_cast<std::size_t>(site)] += delta_g;
    }
    data_[static_cast<std::size_t>(b)] -= d;
    data_[static_cast<std::size_t>(b2)] += d;
    secondary_[static_cast<std::size_t>(i)] = b2;
    refresh_sites({a, b, b2});
  }

  /// Delta of swapping the primaries of groups i and k (non-DR only).
  [[nodiscard]] Money swap_delta(int i, int k) const {
    const int a = primary_[static_cast<std::size_t>(i)];
    const int c = primary_[static_cast<std::size_t>(k)];
    if (a == c) return kInfeasible;
    const auto& gi = instance_->groups[static_cast<std::size_t>(i)];
    const auto& gk = instance_->groups[static_cast<std::size_t>(k)];
    if (gi.pinned_site >= 0 || gk.pinned_site >= 0) return kInfeasible;
    if (!group_allowed_at(gi, c) || !group_allowed_at(gk, a)) {
      return kInfeasible;
    }
    if (separation_blocks(i, c) || separation_blocks(k, a)) return kInfeasible;
    const long long si = gi.servers;
    const long long sk = gk.servers;
    const double di =
        instance_->use_vpn_links ? 0.0 : gi.monthly_data_megabits;
    const double dk =
        instance_->use_vpn_links ? 0.0 : gk.monthly_data_megabits;
    const auto cap = [&](int j) {
      return static_cast<long long>(
          instance_->sites[static_cast<std::size_t>(j)].capacity_servers);
    };
    if (servers_[static_cast<std::size_t>(a)] - si + sk > cap(a)) {
      return kInfeasible;
    }
    if (servers_[static_cast<std::size_t>(c)] - sk + si > cap(c)) {
      return kInfeasible;
    }
    Money delta = placement_cost(i, c) - placement_cost(i, a) +
                  placement_cost(k, a) - placement_cost(k, c);
    delta += site_cost_if(a, servers_[static_cast<std::size_t>(a)] - si + sk,
                          data_[static_cast<std::size_t>(a)] - di + dk, 0) -
             site_cost_[static_cast<std::size_t>(a)];
    delta += site_cost_if(c, servers_[static_cast<std::size_t>(c)] - sk + si,
                          data_[static_cast<std::size_t>(c)] - dk + di, 0) -
             site_cost_[static_cast<std::size_t>(c)];
    return delta;
  }

  void commit_swap(int i, int k) {
    const int a = primary_[static_cast<std::size_t>(i)];
    const int c = primary_[static_cast<std::size_t>(k)];
    const auto& gi = instance_->groups[static_cast<std::size_t>(i)];
    const auto& gk = instance_->groups[static_cast<std::size_t>(k)];
    const double di =
        instance_->use_vpn_links ? 0.0 : gi.monthly_data_megabits;
    const double dk =
        instance_->use_vpn_links ? 0.0 : gk.monthly_data_megabits;
    servers_[static_cast<std::size_t>(a)] += gk.servers - gi.servers;
    servers_[static_cast<std::size_t>(c)] += gi.servers - gk.servers;
    data_[static_cast<std::size_t>(a)] += dk - di;
    data_[static_cast<std::size_t>(c)] += di - dk;
    primary_[static_cast<std::size_t>(i)] = c;
    primary_[static_cast<std::size_t>(k)] = a;
    refresh_sites({a, c, -1});
  }

  void refresh_sites(std::initializer_list<int> sites) {
    for (const int j : sites) {
      if (j < 0) continue;
      total_site_cost_ -= site_cost_[static_cast<std::size_t>(j)];
      site_cost_[static_cast<std::size_t>(j)] = exact_site_cost(j);
      total_site_cost_ += site_cost_[static_cast<std::size_t>(j)];
    }
  }

  void export_to(Plan& plan) const {
    plan.primary = primary_;
    if (dr_) {
      plan.secondary = secondary_;
      plan.backup_servers.assign(backups_.begin(), backups_.end());
    }
  }

  [[nodiscard]] bool has_dr() const { return dr_; }
  [[nodiscard]] int primary_of(int i) const {
    return primary_[static_cast<std::size_t>(i)];
  }

  static constexpr Money kInfeasible =
      std::numeric_limits<double>::infinity();

 private:
  const CostModel* model_;
  const ConsolidationInstance* instance_;
  std::vector<int> primary_;
  std::vector<int> secondary_;
  bool dr_;
  std::vector<long long> servers_;  // primaries + provisioned backups
  std::vector<double> data_;        // flat-mode WAN aggregate (incl. replica)
  bool dedicated_ = false;
  int group_limit_ = 0;
  std::vector<int> group_count_;  // primaries per site (omega cap)
  std::vector<std::vector<long long>> load_;  // [primary][secondary] servers
  std::vector<long long> backups_;  // G_j: column max (shared) / sum (dedicated)
  std::vector<std::vector<int>> partners_;    // separation partners per group
  std::vector<Money> site_cost_;
  Money total_site_cost_ = 0.0;
};

}  // namespace

bool improve_plan(const CostModel& model, Plan& plan,
                  const LocalSearchOptions& options) {
  const auto& instance = model.instance();
  const int num_groups = instance.num_groups();
  const int num_sites = instance.num_sites();
  if (static_cast<int>(plan.primary.size()) != num_groups) {
    throw InvalidInputError("improve_plan: plan does not match instance");
  }
  PlanState state(model, plan, options.dedicated_backups,
                  options.max_groups_per_site);
  Rng rng(options.seed);
  std::vector<int> order(static_cast<std::size_t>(num_groups));
  std::iota(order.begin(), order.end(), 0);

  bool improved_any = false;
  constexpr Money kMinGain = 1e-7;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool improved_this_pass = false;
    rng.shuffle(order);
    for (const int i : order) {
      // Primary relocation.
      int best_site = -1;
      Money best_delta = -kMinGain;
      for (int j = 0; j < num_sites; ++j) {
        if (j == state.primary_of(i)) continue;
        const Money delta = state.primary_move_delta(i, j);
        if (delta < best_delta) {
          best_delta = delta;
          best_site = j;
        }
      }
      if (best_site >= 0) {
        state.commit_primary_move(i, best_site);
        improved_this_pass = true;
      }
      // Secondary relocation.
      if (state.has_dr()) {
        int best_backup = -1;
        Money best_backup_delta = -kMinGain;
        for (int j = 0; j < num_sites; ++j) {
          const Money delta = state.secondary_move_delta(i, j);
          if (delta < best_backup_delta) {
            best_backup_delta = delta;
            best_backup = j;
          }
        }
        if (best_backup >= 0) {
          state.commit_secondary_move(i, best_backup);
          improved_this_pass = true;
        }
      }
    }
    // Swap sweep (non-DR): lets two groups trade places when neither fits
    // alone.
    if (options.enable_swaps && !state.has_dr()) {
      for (int i = 0; i < num_groups; ++i) {
        for (int k = i + 1; k < num_groups; ++k) {
          const Money delta = state.swap_delta(i, k);
          if (delta < -kMinGain) {
            state.commit_swap(i, k);
            improved_this_pass = true;
          }
        }
      }
    }
    if (!improved_this_pass) break;
    improved_any = true;
  }
  if (improved_any) {
    state.export_to(plan);
    model.price_plan(plan);
  }
  return improved_any;
}

}  // namespace etransform
