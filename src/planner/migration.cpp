#include "planner/migration.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/error.h"

namespace etransform {

MigrationSchedule schedule_migration(const ConsolidationInstance& instance,
                                     const Plan& plan,
                                     const MigrationLimits& limits) {
  const int num_groups = instance.num_groups();
  if (static_cast<int>(plan.primary.size()) != num_groups) {
    throw InvalidInputError("schedule_migration: plan does not match instance");
  }
  if (limits.wan_budget_megabits < 0.0 || limits.max_moves < 0) {
    throw InvalidInputError("schedule_migration: negative limit");
  }
  const double budget = limits.wan_budget_megabits;
  for (const auto& group : instance.groups) {
    if (budget > 0.0 && group.monthly_data_megabits > budget) {
      throw InvalidInputError(
          "schedule_migration: group '" + group.name +
          "' alone exceeds the per-wave WAN budget");
    }
  }

  // Separation partners must not share a wave.
  std::vector<std::vector<int>> partners(static_cast<std::size_t>(num_groups));
  for (const auto& sep : instance.separations) {
    partners[static_cast<std::size_t>(sep.group_a)].push_back(sep.group_b);
    partners[static_cast<std::size_t>(sep.group_b)].push_back(sep.group_a);
  }

  // First-fit-decreasing by data volume.
  std::vector<int> order(static_cast<std::size_t>(num_groups));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return instance.groups[static_cast<std::size_t>(a)].monthly_data_megabits >
           instance.groups[static_cast<std::size_t>(b)].monthly_data_megabits;
  });

  MigrationSchedule schedule;
  std::vector<std::set<int>> wave_members;  // for the separation test
  std::vector<int> wave_of(static_cast<std::size_t>(num_groups), -1);
  for (const int i : order) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    bool placed = false;
    for (std::size_t w = 0; w < schedule.waves.size() && !placed; ++w) {
      auto& wave = schedule.waves[w];
      if (budget > 0.0 &&
          wave.data_megabits + group.monthly_data_megabits > budget) {
        continue;
      }
      if (limits.max_moves > 0 &&
          static_cast<int>(wave.groups.size()) >= limits.max_moves) {
        continue;
      }
      bool conflicted = false;
      for (const int partner : partners[static_cast<std::size_t>(i)]) {
        conflicted |= wave_members[w].count(partner) > 0;
      }
      if (conflicted) continue;
      wave.groups.push_back(i);
      wave.data_megabits += group.monthly_data_megabits;
      wave_members[w].insert(i);
      wave_of[static_cast<std::size_t>(i)] = static_cast<int>(w);
      placed = true;
    }
    if (!placed) {
      MigrationWave wave;
      wave.groups.push_back(i);
      wave.data_megabits = group.monthly_data_megabits;
      schedule.waves.push_back(std::move(wave));
      wave_members.emplace_back(std::set<int>{i});
      wave_of[static_cast<std::size_t>(i)] =
          static_cast<int>(schedule.waves.size()) - 1;
    }
  }

  // DR: provision each backup site at the start of the earliest wave any of
  // its protected groups moves in.
  if (plan.has_dr()) {
    std::vector<int> earliest(static_cast<std::size_t>(instance.num_sites()),
                              -1);
    for (int i = 0; i < num_groups; ++i) {
      const int b = plan.secondary[static_cast<std::size_t>(i)];
      const int w = wave_of[static_cast<std::size_t>(i)];
      if (earliest[static_cast<std::size_t>(b)] < 0 ||
          w < earliest[static_cast<std::size_t>(b)]) {
        earliest[static_cast<std::size_t>(b)] = w;
      }
    }
    for (int j = 0; j < instance.num_sites(); ++j) {
      const int w = earliest[static_cast<std::size_t>(j)];
      if (w >= 0 && plan.backup_servers[static_cast<std::size_t>(j)] > 0) {
        schedule.waves[static_cast<std::size_t>(w)]
            .provisioned_sites.push_back(j);
      }
    }
  }

  // Bin-packing lower bound.
  double total_data = 0.0;
  for (const auto& group : instance.groups) {
    total_data += group.monthly_data_megabits;
  }
  int bound = 1;
  if (budget > 0.0) {
    bound = std::max(bound,
                     static_cast<int>(std::ceil(total_data / budget - 1e-9)));
  }
  if (limits.max_moves > 0) {
    bound = std::max(
        bound, (num_groups + limits.max_moves - 1) / limits.max_moves);
  }
  schedule.lower_bound_waves = bound;
  return schedule;
}

std::vector<std::string> check_schedule(const ConsolidationInstance& instance,
                                        const Plan& plan,
                                        const MigrationLimits& limits,
                                        const MigrationSchedule& schedule) {
  std::vector<std::string> problems;
  const int num_groups = instance.num_groups();
  std::vector<int> wave_of(static_cast<std::size_t>(num_groups), -1);
  for (std::size_t w = 0; w < schedule.waves.size(); ++w) {
    const auto& wave = schedule.waves[w];
    double data = 0.0;
    for (const int i : wave.groups) {
      if (i < 0 || i >= num_groups) {
        problems.push_back("wave " + std::to_string(w) +
                           " references an unknown group");
        continue;
      }
      if (wave_of[static_cast<std::size_t>(i)] >= 0) {
        problems.push_back(
            "group '" + instance.groups[static_cast<std::size_t>(i)].name +
            "' scheduled twice");
      }
      wave_of[static_cast<std::size_t>(i)] = static_cast<int>(w);
      data += instance.groups[static_cast<std::size_t>(i)]
                  .monthly_data_megabits;
    }
    if (limits.wan_budget_megabits > 0.0 &&
        data > limits.wan_budget_megabits * (1.0 + 1e-9)) {
      problems.push_back("wave " + std::to_string(w) +
                         " exceeds the WAN budget");
    }
    if (limits.max_moves > 0 &&
        static_cast<int>(wave.groups.size()) > limits.max_moves) {
      problems.push_back("wave " + std::to_string(w) + " exceeds max moves");
    }
  }
  for (int i = 0; i < num_groups; ++i) {
    if (wave_of[static_cast<std::size_t>(i)] < 0) {
      problems.push_back(
          "group '" + instance.groups[static_cast<std::size_t>(i)].name +
          "' never scheduled");
    }
  }
  for (const auto& sep : instance.separations) {
    if (wave_of[static_cast<std::size_t>(sep.group_a)] >= 0 &&
        wave_of[static_cast<std::size_t>(sep.group_a)] ==
            wave_of[static_cast<std::size_t>(sep.group_b)]) {
      problems.push_back(
          "separated groups '" +
          instance.groups[static_cast<std::size_t>(sep.group_a)].name +
          "' and '" +
          instance.groups[static_cast<std::size_t>(sep.group_b)].name +
          "' move in the same wave");
    }
  }
  if (plan.has_dr()) {
    std::vector<int> provisioned_at(
        static_cast<std::size_t>(instance.num_sites()), -1);
    for (std::size_t w = 0; w < schedule.waves.size(); ++w) {
      for (const int j : schedule.waves[w].provisioned_sites) {
        if (j >= 0 && j < instance.num_sites() &&
            provisioned_at[static_cast<std::size_t>(j)] < 0) {
          provisioned_at[static_cast<std::size_t>(j)] = static_cast<int>(w);
        }
      }
    }
    for (int i = 0; i < num_groups; ++i) {
      const int b = plan.secondary[static_cast<std::size_t>(i)];
      if (plan.backup_servers[static_cast<std::size_t>(b)] == 0) continue;
      if (provisioned_at[static_cast<std::size_t>(b)] < 0 ||
          provisioned_at[static_cast<std::size_t>(b)] >
              wave_of[static_cast<std::size_t>(i)]) {
        problems.push_back(
            "group '" + instance.groups[static_cast<std::size_t>(i)].name +
            "' moves before its backup site is provisioned");
      }
    }
  }
  return problems;
}

}  // namespace etransform
