// The eTransform planner: turns an instance into a "to-be" plan.
//
// Engine selection mirrors the reproduction strategy documented in
// DESIGN.md:
//  * exact     — build the MILP (formulation.h) and solve it with
//                branch-and-bound. Used whenever the variable counts are
//                within a from-scratch solver's reach (the enterprise1 /
//                Florida scale, and all the Fig. 7-10 parameter studies).
//  * two-stage — DR only: stage 1 solves the joint placement with the
//                dedicated-sizing surrogate (or heuristically at very large
//                scale), stage 2 fixes the primaries and re-optimizes the
//                secondaries with the exact shared-sizing rows; a final
//                local-search polish may move primaries again.
//  * heuristic — greedy seed + exact-evaluation local search, with an
//                optional Lagrangian lower bound to certify the gap. Used at
//                the Federal scale (190k binaries), where the paper relied
//                on CPLEX.
// kAuto picks per instance size.
#pragma once

#include <limits>
#include <string>
#include <utility>

#include "common/solve_context.h"
#include "cost/cost_model.h"
#include "milp/branch_and_bound.h"
#include "model/horizon.h"
#include "model/plan.h"
#include "planner/local_search.h"

namespace etransform {

/// Planner configuration.
struct PlannerOptions {
  enum class Engine { kAuto, kExact, kHeuristic };
  Engine engine = Engine::kAuto;

  /// Also produce a disaster-recovery plan (paper §IV).
  bool enable_dr = false;
  /// DR backup sizing. kShared (default) plans for a single concurrent
  /// failure and shares backup pools across primaries (§IV-B). kDedicated
  /// gives every group its own backups — the paper's prescription for
  /// surviving multiple concurrent failures (§IV-A).
  enum class DrSizing { kShared, kDedicated };
  DrSizing dr_sizing = DrSizing::kShared;
  /// Business impact parameter omega: max fraction of groups per site.
  /// Enforced by the MILP engines; the heuristic path ignores it.
  double business_impact_omega = 1.0;
  /// Model volume discounts (tier binaries). Off = base-price ablation.
  bool economies_of_scale = true;

  /// Full MILP stack configuration for exact solves: search budget, root
  /// cutting planes, branching rule, simplex engine, and the presolve gate
  /// (milp.presolve.enable controls whether lp::presolve runs before
  /// branch-and-bound).
  milp::SolverOptions milp = default_solver_options();

  /// kAuto switches to the heuristic above this many assignment binaries.
  int exact_var_limit = 8000;
  /// kAuto uses the joint J_abc DR formulation up to this many J variables,
  /// then falls back to the two-stage method. (The joint LP has ~M*N^2 rows
  /// as well as variables, so this gate bounds solver memory and time.)
  int joint_dr_var_limit = 4096;

  LocalSearchOptions local_search;
  /// Compute the Lagrangian bound on heuristic solves (non-DR only).
  bool compute_lower_bound = false;

  static milp::SolverOptions default_solver_options() {
    milp::SolverOptions options;
    options.search.max_nodes = 20000;
    options.search.time_limit_ms = 60000;
    options.search.relative_gap = 1e-6;
    return options;
  }
};

/// Versioned planner input (wire api_version 2): the cost model of the base
/// demand snapshot plus the demand horizon it must be planned over. An
/// empty (static) horizon reproduces the classic single-snapshot problem
/// exactly. Non-owning pointers: the cost model (and the basis, when set)
/// must outlive the plan() call.
struct PlanInput {
  PlanInput() = default;
  /// Single-snapshot input: PlanInput(model). Set horizon / root_warm /
  /// lock_placement on the named object afterwards.
  explicit PlanInput(const CostModel& m) : model(&m) {}
  PlanInput(const CostModel& m, PlanningHorizon h)
      : model(&m), horizon(std::move(h)) {}

  /// Required. Prices the base snapshot; per-period models are derived from
  /// its instance via apply_period.
  const CostModel* model = nullptr;
  /// Demand timeline. is_static() == true plans the single snapshot.
  PlanningHorizon horizon;
  /// Optional warm-start basis from a previous solve's
  /// PlannerReport::root_basis (the iterative replan loop); remapped by
  /// variable/row name, always advisory.
  const lp::NamedBasis* root_warm = nullptr;
  /// Multi-period only: share one placement across all periods — the "best
  /// static plan over the horizon" competitor (solved exactly; the
  /// heuristic engine does not support it).
  bool lock_placement = false;
};

/// The plan plus solver provenance and the solve's observability record.
struct PlannerReport {
  Plan plan;
  /// Multi-period solve result: per-period plans plus weighted totals and
  /// the migration charge. Empty on static solves; `plan` mirrors
  /// multi.periods.front() so single-snapshot consumers keep working.
  MultiPeriodPlan multi;
  /// True if the plan came out of the MILP solver (possibly polished).
  bool used_exact_solver = false;
  /// True if optimality was proven (exact solve closed the gap).
  bool proven_optimal = false;
  /// True when the solve was cut short by the SolveContext deadline or a
  /// cancellation request (the plan is the best found by then).
  bool interrupted = false;
  /// Lower bound on the optimal total cost (MILP bound or Lagrangian bound);
  /// NaN when not computed.
  double lower_bound = std::numeric_limits<double>::quiet_NaN();
  /// Branch-and-bound nodes expanded (0 on pure-heuristic solves).
  int milp_nodes = 0;
  /// The "planner" stats subtree: per-stage wall times (formulation /
  /// presolve / branch-and-bound with root LP / local-search polish /
  /// heuristic seeds), aggregated simplex counters, and the MILP
  /// incumbent/bound trace. render_solve_stats() in report/ prints it.
  SolveStats stats;
  /// Root-relaxation basis of the exact MILP solve, annotated with the
  /// variable/row names of the standard form branch-and-bound actually
  /// solved (the presolved reduction when presolve ran). Hand it back
  /// through plan()'s `root_warm` on the next solve of a modified variant
  /// of the same instance — the admin replan loop — and the planner remaps
  /// it by name onto the new formulation (lp::remap_basis) to restart the
  /// root LP with the dual simplex, even when the delta added or removed
  /// columns/rows. Null on heuristic solves or when the root never reached
  /// optimality.
  std::shared_ptr<const lp::NamedBasis> root_basis;

  [[nodiscard]] bool is_multi_period() const { return !multi.periods.empty(); }
  /// The number competitors are compared on: the weighted horizon total
  /// (including migration) for multi-period solves, the plan total
  /// statically.
  [[nodiscard]] Money objective() const {
    return is_multi_period() ? multi.cost.total() : plan.cost.total();
  }
};

/// The planner. Stateless between calls; safe to reuse across instances.
class EtransformPlanner {
 public:
  explicit EtransformPlanner(PlannerOptions options = {});

  /// Plans `input` under `ctx`: the context's deadline and cancellation
  /// token are honored throughout the MILP stack (an interrupted solve
  /// returns the best plan found, flagged via PlannerReport::interrupted),
  /// events stream solver progress, and the stats tree lands in
  /// PlannerReport::stats. Throws InfeasibleError when no feasible plan
  /// exists, InvalidInputError on malformed input (including a null
  /// input.model or an inconsistent horizon).
  ///
  /// A static horizon runs the classic single-snapshot engines. A
  /// non-static horizon builds the time-expanded formulation (exact path)
  /// or per-period heuristic solves with a migration-aware smoothing pass
  /// (heuristic path); the result lands in PlannerReport::multi.
  /// input.root_warm, when non-null, restarts the exact root relaxation
  /// from a previous solve's PlannerReport::root_basis (iterative
  /// replans): the basis is remapped by variable/row name onto whatever
  /// standard form this solve produces, so it survives small formulation
  /// deltas. Always advisory — an unmappable or stale basis degrades to a
  /// cold start.
  [[nodiscard]] PlannerReport plan(const PlanInput& input,
                                   SolveContext& ctx) const;

  /// Deprecated single-snapshot shim (kept for one PR, like
  /// MilpOptions -> SolverOptions): forwards to
  /// plan({.model=&model, .root_warm=root_warm}, ctx).
  [[deprecated(
      "use plan(PlanInput{...}, ctx); this single-snapshot overload will be "
      "removed next PR")]] [[nodiscard]] PlannerReport
  plan(const CostModel& model, SolveContext& ctx,
       const lp::NamedBasis* root_warm = nullptr) const;

  [[nodiscard]] const PlannerOptions& options() const { return options_; }

 private:
  [[nodiscard]] PlannerReport plan_dispatch(const CostModel& model,
                                            SolveContext& ctx,
                                            const lp::NamedBasis* root_warm)
      const;
  [[nodiscard]] PlannerReport plan_exact(const CostModel& model, bool joint_dr,
                                         SolveContext& ctx,
                                         const lp::NamedBasis* root_warm)
      const;
  [[nodiscard]] PlannerReport plan_two_stage_dr(const CostModel& model,
                                                bool exact_stage1,
                                                SolveContext& ctx) const;
  [[nodiscard]] PlannerReport plan_heuristic(const CostModel& model,
                                             SolveContext& ctx) const;
  [[nodiscard]] PlannerReport plan_multi_period(const PlanInput& input,
                                                SolveContext& ctx) const;
  [[nodiscard]] PlannerReport plan_multi_exact(const PlanInput& input,
                                               bool joint_dr,
                                               SolveContext& ctx) const;
  [[nodiscard]] PlannerReport plan_multi_heuristic(const PlanInput& input,
                                                   SolveContext& ctx) const;

  PlannerOptions options_;
};

}  // namespace etransform
