#include "planner/admin.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "cost/cost_model.h"

namespace etransform {

ScenarioSession::ScenarioSession(ConsolidationInstance instance,
                                 PlannerOptions options)
    : instance_(std::move(instance)), options_(options) {
  validate_instance(instance_);
}

void ScenarioSession::check_group(int group) const {
  if (group < 0 || group >= instance_.num_groups()) {
    throw InvalidInputError("scenario: unknown group index " +
                            std::to_string(group));
  }
}

void ScenarioSession::check_site(int site) const {
  if (site < 0 || site >= instance_.num_sites()) {
    throw InvalidInputError("scenario: unknown site index " +
                            std::to_string(site));
  }
}

void ScenarioSession::pin_group(int group, int site) {
  check_group(group);
  check_site(site);
  auto& g = instance_.groups[static_cast<std::size_t>(group)];
  if (!g.allowed_sites.empty() &&
      std::find(g.allowed_sites.begin(), g.allowed_sites.end(), site) ==
          g.allowed_sites.end()) {
    throw InvalidInputError("scenario: pin target is a forbidden site for '" +
                            g.name + "'");
  }
  g.pinned_site = site;
  log_.push_back("pin " + g.name + " -> " +
                 instance_.sites[static_cast<std::size_t>(site)].name);
  report_.reset();
}

void ScenarioSession::unpin_group(int group) {
  check_group(group);
  auto& g = instance_.groups[static_cast<std::size_t>(group)];
  g.pinned_site = -1;
  log_.push_back("unpin " + g.name);
  report_.reset();
}

void ScenarioSession::forbid_site(int group, int site) {
  check_group(group);
  check_site(site);
  auto& g = instance_.groups[static_cast<std::size_t>(group)];
  if (g.pinned_site == site) {
    throw InvalidInputError("scenario: cannot forbid the pinned site of '" +
                            g.name + "'");
  }
  if (g.allowed_sites.empty()) {
    g.allowed_sites.resize(static_cast<std::size_t>(instance_.num_sites()));
    std::iota(g.allowed_sites.begin(), g.allowed_sites.end(), 0);
  }
  std::erase(g.allowed_sites, site);
  if (g.allowed_sites.empty()) {
    throw InfeasibleError("scenario: group '" + g.name +
                          "' would have no allowed site left");
  }
  log_.push_back("forbid " + g.name + " at " +
                 instance_.sites[static_cast<std::size_t>(site)].name);
  report_.reset();
}

void ScenarioSession::require_separation(int group_a, int group_b) {
  check_group(group_a);
  check_group(group_b);
  if (group_a == group_b) {
    throw InvalidInputError("scenario: cannot separate a group from itself");
  }
  instance_.separations.push_back(SeparationConstraint{group_a, group_b});
  log_.push_back(
      "separate " +
      instance_.groups[static_cast<std::size_t>(group_a)].name + " | " +
      instance_.groups[static_cast<std::size_t>(group_b)].name);
  report_.reset();
}

void ScenarioSession::set_latency_penalty(int group,
                                          LatencyPenaltyFunction penalty) {
  check_group(group);
  instance_.groups[static_cast<std::size_t>(group)].latency_penalty =
      std::move(penalty);
  log_.push_back(
      "latency-penalty " +
      instance_.groups[static_cast<std::size_t>(group)].name + " updated");
  report_.reset();
}

void ScenarioSession::set_horizon(PlanningHorizon horizon) {
  validate_horizon(instance_, horizon);
  horizon_ = std::move(horizon);
  log_.push_back(horizon_.is_static()
                     ? std::string("horizon static")
                     : "horizon " + horizon_fingerprint(horizon_));
  report_.reset();
}

const PlannerReport& ScenarioSession::replan() {
  validate_instance(instance_);
  const CostModel model(instance_);
  const EtransformPlanner planner(options_);
  SolveContext ctx;
  // Admin modifications leave the model structurally close to the previous
  // one, so the old root basis is usually still dual-feasible for the new
  // root relaxation: hand it back and let the dual simplex reoptimize. The
  // planner drops it when the shapes diverged.
  PlanInput input;
  input.model = &model;
  input.horizon = horizon_;
  input.root_warm = root_basis_.get();
  report_ = planner.plan(input, ctx);
  if (report_->root_basis) root_basis_ = report_->root_basis;
  return *report_;
}

}  // namespace etransform
