// Lagrangian lower bound for the (non-DR) consolidation problem.
//
// Relaxing the site capacity rows with multipliers lambda_j >= 0 decomposes
// the problem per application group: each group independently picks the site
// minimizing cLB_ij + lambda_j * S_i, where cLB_ij is a provable
// under-estimate of the group's placement cost (deepest-discount tier unit
// prices, exact VPN/latency terms). Subgradient ascent on lambda then yields
// a valid lower bound on the optimal plan cost.
//
// On instances too large for the exact MILP (the Federal dataset) this bound
// certifies the optimality gap of the heuristic plan the planner reports —
// the role CPLEX's own bound plays in the paper's setup.
#pragma once

#include "cost/cost_model.h"

namespace etransform {

/// Tuning for the subgradient ascent.
struct LagrangianOptions {
  int max_iterations = 150;
  /// Initial Polyak step scale; halved after `patience` non-improving steps.
  double step_scale = 2.0;
  int patience = 10;
  /// Upper bound used by the Polyak step. <= 0 means "estimate internally"
  /// (cheapest-site relaxation sum, ignoring capacity).
  double upper_bound = -1.0;
};

/// Result of the bound computation.
struct LagrangianBound {
  /// Valid lower bound on the optimal total plan cost.
  double lower_bound = 0.0;
  int iterations = 0;
};

/// Computes the bound. Throws InvalidInputError on malformed instances.
[[nodiscard]] LagrangianBound lagrangian_lower_bound(
    const CostModel& model, const LagrangianOptions& options = {});

}  // namespace etransform
