#include "report/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/error.h"
#include "common/money.h"
#include "common/table.h"

namespace etransform {

AlgorithmResult summarize(const std::string& label, const Plan& plan) {
  AlgorithmResult result;
  result.label = label;
  result.operational_cost = plan.cost.operational();
  result.latency_penalty = plan.cost.latency_penalty;
  result.latency_violations = plan.latency_violations;
  return result;
}

AlgorithmResult summarize(const std::string& label, const CostBreakdown& cost,
                          int violations) {
  AlgorithmResult result;
  result.label = label;
  result.operational_cost = cost.operational();
  result.latency_penalty = cost.latency_penalty;
  result.latency_violations = violations;
  return result;
}

std::string render_comparison(const std::string& dataset,
                              const std::vector<AlgorithmResult>& results) {
  if (results.empty()) {
    throw InvalidInputError("render_comparison: no results");
  }
  TextTable table({"algorithm", "cost", "latency penalty", "total",
                   "reduction", "violations"});
  const Money baseline = results.front().total();
  for (const auto& result : results) {
    const double reduction =
        baseline > 0.0 ? (result.total() - baseline) / baseline * 100.0 : 0.0;
    table.add_row({result.label, format_money_compact(result.operational_cost),
                   format_money_compact(result.latency_penalty),
                   format_money_compact(result.total()),
                   &result == &results.front() ? "-"
                                               : format_percent(reduction),
                   std::to_string(result.latency_violations)});
  }
  return "[" + dataset + "]\n" + table.render();
}

std::string render_cost_breakdown(const CostBreakdown& cost) {
  TextTable table({"component", "monthly cost"});
  table.add_row({"space", format_money(cost.space)});
  table.add_row({"power", format_money(cost.power)});
  table.add_row({"labor", format_money(cost.labor)});
  table.add_row({"wan", format_money(cost.wan)});
  table.add_row({"latency penalty", format_money(cost.latency_penalty)});
  if (cost.backup_capex > 0.0) {
    table.add_row({"backup capex", format_money(cost.backup_capex)});
  }
  if (cost.migration > 0.0) {
    table.add_row({"migration", format_money(cost.migration)});
  }
  table.add_row({"total", format_money(cost.total())});
  return table.render();
}

std::string render_plan_summary(const ConsolidationInstance& instance,
                                const Plan& plan) {
  struct SiteRow {
    int groups = 0;
    long long servers = 0;
    int backups = 0;
  };
  std::map<int, SiteRow> rows;
  for (int i = 0; i < instance.num_groups(); ++i) {
    const int j = plan.primary[static_cast<std::size_t>(i)];
    rows[j].groups += 1;
    rows[j].servers += instance.groups[static_cast<std::size_t>(i)].servers;
  }
  if (plan.has_dr()) {
    for (int j = 0; j < instance.num_sites(); ++j) {
      const int backups = plan.backup_servers[static_cast<std::size_t>(j)];
      if (backups > 0) rows[j].backups = backups;
    }
  }
  TextTable table(plan.has_dr()
                      ? std::vector<std::string>{"site", "groups", "servers",
                                                 "backup servers"}
                      : std::vector<std::string>{"site", "groups", "servers"});
  for (const auto& [site, row] : rows) {
    std::vector<std::string> cells = {
        instance.sites[static_cast<std::size_t>(site)].name,
        std::to_string(row.groups), std::to_string(row.servers)};
    if (plan.has_dr()) cells.push_back(std::to_string(row.backups));
    table.add_row(std::move(cells));
  }
  std::string out = "to-be state (" + plan.algorithm + "): " +
                    std::to_string(plan.sites_used()) + " of " +
                    std::to_string(instance.num_sites()) + " sites used, " +
                    std::to_string(plan.latency_violations) +
                    " latency violations\n";
  out += table.render();
  out += "\n";
  out += render_cost_breakdown(plan.cost);
  return out;
}

std::string render_multi_period_summary(const PlanningHorizon& horizon,
                                        const MultiPeriodPlan& multi) {
  if (multi.empty()) {
    throw InvalidInputError("render_multi_period_summary: empty plan");
  }
  if (static_cast<int>(multi.periods.size()) != horizon.num_periods()) {
    throw InvalidInputError(
        "render_multi_period_summary: plan has " +
        std::to_string(multi.periods.size()) + " periods, horizon " +
        std::to_string(horizon.num_periods()));
  }
  TextTable table(
      {"period", "months", "sites", "violations", "monthly cost", "moves in"});
  for (std::size_t t = 0; t < multi.periods.size(); ++t) {
    const Plan& plan = multi.periods[t];
    int moves = 0;
    if (t > 0) {
      const Plan& prev = multi.periods[t - 1];
      for (std::size_t i = 0; i < plan.primary.size(); ++i) {
        if (plan.primary[i] != prev.primary[i]) ++moves;
      }
    }
    char months[32];
    std::snprintf(months, sizeof(months), "%.2f",
                  horizon.period_weight(static_cast<int>(t)));
    table.add_row({horizon.period_name(static_cast<int>(t)), months,
                   std::to_string(plan.sites_used()),
                   std::to_string(plan.latency_violations),
                   format_money_compact(plan.cost.total()),
                   t == 0 ? "-" : std::to_string(moves)});
  }
  std::string out = "multi-period plan (" + multi.algorithm + "): " +
                    std::to_string(horizon.num_periods()) + " periods, " +
                    std::to_string(multi.total_moves) + " group moves (" +
                    std::to_string(multi.moved_servers) + " servers)\n";
  out += table.render();
  out += "\nhorizon totals (weighted):\n";
  out += render_cost_breakdown(multi.cost);
  return out;
}

std::string render_instance_summary(const ConsolidationInstance& instance) {
  double total_users = 0.0;
  for (const auto& group : instance.groups) total_users += group.total_users();
  long long capacity = 0;
  for (const auto& site : instance.sites) capacity += site.capacity_servers;
  TextTable table({"statistic", "value"});
  table.add_row({"dataset", instance.name});
  table.add_row({"application groups", std::to_string(instance.num_groups())});
  table.add_row({"physical servers", std::to_string(instance.total_servers())});
  table.add_row(
      {"as-is data centers",
       std::to_string(instance.as_is_centers.size())});
  table.add_row({"target data centers", std::to_string(instance.num_sites())});
  table.add_row({"target capacity (servers)", std::to_string(capacity)});
  table.add_row({"user locations", std::to_string(instance.num_locations())});
  table.add_row({"users", std::to_string(static_cast<long long>(total_users))});
  return table.render();
}

namespace {

/// Formats a metric value: integers without decimals, rest with two.
std::string format_metric(double value) {
  if (std::abs(value - std::round(value)) < 1e-9 &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(std::llround(value)));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

void add_stats_rows(TextTable& table, const SolveStats& stats, int depth) {
  std::string counters;
  for (const auto& [key, value] : stats.metrics) {
    if (!counters.empty()) counters += ", ";
    counters += key + "=" + format_metric(value);
  }
  if (!stats.trace.empty()) {
    if (!counters.empty()) counters += ", ";
    counters += "trace_points=" + std::to_string(stats.trace.size());
  }
  char wall[64];
  std::snprintf(wall, sizeof(wall), "%.2f", stats.wall_ms);
  table.add_row({std::string(static_cast<std::size_t>(depth) * 2, ' ') +
                     stats.name,
                 wall, counters});
  for (const auto& child : stats.children) {
    add_stats_rows(table, child, depth + 1);
  }
}

}  // namespace

std::string render_solve_stats(const SolveStats& stats) {
  TextTable table({"stage", "wall ms", "counters"});
  add_stats_rows(table, stats, 0);
  return table.render();
}

}  // namespace etransform
