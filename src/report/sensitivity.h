// Placement sensitivity analysis for a finished plan.
//
// The paper's output-generation module turns the LP solution into a "to-be"
// state; operators then ask "how locked-in is each decision?". For every
// application group this computes the runner-up site and the *regret* —
// the exact cost increase if the group were forced to its second-best
// placement with everything else held fixed — and per site the utilization
// headroom. Groups with near-zero regret are free to move during migration
// scheduling; high-regret groups are the plan's anchors.
#pragma once

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "cost/cost_model.h"
#include "model/plan.h"

namespace etransform {

/// Sensitivity of one group's primary placement.
struct GroupSensitivity {
  int group = -1;
  int chosen_site = -1;
  /// Best alternative site (respecting pins/allowed/capacity), or -1 if the
  /// group has no feasible alternative.
  int runner_up_site = -1;
  /// Exact plan-cost increase of moving the group to the runner-up.
  Money regret = 0.0;
};

/// Utilization of one site under the plan.
struct SiteUtilization {
  int site = -1;
  long long servers = 0;   // primaries + provisioned backups
  int capacity = 0;
  /// servers / capacity in [0, 1].
  double utilization = 0.0;
};

/// Full sensitivity analysis of a non-DR or DR plan (DR plans evaluate
/// primary-move regret with secondaries fixed).
struct SensitivityReport {
  std::vector<GroupSensitivity> groups;   // ordered by descending regret
  std::vector<SiteUtilization> sites;     // ordered by site index
};

/// Computes the report. The plan must be feasible for the model's instance
/// (check_plan empty); throws InvalidInputError otherwise.
[[nodiscard]] SensitivityReport analyze_sensitivity(const CostModel& model,
                                                    const Plan& plan);

/// Same analysis with the per-group regret scan fanned out over `pool`
/// (each group's regret is independent given the plan's site aggregates).
/// Produces a byte-identical report to the sequential overload.
[[nodiscard]] SensitivityReport analyze_sensitivity(const CostModel& model,
                                                    const Plan& plan,
                                                    ThreadPool& pool);

/// Renders the report as text tables (top `max_groups` regrets).
[[nodiscard]] std::string render_sensitivity(
    const ConsolidationInstance& instance, const SensitivityReport& report,
    std::size_t max_groups = 15);

}  // namespace etransform
