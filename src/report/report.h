// Report rendering: plan summaries, cost breakdowns, and the comparison
// tables that reproduce the paper's Fig. 4/6 panels as text.
#pragma once

#include <string>
#include <vector>

#include "common/solve_context.h"
#include "model/horizon.h"
#include "model/plan.h"

namespace etransform {

/// One bar of a Fig. 4/6-style comparison.
struct AlgorithmResult {
  std::string label;
  Money operational_cost = 0.0;
  Money latency_penalty = 0.0;
  int latency_violations = 0;

  [[nodiscard]] Money total() const {
    return operational_cost + latency_penalty;
  }
};

/// Builds a result row from a priced plan.
[[nodiscard]] AlgorithmResult summarize(const std::string& label,
                                        const Plan& plan);

/// Builds a result row from a raw cost breakdown (as-is rows).
[[nodiscard]] AlgorithmResult summarize(const std::string& label,
                                        const CostBreakdown& cost,
                                        int violations);

/// Renders the Fig. 4/6 panel for one dataset: cost + penalty per
/// algorithm, percentage reduction vs the first (as-is) row, and the
/// violation counts.
[[nodiscard]] std::string render_comparison(
    const std::string& dataset, const std::vector<AlgorithmResult>& results);

/// Renders a cost breakdown as a two-column table.
[[nodiscard]] std::string render_cost_breakdown(const CostBreakdown& cost);

/// Renders a "to-be" state summary: sites used, servers and groups per site,
/// backups per site for DR plans, and the plan's cost/violations.
[[nodiscard]] std::string render_plan_summary(
    const ConsolidationInstance& instance, const Plan& plan);

/// Renders a multi-period plan: one row per demand period (duration, sites
/// used, violations, the period's monthly cost, and the group moves entering
/// it) followed by the weighted horizon totals — including the migration
/// charge. Throws InvalidInputError on an empty plan or a plan whose period
/// count does not match the horizon.
[[nodiscard]] std::string render_multi_period_summary(
    const PlanningHorizon& horizon, const MultiPeriodPlan& multi);

/// Renders dataset statistics in the style of Table II / Fig. 3.
[[nodiscard]] std::string render_instance_summary(
    const ConsolidationInstance& instance);

/// Renders a SolveStats tree (e.g. PlannerReport::stats) as a table: one row
/// per stage, depth shown by indentation, with wall time and the stage's
/// counters. Trace points are summarized, not listed (use to_json for the
/// full trace).
[[nodiscard]] std::string render_solve_stats(const SolveStats& stats);

}  // namespace etransform
