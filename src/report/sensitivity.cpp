#include "report/sensitivity.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "common/error.h"
#include "common/money.h"
#include "common/table.h"

namespace etransform {

namespace {

/// Runs the analysis with a pluggable loop driver so the sequential and
/// thread-pool overloads share one kernel: `for_each_group(n, fn)` must
/// invoke fn(i) exactly once for every i in [0, n) and return only when all
/// are done. The per-group work reads only shared immutable aggregates, so
/// any execution order yields the same report.
template <typename ForEachGroup>
SensitivityReport analyze_sensitivity_impl(const CostModel& model,
                                           const Plan& plan,
                                           const ForEachGroup& for_each_group) {
  const auto& instance = model.instance();
  if (!check_plan(instance, plan).empty()) {
    throw InvalidInputError("analyze_sensitivity: plan is not feasible");
  }
  const int num_groups = instance.num_groups();
  const int num_sites = instance.num_sites();
  const bool dr = plan.has_dr();

  // Site aggregates under the plan.
  std::vector<long long> servers(static_cast<std::size_t>(num_sites), 0);
  std::vector<double> data(static_cast<std::size_t>(num_sites), 0.0);
  for (int i = 0; i < num_groups; ++i) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    const int a = plan.primary[static_cast<std::size_t>(i)];
    servers[static_cast<std::size_t>(a)] += group.servers;
    if (!instance.use_vpn_links) {
      data[static_cast<std::size_t>(a)] += group.monthly_data_megabits;
    }
    if (dr) {
      const int b = plan.secondary[static_cast<std::size_t>(i)];
      if (!instance.use_vpn_links) {
        data[static_cast<std::size_t>(b)] += group.monthly_data_megabits;
      }
    }
  }
  if (dr) {
    for (int j = 0; j < num_sites; ++j) {
      servers[static_cast<std::size_t>(j)] +=
          plan.backup_servers[static_cast<std::size_t>(j)];
    }
  }

  SensitivityReport report;
  const auto placement_extra = [&](int i, int j) {
    Money c = model.latency_penalty(i, j);
    if (instance.use_vpn_links) c += model.wan_cost(i, j);
    return c;
  };
  const auto allowed_at = [&](const ApplicationGroup& group, int j) {
    if (group.pinned_site >= 0) return j == group.pinned_site;
    if (group.allowed_sites.empty()) return true;
    return std::find(group.allowed_sites.begin(), group.allowed_sites.end(),
                     j) != group.allowed_sites.end();
  };

  report.groups.resize(static_cast<std::size_t>(num_groups));
  for_each_group(num_groups, [&](int i) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    const int a = plan.primary[static_cast<std::size_t>(i)];
    const double d =
        instance.use_vpn_links ? 0.0 : group.monthly_data_megabits;
    // Exact cost of the current placement's removable share.
    const Money at_a =
        model.site_cost(a, servers[static_cast<std::size_t>(a)],
                        data[static_cast<std::size_t>(a)])
            .total() -
        model
            .site_cost(a, servers[static_cast<std::size_t>(a)] - group.servers,
                       data[static_cast<std::size_t>(a)] - d)
            .total() +
        placement_extra(i, a);

    GroupSensitivity sensitivity;
    sensitivity.group = i;
    sensitivity.chosen_site = a;
    Money best_alternative = std::numeric_limits<double>::infinity();
    for (int j = 0; j < num_sites; ++j) {
      if (j == a) continue;
      if (!allowed_at(group, j)) continue;
      if (dr && plan.secondary[static_cast<std::size_t>(i)] == j) continue;
      const auto capacity = static_cast<long long>(
          instance.sites[static_cast<std::size_t>(j)].capacity_servers);
      if (servers[static_cast<std::size_t>(j)] + group.servers > capacity) {
        continue;
      }
      const Money at_j =
          model
              .site_cost(j, servers[static_cast<std::size_t>(j)] +
                                group.servers,
                         data[static_cast<std::size_t>(j)] + d)
              .total() -
          model
              .site_cost(j, servers[static_cast<std::size_t>(j)],
                         data[static_cast<std::size_t>(j)])
              .total() +
          placement_extra(i, j);
      if (at_j < best_alternative) {
        best_alternative = at_j;
        sensitivity.runner_up_site = j;
      }
    }
    if (sensitivity.runner_up_site >= 0) {
      sensitivity.regret = best_alternative - at_a;
    }
    report.groups[static_cast<std::size_t>(i)] = sensitivity;
  });
  // Stable sort on the group-indexed array: identical input order whether
  // the scan ran sequentially or on a pool, so ties break identically and
  // the rendered report is byte-stable across thread counts.
  std::stable_sort(report.groups.begin(), report.groups.end(),
                   [](const GroupSensitivity& x, const GroupSensitivity& y) {
                     return x.regret > y.regret;
                   });

  for (int j = 0; j < num_sites; ++j) {
    SiteUtilization utilization;
    utilization.site = j;
    utilization.servers = servers[static_cast<std::size_t>(j)];
    utilization.capacity =
        instance.sites[static_cast<std::size_t>(j)].capacity_servers;
    utilization.utilization =
        utilization.capacity > 0
            ? static_cast<double>(utilization.servers) /
                  utilization.capacity
            : 0.0;
    report.sites.push_back(utilization);
  }
  return report;
}

}  // namespace

SensitivityReport analyze_sensitivity(const CostModel& model,
                                      const Plan& plan) {
  return analyze_sensitivity_impl(
      model, plan, [](int count, const std::function<void(int)>& fn) {
        for (int i = 0; i < count; ++i) fn(i);
      });
}

SensitivityReport analyze_sensitivity(const CostModel& model, const Plan& plan,
                                      ThreadPool& pool) {
  return analyze_sensitivity_impl(
      model, plan, [&pool](int count, const std::function<void(int)>& fn) {
        parallel_for(pool, count, fn);
      });
}

std::string render_sensitivity(const ConsolidationInstance& instance,
                               const SensitivityReport& report,
                               std::size_t max_groups) {
  TextTable groups({"group", "placed at", "runner-up", "regret ($/mo)"});
  for (std::size_t k = 0; k < report.groups.size() && k < max_groups; ++k) {
    const auto& g = report.groups[k];
    groups.add_row(
        {instance.groups[static_cast<std::size_t>(g.group)].name,
         instance.sites[static_cast<std::size_t>(g.chosen_site)].name,
         g.runner_up_site >= 0
             ? instance.sites[static_cast<std::size_t>(g.runner_up_site)].name
             : "(none feasible)",
         g.runner_up_site >= 0 ? format_money(g.regret) : "-"});
  }
  TextTable sites({"site", "servers", "capacity", "utilization"});
  for (const auto& s : report.sites) {
    if (s.servers == 0) continue;
    sites.add_row({instance.sites[static_cast<std::size_t>(s.site)].name,
                   std::to_string(s.servers), std::to_string(s.capacity),
                   format_percent(100.0 * s.utilization, 0)});
  }
  return "placement regret (top " + std::to_string(max_groups) + "):\n" +
         groups.render() + "\nsite utilization:\n" + sites.render();
}

}  // namespace etransform
