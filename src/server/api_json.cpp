#include "server/api_json.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace etransform::server {

namespace {

double require_number(const json::Value& v, const char* key) {
  if (!v.is_number()) {
    throw InvalidInputError(std::string("options.") + key + " must be a number");
  }
  return v.num;
}

bool require_bool(const json::Value& v, const char* key) {
  if (!v.is_bool()) {
    throw InvalidInputError(std::string("options.") + key + " must be a bool");
  }
  return v.b;
}

const std::string& require_string(const json::Value& v, const char* key) {
  if (!v.is_string()) {
    throw InvalidInputError(std::string("options.") + key +
                            " must be a string");
  }
  return v.str;
}

}  // namespace

PlannerOptions parse_options_json(const json::Value* options) {
  PlannerOptions out;
  if (options == nullptr || options->is_null()) return out;
  if (!options->is_object()) {
    throw InvalidInputError("options must be an object");
  }
  for (const auto& [key, value] : options->obj) {
    if (key == "engine") {
      const std::string& engine = require_string(value, "engine");
      if (engine == "auto") {
        out.engine = PlannerOptions::Engine::kAuto;
      } else if (engine == "exact") {
        out.engine = PlannerOptions::Engine::kExact;
      } else if (engine == "heuristic") {
        out.engine = PlannerOptions::Engine::kHeuristic;
      } else {
        throw InvalidInputError("options.engine: unknown engine '" + engine +
                                "'");
      }
    } else if (key == "dr") {
      out.enable_dr = require_bool(value, "dr");
    } else if (key == "dr_sizing") {
      const std::string& sizing = require_string(value, "dr_sizing");
      if (sizing == "shared") {
        out.dr_sizing = PlannerOptions::DrSizing::kShared;
      } else if (sizing == "dedicated") {
        out.dr_sizing = PlannerOptions::DrSizing::kDedicated;
      } else {
        throw InvalidInputError("options.dr_sizing: unknown sizing '" +
                                sizing + "'");
      }
    } else if (key == "omega") {
      out.business_impact_omega = require_number(value, "omega");
    } else if (key == "economies") {
      out.economies_of_scale = require_bool(value, "economies");
    } else if (key == "cuts") {
      const std::string& cuts = require_string(value, "cuts");
      if (cuts == "on") {
        out.milp.cuts.enable = true;
        out.milp.cuts.gomory = true;
        out.milp.cuts.cover = true;
      } else if (cuts == "off") {
        out.milp.cuts.enable = false;
      } else if (cuts == "gomory") {
        out.milp.cuts.enable = true;
        out.milp.cuts.gomory = true;
        out.milp.cuts.cover = false;
      } else if (cuts == "cover") {
        out.milp.cuts.enable = true;
        out.milp.cuts.gomory = false;
        out.milp.cuts.cover = true;
      } else {
        throw InvalidInputError("options.cuts: unknown mode '" + cuts + "'");
      }
    } else if (key == "cut_rounds") {
      out.milp.cuts.max_rounds =
          static_cast<int>(require_number(value, "cut_rounds"));
    } else if (key == "branching") {
      const std::string& rule = require_string(value, "branching");
      if (rule == "pseudocost") {
        out.milp.branching.rule = milp::BranchingOptions::Rule::kPseudocost;
      } else if (rule == "most-fractional") {
        out.milp.branching.rule = milp::BranchingOptions::Rule::kMostFractional;
      } else {
        throw InvalidInputError("options.branching: unknown rule '" + rule +
                                "'");
      }
    } else if (key == "lp_algorithm") {
      const std::string& algorithm = require_string(value, "lp_algorithm");
      if (algorithm == "auto") {
        out.milp.lp.mode = lp::SolveMode::kAuto;
      } else if (algorithm == "primal") {
        out.milp.lp.mode = lp::SolveMode::kPrimal;
      } else if (algorithm == "dual") {
        out.milp.lp.mode = lp::SolveMode::kDual;
      } else {
        throw InvalidInputError("options.lp_algorithm: unknown mode '" +
                                algorithm + "'");
      }
    } else if (key == "presolve") {
      out.milp.presolve.enable = require_bool(value, "presolve");
    } else if (key == "max_nodes") {
      out.milp.search.max_nodes =
          static_cast<int>(require_number(value, "max_nodes"));
    } else if (key == "relative_gap") {
      out.milp.search.relative_gap = require_number(value, "relative_gap");
    } else if (key == "threads") {
      out.milp.search.threads =
          static_cast<int>(require_number(value, "threads"));
    } else if (key == "deterministic") {
      out.milp.search.deterministic = require_bool(value, "deterministic");
    } else {
      throw InvalidInputError("options: unknown key '" + key + "'");
    }
  }
  return out;
}

std::string options_fingerprint(const PlannerOptions& options,
                                double time_limit_ms) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "v2 engine=%d dr=%d sizing=%d omega=%.17g eco=%d "
      "cuts=%d/%d/%d/%d branch=%d lp=%d presolve=%d "
      "nodes=%d gap=%.17g tl=%.17g varlim=%d jointlim=%d lb=%d "
      "threads=%d det=%d",
      static_cast<int>(options.engine), options.enable_dr ? 1 : 0,
      static_cast<int>(options.dr_sizing), options.business_impact_omega,
      options.economies_of_scale ? 1 : 0, options.milp.cuts.enable ? 1 : 0,
      options.milp.cuts.gomory ? 1 : 0, options.milp.cuts.cover ? 1 : 0,
      options.milp.cuts.max_rounds,
      static_cast<int>(options.milp.branching.rule),
      static_cast<int>(options.milp.lp.mode),
      options.milp.presolve.enable ? 1 : 0, options.milp.search.max_nodes,
      options.milp.search.relative_gap, time_limit_ms, options.exact_var_limit,
      options.joint_dr_var_limit, options.compute_lower_bound ? 1 : 0,
      options.milp.search.threads, options.milp.search.deterministic ? 1 : 0);
  return std::string(buf);
}

json::Value plan_result_json(const ConsolidationInstance& instance,
                             const PlannerReport& report, double solve_ms) {
  const Plan& plan = report.plan;

  json::Value cost = json::Value::object();
  cost.set("space", json::Value::number(plan.cost.space));
  cost.set("power", json::Value::number(plan.cost.power));
  cost.set("labor", json::Value::number(plan.cost.labor));
  cost.set("wan", json::Value::number(plan.cost.wan));
  cost.set("latency_penalty", json::Value::number(plan.cost.latency_penalty));
  cost.set("backup_capex", json::Value::number(plan.cost.backup_capex));
  cost.set("operational", json::Value::number(plan.cost.operational()));
  cost.set("total", json::Value::number(plan.cost.total()));

  json::Value assignments = json::Value::array();
  for (std::size_t i = 0; i < plan.primary.size(); ++i) {
    json::Value row = json::Value::object();
    row.set("group", json::Value::string(instance.groups[i].name));
    row.set("site",
            json::Value::string(instance.sites[plan.primary[i]].name));
    if (plan.has_dr() && plan.secondary[i] >= 0) {
      row.set("secondary",
              json::Value::string(instance.sites[plan.secondary[i]].name));
    }
    assignments.push(std::move(row));
  }

  json::Value out = json::Value::object();
  out.set("cost", std::move(cost));
  out.set("assignments", std::move(assignments));
  out.set("sites_used", json::Value::number(plan.sites_used()));
  out.set("latency_violations",
          json::Value::number(plan.latency_violations));
  out.set("algorithm", json::Value::string(plan.algorithm));
  out.set("used_exact_solver", json::Value::boolean(report.used_exact_solver));
  out.set("proven_optimal", json::Value::boolean(report.proven_optimal));
  out.set("interrupted", json::Value::boolean(report.interrupted));
  // NaN (bound not computed) serializes as null via append_number.
  out.set("lower_bound", json::Value::number(report.lower_bound));
  out.set("milp_nodes", json::Value::number(report.milp_nodes));
  out.set("lp_iters",
          json::Value::number(report.stats.deep_metric("pivots")));
  out.set("solve_ms", json::Value::number(solve_ms));
  return out;
}

}  // namespace etransform::server
