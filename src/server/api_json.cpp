#include "server/api_json.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "common/error.h"
#include "datagen/generators.h"

namespace etransform::server {

namespace {

double require_number(const json::Value& v, const char* key) {
  if (!v.is_number()) {
    throw InvalidInputError(std::string(key) + " must be a number");
  }
  return v.num;
}

bool require_bool(const json::Value& v, const char* key) {
  if (!v.is_bool()) {
    throw InvalidInputError(std::string(key) + " must be a bool");
  }
  return v.b;
}

const std::string& require_string(const json::Value& v, const char* key) {
  if (!v.is_string()) {
    throw InvalidInputError(std::string(key) + " must be a string");
  }
  return v.str;
}

/// Resolves a failed-site reference (name string or index number).
int resolve_failed_site(const ConsolidationInstance& instance,
                        const json::Value& ref) {
  if (ref.is_number()) {
    const double v = ref.num;
    if (!(v >= 0.0) || v != std::floor(v) ||
        v >= static_cast<double>(instance.num_sites())) {
      throw InvalidInputError("periods.failed_sites: bad site index");
    }
    return static_cast<int>(v);
  }
  if (ref.is_string()) {
    for (int j = 0; j < instance.num_sites(); ++j) {
      if (instance.sites[static_cast<std::size_t>(j)].name == ref.str) {
        return j;
      }
    }
    throw InvalidInputError("periods.failed_sites: unknown site '" + ref.str +
                            "'");
  }
  throw InvalidInputError(
      "periods.failed_sites entries must be site names or indices");
}

DemandPeriod parse_period_json(const ConsolidationInstance& instance,
                               const json::Value& entry) {
  if (!entry.is_object()) {
    throw InvalidInputError("periods entries must be objects");
  }
  DemandPeriod period;
  for (const auto& [key, value] : entry.obj) {
    if (key == "name") {
      period.name = require_string(value, "periods.name");
    } else if (key == "weight") {
      period.weight = require_number(value, "periods.weight");
    } else if (key == "multiplier") {
      period.multiplier = require_number(value, "periods.multiplier");
    } else if (key == "group_multipliers") {
      if (!value.is_array()) {
        throw InvalidInputError("periods.group_multipliers must be an array");
      }
      for (const json::Value& m : value.arr) {
        period.group_multipliers.push_back(
            require_number(m, "periods.group_multipliers"));
      }
    } else if (key == "failed_sites") {
      if (!value.is_array()) {
        throw InvalidInputError("periods.failed_sites must be an array");
      }
      for (const json::Value& site : value.arr) {
        period.failed_sites.push_back(resolve_failed_site(instance, site));
      }
    } else {
      throw InvalidInputError("periods: unknown key '" + key + "'");
    }
  }
  return period;
}

PlanningHorizon parse_traffic_curve_json(
    const ConsolidationInstance& instance, const json::Value& curve) {
  if (!curve.is_object()) {
    throw InvalidInputError("traffic_curve must be an object");
  }
  TrafficCurveSpec spec;
  spec.num_groups = instance.num_groups();
  for (const auto& [key, value] : curve.obj) {
    if (key == "shape") {
      const std::string& shape = require_string(value, "traffic_curve.shape");
      if (shape == "diurnal") {
        spec.shape = TrafficCurveSpec::Shape::kDiurnal;
      } else if (shape == "seasonal") {
        spec.shape = TrafficCurveSpec::Shape::kSeasonal;
      } else {
        throw InvalidInputError("traffic_curve.shape: unknown shape '" +
                                shape + "'");
      }
    } else if (key == "num_periods") {
      spec.num_periods =
          static_cast<int>(require_number(value, "traffic_curve.num_periods"));
    } else if (key == "peak") {
      spec.peak_multiplier = require_number(value, "traffic_curve.peak");
    } else if (key == "trough") {
      spec.trough_multiplier = require_number(value, "traffic_curve.trough");
    } else if (key == "period_weight") {
      spec.period_weight =
          require_number(value, "traffic_curve.period_weight");
    } else if (key == "antiphase_fraction") {
      spec.antiphase_fraction =
          require_number(value, "traffic_curve.antiphase_fraction");
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(
          require_number(value, "traffic_curve.seed"));
    } else {
      throw InvalidInputError("traffic_curve: unknown key '" + key + "'");
    }
  }
  return make_traffic_curve(spec);
}

}  // namespace

PlanningHorizon parse_horizon_json(const json::Value& body,
                                   const ConsolidationInstance& instance) {
  int api_version = 1;
  if (const json::Value* v = body.get("api_version");
      v != nullptr && !v->is_null()) {
    if (!v->is_number() || (v->num != 1.0 && v->num != 2.0)) {
      throw InvalidInputError("api_version must be 1 or 2");
    }
    api_version = static_cast<int>(v->num);
  }
  const json::Value* periods = body.get("periods");
  const json::Value* curve = body.get("traffic_curve");
  const json::Value* migration = body.get("migration_cost_per_server");
  if (api_version < 2) {
    if (periods != nullptr || curve != nullptr || migration != nullptr) {
      throw InvalidInputError(
          "multi-period members (periods, traffic_curve, "
          "migration_cost_per_server) require \"api_version\": 2");
    }
    return {};
  }
  if (periods != nullptr && curve != nullptr) {
    throw InvalidInputError("periods and traffic_curve are mutually exclusive");
  }
  PlanningHorizon horizon;
  if (curve != nullptr && !curve->is_null()) {
    horizon = parse_traffic_curve_json(instance, *curve);
  } else if (periods != nullptr && !periods->is_null()) {
    if (!periods->is_array()) {
      throw InvalidInputError("periods must be an array");
    }
    for (const json::Value& entry : periods->arr) {
      horizon.periods.push_back(parse_period_json(instance, entry));
    }
  }
  if (migration != nullptr && !migration->is_null()) {
    horizon.migration_cost_per_server =
        require_number(*migration, "migration_cost_per_server");
  }
  validate_horizon(instance, horizon);
  return horizon;
}

PlannerOptions parse_options_json(const json::Value* options) {
  PlannerOptions out;
  if (options == nullptr || options->is_null()) return out;
  if (!options->is_object()) {
    throw InvalidInputError("options must be an object");
  }
  for (const auto& [key, value] : options->obj) {
    if (key == "engine") {
      const std::string& engine = require_string(value, "options.engine");
      if (engine == "auto") {
        out.engine = PlannerOptions::Engine::kAuto;
      } else if (engine == "exact") {
        out.engine = PlannerOptions::Engine::kExact;
      } else if (engine == "heuristic") {
        out.engine = PlannerOptions::Engine::kHeuristic;
      } else {
        throw InvalidInputError("options.engine: unknown engine '" + engine +
                                "'");
      }
    } else if (key == "dr") {
      out.enable_dr = require_bool(value, "options.dr");
    } else if (key == "dr_sizing") {
      const std::string& sizing = require_string(value, "options.dr_sizing");
      if (sizing == "shared") {
        out.dr_sizing = PlannerOptions::DrSizing::kShared;
      } else if (sizing == "dedicated") {
        out.dr_sizing = PlannerOptions::DrSizing::kDedicated;
      } else {
        throw InvalidInputError("options.dr_sizing: unknown sizing '" +
                                sizing + "'");
      }
    } else if (key == "omega") {
      out.business_impact_omega = require_number(value, "options.omega");
    } else if (key == "economies") {
      out.economies_of_scale = require_bool(value, "options.economies");
    } else if (key == "cuts") {
      const std::string& cuts = require_string(value, "options.cuts");
      if (cuts == "on") {
        out.milp.cuts.enable = true;
        out.milp.cuts.gomory = true;
        out.milp.cuts.cover = true;
      } else if (cuts == "off") {
        out.milp.cuts.enable = false;
      } else if (cuts == "gomory") {
        out.milp.cuts.enable = true;
        out.milp.cuts.gomory = true;
        out.milp.cuts.cover = false;
      } else if (cuts == "cover") {
        out.milp.cuts.enable = true;
        out.milp.cuts.gomory = false;
        out.milp.cuts.cover = true;
      } else {
        throw InvalidInputError("options.cuts: unknown mode '" + cuts + "'");
      }
    } else if (key == "cut_rounds") {
      out.milp.cuts.max_rounds =
          static_cast<int>(require_number(value, "options.cut_rounds"));
    } else if (key == "branching") {
      const std::string& rule = require_string(value, "options.branching");
      if (rule == "pseudocost") {
        out.milp.branching.rule = milp::BranchingOptions::Rule::kPseudocost;
      } else if (rule == "most-fractional") {
        out.milp.branching.rule = milp::BranchingOptions::Rule::kMostFractional;
      } else {
        throw InvalidInputError("options.branching: unknown rule '" + rule +
                                "'");
      }
    } else if (key == "lp_algorithm") {
      const std::string& algorithm = require_string(value, "options.lp_algorithm");
      if (algorithm == "auto") {
        out.milp.lp.mode = lp::SolveMode::kAuto;
      } else if (algorithm == "primal") {
        out.milp.lp.mode = lp::SolveMode::kPrimal;
      } else if (algorithm == "dual") {
        out.milp.lp.mode = lp::SolveMode::kDual;
      } else {
        throw InvalidInputError("options.lp_algorithm: unknown mode '" +
                                algorithm + "'");
      }
    } else if (key == "presolve") {
      out.milp.presolve.enable = require_bool(value, "options.presolve");
    } else if (key == "max_nodes") {
      out.milp.search.max_nodes =
          static_cast<int>(require_number(value, "options.max_nodes"));
    } else if (key == "relative_gap") {
      out.milp.search.relative_gap = require_number(value, "options.relative_gap");
    } else if (key == "threads") {
      out.milp.search.threads =
          static_cast<int>(require_number(value, "options.threads"));
    } else if (key == "deterministic") {
      out.milp.search.deterministic = require_bool(value, "options.deterministic");
    } else {
      throw InvalidInputError("options: unknown key '" + key + "'");
    }
  }
  return out;
}

std::string options_fingerprint(const PlannerOptions& options,
                                double time_limit_ms,
                                const PlanningHorizon& horizon,
                                bool lock_placement) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "v3 engine=%d dr=%d sizing=%d omega=%.17g eco=%d "
      "cuts=%d/%d/%d/%d branch=%d lp=%d presolve=%d "
      "nodes=%d gap=%.17g tl=%.17g varlim=%d jointlim=%d lb=%d "
      "threads=%d det=%d",
      static_cast<int>(options.engine), options.enable_dr ? 1 : 0,
      static_cast<int>(options.dr_sizing), options.business_impact_omega,
      options.economies_of_scale ? 1 : 0, options.milp.cuts.enable ? 1 : 0,
      options.milp.cuts.gomory ? 1 : 0, options.milp.cuts.cover ? 1 : 0,
      options.milp.cuts.max_rounds,
      static_cast<int>(options.milp.branching.rule),
      static_cast<int>(options.milp.lp.mode),
      options.milp.presolve.enable ? 1 : 0, options.milp.search.max_nodes,
      options.milp.search.relative_gap, time_limit_ms, options.exact_var_limit,
      options.joint_dr_var_limit, options.compute_lower_bound ? 1 : 0,
      options.milp.search.threads, options.milp.search.deterministic ? 1 : 0);
  std::string out(buf);
  out += " hz=";
  out += horizon.is_static() ? "static" : horizon_fingerprint(horizon);
  out += lock_placement ? " lock=1" : " lock=0";
  return out;
}

namespace {

json::Value cost_breakdown_json(const CostBreakdown& cost) {
  json::Value out = json::Value::object();
  out.set("space", json::Value::number(cost.space));
  out.set("power", json::Value::number(cost.power));
  out.set("labor", json::Value::number(cost.labor));
  out.set("wan", json::Value::number(cost.wan));
  out.set("latency_penalty", json::Value::number(cost.latency_penalty));
  out.set("backup_capex", json::Value::number(cost.backup_capex));
  out.set("migration", json::Value::number(cost.migration));
  out.set("operational", json::Value::number(cost.operational()));
  out.set("total", json::Value::number(cost.total()));
  return out;
}

json::Value assignments_json(const ConsolidationInstance& instance,
                             const Plan& plan) {
  json::Value assignments = json::Value::array();
  for (std::size_t i = 0; i < plan.primary.size(); ++i) {
    json::Value row = json::Value::object();
    row.set("group", json::Value::string(instance.groups[i].name));
    row.set("site",
            json::Value::string(instance.sites[plan.primary[i]].name));
    if (plan.has_dr() && plan.secondary[i] >= 0) {
      row.set("secondary",
              json::Value::string(instance.sites[plan.secondary[i]].name));
    }
    assignments.push(std::move(row));
  }
  return assignments;
}

}  // namespace

json::Value plan_result_json(const ConsolidationInstance& instance,
                             const PlannerReport& report, double solve_ms) {
  const Plan& plan = report.plan;

  json::Value out = json::Value::object();
  out.set("api_version", json::Value::number(kApiVersion));
  out.set("cost", cost_breakdown_json(plan.cost));
  out.set("assignments", assignments_json(instance, plan));
  out.set("sites_used", json::Value::number(plan.sites_used()));
  out.set("latency_violations",
          json::Value::number(plan.latency_violations));
  if (report.is_multi_period()) {
    // The per-period tree. Top-level cost/assignments mirror the first
    // period (PlannerReport::plan), so v1 consumers read a valid snapshot;
    // horizon.cost carries the weighted totals competitors compare on.
    const MultiPeriodPlan& multi = report.multi;
    json::Value periods = json::Value::array();
    for (std::size_t t = 0; t < multi.periods.size(); ++t) {
      const Plan& period_plan = multi.periods[t];
      json::Value entry = json::Value::object();
      entry.set("period", json::Value::number(static_cast<double>(t)));
      entry.set("cost", cost_breakdown_json(period_plan.cost));
      entry.set("assignments", assignments_json(instance, period_plan));
      entry.set("sites_used", json::Value::number(period_plan.sites_used()));
      entry.set("latency_violations",
                json::Value::number(period_plan.latency_violations));
      periods.push(std::move(entry));
    }
    json::Value horizon = json::Value::object();
    horizon.set("periods", std::move(periods));
    horizon.set("cost", cost_breakdown_json(multi.cost));
    horizon.set("algorithm", json::Value::string(multi.algorithm));
    horizon.set("total_moves", json::Value::number(multi.total_moves));
    horizon.set("moved_servers", json::Value::number(
                                     static_cast<double>(multi.moved_servers)));
    out.set("horizon", std::move(horizon));
  }
  out.set("algorithm", json::Value::string(plan.algorithm));
  out.set("used_exact_solver", json::Value::boolean(report.used_exact_solver));
  out.set("proven_optimal", json::Value::boolean(report.proven_optimal));
  out.set("interrupted", json::Value::boolean(report.interrupted));
  // NaN (bound not computed) serializes as null via append_number.
  out.set("lower_bound", json::Value::number(report.lower_bound));
  out.set("milp_nodes", json::Value::number(report.milp_nodes));
  out.set("lp_iters",
          json::Value::number(report.stats.deep_metric("pivots")));
  out.set("solve_ms", json::Value::number(solve_ms));
  return out;
}

}  // namespace etransform::server
