// Instance-hash result cache for etransformd.
//
// Key = FNV-1a 64 digest of (canonical .etf serialization of the instance,
// options fingerprint). Canonicalizing through write_instance() means two
// textually different uploads of the same estate — reordered sections,
// comments, whitespace — hash to the same key, which is what makes the
// cache useful for operators re-submitting exported instances.
//
// A 64-bit digest can collide, so every entry retains its canonical text
// and a hit is confirmed by full-text comparison; a digest match with a
// text mismatch is served as a miss (and does not evict the incumbent).
//
// Eviction is LRU under a byte budget (entry cost = canonical text + result
// JSON + a fixed overhead). Values are shared_ptr<const CachedResult> so a
// hit handed to a response (or a replan warm-start chain) stays valid after
// the entry is evicted.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "planner/etransform_planner.h"

namespace etransform::server {

/// A completed solve, as cached: enough to answer a /v1/plan hit without
/// touching the farm, plus the report for replan warm-start chaining.
struct CachedResult {
  PlannerReport report;
  std::string result_json;  // plan_result_json() of the original solve
  double solve_ms = 0.0;    // wall time of the original (cold) solve
};

/// FNV-1a 64 of `text`, as 16 lowercase hex chars.
[[nodiscard]] std::string digest_hex(const std::string& text);

/// The cache key for an instance/options pair.
[[nodiscard]] std::string cache_key(const std::string& canonical_etf,
                                    const std::string& options_fingerprint);

class InstanceCache {
 public:
  /// `max_bytes` caps the summed entry cost; inserting past the cap evicts
  /// least-recently-used entries first. A budget of 0 disables caching.
  explicit InstanceCache(std::size_t max_bytes);

  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  /// Looks up `key`, confirming against `canonical_text` (collision guard).
  /// A hit refreshes recency. Returns null on miss.
  [[nodiscard]] std::shared_ptr<const CachedResult> lookup(
      const std::string& key, const std::string& canonical_text);

  /// Inserts (replacing any entry under the same key) and evicts LRU
  /// entries until the budget holds. Returns the number of evictions this
  /// insert caused. An entry larger than the whole budget is not cached.
  std::size_t insert(const std::string& key, std::string canonical_text,
                     std::shared_ptr<const CachedResult> result);

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::string canonical_text;
    std::shared_ptr<const CachedResult> result;
    std::size_t cost = 0;
  };
  using Lru = std::list<Entry>;  // front = most recent

  void evict_lru_locked();

  const std::size_t max_bytes_;
  mutable std::mutex mu_;
  Lru lru_;
  std::unordered_map<std::string, Lru::iterator> index_;
  std::size_t bytes_ = 0;
  long long hits_ = 0;
  long long misses_ = 0;
  long long evictions_ = 0;
};

}  // namespace etransform::server
