// The etransformd wire schema: request parsing and result serialization.
//
// Kept separate from the daemon so the CLI's --result-json writes the exact
// same result document the daemon serves (the e2e validation diffs the two)
// and the bench/tests can build requests without linking the HTTP stack.
#pragma once

#include <string>

#include "common/json.h"
#include "model/entities.h"
#include "model/horizon.h"
#include "planner/etransform_planner.h"

namespace etransform::server {

/// Highest wire schema version this daemon speaks. Version 1 is the static
/// single-snapshot protocol; version 2 adds multi-period planning
/// ("periods" / "traffic_curve" request members and the "horizon" result
/// subtree). Bodies without "api_version" parse as version 1.
inline constexpr int kApiVersion = 2;

/// Parses the "options" member of a plan/replan request into PlannerOptions.
/// Unknown keys are rejected (the daemon's trust boundary should not guess).
/// Accepted keys, all optional:
///   engine: "auto" | "exact" | "heuristic"
///   dr: bool                  dr_sizing: "shared" | "dedicated"
///   omega: number             economies: bool
///   cuts: "on"|"off"|"gomory"|"cover"        cut_rounds: number
///   branching: "pseudocost"|"most-fractional"
///   lp_algorithm: "auto"|"primal"|"dual"     presolve: bool
///   max_nodes: number         relative_gap: number
///   threads: number (in-solve tree-search workers; <= 0 = hardware)
///   deterministic: bool (fixed-epoch search, thread-count-invariant tree)
/// Throws InvalidInputError on bad values.
[[nodiscard]] PlannerOptions parse_options_json(const json::Value* options);

/// Parses the api_version 2 multi-period members of a plan/replan body into
/// a PlanningHorizon (static when absent — every v1 body). Accepted, all
/// optional and mutually exclusive where noted:
///   api_version: 1 | 2 (absent = 1; v1 bodies must not carry v2 members)
///   periods: [ { name?: string, weight?: number, multiplier?: number,
///                group_multipliers?: [number per group],
///                failed_sites?: [site name or index] } ]
///   traffic_curve: { shape?: "diurnal"|"seasonal", num_periods?: number,
///                    peak?: number, trough?: number, period_weight?: number,
///                    antiphase_fraction?: number, seed?: number }
///     (expanded via make_traffic_curve; exclusive with "periods")
///   migration_cost_per_server: number
/// The result is validated against `instance`. Throws InvalidInputError on
/// bad values or v2 members in a v1 body.
[[nodiscard]] PlanningHorizon parse_horizon_json(
    const json::Value& body, const ConsolidationInstance& instance);

/// Canonical one-line encoding of every PlannerOptions field that can alter
/// a solve's outcome, plus the demand horizon and placement-lock flag. Two
/// requests with equal fingerprints and equal canonical instances are
/// interchangeable — this string is half of the result-cache key. The
/// horizon is part of the fingerprint so the cache never serves a static
/// result for a multi-period request (or vice versa).
[[nodiscard]] std::string options_fingerprint(
    const PlannerOptions& options, double time_limit_ms,
    const PlanningHorizon& horizon = {}, bool lock_placement = false);

/// The result document for a completed solve: cost breakdown, per-group
/// assignments (by name), solver provenance (engine, optimality, bound,
/// nodes, LP pivot count), and the solve wall time. Always stamped with
/// "api_version": kApiVersion. Multi-period reports additionally carry a
/// "horizon" subtree (per-period cost/assignments, weighted totals, the
/// migration charge, and move counts); the top-level cost/assignments then
/// describe the first period, so v1 consumers keep working.
[[nodiscard]] json::Value plan_result_json(
    const ConsolidationInstance& instance, const PlannerReport& report,
    double solve_ms);

}  // namespace etransform::server
