// The etransformd wire schema: request parsing and result serialization.
//
// Kept separate from the daemon so the CLI's --result-json writes the exact
// same result document the daemon serves (the e2e validation diffs the two)
// and the bench/tests can build requests without linking the HTTP stack.
#pragma once

#include <string>

#include "common/json.h"
#include "model/entities.h"
#include "planner/etransform_planner.h"

namespace etransform::server {

/// Parses the "options" member of a plan/replan request into PlannerOptions.
/// Unknown keys are rejected (the daemon's trust boundary should not guess).
/// Accepted keys, all optional:
///   engine: "auto" | "exact" | "heuristic"
///   dr: bool                  dr_sizing: "shared" | "dedicated"
///   omega: number             economies: bool
///   cuts: "on"|"off"|"gomory"|"cover"        cut_rounds: number
///   branching: "pseudocost"|"most-fractional"
///   lp_algorithm: "auto"|"primal"|"dual"     presolve: bool
///   max_nodes: number         relative_gap: number
///   threads: number (in-solve tree-search workers; <= 0 = hardware)
///   deterministic: bool (fixed-epoch search, thread-count-invariant tree)
/// Throws InvalidInputError on bad values.
[[nodiscard]] PlannerOptions parse_options_json(const json::Value* options);

/// Canonical one-line encoding of every PlannerOptions field that can alter
/// a solve's outcome. Two requests with equal fingerprints and equal
/// canonical instances are interchangeable — this string is half of the
/// result-cache key.
[[nodiscard]] std::string options_fingerprint(const PlannerOptions& options,
                                              double time_limit_ms);

/// The result document for a completed solve: cost breakdown, per-group
/// assignments (by name), solver provenance (engine, optimality, bound,
/// nodes, LP pivot count), and the solve wall time.
[[nodiscard]] json::Value plan_result_json(
    const ConsolidationInstance& instance, const PlannerReport& report,
    double solve_ms);

}  // namespace etransform::server
