// Minimal HTTP/1.1 server for etransformd — dependency-free by design.
//
// The daemon needs exactly four things from HTTP: parse a request, send a
// complete response, stream a chunked body (the job event feed), and shut
// down cleanly while connections are open. This file provides those four
// and nothing else:
//
//  * thread-per-connection, `Connection: close` on every exchange — the
//    farm's solves dominate any connection-setup cost, so keep-alive and
//    pipelining buy nothing but state;
//  * a poll()-driven accept loop so stop() can interrupt it without
//    resorting to signals; the same loop reaps finished connection threads
//    each pass, so a long-lived daemon never accumulates dead handles;
//  * per-socket receive timeouts so a stalled client cannot pin a thread;
//  * stop() shuts down every open connection socket (streamers observe the
//    write failure and unwind) and joins all threads before returning.
//
// Not implemented, deliberately: TLS, keep-alive, compression, multipart,
// percent-decoding beyond the query splitter's needs. The daemon serves
// trusted operators on a LAN, not the public internet.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include <mutex>

namespace etransform::server {

/// One parsed request. Header names are lower-cased; the query string is
/// split into `query` ("a=1&b=2"; values are not percent-decoded).
struct HttpRequest {
  std::string method;
  std::string target;  // as received: path + optional "?query"
  std::string path;    // target up to the '?'
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Maps an HTTP status code to its reason phrase ("200" -> "OK").
[[nodiscard]] const char* status_reason(int status);

/// The response side of one exchange. A handler either sends a complete
/// response (send/send_json/send_error) or switches to chunked streaming
/// (begin_stream + write_chunk... + end_stream). Exactly one of the two.
class ResponseWriter {
 public:
  explicit ResponseWriter(int fd) : fd_(fd) {}

  /// Sends a complete response with Content-Length. Extra headers are
  /// "Name: value" pairs.
  void send(int status, std::string_view content_type, std::string_view body,
            const std::vector<std::string>& extra_headers = {});

  /// send() with content type application/json.
  void send_json(int status, std::string_view body) {
    send(status, "application/json", body);
  }

  /// Sends {"error": "<message>"} with the given status.
  void send_error(int status, std::string_view message);

  /// Starts a chunked (Transfer-Encoding: chunked) response.
  void begin_stream(int status, std::string_view content_type);

  /// Writes one chunk. Returns false once the peer is gone (the caller
  /// should stop producing).
  bool write_chunk(std::string_view data);

  /// Terminates the chunked body.
  void end_stream();

  /// True once any of the send/stream entry points ran.
  [[nodiscard]] bool responded() const { return responded_; }

 private:
  bool write_all(std::string_view data);

  int fd_;
  bool responded_ = false;
  bool broken_ = false;
};

/// The server. Construct with a handler, start(), stop(). The handler runs
/// on a per-connection thread and must respond via the ResponseWriter (a
/// handler that returns without responding produces a 500; a handler that
/// throws produces a 500 with the exception message).
class HttpServer {
 public:
  using Handler = std::function<void(const HttpRequest&, ResponseWriter&)>;

  explicit HttpServer(Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and starts
  /// the accept loop. Throws InvalidInputError on bind failure.
  void start(int port);

  /// The bound port (valid after start()).
  [[nodiscard]] int port() const { return port_; }

  /// Stops accepting, shuts down open connections, joins every thread.
  /// Idempotent.
  void stop();

  /// Largest request body accepted (larger requests get 413).
  static constexpr std::size_t kMaxBodyBytes = 64u << 20;

 private:
  void accept_loop();
  void serve_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;
  bool stopping_ = false;
  std::unordered_set<int> open_fds_;
  // Live connection threads by id; a finishing connection moves its own
  // handle to finished_threads_, which the accept loop joins and drops.
  std::map<std::thread::id, std::thread> connection_threads_;
  std::vector<std::thread> finished_threads_;
};

/// One client-side HTTP exchange result. Chunked bodies arrive de-chunked.
struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
};

/// Minimal client counterpart of HttpServer, for the bench, the tests, and
/// etransform_client: performs one `method target` exchange against
/// 127.0.0.1:`port` and reads the response to connection close. Returns
/// false (with `error` set) on socket failure or malformed response.
bool http_request(int port, const std::string& method,
                  const std::string& target, const std::string& request_body,
                  ClientResponse* response, std::string* error = nullptr);

}  // namespace etransform::server
