// etransformd: the planner as a long-running service.
//
// PlannerDaemon fronts a SolveService with the HTTP/1.1 protocol layer
// (http.h), the wire schema (api_json.h), and an instance-hash result cache
// (instance_cache.h). Endpoints:
//
//   POST /v1/plan              submit an instance; 202 + job id (200 on a
//                              cache hit — the job is born terminal)
//   GET  /v1/jobs/<id>         job state; includes the result document once
//                              terminal
//   GET  /v1/jobs/<id>/events  chunked stream of solver progress lines,
//                              terminated by "state <terminal>"
//   GET  /v1/jobs/<id>/progress  live incumbent/bound/gap/node timeline
//                              (wait-free snapshot of the solver's
//                              progress ring; readable while it runs)
//   GET  /v1/jobs/<id>/trace   the job's spans as a Chrome trace: the
//                              flight-recorder capture for anomalous
//                              jobs, a live filtered drain otherwise
//   POST /v1/jobs/<id>/cancel  cooperative cancellation (queued or running)
//   POST /v1/replan            delta against a prior job's instance,
//                              warm-started from its cached root basis
//   GET  /metrics              Prometheus text exposition
//   GET  /healthz              {"status": "ok" | "draining"}
//
// Backpressure: when the farm's queue depth reaches
// DaemonOptions::max_queue_depth, plan/replan respond 429 with Retry-After
// instead of admitting unbounded work. Every admitted job gets a deadline
// (request time_limit_ms, else the daemon default) on its SolveContext.
//
// Retention: terminal jobs stay queryable until the registry exceeds
// DaemonOptions::max_jobs, then age out oldest-first; an aged-out id gets
// 404 everywhere, including as a replan base_job.
//
// Shutdown: request_drain() flips /healthz to "draining" and rejects new
// work with 503; stop() waits for in-flight jobs, then tears down HTTP.
// The etransformd binary wires ShutdownSignal to exactly that sequence.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "server/http.h"
#include "service/solve_farm.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace etransform::server {

struct DaemonOptions {
  /// Listen port on 127.0.0.1; 0 = kernel-assigned (port() tells which).
  int port = 0;
  /// Solver worker threads (<= 0: hardware concurrency).
  int workers = 0;
  /// Queue-depth ceiling beyond which plan/replan get 429.
  int max_queue_depth = 64;
  /// Retained-job ceiling: past it, the oldest *terminal* jobs are dropped
  /// from the registry, so their ids 404 from then on — including as
  /// `/v1/replan` base_job references. In-flight jobs are never dropped
  /// (their count is already bounded by the queue cap plus the workers),
  /// which keeps daemon memory bounded under sustained traffic.
  int max_jobs = 1024;
  /// Result-cache byte budget (0 disables caching).
  std::size_t cache_bytes = 64u << 20;
  /// Deadline for jobs that do not send time_limit_ms (0 = unlimited).
  double default_time_limit_ms = 0.0;
  /// Latency SLO in milliseconds: a job whose solve wall time exceeds it is
  /// flagged as an anomaly and its flight-recorder trace is retained
  /// (GET /v1/jobs/<id>/trace). 0 disables the SLO check.
  double slo_ms = 0.0;
  /// When non-empty, run artifacts (trace.json / metrics.prom) are written
  /// here at stop(), and each anomalous job's flight-recorder trace is
  /// dumped as job-<id>-trace.json as it finalizes.
  std::string telemetry_dir;
};

class PlannerDaemon {
 public:
  explicit PlannerDaemon(DaemonOptions options = {});

  /// Stops everything still running (cancelling, not draining).
  ~PlannerDaemon();

  PlannerDaemon(const PlannerDaemon&) = delete;
  PlannerDaemon& operator=(const PlannerDaemon&) = delete;

  /// Binds and starts serving. Throws InvalidInputError on bind failure.
  void start();

  /// The bound port (valid after start()).
  [[nodiscard]] int port() const;

  /// Stops admitting work: plan/replan answer 503, /healthz turns
  /// "draining". Safe to call from a signal watcher thread. Idempotent.
  void request_drain();

  /// Waits until every admitted job is terminal, then stops the HTTP
  /// server. Call after request_drain() for a graceful shutdown, or alone
  /// for an abrupt one (still waits for running solves; cancel_jobs()
  /// first to bound that).
  void stop();

  /// Cancels every queued and running job (used by tests and the abrupt
  /// shutdown path).
  void cancel_jobs();

  /// True once request_drain() ran.
  [[nodiscard]] bool draining() const;

  [[nodiscard]] telemetry::MetricsRegistry& metrics();
  [[nodiscard]] telemetry::TraceRecorder& trace();

 private:
  struct Core;
  void handle(const HttpRequest& request, ResponseWriter& writer);
  void handle_plan(const HttpRequest& request, ResponseWriter& writer,
                   bool replan);

  // Destruction order matters: http_ goes first (reverse of declaration),
  // so no handler runs while the farm or core is torn down; service_ joins
  // its workers before core_ (which job hooks capture by shared_ptr) and
  // the telemetry it points into are destroyed.
  DaemonOptions options_;
  std::shared_ptr<Core> core_;
  std::unique_ptr<SolveService> service_;
  std::unique_ptr<HttpServer> http_;
};

}  // namespace etransform::server
