#include "server/daemon.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <limits>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/progress.h"
#include "common/stopwatch.h"
#include "model/instance_io.h"
#include "planner/admin.h"
#include "server/api_json.h"
#include "server/instance_cache.h"
#include "telemetry/artifacts.h"

namespace etransform::server {

namespace {

/// Daemon-side record of one submitted job. The farm's SolveJob owns the
/// solve; this owns everything the protocol needs: the canonical instance
/// text (cache key material), the event lines for the stream endpoint, and
/// the finalized result document. `handle` is set by the submitting
/// handler right after SolveService::submit() returns; the completion hook
/// waits for it (the hook can fire before submit() even returns).
struct ServerJob {
  long long id = 0;
  std::string name;
  std::string key;             // cache key ("" when caching disabled)
  std::string canonical_text;  // canonical .etf of the solved instance
  ConsolidationInstance instance;
  PlannerOptions options;      // as parsed; replan deltas inherit these
  PlanningHorizon horizon;     // static unless the request carried v2 members
  bool lock_placement = false;
  double time_limit_ms = 0.0;
  bool cache_enabled = true;
  long long base_job = -1;     // replan: the job this delta derives from
  bool warm_started = false;   // replan: base root basis was available

  std::mutex mu;
  std::condition_variable cv;
  JobHandle handle;            // null until the submitter stores it
  bool terminal = false;
  std::string state = "queued";
  std::string error;
  std::string result_json;     // non-empty iff a report was produced
  std::shared_ptr<const lp::NamedBasis> root_basis;
  double solve_ms = 0.0;
  bool cache_hit = false;
  std::vector<std::string> events;  // progress lines, append-only
  /// Flight recorder: the job's spans (filtered by trace id, bounded per
  /// thread), captured at finalize when the job tripped an anomaly. Empty
  /// for healthy jobs — /trace drains the live rings for those.
  std::string flight_trace;
  /// Why the flight recorder fired: "slo", "cancelled", "failed",
  /// "numerical" (any subset, in that order).
  std::vector<std::string> anomalies;
};

using ServerJobPtr = std::shared_ptr<ServerJob>;

/// Flight-recorder depth: the tail of each thread's ring kept when an
/// anomalous job's trace is captured. Bounds the retained JSON per job
/// (~100 bytes/event) while keeping the interesting part — the end of the
/// solve, where deadlines fire and numerical trouble shows up.
constexpr std::size_t kFlightRecorderEventsPerThread = 512;

void push_event(const ServerJobPtr& job, std::string line) {
  const std::lock_guard<std::mutex> lock(job->mu);
  job->events.push_back(std::move(line));
  job->cv.notify_all();
}

std::string format_double(double v) {
  std::string out;
  json::append_number(out, v);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Core: all mutable daemon state, shared_ptr-held so completion hooks that
// outlive a handler (or fire during shutdown) keep it alive.

struct PlannerDaemon::Core {
  explicit Core(const DaemonOptions& options)
      : cache(options.cache_bytes),
        max_queue_depth(options.max_queue_depth),
        max_jobs(static_cast<std::size_t>(std::max(1, options.max_jobs))),
        default_time_limit_ms(options.default_time_limit_ms),
        slo_ms(options.slo_ms),
        telemetry_dir(options.telemetry_dir),
        started_at(std::chrono::steady_clock::now()) {
    requests = &metrics.counter("etransform_server_requests_total",
                                "HTTP requests served");
    cache_hits = &metrics.counter("etransform_server_cache_hits_total",
                                  "Plan requests answered from the cache");
    cache_misses = &metrics.counter("etransform_server_cache_misses_total",
                                    "Plan requests that required a solve");
    cache_evictions =
        &metrics.counter("etransform_server_cache_evictions_total",
                         "Cache entries evicted by the byte budget");
    rejected = &metrics.counter("etransform_server_rejected_total",
                                "Requests rejected by backpressure or drain");
    queue_depth = &metrics.gauge("etransform_server_queue_depth",
                                 "Farm queue depth as last observed");
    jobs_inflight = &metrics.gauge("etransform_server_jobs_inflight",
                                   "Jobs admitted and not yet terminal");
    request_ms = &metrics.histogram("etransform_server_request_ms",
                                    "HTTP request handling time in ms");
    errors = &metrics.counter("etransform_server_errors_total",
                              "Requests that ended in a 5xx response");
    anomalies_total = &metrics.counter(
        "etransform_server_job_anomalies_total",
        "Jobs flagged by the flight recorder (SLO, cancel, failure, "
        "numerical trouble)");
    slo_violations = &metrics.counter(
        "etransform_server_slo_violations_total",
        "Jobs whose solve wall time exceeded the configured SLO");
    // The conventional info pair: a constant-1 gauge whose HELP line carries
    // the build identity, plus an uptime gauge refreshed at scrape time.
    build_info = &metrics.gauge(
        "etransform_build_info",
        std::string("Build info: compiled ") + __DATE__ + ", C++ standard " +
            std::to_string(__cplusplus));
    build_info->set(1.0);
    uptime_seconds = &metrics.gauge("etransform_uptime_seconds",
                                    "Seconds since the daemon constructed");
  }

  telemetry::TraceRecorder trace;
  telemetry::MetricsRegistry metrics;
  InstanceCache cache;
  const int max_queue_depth;
  const std::size_t max_jobs;
  const double default_time_limit_ms;
  const double slo_ms;
  const std::string telemetry_dir;
  const std::chrono::steady_clock::time_point started_at;

  std::mutex mu;
  std::map<long long, ServerJobPtr> jobs;
  long long next_id = 1;
  std::atomic<bool> draining{false};
  std::atomic<std::uint64_t> next_request{1};

  telemetry::Counter* requests;
  telemetry::Counter* cache_hits;
  telemetry::Counter* cache_misses;
  telemetry::Counter* cache_evictions;
  telemetry::Counter* rejected;
  telemetry::Gauge* queue_depth;
  telemetry::Gauge* jobs_inflight;
  telemetry::Histogram* request_ms;
  telemetry::Counter* errors;
  telemetry::Counter* anomalies_total;
  telemetry::Counter* slo_violations;
  telemetry::Gauge* build_info;
  telemetry::Gauge* uptime_seconds;

  ServerJobPtr find_job(long long id) {
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = jobs.find(id);
    return it == jobs.end() ? nullptr : it->second;
  }

  /// Assigns an id and publishes the job. Fill every immutable field first:
  /// the job becomes visible to GET handlers here.
  long long register_job(const ServerJobPtr& job) {
    const std::lock_guard<std::mutex> lock(mu);
    job->id = next_id++;
    jobs.emplace(job->id, job);
    // Retention cap: without it every request (cache hits included) grows
    // the registry forever. Ids are monotonic, so map order is age order —
    // drop the oldest terminal jobs until back under max_jobs. In-flight
    // jobs are skipped; aged-out ids 404, including as replan bases.
    for (auto it = jobs.begin(); jobs.size() > max_jobs && it != jobs.end();) {
      bool terminal = false;
      {
        const std::lock_guard<std::mutex> job_lock(it->second->mu);
        terminal = it->second->terminal;
      }
      if (terminal && it->second != job) {
        it = jobs.erase(it);
      } else {
        ++it;
      }
    }
    return job->id;
  }

  /// The completion hook body: runs on the worker thread (or the canceller
  /// for queued-cancel) after the farm job went terminal.
  void finalize(const ServerJobPtr& job) {
    JobHandle handle;
    {
      std::unique_lock<std::mutex> lock(job->mu);
      job->cv.wait(lock, [&job] { return job->handle != nullptr; });
      handle = job->handle;
    }
    const JobState state = handle->state();
    std::string result_json;
    std::shared_ptr<const lp::NamedBasis> basis;
    double solve_ms = handle->solve_ms();
    if (handle->has_report()) {
      const PlannerReport& report = handle->report();
      result_json = plan_result_json(job->instance, report, solve_ms).dump();
      basis = report.root_basis;
    }
    const bool cacheable = state == JobState::kDone &&
                           handle->has_report() &&
                           !handle->report().interrupted &&
                           job->cache_enabled && !job->key.empty();
    if (cacheable) {
      auto cached = std::make_shared<CachedResult>();
      cached->report = handle->report();
      cached->result_json = result_json;
      cached->solve_ms = solve_ms;
      const std::size_t evicted =
          cache.insert(job->key, job->canonical_text, std::move(cached));
      if (evicted > 0) {
        cache_evictions->add(static_cast<double>(evicted));
      }
    }
    // Close the request-level async span before any capture below: the
    // flight trace must contain the balanced begin/end pair, not a
    // still-open begin.
    {
      const telemetry::TraceBindScope bind(
          &trace, static_cast<std::uint64_t>(job->id));
      trace.async_end("server", "server.job", job->id);
    }
    // Anomaly matrix (see DESIGN.md §13): any hit arms the flight recorder.
    std::vector<std::string> anomalies;
    if (state == JobState::kCancelled) anomalies.emplace_back("cancelled");
    if (state == JobState::kFailed) anomalies.emplace_back("failed");
    if (slo_ms > 0.0 && solve_ms > slo_ms) {
      anomalies.emplace_back("slo");
      slo_violations->increment();
    }
    if (handle->has_report() &&
        handle->report().stats.deep_metric("numerical_nodes") > 0.0) {
      anomalies.emplace_back("numerical");
    }
    std::string flight_trace;
    if (!anomalies.empty()) {
      // Capture before the terminal flip: /trace served after this point
      // returns the frozen capture, not a view that other jobs keep
      // appending around.
      flight_trace = trace.to_chrome_json_for_trace(
          static_cast<std::uint64_t>(job->id), kFlightRecorderEventsPerThread);
      anomalies_total->increment();
      std::string reasons;
      for (const std::string& a : anomalies) {
        if (!reasons.empty()) reasons += ",";
        reasons += a;
      }
      ET_LOG(kWarning) << "etransformd: job " << job->id
                       << " flagged anomalous (" << reasons << ") after "
                       << solve_ms << " ms; flight trace retained";
      if (!telemetry_dir.empty()) {
        std::string error;
        if (!telemetry::write_text_file(telemetry_dir + "/job-" +
                                            std::to_string(job->id) +
                                            "-trace.json",
                                        flight_trace, &error)) {
          ET_LOG(kWarning) << "etransformd: flight trace dump failed: "
                           << error;
        }
      }
    }
    {
      const std::lock_guard<std::mutex> lock(job->mu);
      job->state = to_string(state);
      job->error = handle->error();
      job->result_json = std::move(result_json);
      job->root_basis = std::move(basis);
      job->solve_ms = solve_ms;
      job->flight_trace = std::move(flight_trace);
      job->anomalies = std::move(anomalies);
      job->events.push_back("state " + job->state);
      job->terminal = true;
      job->cv.notify_all();
    }
    jobs_inflight->add(-1.0);
  }
};

// ---------------------------------------------------------------------------
// Construction / lifecycle

PlannerDaemon::PlannerDaemon(DaemonOptions options)
    : options_(options),
      core_(std::make_shared<Core>(options)),
      service_(std::make_unique<SolveService>(options.workers)) {
  service_->attach_telemetry(&core_->trace, &core_->metrics);
}

PlannerDaemon::~PlannerDaemon() {
  // Abrupt teardown: refuse new work, cancel what is in flight, then stop
  // HTTP (streamers observe the terminal state set by the cancellations and
  // unwind, letting stop() join their threads), then sweep anything a
  // handler admitted in the gap.
  core_->draining.store(true);
  cancel_jobs();
  if (http_ != nullptr) http_->stop();
  cancel_jobs();
  service_->wait_all();
}

void PlannerDaemon::start() {
  http_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request, ResponseWriter& writer) {
        handle(request, writer);
      });
  http_->start(options_.port);
  ET_LOG(kInfo) << "etransformd: listening on 127.0.0.1:" << http_->port()
                << " (" << service_->num_threads() << " workers, queue cap "
                << options_.max_queue_depth << ")";
}

int PlannerDaemon::port() const { return http_ != nullptr ? http_->port() : 0; }

void PlannerDaemon::request_drain() {
  if (!core_->draining.exchange(true)) {
    ET_LOG(kInfo) << "etransformd: draining (no new work admitted)";
  }
}

void PlannerDaemon::stop() {
  service_->wait_all();
  if (http_ != nullptr) http_->stop();
  // Final artifact export, mirroring the CLI's --telemetry-dir behavior:
  // the full (unfiltered) trace plus the metrics exposition at shutdown.
  if (!options_.telemetry_dir.empty()) {
    std::string error;
    if (!telemetry::write_run_artifacts(options_.telemetry_dir, &core_->trace,
                                        &core_->metrics, "", nullptr,
                                        &error)) {
      ET_LOG(kWarning) << "etransformd: telemetry export failed: " << error;
    } else {
      ET_LOG(kInfo) << "etransformd: run artifacts written to "
                    << options_.telemetry_dir;
    }
  }
}

void PlannerDaemon::cancel_jobs() { service_->cancel_all(); }

bool PlannerDaemon::draining() const { return core_->draining.load(); }

telemetry::MetricsRegistry& PlannerDaemon::metrics() { return core_->metrics; }

telemetry::TraceRecorder& PlannerDaemon::trace() { return core_->trace; }

// ---------------------------------------------------------------------------
// Request handling

namespace {

/// Parses "/v1/jobs/<id>" and "/v1/jobs/<id>/<verb>". Returns -1 on
/// malformed ids.
long long parse_job_id(std::string_view path, std::string* verb) {
  constexpr std::string_view kPrefix = "/v1/jobs/";
  if (path.substr(0, kPrefix.size()) != kPrefix) return -1;
  path.remove_prefix(kPrefix.size());
  const std::size_t slash = path.find('/');
  std::string_view id_part = path;
  if (slash != std::string_view::npos) {
    id_part = path.substr(0, slash);
    *verb = std::string(path.substr(slash + 1));
  }
  if (id_part.empty()) return -1;
  long long id = 0;
  for (const char c : id_part) {
    if (c < '0' || c > '9') return -1;
    id = id * 10 + (c - '0');
    if (id > (1ll << 60)) return -1;
  }
  return id;
}

double number_or(const json::Value& body, const char* key, double fallback) {
  const json::Value* v = body.get(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number()) {
    throw InvalidInputError(std::string(key) + " must be a number");
  }
  return v->num;
}

bool bool_or(const json::Value& body, const char* key, bool fallback) {
  const json::Value* v = body.get(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_bool()) {
    throw InvalidInputError(std::string(key) + " must be a bool");
  }
  return v->b;
}

JobPriority parse_priority(const json::Value& body) {
  const json::Value* v = body.get("priority");
  if (v == nullptr || v->is_null()) return JobPriority::kNormal;
  if (v->is_string()) {
    if (v->str == "high") return JobPriority::kHigh;
    if (v->str == "normal") return JobPriority::kNormal;
    if (v->str == "low") return JobPriority::kLow;
  }
  throw InvalidInputError("priority must be \"high\", \"normal\", or \"low\"");
}

/// Validates a request-supplied numeric reference before the int cast:
/// static_cast of a double outside int's range (1e300, NaN) is undefined
/// behavior, and these values arrive straight off the wire, before
/// ScenarioSession's own bounds checks can run.
int checked_index(const json::Value& ref, const char* what) {
  const double v = ref.num;
  if (!(v >= 0.0) || v > static_cast<double>(std::numeric_limits<int>::max()) ||
      v != std::floor(v)) {
    throw InvalidInputError(std::string(what) +
                            " index must be a non-negative integer");
  }
  return static_cast<int>(v);
}

/// Resolves a group reference (name string or index number) in `instance`.
int resolve_group(const ConsolidationInstance& instance,
                  const json::Value& ref) {
  if (ref.is_number()) return checked_index(ref, "group");
  if (ref.is_string()) {
    for (int i = 0; i < instance.num_groups(); ++i) {
      if (instance.groups[i].name == ref.str) return i;
    }
    throw InvalidInputError("unknown group '" + ref.str + "'");
  }
  throw InvalidInputError("group reference must be a name or an index");
}

int resolve_site(const ConsolidationInstance& instance,
                 const json::Value& ref) {
  if (ref.is_number()) return checked_index(ref, "site");
  if (ref.is_string()) {
    for (int i = 0; i < instance.num_sites(); ++i) {
      if (instance.sites[i].name == ref.str) return i;
    }
    throw InvalidInputError("unknown site '" + ref.str + "'");
  }
  throw InvalidInputError("site reference must be a name or an index");
}

json::Value job_status_json(const ServerJobPtr& job) {
  json::Value out = json::Value::object();
  std::lock_guard<std::mutex> lock(job->mu);
  out.set("job", json::Value::number(static_cast<double>(job->id)));
  if (!job->name.empty()) out.set("name", json::Value::string(job->name));
  // Until the completion hook lands, the farm handle is the live source of
  // truth — it is what flips "queued" to "running" when a worker claims it.
  std::string state = job->state;
  if (!job->terminal && job->handle != nullptr &&
      job->handle->state() == JobState::kRunning) {
    state = "running";
  }
  out.set("state", json::Value::string(state));
  out.set("cache_hit", json::Value::boolean(job->cache_hit));
  if (job->base_job >= 0) {
    out.set("base_job", json::Value::number(static_cast<double>(job->base_job)));
    out.set("warm_started", json::Value::boolean(job->warm_started));
  }
  if (job->terminal) {
    out.set("solve_ms", json::Value::number(job->solve_ms));
    if (!job->error.empty()) out.set("error", json::Value::string(job->error));
    if (!job->result_json.empty()) {
      json::Value result;
      std::string parse_error;
      if (json::parse(job->result_json, result, &parse_error)) {
        out.set("result", std::move(result));
      }
    }
  }
  return out;
}

/// The /v1/jobs/<id>/progress body: a wait-free snapshot of the job's
/// SolveProgress ring. NaN incumbent/bound and infinite gap are omitted
/// rather than serialized (JSON has no spelling for either); `published`
/// counts every sample ever published, so a client can tell "no progress
/// yet" (0) from "ring wrapped past what I saw" (> timeline length).
json::Value job_progress_json(const ServerJobPtr& job) {
  json::Value out = json::Value::object();
  JobHandle handle;
  std::string state;
  {
    const std::lock_guard<std::mutex> lock(job->mu);
    out.set("job", json::Value::number(static_cast<double>(job->id)));
    handle = job->handle;
    state = job->state;
    if (!job->terminal && handle != nullptr &&
        handle->state() == JobState::kRunning) {
      state = "running";
    }
  }
  out.set("state", json::Value::string(state));
  json::Value timeline = json::Value::array();
  std::uint64_t published = 0;
  if (handle != nullptr) {  // cache hits and failed submits never solved
    const SolveProgress::Snapshot snap = handle->progress().snapshot();
    published = snap.published;
    for (const ProgressSample& s : snap.timeline) {
      json::Value entry = json::Value::object();
      entry.set("time_ms", json::Value::number(s.time_ms));
      entry.set("nodes", json::Value::number(static_cast<double>(s.nodes)));
      if (!std::isnan(s.incumbent)) {
        entry.set("incumbent", json::Value::number(s.incumbent));
      }
      if (!std::isnan(s.bound)) {
        entry.set("bound", json::Value::number(s.bound));
      }
      if (std::isfinite(s.gap)) {
        entry.set("gap", json::Value::number(s.gap));
      }
      timeline.arr.push_back(std::move(entry));
    }
  }
  out.set("published", json::Value::number(static_cast<double>(published)));
  out.set("timeline", std::move(timeline));
  return out;
}

/// The /v1/jobs/<id>/events body: one chunk per batch of progress lines,
/// blank-line keepalives while idle (so a dead peer or a stopping server is
/// noticed within a second), final line "state <terminal>".
void stream_events(const ServerJobPtr& job, ResponseWriter& writer) {
  writer.begin_stream(200, "text/plain");
  std::size_t cursor = 0;
  while (true) {
    std::string chunk;
    bool finished = false;
    {
      std::unique_lock<std::mutex> lock(job->mu);
      job->cv.wait_for(lock, std::chrono::seconds(1), [&job, cursor] {
        return job->events.size() > cursor || job->terminal;
      });
      while (cursor < job->events.size()) {
        chunk += job->events[cursor++];
        chunk += '\n';
      }
      finished = job->terminal && cursor == job->events.size();
    }
    if (chunk.empty() && !finished) chunk = "\n";  // keepalive
    if (!chunk.empty() && !writer.write_chunk(chunk)) return;  // peer gone
    if (finished) break;
  }
  writer.end_stream();
}

}  // namespace

void PlannerDaemon::handle(const HttpRequest& request, ResponseWriter& writer) {
  const Stopwatch watch;
  // Connection threads come and go; releasing this thread's trace buffer on
  // the way out lets the next connection adopt it instead of growing the
  // recorder by one ring per connection ever accepted. Declared before the
  // span so the release runs after the span closes.
  struct ThreadReleaser {
    telemetry::TraceRecorder* recorder;
    ~ThreadReleaser() { recorder->release_current_thread(); }
  } releaser{&core_->trace};
  // Request-id log tag: every line this handler (and anything it calls on
  // this thread) emits is joinable back to one HTTP exchange.
  const LogTagScope request_tag(
      "req-" + std::to_string(
                   core_->next_request.fetch_add(1, std::memory_order_relaxed)));
  const telemetry::TraceSpan span(&core_->trace, "server", "server.request");
  core_->requests->increment();

  const auto done = [&] {
    core_->request_ms->observe(watch.elapsed_ms());
  };

  try {
    if (request.path == "/healthz" && request.method == "GET") {
      json::Value health = json::Value::object();
      health.set("status", json::Value::string(
                               core_->draining.load() ? "draining" : "ok"));
      health.set("queue_depth", json::Value::number(
                                    static_cast<double>(service_->queue_depth())));
      writer.send_json(core_->draining.load() ? 503 : 200, health.dump());
      return done();
    }
    if (request.path == "/metrics" && request.method == "GET") {
      core_->queue_depth->set(static_cast<double>(service_->queue_depth()));
      core_->uptime_seconds->set(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        core_->started_at)
              .count());
      writer.send(200, "text/plain; version=0.0.4",
                  core_->metrics.render_prometheus());
      return done();
    }
    if (request.path == "/v1/plan" && request.method == "POST") {
      handle_plan(request, writer, /*replan=*/false);
      return done();
    }
    if (request.path == "/v1/replan" && request.method == "POST") {
      handle_plan(request, writer, /*replan=*/true);
      return done();
    }
    std::string verb;
    const long long id = parse_job_id(request.path, &verb);
    if (id >= 0) {
      const ServerJobPtr job = core_->find_job(id);
      if (job == nullptr) {
        writer.send_error(404, "no such job");
        return done();
      }
      if (verb.empty() && request.method == "GET") {
        writer.send_json(200, job_status_json(job).dump());
        return done();
      }
      if (verb == "events" && request.method == "GET") {
        stream_events(job, writer);
        return done();
      }
      if (verb == "progress" && request.method == "GET") {
        writer.send_json(200, job_progress_json(job).dump());
        return done();
      }
      if (verb == "trace" && request.method == "GET") {
        std::string body;
        {
          const std::lock_guard<std::mutex> lock(job->mu);
          body = job->flight_trace;
        }
        if (body.empty()) {
          // Healthy (or still-running) job: drain the live rings filtered
          // to this job's spans. Rings never wrap, so the view is complete
          // up to the flight-recorder tail cap.
          body = core_->trace.to_chrome_json_for_trace(
              static_cast<std::uint64_t>(id), kFlightRecorderEventsPerThread);
        }
        writer.send(200, "application/json", body);
        return done();
      }
      if (verb == "cancel" && request.method == "POST") {
        JobHandle handle;
        {
          const std::lock_guard<std::mutex> lock(job->mu);
          handle = job->handle;
        }
        if (handle != nullptr) handle->cancel();
        json::Value out = json::Value::object();
        out.set("job", json::Value::number(static_cast<double>(id)));
        out.set("cancel_requested", json::Value::boolean(true));
        writer.send_json(200, out.dump());
        return done();
      }
    }
    writer.send_error(404, "unknown endpoint " + request.method + " " +
                               request.path);
  } catch (const InvalidInputError& e) {
    if (!writer.responded()) writer.send_error(400, e.what());
  } catch (const ParseError& e) {
    if (!writer.responded()) writer.send_error(400, e.what());
  } catch (const std::exception& e) {
    // No job exists for request-level failures, so there is no per-job
    // flight recorder to arm — count and log instead so the 5xx rate is
    // still observable.
    core_->errors->increment();
    ET_LOG(kError) << "etransformd: 500 on " << request.method << " "
                   << request.path << ": " << e.what();
    if (!writer.responded()) writer.send_error(500, e.what());
  }
  done();
}

void PlannerDaemon::handle_plan(const HttpRequest& request,
                                ResponseWriter& writer, bool replan) {
  if (core_->draining.load()) {
    core_->rejected->increment();
    writer.send(503, "application/json", "{\"error\":\"draining\"}",
                {"Retry-After: 5"});
    return;
  }
  json::Value body;
  std::string parse_error;
  if (!json::parse(request.body, body, &parse_error)) {
    writer.send_error(400, "request body is not valid JSON: " + parse_error);
    return;
  }
  if (!body.is_object()) {
    writer.send_error(400, "request body must be a JSON object");
    return;
  }

  auto job = std::make_shared<ServerJob>();
  std::shared_ptr<const lp::NamedBasis> root_warm;

  if (replan) {
    const json::Value* base_ref = body.get("base_job");
    if (base_ref == nullptr || !base_ref->is_number()) {
      writer.send_error(400, "replan requires a numeric base_job");
      return;
    }
    // Same wire-to-int hazard as checked_index: ids are capped at 2^60 by
    // parse_job_id, so anything outside that is malformed, not a miss.
    const double base_num = base_ref->num;
    if (!(base_num >= 0.0) || base_num != std::floor(base_num) ||
        base_num > static_cast<double>(1ll << 60)) {
      writer.send_error(400, "base_job must be a non-negative integral id");
      return;
    }
    const ServerJobPtr base =
        core_->find_job(static_cast<long long>(base_num));
    if (base == nullptr) {
      writer.send_error(404, "no such base_job");
      return;
    }
    ConsolidationInstance base_instance;
    PlannerOptions base_options;
    PlanningHorizon base_horizon;
    bool base_lock = false;
    {
      const std::lock_guard<std::mutex> lock(base->mu);
      if (!base->terminal || base->state != "done") {
        writer.send_error(409, "base_job is not in state done");
        return;
      }
      base_instance = base->instance;
      base_options = base->options;
      base_horizon = base->horizon;
      base_lock = base->lock_placement;
      root_warm = base->root_basis;
    }
    job->options = body.get("options") != nullptr
                       ? parse_options_json(body.get("options"))
                       : base_options;
    // ScenarioSession validates every delta against the base instance and
    // applies it the same way the interactive admin path does.
    ScenarioSession session(std::move(base_instance), job->options);
    if (const json::Value* delta = body.get("delta")) {
      if (!delta->is_object()) {
        writer.send_error(400, "delta must be an object");
        return;
      }
      const auto member = [](const json::Value& entry,
                             const char* key) -> const json::Value& {
        const json::Value* m = entry.get(key);
        if (m == nullptr) {
          throw InvalidInputError(std::string("delta entry missing '") + key +
                                  "'");
        }
        return *m;
      };
      for (const auto& [key, value] : delta->obj) {
        if (!value.is_array()) {
          throw InvalidInputError("delta." + key + " must be an array");
        }
        if (key == "pin") {
          for (const json::Value& pin : value.arr) {
            session.pin_group(
                resolve_group(session.instance(), member(pin, "group")),
                resolve_site(session.instance(), member(pin, "site")));
          }
        } else if (key == "unpin") {
          for (const json::Value& ref : value.arr) {
            session.unpin_group(resolve_group(session.instance(), ref));
          }
        } else if (key == "forbid") {
          for (const json::Value& forbid : value.arr) {
            session.forbid_site(
                resolve_group(session.instance(), member(forbid, "group")),
                resolve_site(session.instance(), member(forbid, "site")));
          }
        } else if (key == "separate") {
          for (const json::Value& pair : value.arr) {
            if (!pair.is_array() || pair.arr.size() != 2) {
              throw InvalidInputError(
                  "delta.separate entries must be [groupA, groupB] pairs");
            }
            session.require_separation(
                resolve_group(session.instance(), pair.arr[0]),
                resolve_group(session.instance(), pair.arr[1]));
          }
        } else {
          throw InvalidInputError("delta: unknown key '" + key + "'");
        }
      }
    }
    // A replan inherits the base job's horizon unless the delta body carries
    // its own v2 members; set_horizon re-validates either way (a delta could
    // have made an inherited horizon inconsistent).
    const bool has_horizon_members =
        body.get("periods") != nullptr || body.get("traffic_curve") != nullptr ||
        body.get("migration_cost_per_server") != nullptr;
    session.set_horizon(has_horizon_members
                            ? parse_horizon_json(body, session.instance())
                            : std::move(base_horizon));
    job->horizon = session.horizon();
    job->lock_placement = bool_or(body, "lock_placement", base_lock);
    job->instance = session.instance();
    job->base_job = base->id;
    job->warm_started = root_warm != nullptr;
  } else {
    const json::Value* instance_text = body.get("instance");
    if (instance_text == nullptr || !instance_text->is_string()) {
      writer.send_error(400, "plan requires an \"instance\" string (.etf)");
      return;
    }
    job->instance = parse_instance(instance_text->str);
    job->options = parse_options_json(body.get("options"));
    job->horizon = parse_horizon_json(body, job->instance);
    job->lock_placement = bool_or(body, "lock_placement", false);
  }
  if (job->lock_placement && job->horizon.is_static()) {
    writer.send_error(400, "lock_placement requires a multi-period horizon");
    return;
  }

  if (const json::Value* name = body.get("name");
      name != nullptr && name->is_string()) {
    job->name = name->str;
  }
  job->time_limit_ms =
      number_or(body, "time_limit_ms", core_->default_time_limit_ms);
  job->cache_enabled = bool_or(body, "cache", true);
  const JobPriority priority = parse_priority(body);

  job->canonical_text = write_instance(job->instance);
  const std::string fingerprint = options_fingerprint(
      job->options, job->time_limit_ms, job->horizon, job->lock_placement);
  job->key = cache_key(job->canonical_text, fingerprint);

  // Cache probe: a hit births the job terminal — no farm round trip.
  if (job->cache_enabled) {
    if (const std::shared_ptr<const CachedResult> hit =
            core_->cache.lookup(job->key, job->canonical_text)) {
      core_->cache_hits->increment();
      job->terminal = true;
      job->state = "done";
      job->cache_hit = true;
      job->result_json = hit->result_json;
      job->root_basis = hit->report.root_basis;
      job->solve_ms = 0.0;  // served from cache; cold time is in the result
      job->events.push_back("cache hit " + job->key);
      job->events.push_back("state done");
      const long long id = core_->register_job(job);
      json::Value out = job_status_json(job);
      out.set("job", json::Value::number(static_cast<double>(id)));
      writer.send_json(200, out.dump());
      return;
    }
    core_->cache_misses->increment();
  }

  // Backpressure: bound the queue, not the client's patience.
  const std::size_t depth = service_->queue_depth();
  if (depth >= static_cast<std::size_t>(core_->max_queue_depth)) {
    core_->rejected->increment();
    core_->queue_depth->set(static_cast<double>(depth));
    writer.send(429, "application/json",
                "{\"error\":\"queue full\",\"queue_depth\":" +
                    std::to_string(depth) + "}",
                {"Retry-After: 1"});
    return;
  }

  const long long id = core_->register_job(job);

  SolveRequest solve;
  solve.name = job->name.empty() ? ("http-" + std::to_string(id)) : job->name;
  solve.instance = job->instance;
  solve.options = job->options;
  solve.horizon = job->horizon;
  solve.lock_placement = job->lock_placement;
  solve.time_limit_ms = job->time_limit_ms;
  solve.priority = priority;
  // The server-side job id is the trace id: every span the solve records —
  // farm worker, B&B pool workers, LP engines — carries it, so /trace can
  // filter the shared rings back to this one request.
  solve.trace_id = static_cast<std::uint64_t>(id);
  solve.root_warm = std::move(root_warm);
  // Progress lines for the events stream. Weak captures: the SolveContext
  // (and thus these callbacks) lives inside the farm job, which the server
  // job holds a handle to — a strong capture would be a reference cycle.
  const std::weak_ptr<ServerJob> weak = job;
  solve.events.on_incumbent = [weak](const IncumbentEvent& e) {
    if (const ServerJobPtr sp = weak.lock()) {
      push_event(sp, "incumbent " + format_double(e.objective) + " node " +
                         std::to_string(e.node));
    }
  };
  solve.events.on_bound_improvement = [weak](const BoundEvent& e) {
    if (const ServerJobPtr sp = weak.lock()) {
      push_event(sp, "bound " + format_double(e.bound) + " node " +
                         std::to_string(e.node));
    }
  };
  solve.events.on_simplex_phase = [weak](const SimplexPhaseEvent& e) {
    if (const ServerJobPtr sp = weak.lock()) {
      push_event(sp, "simplex phase " + std::to_string(e.phase) + " " +
                         std::to_string(e.pivots) + " pivots");
    }
  };
  // Sampled node progress merged into the /events stream: one line every
  // ~256 nodes, so a streaming client sees the bound/incumbent/gap move
  // without per-node chatter. The counter is shared with the callback, not
  // the handler — the handler returns long before the solve ends.
  const auto next_node = std::make_shared<std::atomic<long long>>(0);
  solve.events.on_node = [weak, next_node](const NodeEvent& e) {
    // Atomic rather than relying on the solver's emission locks: the
    // callback contract only promises "on a worker thread".
    long long due = next_node->load(std::memory_order_relaxed);
    if (e.node < due ||
        !next_node->compare_exchange_strong(due, e.node + 256,
                                            std::memory_order_relaxed)) {
      return;
    }
    if (const ServerJobPtr sp = weak.lock()) {
      std::string line = "progress node " + std::to_string(e.node) +
                         " bound " + format_double(e.best_bound);
      if (!std::isnan(e.incumbent)) {
        line += " incumbent " + format_double(e.incumbent);
        const double denom = std::max(std::abs(e.incumbent), 1e-9);
        line += " gap " +
                format_double(std::abs(e.incumbent - e.best_bound) / denom);
      }
      push_event(sp, std::move(line));
    }
  };
  const std::shared_ptr<Core> core = core_;
  solve.on_complete = [core, job] { core->finalize(job); };

  core_->jobs_inflight->add(1.0);
  {
    const telemetry::TraceBindScope bind(&core_->trace,
                                         static_cast<std::uint64_t>(id));
    core_->trace.async_begin("server", "server.job", id);
  }
  push_event(job, replan ? "queued (replan of job " +
                               std::to_string(job->base_job) +
                               (job->warm_started ? ", warm basis)" : ")")
                         : "queued");

  JobHandle handle;
  try {
    handle = service_->submit(std::move(solve));
  } catch (const std::exception& e) {
    // Submission raced shutdown. Mark the job failed so pollers see a
    // terminal state.
    {
      const std::lock_guard<std::mutex> lock(job->mu);
      job->terminal = true;
      job->state = "failed";
      job->error = e.what();
      job->events.push_back("state failed");
      job->cv.notify_all();
    }
    core_->jobs_inflight->add(-1.0);
    {
      const telemetry::TraceBindScope bind(&core_->trace,
                                           static_cast<std::uint64_t>(id));
      core_->trace.async_end("server", "server.job", id);
    }
    writer.send_error(503, e.what());
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(job->mu);
    job->handle = std::move(handle);
    job->cv.notify_all();
  }
  core_->queue_depth->set(static_cast<double>(service_->queue_depth()));

  json::Value out = json::Value::object();
  out.set("job", json::Value::number(static_cast<double>(id)));
  out.set("state", json::Value::string("queued"));
  if (replan) {
    out.set("base_job",
            json::Value::number(static_cast<double>(job->base_job)));
    out.set("warm_started", json::Value::boolean(job->warm_started));
  }
  writer.send_json(202, out.dump());
}

}  // namespace etransform::server
