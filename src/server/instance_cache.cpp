#include "server/instance_cache.h"

#include <cstdint>
#include <cstdio>

namespace etransform::server {

namespace {

// Fixed per-entry overhead charged on top of the payload strings: list and
// hash-map nodes, the PlannerReport skeleton, the shared_ptr control block.
constexpr std::size_t kEntryOverheadBytes = 1024;

std::uint64_t fnv1a64(const std::string& text, std::uint64_t hash) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

std::string digest_hex(const std::string& text) {
  const std::uint64_t hash = fnv1a64(text, 14695981039346656037ull);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

std::string cache_key(const std::string& canonical_etf,
                      const std::string& options_fingerprint) {
  // Chain the two digests rather than concatenating the texts: a crafted
  // instance ending with fingerprint-shaped text cannot alias a different
  // (instance, options) split.
  std::uint64_t hash = fnv1a64(canonical_etf, 14695981039346656037ull);
  hash = fnv1a64(options_fingerprint, hash ^ 0x9e3779b97f4a7c15ull);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

InstanceCache::InstanceCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

std::shared_ptr<const CachedResult> InstanceCache::lookup(
    const std::string& key, const std::string& canonical_text) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end() || it->second->canonical_text != canonical_text) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++hits_;
  return it->second->result;
}

std::size_t InstanceCache::insert(const std::string& key,
                                  std::string canonical_text,
                                  std::shared_ptr<const CachedResult> result) {
  const std::size_t cost = canonical_text.size() +
                           (result != nullptr ? result->result_json.size() : 0) +
                           kEntryOverheadBytes;
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->cost;
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (cost > max_bytes_) return 0;  // cannot fit even alone
  lru_.push_front(Entry{key, std::move(canonical_text), std::move(result), cost});
  index_[key] = lru_.begin();
  bytes_ += cost;
  std::size_t evicted = 0;
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    evict_lru_locked();
    ++evicted;
  }
  return evicted;
}

void InstanceCache::evict_lru_locked() {
  const auto victim = std::prev(lru_.end());
  bytes_ -= victim->cost;
  index_.erase(victim->key);
  lru_.erase(victim);
  ++evictions_;
}

InstanceCache::Stats InstanceCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.entries = lru_.size();
  out.bytes = bytes_;
  return out;
}

}  // namespace etransform::server
