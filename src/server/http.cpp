#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "common/json.h"
#include "common/logging.h"

namespace etransform::server {

namespace {

// A request must arrive within this budget or the connection is dropped —
// the guard that keeps a stalled client from pinning a handler thread.
constexpr int kRecvTimeoutSec = 10;

void set_recv_timeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

void parse_query(std::string_view query, std::map<std::string, std::string>& out) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (!pair.empty()) out[std::string(pair)] = "";
    } else {
      out[std::string(pair.substr(0, eq))] = std::string(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
}

/// Reads from `fd` until the header terminator, then the Content-Length
/// body. Returns false on timeout, malformed framing, or oversized body;
/// the oversized case additionally sets `too_large` so the caller can
/// answer 413 instead of silently dropping the connection.
bool read_request(int fd, HttpRequest& request, bool& too_large) {
  std::string buffer;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (true) {
    header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buffer.size() > 1u << 20) return false;  // absurd header block
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;  // timeout, reset, or clean close mid-header
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  // Request line.
  const std::size_t line_end = buffer.find("\r\n");
  const std::string request_line = buffer.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  request.method = request_line.substr(0, sp1);
  request.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t qmark = request.target.find('?');
  if (qmark == std::string::npos) {
    request.path = request.target;
  } else {
    request.path = request.target.substr(0, qmark);
    parse_query(std::string_view(request.target).substr(qmark + 1), request.query);
  }

  // Headers.
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = buffer.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string line = buffer.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = lower(line.substr(0, colon));
      std::size_t vstart = colon + 1;
      while (vstart < line.size() && line[vstart] == ' ') ++vstart;
      request.headers[std::move(name)] = line.substr(vstart);
    }
    pos = eol + 2;
  }

  // Body.
  std::size_t content_length = 0;
  if (const auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str()) return false;
    content_length = static_cast<std::size_t>(v);
  }
  if (content_length > HttpServer::kMaxBodyBytes) {
    too_large = true;
    return false;
  }
  request.body = buffer.substr(header_end + 4);
  while (request.body.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    request.body.append(chunk, static_cast<std::size_t>(n));
  }
  request.body.resize(content_length);
  return true;
}

}  // namespace

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

// ---------------------------------------------------------------------------
// ResponseWriter

bool ResponseWriter::write_all(std::string_view data) {
  if (broken_) return false;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      broken_ = true;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void ResponseWriter::send(int status, std::string_view content_type,
                          std::string_view body,
                          const std::vector<std::string>& extra_headers) {
  responded_ = true;
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     status_reason(status) + "\r\n";
  head += "Content-Type: " + std::string(content_type) + "\r\n";
  head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const std::string& header : extra_headers) head += header + "\r\n";
  head += "Connection: close\r\n\r\n";
  if (write_all(head)) write_all(body);
}

void ResponseWriter::send_error(int status, std::string_view message) {
  json::Value error = json::Value::object();
  error.set("error", json::Value::string(std::string(message)));
  send_json(status, error.dump());
}

void ResponseWriter::begin_stream(int status, std::string_view content_type) {
  responded_ = true;
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     status_reason(status) + "\r\n";
  head += "Content-Type: " + std::string(content_type) + "\r\n";
  head += "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
  write_all(head);
}

bool ResponseWriter::write_chunk(std::string_view data) {
  if (data.empty()) return !broken_;
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  if (!write_all(size_line)) return false;
  if (!write_all(data)) return false;
  return write_all("\r\n");
}

void ResponseWriter::end_stream() { write_all("0\r\n\r\n"); }

// ---------------------------------------------------------------------------
// HttpServer

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw InvalidInputError("http: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InvalidInputError("http: cannot bind 127.0.0.1:" +
                            std::to_string(port) + " (" +
                            std::strerror(errno) + ")");
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InvalidInputError("http: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::accept_loop() {
  while (true) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    // Reap connections that finished since the last pass; without this a
    // long-running daemon accumulates one dead-but-joinable thread per
    // request and eventually hits the task limit.
    std::vector<std::thread> finished;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      finished.swap(finished_threads_);
    }
    for (std::thread& thread : finished) thread.join();
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_recv_timeout(fd, kRecvTimeoutSec);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      open_fds_.insert(fd);
      // The handle lands in the map before the new thread can reach its
      // self-reap block (which needs mu_, held here).
      std::thread thread([this, fd] { serve_connection(fd); });
      const std::thread::id id = thread.get_id();
      connection_threads_.emplace(id, std::move(thread));
    }
  }
}

void HttpServer::serve_connection(int fd) {
  {
    HttpRequest request;
    ResponseWriter writer(fd);
    bool too_large = false;
    if (read_request(fd, request, too_large)) {
      try {
        handler_(request, writer);
        if (!writer.responded()) {
          writer.send_error(500, "handler produced no response");
        }
      } catch (const std::exception& e) {
        if (!writer.responded()) writer.send_error(500, e.what());
        ET_LOG(kWarning) << "http: handler threw: " << e.what();
      }
    } else if (too_large) {
      // The declared body is bigger than we will ever read; tell the
      // client why before closing rather than resetting on it.
      writer.send_error(413, "request body exceeds " +
                                 std::to_string(HttpServer::kMaxBodyBytes) +
                                 " bytes");
    }
    // Half-close so the peer sees EOF, then drop the socket.
    ::shutdown(fd, SHUT_WR);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  open_fds_.erase(fd);
  ::close(fd);
  // Self-reap: hand this thread's handle to the accept loop, which joins
  // it on its next pass. During stop() the handle may already have been
  // claimed for joining there — then there is nothing to move.
  const auto it = connection_threads_.find(std::this_thread::get_id());
  if (it != connection_threads_.end()) {
    finished_threads_.push_back(std::move(it->second));
    connection_threads_.erase(it);
  }
}

void HttpServer::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Second call: everything below already ran (or is running in the
      // first caller); nothing left to do.
      return;
    }
    stopping_ = true;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Unblock every in-flight connection (readers get EOF, streamers get a
  // send failure on the next chunk), then claim and join all thread
  // handles — both still-running connections and already-self-reaped ones.
  // Joining happens outside mu_ so a finishing connection can still enter
  // its self-reap block (it finds its handle gone and just returns).
  std::vector<std::thread> to_join;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    for (auto& [id, thread] : connection_threads_) {
      to_join.push_back(std::move(thread));
    }
    connection_threads_.clear();
    for (std::thread& thread : finished_threads_) {
      to_join.push_back(std::move(thread));
    }
    finished_threads_.clear();
  }
  for (std::thread& thread : to_join) {
    if (thread.joinable()) thread.join();
  }
}

// ---------------------------------------------------------------------------
// Client

namespace {

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// De-chunks a Transfer-Encoding: chunked body in place. Returns false on
/// malformed framing.
bool dechunk(const std::string& in, std::string& out) {
  std::size_t pos = 0;
  while (true) {
    const std::size_t eol = in.find("\r\n", pos);
    if (eol == std::string::npos) return false;
    char* end = nullptr;
    const unsigned long long size =
        std::strtoull(in.c_str() + pos, &end, 16);
    if (end == in.c_str() + pos) return false;
    if (size == 0) return true;
    pos = eol + 2;
    if (pos + size > in.size()) return false;
    out.append(in, pos, size);
    pos += size + 2;  // skip chunk + trailing CRLF
  }
}

}  // namespace

bool http_request(int port, const std::string& method,
                  const std::string& target, const std::string& request_body,
                  ClientResponse* response, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return set_error(error, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return set_error(error, "cannot connect to 127.0.0.1:" +
                                std::to_string(port));
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: 127.0.0.1\r\n";
  request += "Content-Length: " + std::to_string(request_body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += request_body;
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return set_error(error, "send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char chunk[8192];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      ::close(fd);
      return set_error(error, "recv() failed");
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return set_error(error, "malformed response (no header terminator)");
  }
  const std::size_t line_end = raw.find("\r\n");
  const std::string status_line = raw.substr(0, line_end);
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos) {
    return set_error(error, "malformed status line");
  }
  response->status = std::atoi(status_line.c_str() + sp + 1);
  response->headers.clear();
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string line = raw.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = lower(line.substr(0, colon));
      std::size_t vstart = colon + 1;
      while (vstart < line.size() && line[vstart] == ' ') ++vstart;
      response->headers[std::move(name)] = line.substr(vstart);
    }
    pos = eol + 2;
  }
  const std::string body = raw.substr(header_end + 4);
  response->body.clear();
  const auto te = response->headers.find("transfer-encoding");
  if (te != response->headers.end() && te->second == "chunked") {
    if (!dechunk(body, response->body)) {
      return set_error(error, "malformed chunked body");
    }
  } else {
    response->body = body;
  }
  return true;
}

}  // namespace etransform::server
