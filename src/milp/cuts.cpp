#include "milp/cuts.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "lp/basis.h"

namespace etransform::milp {

namespace {

using lp::BasisVarStatus;
using lp::Relation;
using lp::RowStructure;
using lp::Term;

/// Coefficients below this are numerical noise, not structure.
constexpr double kCoefEps = 1e-11;
/// Reject cuts whose coefficient magnitudes span more than this ratio (or
/// exceed it outright): such rows destabilize the LU more than they tighten
/// the relaxation.
constexpr double kMaxDynamicRange = 1e7;

double frac(double v) { return v - std::floor(v); }

/// 2-norm of a term vector, floored at 1 so normalized violations and
/// binding tolerances stay meaningful on tiny rows.
double row_norm(const std::vector<Term>& terms) {
  double sq = 0.0;
  for (const Term& t : terms) sq += t.coef * t.coef;
  return std::max(1.0, std::sqrt(sq));
}

/// Canonical textual form of a cut row: relation, rhs, then the (merged,
/// var-sorted) terms. Logically identical cuts collide regardless of the
/// generator or round that produced them.
std::string signature(const Cut& cut) {
  std::string sig;
  sig.reserve(cut.terms.size() * 16 + 16);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%d:%.9g", static_cast<int>(cut.relation),
                cut.rhs);
  sig += buf;
  for (const Term& t : cut.terms) {
    std::snprintf(buf, sizeof buf, "|%d:%.9g", t.var, t.coef);
    sig += buf;
  }
  return sig;
}

}  // namespace

bool CutPool::add(Cut cut) {
  cut.terms = lp::merge_terms(std::move(cut.terms));
  if (cut.terms.empty()) return false;
  std::string sig = signature(cut);
  for (const std::string& s : signatures_) {
    if (s == sig) return false;
  }
  cut.id = next_id_++;
  cut.rounds_inactive = 0;
  signatures_.push_back(std::move(sig));
  cuts_.push_back(std::move(cut));
  ++total_generated_;
  return true;
}

void CutPool::record_activity(const std::vector<double>& values, double tol) {
  for (Cut& cut : cuts_) {
    const double lhs = cut_activity(cut, values);
    // Slack toward the interior; an equality cut is binding by definition.
    const double slack = cut.relation == Relation::kGreaterEqual
                             ? lhs - cut.rhs
                             : cut.rhs - lhs;
    if (slack <= tol * row_norm(cut.terms)) {
      cut.rounds_inactive = 0;
    } else {
      ++cut.rounds_inactive;
    }
  }
}

int CutPool::purge(int max_inactive_rounds) {
  int removed = 0;
  std::size_t w = 0;
  for (std::size_t i = 0; i < cuts_.size(); ++i) {
    if (cuts_[i].rounds_inactive >= max_inactive_rounds) {
      ++removed;
      continue;
    }
    if (w != i) {
      cuts_[w] = std::move(cuts_[i]);
      signatures_[w] = std::move(signatures_[i]);
    }
    ++w;
  }
  cuts_.resize(w);
  signatures_.resize(w);
  total_purged_ += removed;
  return removed;
}

double cut_activity(const Cut& cut, const std::vector<double>& values) {
  double lhs = 0.0;
  for (const Term& t : cut.terms) {
    lhs += t.coef * values[static_cast<std::size_t>(t.var)];
  }
  return lhs;
}

bool cut_satisfied(const Cut& cut, const std::vector<double>& values,
                   double tol) {
  const double lhs = cut_activity(cut, values);
  const double scaled = tol * row_norm(cut.terms);
  switch (cut.relation) {
    case Relation::kLessEqual: return lhs <= cut.rhs + scaled;
    case Relation::kGreaterEqual: return lhs >= cut.rhs - scaled;
    case Relation::kEqual: return std::abs(lhs - cut.rhs) <= scaled;
  }
  return false;
}

int GomoryMixedIntegerCutGenerator::separate(const SeparationContext& sep,
                                             const lp::LpSolution& sol,
                                             CutPool& pool) const {
  const lp::PreparedLp& prep = *sep.prep;
  const lp::Model& model = *sep.model;
  if (sol.status != lp::SolveStatus::kOptimal || sol.basis == nullptr) {
    return 0;
  }
  const lp::BasisSnapshot& basis = *sol.basis;
  const int m = prep.num_rows();
  const int n = prep.num_columns();
  const int nv = prep.num_vars;
  if (static_cast<int>(basis.basic_columns.size()) != m ||
      static_cast<int>(basis.column_status.size()) != n) {
    return 0;
  }

  // Internal values: model variables verbatim, slacks s_r = rhs_r - a_r.x.
  std::vector<double> vals(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < nv; ++j) {
    vals[static_cast<std::size_t>(j)] = sol.values[static_cast<std::size_t>(j)];
  }
  {
    std::vector<double> activity(static_cast<std::size_t>(m), 0.0);
    for (int j = 0; j < nv; ++j) {
      const double x = vals[static_cast<std::size_t>(j)];
      if (x == 0.0) continue;
      const lp::SparseColumn& col = prep.columns[static_cast<std::size_t>(j)];
      for (std::size_t e = 0; e < col.rows.size(); ++e) {
        activity[static_cast<std::size_t>(col.rows[e])] += col.coefs[e] * x;
      }
    }
    for (int r = 0; r < m; ++r) {
      vals[static_cast<std::size_t>(nv + r)] =
          prep.rhs[static_cast<std::size_t>(r)] -
          activity[static_cast<std::size_t>(r)];
    }
  }

  // Internal bounds: root bounds for variables, relation bounds for slacks.
  std::vector<double> lo(static_cast<std::size_t>(n));
  std::vector<double> up(static_cast<std::size_t>(n));
  for (int j = 0; j < nv; ++j) {
    lo[static_cast<std::size_t>(j)] = (*sep.lower)[static_cast<std::size_t>(j)];
    up[static_cast<std::size_t>(j)] = (*sep.upper)[static_cast<std::size_t>(j)];
  }
  for (int r = 0; r < m; ++r) {
    lo[static_cast<std::size_t>(nv + r)] =
        prep.slack_lower[static_cast<std::size_t>(r)];
    up[static_cast<std::size_t>(nv + r)] =
        prep.slack_upper[static_cast<std::size_t>(r)];
  }

  // Row-major structural coefficients, for substituting slacks out of cuts.
  std::vector<std::vector<Term>> row_terms(static_cast<std::size_t>(m));
  for (int j = 0; j < nv; ++j) {
    const lp::SparseColumn& col = prep.columns[static_cast<std::size_t>(j)];
    for (std::size_t e = 0; e < col.rows.size(); ++e) {
      row_terms[static_cast<std::size_t>(col.rows[e])].push_back(
          Term{j, col.coefs[e]});
    }
  }

  // Candidate tableau rows: basic integer variables, most fractional first.
  struct Candidate {
    int position = 0;
    double score = 0.0;
  };
  std::vector<Candidate> candidates;
  const double away =
      std::max(sep.options.min_fractionality, sep.integrality_tol);
  for (int p = 0; p < m; ++p) {
    const int b = basis.basic_columns[static_cast<std::size_t>(p)];
    if (b >= nv || !model.variable(b).is_integer) continue;
    const double f = frac(vals[static_cast<std::size_t>(b)]);
    const double dist = std::min(f, 1.0 - f);
    if (dist < away) continue;
    candidates.push_back(Candidate{p, dist});
  }
  if (candidates.empty()) return 0;
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });

  lp::TableauRowExtractor extractor;
  if (!extractor.load(m, prep.columns, basis.basic_columns)) return 0;

  // Dense cuts tax every node LP in the tree; unless a row is sparse
  // (relative to the column count, with a small-model floor) it is not
  // worth keeping no matter how violated it is. The absolute ceiling keeps
  // large models honest: at thousands of columns even a modest fraction
  // yields rows so long the warm re-solve after adding them turns
  // ill-conditioned.
  constexpr double kAbsoluteNnzCeiling = 150.0;
  const std::size_t max_nnz = static_cast<std::size_t>(std::max(
      24.0, std::min(kAbsoluteNnzCeiling,
                     sep.options.max_density * static_cast<double>(nv))));

  std::vector<Cut> built;
  for (const Candidate& cand : candidates) {
    const std::vector<double>& rho = extractor.row_multipliers(cand.position);
    const int b = basis.basic_columns[static_cast<std::size_t>(cand.position)];
    const double f0 = frac(vals[static_cast<std::size_t>(b)]);

    // Tableau row p: x_B = bbar - sum_j abar_j (x_j - rest_j) over nonbasic
    // j. Shifting each nonbasic onto its resting bound (t_j = x_j - l_j at
    // lower, u_j - x_j at upper, t_j >= 0) gives x_B = bbar - sum d_j t_j
    // with d_j = abar_j * shift_sign, and the Gomory mixed-integer
    // inequality sum g_j t_j >= 1 follows from x_B integral.
    bool ok = true;
    std::vector<Term> coefs;  // internal-column space
    double rhs = 1.0;
    for (int j = 0; j < n; ++j) {
      const BasisVarStatus st = basis.column_status[static_cast<std::size_t>(j)];
      if (st == BasisVarStatus::kBasic) continue;
      const double abar = lp::TableauRowExtractor::row_coefficient(
          rho, prep.columns[static_cast<std::size_t>(j)]);
      if (std::abs(abar) <= kCoefEps) continue;
      double bound = 0.0;
      double shift_sign = 0.0;  // x_j = bound + shift_sign * t_j
      if (st == BasisVarStatus::kAtLower) {
        bound = lo[static_cast<std::size_t>(j)];
        shift_sign = 1.0;
      } else if (st == BasisVarStatus::kAtUpper) {
        bound = up[static_cast<std::size_t>(j)];
        shift_sign = -1.0;
      } else {
        // A free nonbasic with tableau weight has no valid shift.
        ok = false;
        break;
      }
      if (!std::isfinite(bound)) {
        ok = false;
        break;
      }
      const double d = abar * shift_sign;
      // Integer shifted variables keep integrality (integer bound shift);
      // treating one as continuous would also be valid, just weaker.
      const bool integral = j < nv && model.variable(j).is_integer;
      double g = 0.0;
      if (integral) {
        const double fj = frac(d);
        g = fj <= f0 + 1e-12 ? fj / f0 : (1.0 - fj) / (1.0 - f0);
      } else {
        g = d > 0.0 ? d / f0 : -d / (1.0 - f0);
      }
      if (g <= kCoefEps) continue;
      // g * t_j translated back: t_j = shift_sign * (x_j - bound).
      const double c = g * shift_sign;
      coefs.push_back(Term{j, c});
      rhs += c * bound;
    }
    if (!ok || coefs.empty()) continue;

    // Substitute slack columns out: s_r = rhs_r - a_r . x.
    std::vector<Term> terms;
    for (const Term& t : coefs) {
      if (t.var < nv) {
        terms.push_back(t);
        continue;
      }
      const int r = t.var - nv;
      rhs -= t.coef * prep.rhs[static_cast<std::size_t>(r)];
      for (const Term& a : row_terms[static_cast<std::size_t>(r)]) {
        terms.push_back(Term{a.var, -t.coef * a.coef});
      }
    }
    terms = lp::merge_terms(std::move(terms));
    if (terms.empty()) continue;

    // Numerical guards: fold negligible coefficients into the rhs
    // conservatively (a >= row stays valid when the rhs absorbs the dropped
    // term's largest possible contribution) and reject rows whose
    // coefficient range would destabilize the LP.
    double cmax = 0.0;
    for (const Term& t : terms) cmax = std::max(cmax, std::abs(t.coef));
    const double drop = std::max(kCoefEps, 1e-10 * cmax);
    std::vector<Term> kept;
    double cmin = std::numeric_limits<double>::infinity();
    ok = true;
    for (const Term& t : terms) {
      if (std::abs(t.coef) > drop) {
        kept.push_back(t);
        cmin = std::min(cmin, std::abs(t.coef));
        continue;
      }
      const double l = (*sep.lower)[static_cast<std::size_t>(t.var)];
      const double u = (*sep.upper)[static_cast<std::size_t>(t.var)];
      const double worst = std::max(t.coef * l, t.coef * u);
      if (!std::isfinite(worst)) {
        // Unbounded variable: cannot fold; keep the tiny term instead.
        kept.push_back(t);
        cmin = std::min(cmin, std::abs(t.coef));
        continue;
      }
      rhs -= worst;
    }
    if (kept.empty() || kept.size() > max_nnz || !std::isfinite(rhs)) {
      continue;
    }
    if (cmax > kMaxDynamicRange ||
        cmax / std::max(cmin, kCoefEps) > kMaxDynamicRange) {
      continue;
    }

    Cut cut;
    cut.name = "gomory_" + model.variable(b).name;
    cut.terms = std::move(kept);
    cut.relation = Relation::kGreaterEqual;
    cut.rhs = rhs;
    cut.violation =
        (cut.rhs - cut_activity(cut, sol.values)) / row_norm(cut.terms);
    if (cut.violation < sep.options.min_violation) continue;
    built.push_back(std::move(cut));
  }

  // Deepest cuts first: rank the round's survivors by normalized violation
  // and accept only the per-round budget.
  std::sort(built.begin(), built.end(), [](const Cut& a, const Cut& b) {
    return a.violation > b.violation;
  });
  int accepted = 0;
  for (Cut& cut : built) {
    if (accepted >= sep.options.max_cuts_per_round) break;
    cut.name += "_r" + std::to_string(pool.total_generated());
    if (pool.add(std::move(cut))) ++accepted;
  }
  return accepted;
}

namespace {

/// True when `row` has binary-knapsack shape under the root bounds: a <=
/// relation with finite rhs and positive weights over [0,1] integers. Tags
/// are advisory, so even tagged rows are re-checked before use.
bool knapsack_shape(const lp::Model& model, const lp::Constraint& row,
                    const std::vector<double>& lower,
                    const std::vector<double>& upper,
                    const std::vector<Term>& items) {
  if (row.relation != Relation::kLessEqual || !std::isfinite(row.rhs)) {
    return false;
  }
  if (items.empty()) return false;
  for (const Term& t : items) {
    if (t.coef <= 0.0) return false;
    if (!model.variable(t.var).is_integer) return false;
    if (lower[static_cast<std::size_t>(t.var)] < -1e-9 ||
        upper[static_cast<std::size_t>(t.var)] > 1.0 + 1e-9) {
      return false;
    }
  }
  return true;
}

}  // namespace

int CoverCutGenerator::separate(const SeparationContext& sep,
                                const lp::LpSolution& sol,
                                CutPool& pool) const {
  if (sol.status != lp::SolveStatus::kOptimal) return 0;
  const lp::Model& model = *sep.model;
  const std::vector<double>& x = sol.values;

  // Tagged rows first: the formulation marked them as knapsack-structured
  // (capacity / omega business-impact rows), so they get priority under the
  // per-round budget. Untagged rows are auto-detected afterwards — presolve
  // rebuilds rows without tags, and generic MILPs never had them.
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(model.num_constraints()));
  for (int r = 0; r < model.num_constraints(); ++r) {
    if (model.constraint(r).structure != RowStructure::kGeneric) {
      order.push_back(r);
    }
  }
  for (int r = 0; r < model.num_constraints(); ++r) {
    if (model.constraint(r).structure == RowStructure::kGeneric) {
      order.push_back(r);
    }
  }

  int accepted = 0;
  for (const int r : order) {
    if (accepted >= sep.options.max_cuts_per_round) break;
    const lp::Constraint& row = model.constraint(r);
    const std::vector<Term> items = lp::merge_terms(row.terms);
    if (!knapsack_shape(model, row, *sep.lower, *sep.upper, items)) continue;
    const double b = row.rhs;

    // Greedy minimal cover: take items cheapest in (1 - x*_j) per unit of
    // weight until the weight exceeds b, then shed any member the cover
    // does not need (least fractional first) to sharpen the inequality.
    std::vector<std::size_t> by_ratio(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) by_ratio[i] = i;
    std::sort(by_ratio.begin(), by_ratio.end(),
              [&](std::size_t a, std::size_t c) {
                const double ra =
                    (1.0 - x[static_cast<std::size_t>(items[a].var)]) /
                    items[a].coef;
                const double rc =
                    (1.0 - x[static_cast<std::size_t>(items[c].var)]) /
                    items[c].coef;
                return ra < rc;
              });
    const double margin = 1e-9 * std::max(1.0, std::abs(b));
    std::vector<std::size_t> cover;
    double weight = 0.0;
    for (const std::size_t i : by_ratio) {
      if (weight > b + margin) break;
      cover.push_back(i);
      weight += items[i].coef;
    }
    if (weight <= b + margin) continue;  // whole row fits: no cover exists

    std::sort(cover.begin(), cover.end(), [&](std::size_t a, std::size_t c) {
      return x[static_cast<std::size_t>(items[a].var)] <
             x[static_cast<std::size_t>(items[c].var)];
    });
    std::vector<std::size_t> minimal;
    for (std::size_t k = 0; k < cover.size(); ++k) {
      const std::size_t i = cover[k];
      if (weight - items[i].coef > b + margin) {
        weight -= items[i].coef;  // still a cover without it
      } else {
        minimal.push_back(i);
      }
    }
    if (minimal.size() < 2) continue;  // |C|=1 is a bound, not a cut

    // Extended cover E(C) = C + every item at least as heavy as C's
    // heaviest member; sum_{E} x_j <= |C| - 1 stays valid because any |C|
    // members of E weigh at least as much as C does.
    double amax = 0.0;
    for (const std::size_t i : minimal) amax = std::max(amax, items[i].coef);
    std::vector<char> in_cover(items.size(), 0);
    for (const std::size_t i : minimal) in_cover[i] = 1;
    Cut cut;
    cut.name = "cover_" + row.name + "_r" +
               std::to_string(pool.total_generated());
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (in_cover[i] || items[i].coef >= amax - 1e-12) {
        cut.terms.push_back(Term{items[i].var, 1.0});
      }
    }
    cut.relation = Relation::kLessEqual;
    cut.rhs = static_cast<double>(minimal.size()) - 1.0;
    cut.violation =
        (cut_activity(cut, x) - cut.rhs) / row_norm(cut.terms);
    if (cut.violation < sep.options.min_violation) continue;
    if (pool.add(std::move(cut))) ++accepted;
  }
  return accepted;
}

std::vector<std::shared_ptr<CutGenerator>> default_cut_generators(
    const CutOptions& options) {
  std::vector<std::shared_ptr<CutGenerator>> generators;
  if (options.cover) {
    generators.push_back(std::make_shared<CoverCutGenerator>());
  }
  if (options.gomory) {
    generators.push_back(std::make_shared<GomoryMixedIntegerCutGenerator>());
  }
  return generators;
}

}  // namespace etransform::milp
