#include "milp/brute_force.h"

#include <cmath>
#include <memory>
#include <vector>

#include "common/error.h"
#include "lp/lp_engine.h"

namespace etransform::milp {

namespace {
using lp::Model;
using lp::LpEngine;
using lp::SolveStatus;
}  // namespace

MilpSolution solve_brute_force(const Model& model, SolveContext& ctx,
                               std::uint64_t max_assignments) {
  model.validate();
  SolveScope scope(ctx, "brute_force");
  const int n = model.num_variables();
  std::vector<int> integer_vars;
  std::uint64_t combinations = 1;
  for (int j = 0; j < n; ++j) {
    const auto& v = model.variable(j);
    if (!v.is_integer) continue;
    if (!std::isfinite(v.lower) || !std::isfinite(v.upper)) {
      throw InvalidInputError(
          "brute force requires finite integer bounds (variable '" + v.name +
          "')");
    }
    const double span = std::floor(v.upper + 1e-9) - std::ceil(v.lower - 1e-9);
    if (span < 0) {
      MilpSolution result;
      result.status = MilpStatus::kInfeasible;
      return result;
    }
    combinations *= static_cast<std::uint64_t>(span) + 1;
    if (combinations > max_assignments) {
      throw InvalidInputError("brute force: too many integer assignments");
    }
    integer_vars.push_back(j);
  }

  const double sense_sign = model.sense() == lp::Sense::kMinimize ? 1.0 : -1.0;
  const LpEngine lp_solver;
  // One standard form shared by all assignments; only bounds change, and
  // each enumerated LP warm-starts from the previous one's basis.
  const lp::PreparedLp prep(model);
  std::shared_ptr<const lp::BasisSnapshot> warm;
  MilpSolution result;
  bool have_best = false;
  double best_internal = 0.0;

  std::vector<double> lower(static_cast<std::size_t>(n));
  std::vector<double> upper(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    lower[static_cast<std::size_t>(j)] = model.variable(j).lower;
    upper[static_cast<std::size_t>(j)] = model.variable(j).upper;
  }

  std::vector<double> assignment(integer_vars.size());
  for (std::size_t k = 0; k < integer_vars.size(); ++k) {
    assignment[k] =
        std::ceil(model.variable(integer_vars[k]).lower - 1e-9);
  }

  for (std::uint64_t iteration = 0; iteration < combinations; ++iteration) {
    if (ctx.should_stop()) {
      result.status = ctx.cancelled() ? MilpStatus::kCancelled
                                      : MilpStatus::kTimeLimit;
      if (have_best) result.objective = sense_sign * best_internal;
      return result;
    }
    for (std::size_t k = 0; k < integer_vars.size(); ++k) {
      const auto j = static_cast<std::size_t>(integer_vars[k]);
      lower[j] = assignment[k];
      upper[j] = assignment[k];
    }
    // Successive assignments differ only in the fixed integer bounds, so
    // each re-solve is a kBoundChange restart (dual simplex under kAuto).
    const lp::LpSolution lp = lp_solver.solve(
        prep, lower, upper, ctx,
        lp::LpStartBasis(warm.get(), lp::LpStartBasis::Origin::kBoundChange));
    if (lp.basis) warm = lp.basis;
    result.lp_iterations += lp.iterations;
    ++result.nodes;
    if (lp.status == SolveStatus::kUnbounded) {
      result.status = MilpStatus::kUnbounded;
      return result;
    }
    if (lp.status == SolveStatus::kOptimal) {
      const double internal = sense_sign * lp.objective;
      if (!have_best || internal < best_internal) {
        have_best = true;
        best_internal = internal;
        result.values = lp.values;
      }
    }
    // Odometer increment over the integer assignment.
    for (std::size_t k = 0; k < integer_vars.size(); ++k) {
      const auto& v = model.variable(integer_vars[k]);
      if (assignment[k] + 1.0 <= std::floor(v.upper + 1e-9)) {
        assignment[k] += 1.0;
        break;
      }
      assignment[k] = std::ceil(v.lower - 1e-9);
    }
  }

  if (have_best) {
    result.status = MilpStatus::kOptimal;
    result.objective = sense_sign * best_internal;
    result.best_bound = result.objective;
  } else {
    result.status = MilpStatus::kInfeasible;
  }
  return result;
}

}  // namespace etransform::milp
