// Exhaustive reference MILP solver for testing.
//
// Enumerates every assignment of the integer variables (each must have
// finite, small bounds) and, when continuous variables remain, solves the
// residual LP with the simplex. Exponential — only for cross-checking the
// branch-and-bound solver on tiny instances in tests.
#pragma once

#include <cstdint>

#include "milp/branch_and_bound.h"

namespace etransform::milp {

/// Solves `model` by exhaustive enumeration under `ctx` (the cancellation
/// token and deadline are polled between assignments; interruption returns
/// kTimeLimit / kCancelled with the best incumbent so far). Throws
/// InvalidInputError if an integer variable has an unbounded or non-finite
/// domain, or if the total number of integer assignments exceeds
/// `max_assignments`.
[[nodiscard]] MilpSolution solve_brute_force(
    const lp::Model& model, SolveContext& ctx,
    std::uint64_t max_assignments = 1u << 22);

}  // namespace etransform::milp
