// Branch-and-bound MILP solver built on the simplex LP engine.
//
// Integer variables are enforced by branching on fractional values and
// tightening variable bounds in child nodes. The LP standard form is
// prepared once per solve (lp::PreparedLp) and shared by every node — only
// bounds change down the tree — and each child warm-starts the simplex from
// its parent's optimal basis (see SearchOptions::warm_start_nodes), so most
// nodes skip phase 1 entirely and resume near-feasible after the bound
// change. Node selection is best-first by parent relaxation bound, which
// keeps the global lower bound tight and enables early termination at a
// requested gap. A depth-limited diving heuristic runs at the root to seed
// the incumbent.
//
// Root cutting planes (cut-and-branch): before branching starts, registered
// CutGenerators (Gomory mixed-integer + lifted cover by default; see
// milp/cuts.h) tighten the root relaxation over several separation rounds.
// Cut rows are appended to a working copy of the model, the standard form
// is re-prepared (new slack columns land at the end, so the previous basis
// extends verbatim), and the LP re-solves warm: re-factorize + composite
// phase 1 repairs the violated cut slacks in primal space. A dual simplex
// would resume dual-feasible instead, but the composite phase 1 already
// repairs arbitrary bound changes for node warm starts, so reusing it keeps
// one pivot loop for both paths — that is the documented design choice.
// Cuts whose rows stay slack for CutOptions::max_inactive_rounds
// consecutive root solves are purged before the tree is explored.
//
// Branching is pseudocost-based (BranchingOptions::kPseudocost): each
// variable maintains average per-unit-fraction objective degradations per
// direction, reliability-initialized by strong-branching probes (two
// iteration-capped child LPs) at shallow depth until enough real
// observations exist. The legacy most-fractional rule remains available.
//
// Control & observability flow through a SolveContext: the deadline
// (tightened by SearchOptions::time_limit_ms) and cancellation token are
// honored inside every node's LP — not just between nodes — `on_node`,
// `on_incumbent`, and `on_bound_improvement` events fire as the tree is
// explored, and the solve builds a "branch_and_bound" stats subtree (cut
// rounds under "cuts", strong-branching counters, incumbent/bound trace)
// also copied into MilpSolution::stats.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/solve_context.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "milp/cuts.h"
#include "milp/solver_options.h"

namespace etransform::milp {

/// DEPRECATED: the legacy flat tuning struct, kept for one PR as an alias
/// for the consolidated SolverOptions (solver_options.h). It converts
/// implicitly — `BranchAndBoundSolver solver(MilpOptions{...})` and
/// `options.milp = MilpOptions{...}` keep compiling — but exposes none of
/// the new cut/branching knobs. New code should construct SolverOptions.
struct MilpOptions {
  /// Maximum branch-and-bound nodes to expand.
  int max_nodes = 200000;
  /// Wall-clock budget in milliseconds; 0 disables the limit.
  int time_limit_ms = 0;
  /// Stop once (incumbent - bound) / max(1, |incumbent|) <= relative_gap.
  double relative_gap = 1e-9;
  /// Integrality tolerance.
  double integrality_tol = 1e-6;
  /// Run the diving heuristic at the root to find an early incumbent.
  bool root_dive = true;
  /// Warm-start each node's LP from its parent's optimal basis.
  bool warm_start_nodes = true;
  /// Options forwarded to the LP engine.
  lp::SimplexOptions lp_options;

  /// Lossless upgrade to the consolidated aggregate (cuts/branching/presolve
  /// sub-structs keep their defaults).
  operator SolverOptions() const {  // NOLINT(google-explicit-constructor)
    SolverOptions options;
    options.search.max_nodes = max_nodes;
    options.search.time_limit_ms = time_limit_ms;
    options.search.relative_gap = relative_gap;
    options.search.integrality_tol = integrality_tol;
    options.search.root_dive = root_dive;
    options.search.warm_start_nodes = warm_start_nodes;
    options.lp = lp_options;
    return options;
  }
};

/// Result status of a MILP solve.
enum class MilpStatus {
  kOptimal,          // incumbent proven optimal within relative_gap
  kFeasible,         // incumbent found but node budget exhausted before proof
  kInfeasible,       // no integer-feasible point exists
  kUnbounded,        // LP relaxation unbounded
  kNoSolutionFound,  // node budget exhausted with no incumbent
  kTimeLimit,        // deadline (time_limit_ms or context) expired; check
                     // values.empty() for whether an incumbent exists
  kCancelled,        // cancellation requested; incumbent may exist
};

/// Human-readable status name.
[[nodiscard]] const char* to_string(MilpStatus status);

/// Outcome of a MILP solve.
struct MilpSolution {
  MilpStatus status = MilpStatus::kNoSolutionFound;
  /// Incumbent objective (model sense). Valid whenever `values` is
  /// non-empty (kOptimal, kFeasible, and interrupted solves that found one).
  double objective = 0.0;
  /// Proven bound on the optimum (lower bound when minimizing).
  double best_bound = 0.0;
  /// Incumbent variable values; empty when no incumbent was found.
  std::vector<double> values;
  /// Nodes expanded.
  int nodes = 0;
  /// Total simplex iterations across all nodes (root cut re-solves and
  /// strong-branching probes included).
  int lp_iterations = 0;
  /// Root cut-generation activity (all zeroes when cuts were disabled or
  /// the model has no integer variables).
  CutStats cuts;
  /// The "branch_and_bound" stats subtree for this solve: per-phase wall
  /// times, aggregated simplex counters, and the incumbent/bound trace.
  SolveStats stats;

  /// True when `values` holds a feasible incumbent.
  [[nodiscard]] bool has_incumbent() const { return !values.empty(); }
  /// Root cut-generation activity; see CutStats.
  [[nodiscard]] const CutStats& cut_stats() const { return cuts; }
};

/// The MILP engine. Stateless between solves; safe to reuse — but a solver
/// with registered cut generators must not run concurrent solves, since
/// generators may keep per-solve scratch state.
class BranchAndBoundSolver {
 public:
  explicit BranchAndBoundSolver(SolverOptions options = {});

  /// Registers a cut separator to run in the root cutting loop. Registered
  /// generators *replace* the built-in set (register the built-ins from
  /// default_cut_generators() alongside your own to keep them). Generators
  /// only fire when SolverOptions::cuts.enable is on.
  void add_cut_generator(std::shared_ptr<CutGenerator> generator);

  /// Solves `model` to optimality (or to the configured budget) under
  /// `ctx`. Throws InvalidInputError on malformed models.
  [[nodiscard]] MilpSolution solve(const lp::Model& model,
                                   SolveContext& ctx) const;

  [[nodiscard]] const SolverOptions& options() const { return options_; }

 private:
  [[nodiscard]] MilpSolution solve_impl(const lp::Model& model,
                                        SolveContext& ctx,
                                        SolveStats& stats) const;

  SolverOptions options_;
  std::vector<std::shared_ptr<CutGenerator>> generators_;
};

}  // namespace etransform::milp
