// Branch-and-bound MILP solver built on the LpEngine (lp/lp_engine.h).
//
// Integer variables are enforced by branching on fractional values and
// tightening variable bounds in child nodes. The LP standard form is
// prepared once per solve (lp::PreparedLp) and shared by every node — only
// bounds change down the tree — and each child restarts the LP from its
// parent's optimal basis (see SearchOptions::warm_start_nodes) with
// LpStartBasis::Origin::kBoundChange: under SolveMode::kAuto (the default)
// the bound-flipping dual simplex reoptimizes straight from the still
// dual-feasible parent basis, and the composite primal phase 1 remains the
// fallback when the start fails the dual-feasibility check. Node selection
// is best-first by parent relaxation bound, which keeps the global lower
// bound tight and enables early termination at a requested gap. A
// depth-limited diving heuristic runs at the root to seed the incumbent.
//
// Parallel tree search (SearchOptions::threads > 1): the open-node frontier
// is shared by N workers on a work-stealing ThreadPool. Each worker owns a
// private LpEngine + PreparedLp + SolveContext (per-worker PreparedLps have
// identical internal layout, so a parent basis produced on one worker
// warm-starts a child on any other with the same kBoundChange dual-simplex
// reoptimization as the sequential search), while the incumbent publishes
// through a lock-free bound every worker checks right before committing to
// a node LP. The root LP, cut separation, and the root dive stay
// sequential. SearchOptions::deterministic switches to fixed node-dequeue
// epochs whose explored tree is invariant to the thread count; see
// solver_options.h and DESIGN.md ("Parallel tree search") for the exact
// determinism contract. Per-worker node/steal/incumbent tallies land under
// a "parallel" child of the branch_and_bound stats subtree.
//
// Root cutting planes (cut-and-branch): before branching starts, registered
// CutGenerators (Gomory mixed-integer + lifted cover by default; see
// milp/cuts.h) tighten the root relaxation over several separation rounds.
// Cut rows are appended to a working copy of the model, the standard form
// is re-prepared, and the previous basis maps over via lp::extend_basis()
// (new cut slacks enter basic, so the old duals — and dual feasibility —
// carry over verbatim); the re-solve restarts with Origin::kRowsAdded,
// which again lets kAuto pick the dual simplex to price out the violated
// cut rows. Cuts whose rows stay slack for CutOptions::max_inactive_rounds
// consecutive root solves are purged before the tree is explored.
//
// Branching is pseudocost-based (BranchingOptions::kPseudocost): each
// variable maintains average per-unit-fraction objective degradations per
// direction, reliability-initialized by strong-branching probes (two
// iteration-capped child LPs) at shallow depth until enough real
// observations exist. The legacy most-fractional rule remains available.
//
// Control & observability flow through a SolveContext: the deadline
// (tightened by SearchOptions::time_limit_ms) and cancellation token are
// honored inside every node's LP — not just between nodes — `on_node`,
// `on_incumbent`, and `on_bound_improvement` events fire as the tree is
// explored, and the solve builds a "branch_and_bound" stats subtree (cut
// rounds under "cuts", strong-branching counters, incumbent/bound trace)
// also copied into MilpSolution::stats. With threads > 1 the B&B-level
// events fire from worker threads (serialized under the frontier lock;
// callbacks must tolerate the calling thread not being the solve's), and
// request_cancel() on the solve's context stops every worker cooperatively.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/solve_context.h"
#include "lp/lp_engine.h"
#include "lp/model.h"
#include "milp/cuts.h"
#include "milp/solver_options.h"

namespace etransform::milp {

/// REMOVED: the legacy flat `MilpOptions{...}` tuning struct (deprecated in
/// the PR that introduced SolverOptions) is gone. Construct
/// milp::SolverOptions (milp/solver_options.h) instead: the old flat fields
/// now live under `.search` (max_nodes, time_limit_ms, relative_gap,
/// integrality_tol, root_dive, warm_start_nodes) and `lp_options` is `.lp`.
/// Any use of the name fails to compile against this poisoned declaration.
struct [[deprecated(
    "MilpOptions was removed; construct milp::SolverOptions "
    "(milp/solver_options.h): flat search knobs moved under .search, "
    "lp_options is now .lp")]] MilpOptions {
  MilpOptions() = delete;
};

/// Result status of a MILP solve.
enum class MilpStatus {
  kOptimal,          // incumbent proven optimal within relative_gap
  kFeasible,         // incumbent found but node budget exhausted before proof
  kInfeasible,       // no integer-feasible point exists
  kUnbounded,        // LP relaxation unbounded
  kNoSolutionFound,  // node budget exhausted with no incumbent
  kTimeLimit,        // deadline (time_limit_ms or context) expired; check
                     // values.empty() for whether an incumbent exists
  kCancelled,        // cancellation requested; incumbent may exist
};

/// Human-readable status name.
[[nodiscard]] const char* to_string(MilpStatus status);

/// Outcome of a MILP solve.
struct MilpSolution {
  MilpStatus status = MilpStatus::kNoSolutionFound;
  /// Incumbent objective (model sense). Valid whenever `values` is
  /// non-empty (kOptimal, kFeasible, and interrupted solves that found one).
  double objective = 0.0;
  /// Proven bound on the optimum (lower bound when minimizing).
  double best_bound = 0.0;
  /// Incumbent variable values; empty when no incumbent was found.
  std::vector<double> values;
  /// Nodes expanded.
  int nodes = 0;
  /// Total simplex iterations across all nodes (root cut re-solves and
  /// strong-branching probes included).
  int lp_iterations = 0;
  /// Root cut-generation activity (all zeroes when cuts were disabled or
  /// the model has no integer variables).
  CutStats cuts;
  /// Final basis of the clean (pre-cut) root relaxation, over the standard
  /// form of the unmodified model. Callers that re-solve a modified variant
  /// of the same model (iterative admin replans) can hand it back through
  /// solve()'s `root_warm` to restart the next root LP; null when the root
  /// never reached optimality.
  std::shared_ptr<const lp::BasisSnapshot> root_basis;
  /// The "branch_and_bound" stats subtree for this solve: per-phase wall
  /// times, aggregated simplex counters, and the incumbent/bound trace.
  SolveStats stats;

  /// True when `values` holds a feasible incumbent.
  [[nodiscard]] bool has_incumbent() const { return !values.empty(); }
  /// Root cut-generation activity; see CutStats.
  [[nodiscard]] const CutStats& cut_stats() const { return cuts; }
};

/// The MILP engine. Stateless between solves; safe to reuse, including for
/// concurrent solves — CutGenerator::separate() is const and generators
/// must keep per-solve scratch on the stack (see milp/cuts.h), so a shared
/// generator set is safe across SolveFarm jobs and parallel tree searches.
class BranchAndBoundSolver {
 public:
  explicit BranchAndBoundSolver(SolverOptions options = {});

  /// Registers a cut separator to run in the root cutting loop. Registered
  /// generators *replace* the built-in set (register the built-ins from
  /// default_cut_generators() alongside your own to keep them). Generators
  /// only fire when SolverOptions::cuts.enable is on.
  void add_cut_generator(std::shared_ptr<CutGenerator> generator);

  /// Solves `model` to optimality (or to the configured budget) under
  /// `ctx`. Throws InvalidInputError on malformed models. `root_warm`, when
  /// non-null, restarts the root relaxation from a basis of a structurally
  /// identical model (e.g. MilpSolution::root_basis of a previous solve of
  /// a modified variant); it is ignored when incompatible.
  [[nodiscard]] MilpSolution solve(const lp::Model& model, SolveContext& ctx,
                                   const lp::BasisSnapshot* root_warm =
                                       nullptr) const;

  [[nodiscard]] const SolverOptions& options() const { return options_; }

 private:
  [[nodiscard]] MilpSolution solve_impl(const lp::Model& model,
                                        SolveContext& ctx, SolveStats& stats,
                                        const lp::BasisSnapshot* root_warm)
      const;

  SolverOptions options_;
  std::vector<std::shared_ptr<CutGenerator>> generators_;
};

}  // namespace etransform::milp
