// Branch-and-bound MILP solver built on the simplex LP engine.
//
// Integer variables are enforced by branching on fractional values and
// tightening variable bounds in child nodes; each node re-solves the LP
// relaxation from scratch (our dense simplex is fast at the model sizes the
// planner emits, so warm starts are unnecessary). Node selection is
// best-first by parent relaxation bound, which keeps the global lower bound
// tight and enables early termination at a requested gap. A depth-limited
// diving heuristic runs at the root to seed the incumbent.
#pragma once

#include <optional>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace etransform::milp {

/// Tuning knobs for branch-and-bound.
struct MilpOptions {
  /// Maximum branch-and-bound nodes to expand.
  int max_nodes = 200000;
  /// Wall-clock budget in milliseconds; 0 disables the limit.
  int time_limit_ms = 0;
  /// Stop once (incumbent - bound) / max(1, |incumbent|) <= relative_gap.
  double relative_gap = 1e-9;
  /// Integrality tolerance.
  double integrality_tol = 1e-6;
  /// Run the diving heuristic at the root to find an early incumbent.
  bool root_dive = true;
  /// Options forwarded to the LP engine.
  lp::SimplexOptions lp_options;
};

/// Result status of a MILP solve.
enum class MilpStatus {
  kOptimal,         // incumbent proven optimal within relative_gap
  kFeasible,        // incumbent found but budget exhausted before proof
  kInfeasible,      // no integer-feasible point exists
  kUnbounded,       // LP relaxation unbounded
  kNoSolutionFound  // budget exhausted with no incumbent
};

/// Human-readable status name.
[[nodiscard]] const char* to_string(MilpStatus status);

/// Outcome of a MILP solve.
struct MilpSolution {
  MilpStatus status = MilpStatus::kNoSolutionFound;
  /// Incumbent objective (model sense). Valid for kOptimal/kFeasible.
  double objective = 0.0;
  /// Proven bound on the optimum (lower bound when minimizing).
  double best_bound = 0.0;
  /// Incumbent variable values. Valid for kOptimal/kFeasible.
  std::vector<double> values;
  /// Nodes expanded.
  int nodes = 0;
  /// Total simplex iterations across all nodes.
  int lp_iterations = 0;
};

/// The MILP engine. Stateless between solves; safe to reuse.
class BranchAndBoundSolver {
 public:
  explicit BranchAndBoundSolver(MilpOptions options = {});

  /// Solves `model` to optimality (or to the configured budget). Throws
  /// InvalidInputError on malformed models.
  [[nodiscard]] MilpSolution solve(const lp::Model& model) const;

 private:
  MilpOptions options_;
};

}  // namespace etransform::milp
