// Branch-and-bound MILP solver built on the simplex LP engine.
//
// Integer variables are enforced by branching on fractional values and
// tightening variable bounds in child nodes. The LP standard form is
// prepared once per solve (lp::PreparedLp) and shared by every node — only
// bounds change down the tree — and each child warm-starts the simplex from
// its parent's optimal basis (see MilpOptions::warm_start_nodes), so most
// nodes skip phase 1 entirely and resume dual-feasible after the bound
// change. Node selection is best-first by parent relaxation bound, which
// keeps the global lower bound tight and enables early termination at a
// requested gap. A depth-limited diving heuristic runs at the root to seed
// the incumbent.
//
// Control & observability flow through a SolveContext: the deadline
// (tightened by MilpOptions::time_limit_ms) and cancellation token are
// honored inside every node's LP — not just between nodes — `on_node`,
// `on_incumbent`, and `on_bound_improvement` events fire as the tree is
// explored, and the solve builds a "branch_and_bound" stats subtree with an
// incumbent/bound trace (also copied into MilpSolution::stats).
#pragma once

#include <optional>
#include <vector>

#include "common/solve_context.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace etransform::milp {

/// Tuning knobs for branch-and-bound.
struct MilpOptions {
  /// Maximum branch-and-bound nodes to expand.
  int max_nodes = 200000;
  /// Wall-clock budget in milliseconds; 0 disables the limit. Combined with
  /// the SolveContext deadline (whichever falls first wins) and enforced
  /// inside node LPs at refactorization granularity.
  int time_limit_ms = 0;
  /// Stop once (incumbent - bound) / max(1, |incumbent|) <= relative_gap.
  double relative_gap = 1e-9;
  /// Integrality tolerance.
  double integrality_tol = 1e-6;
  /// Run the diving heuristic at the root to find an early incumbent.
  bool root_dive = true;
  /// Warm-start each node's LP from its parent's optimal basis instead of
  /// cold-starting phase 1. Off is only useful for A/B measurements.
  bool warm_start_nodes = true;
  /// Options forwarded to the LP engine.
  lp::SimplexOptions lp_options;
};

/// Result status of a MILP solve.
enum class MilpStatus {
  kOptimal,          // incumbent proven optimal within relative_gap
  kFeasible,         // incumbent found but node budget exhausted before proof
  kInfeasible,       // no integer-feasible point exists
  kUnbounded,        // LP relaxation unbounded
  kNoSolutionFound,  // node budget exhausted with no incumbent
  kTimeLimit,        // deadline (time_limit_ms or context) expired; check
                     // values.empty() for whether an incumbent exists
  kCancelled,        // cancellation requested; incumbent may exist
};

/// Human-readable status name.
[[nodiscard]] const char* to_string(MilpStatus status);

/// Outcome of a MILP solve.
struct MilpSolution {
  MilpStatus status = MilpStatus::kNoSolutionFound;
  /// Incumbent objective (model sense). Valid whenever `values` is
  /// non-empty (kOptimal, kFeasible, and interrupted solves that found one).
  double objective = 0.0;
  /// Proven bound on the optimum (lower bound when minimizing).
  double best_bound = 0.0;
  /// Incumbent variable values; empty when no incumbent was found.
  std::vector<double> values;
  /// Nodes expanded.
  int nodes = 0;
  /// Total simplex iterations across all nodes.
  int lp_iterations = 0;
  /// The "branch_and_bound" stats subtree for this solve: per-phase wall
  /// times, aggregated simplex counters, and the incumbent/bound trace.
  SolveStats stats;

  /// True when `values` holds a feasible incumbent.
  [[nodiscard]] bool has_incumbent() const { return !values.empty(); }
};

/// The MILP engine. Stateless between solves; safe to reuse.
class BranchAndBoundSolver {
 public:
  explicit BranchAndBoundSolver(MilpOptions options = {});

  /// Solves `model` to optimality (or to the configured budget) under
  /// `ctx`. Throws InvalidInputError on malformed models.
  [[nodiscard]] MilpSolution solve(const lp::Model& model,
                                   SolveContext& ctx) const;

 private:
  [[nodiscard]] MilpSolution solve_impl(const lp::Model& model,
                                        SolveContext& ctx,
                                        SolveStats& stats) const;

  MilpOptions options_;
};

}  // namespace etransform::milp
